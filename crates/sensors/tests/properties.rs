//! Property-based tests for sensor noise models and map matching.

use gradest_geo::generate::straight_road;
use gradest_geo::Route;
use gradest_math::Vec2;
use gradest_sensors::alignment::MapMatcher;
use gradest_sensors::noise::{NoiseChannel, NoiseSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn white_noise_is_unbiased(sd in 0.01..2.0f64, truth in -50.0..50.0f64, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ch = NoiseChannel::new(NoiseSpec::white(sd), &mut rng);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| ch.corrupt(truth, 0.1, &mut rng)).sum::<f64>() / n as f64;
        // Standard error of the mean is sd/√n; allow 5 sigma.
        prop_assert!((mean - truth).abs() < 5.0 * sd / (n as f64).sqrt() + 1e-9,
            "mean {mean} truth {truth}");
    }

    #[test]
    fn quantization_error_is_bounded(step in 0.01..1.0f64, truth in -10.0..10.0f64, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = NoiseSpec { quantization: step, ..NoiseSpec::CLEAN };
        let mut ch = NoiseChannel::new(spec, &mut rng);
        let out = ch.corrupt(truth, 0.1, &mut rng);
        prop_assert!((out - truth).abs() <= step / 2.0 + 1e-12);
    }

    #[test]
    fn scale_error_is_multiplicative(scale in 0.9..1.1f64, truth in -100.0..100.0f64) {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = NoiseSpec { scale, ..NoiseSpec::CLEAN };
        let mut ch = NoiseChannel::new(spec, &mut rng);
        prop_assert!((ch.corrupt(truth, 0.1, &mut rng) - truth * scale).abs() < 1e-12);
    }

    #[test]
    fn bias_walk_variance_grows_linearly(sd in 0.01..0.5f64, seed in 0u64..50) {
        // After T seconds the walk variance is sd²·T; check the magnitude
        // is plausible across seeds (within 6σ of the expected spread).
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = NoiseSpec { bias_walk_sd: sd, ..NoiseSpec::CLEAN };
        let mut ch = NoiseChannel::new(spec, &mut rng);
        let t_total = 100.0;
        let dt = 0.1;
        for _ in 0..(t_total / dt) as usize {
            let _ = ch.corrupt(0.0, dt, &mut rng);
        }
        let expect_sd = sd * t_total.sqrt();
        prop_assert!(ch.bias().abs() < 6.0 * expect_sd, "bias {} vs σ {expect_sd}", ch.bias());
    }

    #[test]
    fn map_matcher_error_is_bounded_by_gps_noise(
        s_true in 0.0..1800.0f64,
        ex in -5.0..5.0f64,
        ey in -5.0..5.0f64,
    ) {
        let route = Route::new(vec![straight_road(2000.0, 1.0)]).unwrap();
        let mut m = MapMatcher::new(&route);
        // Warm the matcher along the route up to the query point.
        let mut s = 0.0;
        while s < s_true {
            m.match_s(route.point_at(s));
            s += 50.0;
        }
        let matched = m.match_s(route.point_at(s_true) + Vec2::new(ex, ey));
        // On a straight road the arc error is bounded by the along-track
        // GPS error plus the 1 m refinement grid.
        prop_assert!((matched - s_true).abs() <= ex.abs() + 2.0,
            "matched {matched} vs {s_true}");
    }
}

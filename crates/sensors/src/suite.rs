//! The sensor suite: runs every modelled sensor over a ground-truth
//! trajectory and produces a timestamped [`SensorLog`].

use crate::alignment::PhoneMount;
use crate::noise::{gaussian, NoiseChannel, NoiseSpec};
use crate::samples::{BaroSample, GpsSample, ImuSample, SpeedSample};
use gradest_math::{Vec2, GRAVITY};
use gradest_sim::Trajectory;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sampling rates, noise levels, and failure windows for the whole suite.
///
/// Defaults model a mid-2010s flagship phone (the paper's Galaxy S5) plus
/// a Bluetooth OBD dongle: 50 Hz IMU, 1 Hz GPS with ~3 m position noise,
/// metre-level barometer, and a lightly biased speedometer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// IMU (accelerometer + gyro) rate, Hz.
    pub imu_rate_hz: f64,
    /// GPS fix rate, Hz.
    pub gps_rate_hz: f64,
    /// Speedometer-app rate, Hz.
    pub speedo_rate_hz: f64,
    /// CAN-bus wheel-speed rate, Hz.
    pub can_rate_hz: f64,
    /// Barometer rate, Hz.
    pub baro_rate_hz: f64,
    /// Longitudinal accelerometer noise.
    pub accel_noise: NoiseSpec,
    /// Gyro z-axis noise.
    pub gyro_noise: NoiseSpec,
    /// GPS horizontal position noise (per axis), metres.
    pub gps_pos_sd_m: f64,
    /// GPS Doppler speed noise.
    pub gps_speed_noise: NoiseSpec,
    /// Speedometer noise (includes a scale error from tire-radius
    /// uncertainty).
    pub speedo_noise: NoiseSpec,
    /// CAN wheel-speed noise (quantized).
    pub can_noise: NoiseSpec,
    /// Barometer altitude noise (white + drift, per Section III-C1).
    pub baro_noise: NoiseSpec,
    /// GPS outage windows `(start_s, end_s)` in trip time.
    pub gps_outages: Vec<(f64, f64)>,
    /// Residual phone-mount misalignment.
    pub mount: PhoneMount,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            imu_rate_hz: 50.0,
            gps_rate_hz: 1.0,
            speedo_rate_hz: 10.0,
            can_rate_hz: 20.0,
            baro_rate_hz: 10.0,
            accel_noise: NoiseSpec {
                white_sd: 0.06,
                bias_walk_sd: 0.004,
                bias_init_sd: 0.03,
                quantization: 0.0,
                scale: 1.0,
            },
            gyro_noise: NoiseSpec {
                white_sd: 0.004,
                bias_walk_sd: 2e-4,
                bias_init_sd: 0.002,
                quantization: 0.0,
                scale: 1.0,
            },
            gps_pos_sd_m: 3.0,
            gps_speed_noise: NoiseSpec::white(0.35),
            speedo_noise: NoiseSpec {
                white_sd: 0.12,
                bias_walk_sd: 0.0,
                bias_init_sd: 0.0,
                quantization: 0.0,
                scale: 1.01,
            },
            can_noise: NoiseSpec {
                white_sd: 0.04,
                bias_walk_sd: 0.0,
                bias_init_sd: 0.0,
                quantization: 0.0278, // 0.1 km/h wheel-speed resolution
                scale: 1.0,
            },
            baro_noise: NoiseSpec {
                // The paper calls phone barometric altitude "notoriously
                // poor (e.g., several meters)": metre-level white noise
                // plus environmental pressure drift of metres over
                // minutes (0.2 m/√s ≈ 1.5 m drift per minute).
                white_sd: 1.5,
                bias_walk_sd: 0.2,
                bias_init_sd: 3.0,
                quantization: 0.0,
                scale: 1.0,
            },
            gps_outages: Vec::new(),
            mount: PhoneMount::default(),
        }
    }
}

/// Everything the phone + CAN recorded over one trip.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SensorLog {
    /// IMU stream (aligned phone frame).
    pub imu: Vec<ImuSample>,
    /// GPS fixes (including invalid outage placeholders).
    pub gps: Vec<GpsSample>,
    /// Speedometer stream.
    pub speedometer: Vec<SpeedSample>,
    /// CAN wheel-speed stream.
    pub can: Vec<SpeedSample>,
    /// Barometer stream.
    pub barometer: Vec<BaroSample>,
}

impl SensorLog {
    /// IMU sampling interval, seconds.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two IMU samples were recorded.
    pub fn imu_dt(&self) -> f64 {
        assert!(self.imu.len() >= 2, "need at least two IMU samples");
        self.imu[1].t - self.imu[0].t
    }

    /// Duration covered by the log, seconds.
    pub fn duration_s(&self) -> f64 {
        self.imu.last().map(|s| s.t).unwrap_or(0.0)
    }
}

/// Runs the modelled sensors over ground truth.
#[derive(Debug, Clone)]
pub struct SensorSuite {
    config: SensorConfig,
}

impl SensorSuite {
    /// Creates a suite from a configuration.
    pub fn new(config: SensorConfig) -> Self {
        SensorSuite { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    /// Simulates every sensor over `traj`, deterministic in `seed`.
    pub fn run(&self, traj: &Trajectory, seed: u64) -> SensorLog {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut accel_ch = NoiseChannel::new(cfg.accel_noise, &mut rng);
        let mut accel_lat_ch =
            NoiseChannel::new(NoiseSpec::white(cfg.accel_noise.white_sd), &mut rng);
        let mut gyro_ch = NoiseChannel::new(cfg.gyro_noise, &mut rng);
        let mut gps_speed_ch = NoiseChannel::new(cfg.gps_speed_noise, &mut rng);
        let mut speedo_ch = NoiseChannel::new(cfg.speedo_noise, &mut rng);
        let mut can_ch = NoiseChannel::new(cfg.can_noise, &mut rng);
        let mut baro_ch = NoiseChannel::new(cfg.baro_noise, &mut rng);

        let mut log = SensorLog::default();
        let mut next_imu = 0.0;
        let mut next_gps = 0.0;
        let mut next_speedo = 0.0;
        let mut next_can = 0.0;
        let mut next_baro = 0.0;
        let imu_dt = 1.0 / cfg.imu_rate_hz;
        let gps_dt = 1.0 / cfg.gps_rate_hz;
        let speedo_dt = 1.0 / cfg.speedo_rate_hz;
        let can_dt = 1.0 / cfg.can_rate_hz;
        let baro_dt = 1.0 / cfg.baro_rate_hz;

        let mut last_valid_gps: Option<GpsSample> = None;

        for s in traj.samples() {
            if s.t >= next_imu {
                // Specific force in the aligned phone frame: gravity leaks
                // into Y_B on gradients, and residual mount pitch adds
                // ~g·ε of constant offset (Section III-A notes the
                // relative-movement compensation of [14]; we model its
                // residual).
                let truth_long =
                    s.accel_mps2 + GRAVITY * (s.theta + cfg.mount.pitch_error_rad).sin();
                let truth_lat = s.speed_mps * s.yaw_rate + GRAVITY * cfg.mount.roll_error_rad.sin();
                log.imu.push(ImuSample {
                    t: s.t,
                    accel_long: accel_ch.corrupt(truth_long, imu_dt, &mut rng),
                    accel_lat: accel_lat_ch.corrupt(truth_lat, imu_dt, &mut rng),
                    gyro_z: gyro_ch.corrupt(s.yaw_rate, imu_dt, &mut rng),
                });
                next_imu += imu_dt;
            }
            if s.t >= next_gps {
                let in_outage = cfg.gps_outages.iter().any(|&(a, b)| s.t >= a && s.t <= b);
                if in_outage {
                    // Hold last-known fix, flagged invalid.
                    let held = last_valid_gps.unwrap_or(GpsSample {
                        t: s.t,
                        position: s.position,
                        speed_mps: s.speed_mps,
                        heading: s.heading,
                        valid: false,
                    });
                    log.gps.push(GpsSample { t: s.t, valid: false, ..held });
                } else {
                    let noise =
                        Vec2::new(gaussian(&mut rng), gaussian(&mut rng)) * cfg.gps_pos_sd_m;
                    // Course noise shrinks with speed (heading comes from
                    // displacement over the fix interval).
                    let heading_sd =
                        (cfg.gps_pos_sd_m / (s.speed_mps.max(1.0) * gps_dt)).clamp(0.005, 0.5);
                    let fix = GpsSample {
                        t: s.t,
                        position: s.position + noise,
                        speed_mps: gps_speed_ch.corrupt(s.speed_mps, gps_dt, &mut rng).max(0.0),
                        heading: s.heading + heading_sd * gaussian(&mut rng),
                        valid: true,
                    };
                    last_valid_gps = Some(fix);
                    log.gps.push(fix);
                }
                next_gps += gps_dt;
            }
            if s.t >= next_speedo {
                log.speedometer.push(SpeedSample {
                    t: s.t,
                    speed_mps: speedo_ch.corrupt(s.speed_mps, speedo_dt, &mut rng).max(0.0),
                });
                next_speedo += speedo_dt;
            }
            if s.t >= next_can {
                log.can.push(SpeedSample {
                    t: s.t,
                    speed_mps: can_ch.corrupt(s.speed_mps, can_dt, &mut rng).max(0.0),
                });
                next_can += can_dt;
            }
            if s.t >= next_baro {
                log.barometer.push(BaroSample {
                    t: s.t,
                    altitude_m: baro_ch.corrupt(s.altitude, baro_dt, &mut rng),
                });
                next_baro += baro_dt;
            }
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradest_geo::generate::{red_road, straight_road};
    use gradest_geo::Route;
    use gradest_sim::trip::{simulate_trip, TripConfig};

    fn quiet_trip() -> Trajectory {
        let route = Route::new(vec![straight_road(1500.0, 3.0)]).unwrap();
        simulate_trip(&route, &TripConfig::default(), 21)
    }

    #[test]
    fn rates_are_respected() {
        let traj = quiet_trip();
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 1);
        let dur = traj.duration_s();
        let imu_rate = log.imu.len() as f64 / dur;
        let gps_rate = log.gps.len() as f64 / dur;
        assert!((imu_rate - 50.0).abs() < 1.0, "IMU {imu_rate} Hz");
        assert!((gps_rate - 1.0).abs() < 0.1, "GPS {gps_rate} Hz");
        assert!((log.barometer.len() as f64 / dur - 10.0).abs() < 0.5);
        assert!((log.can.len() as f64 / dur - 20.0).abs() < 0.5);
    }

    #[test]
    fn accelerometer_contains_gravity_component() {
        // On a constant 3° climb at steady speed, mean accel_long ≈ g·sin 3°.
        let traj = quiet_trip();
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 2);
        // Use the middle of the trip (speed settled).
        let n = log.imu.len();
        let mid = &log.imu[n / 3..2 * n / 3];
        let mean = mid.iter().map(|s| s.accel_long).sum::<f64>() / mid.len() as f64;
        let expect = GRAVITY * (3.0f64.to_radians()).sin();
        assert!((mean - expect).abs() < 0.15, "mean specific force {mean}, expected ≈{expect}");
    }

    #[test]
    fn gps_noise_magnitude() {
        let traj = quiet_trip();
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 3);
        // Compare each fix against the nearest truth sample.
        let mut errs = Vec::new();
        for fix in &log.gps {
            let truth = traj
                .samples()
                .iter()
                .min_by(|a, b| (a.t - fix.t).abs().partial_cmp(&(b.t - fix.t).abs()).unwrap())
                .unwrap();
            errs.push((fix.position - truth.position).norm());
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        // Rayleigh mean for σ=3 per axis is σ·√(π/2) ≈ 3.76.
        assert!((2.5..5.5).contains(&mean_err), "mean GPS error {mean_err}");
    }

    #[test]
    fn outage_marks_fixes_invalid() {
        let traj = quiet_trip();
        let cfg = SensorConfig { gps_outages: vec![(10.0, 20.0)], ..Default::default() };
        let log = SensorSuite::new(cfg).run(&traj, 4);
        let invalid: Vec<&GpsSample> = log.gps.iter().filter(|g| !g.valid).collect();
        assert!((9..=12).contains(&invalid.len()), "{} invalid fixes", invalid.len());
        assert!(invalid.iter().all(|g| g.t >= 10.0 && g.t <= 20.0));
        // Fixes outside the window are valid.
        assert!(log.gps.iter().filter(|g| g.t > 21.0).all(|g| g.valid));
    }

    #[test]
    fn speedometer_scale_bias_visible() {
        let traj = quiet_trip();
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 5);
        // Speedometer reads ~1% high relative to CAN on average.
        let mean_speedo =
            log.speedometer.iter().map(|s| s.speed_mps).sum::<f64>() / log.speedometer.len() as f64;
        let mean_can = log.can.iter().map(|s| s.speed_mps).sum::<f64>() / log.can.len() as f64;
        let ratio = mean_speedo / mean_can;
        assert!((ratio - 1.01).abs() < 0.005, "ratio {ratio}");
    }

    #[test]
    fn barometer_is_noisy_but_unbiased_only_slowly() {
        let traj = quiet_trip();
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 6);
        let mut errs = Vec::new();
        for b in &log.barometer {
            let truth = traj
                .samples()
                .iter()
                .min_by(|x, y| (x.t - b.t).abs().partial_cmp(&(y.t - b.t).abs()).unwrap())
                .unwrap();
            errs.push(b.altitude_m - truth.altitude);
        }
        let sd = {
            let m = errs.iter().sum::<f64>() / errs.len() as f64;
            (errs.iter().map(|e| (e - m) * (e - m)).sum::<f64>() / errs.len() as f64).sqrt()
        };
        // Metre-level, per the paper's complaint about phone barometers.
        assert!(sd > 0.5, "baro sd {sd}");
    }

    #[test]
    fn deterministic_in_seed() {
        let traj = quiet_trip();
        let suite = SensorSuite::new(SensorConfig::default());
        let a = suite.run(&traj, 7);
        let b = suite.run(&traj, 7);
        assert_eq!(a.imu.len(), b.imu.len());
        assert_eq!(a.imu[100], b.imu[100]);
        let c = suite.run(&traj, 8);
        assert_ne!(a.imu[100], c.imu[100]);
    }

    #[test]
    fn gyro_tracks_yaw_rate_on_red_road() {
        let route = Route::new(vec![red_road()]).unwrap();
        let traj = simulate_trip(&route, &TripConfig::default(), 30);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 9);
        // Gyro mean error vs truth yaw rate is small.
        let mut errs = Vec::new();
        for g in log.imu.iter().step_by(10) {
            let truth = traj
                .samples()
                .iter()
                .min_by(|x, y| (x.t - g.t).abs().partial_cmp(&(y.t - g.t).abs()).unwrap())
                .unwrap();
            errs.push(g.gyro_z - truth.yaw_rate);
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean.abs() < 0.01, "gyro mean error {mean}");
    }
}

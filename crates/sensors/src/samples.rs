//! Timestamped sensor sample types.

use gradest_math::Vec2;
use serde::{Deserialize, Serialize};

/// One IMU sample in the aligned phone frame (Section III-A: `Y_B` along
/// the driving direction, `Z_B` normal to the road plane).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuSample {
    /// Time since trip start, seconds.
    pub t: f64,
    /// Specific force along `Y_B` (longitudinal), m/s².
    /// On a gradient this contains the gravity component:
    /// `a_y = v̇ + g·sinθ + noise`.
    pub accel_long: f64,
    /// Specific force along `X_B` (lateral), m/s² — dominated by the
    /// centripetal term `v·ω_z` while turning.
    pub accel_lat: f64,
    /// Angular rate about `Z_B` (yaw rate `ŵ_vehicle`), rad/s.
    pub gyro_z: f64,
}

/// One GPS fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsSample {
    /// Time since trip start, seconds.
    pub t: f64,
    /// Planar position in the local frame, metres.
    pub position: Vec2,
    /// Doppler speed, m/s.
    pub speed_mps: f64,
    /// Course over ground, radians CCW from East.
    pub heading: f64,
    /// False during outages (urban canyon, tunnel): the fix carries the
    /// last-known values and must not be trusted.
    pub valid: bool,
}

/// One scalar speed sample (speedometer or CAN-bus).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedSample {
    /// Time since trip start, seconds.
    pub t: f64,
    /// Measured vehicle speed, m/s.
    pub speed_mps: f64,
}

/// One barometric altitude sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaroSample {
    /// Time since trip start, seconds.
    pub t: f64,
    /// Pressure altitude, metres.
    pub altitude_m: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_round_trip_serde() {
        let imu = ImuSample { t: 1.0, accel_long: 0.2, accel_lat: -0.1, gyro_z: 0.01 };
        let s = serde_json::to_string(&imu).unwrap();
        let back: ImuSample = serde_json::from_str(&s).unwrap();
        assert_eq!(imu, back);

        let gps = GpsSample {
            t: 2.0,
            position: Vec2::new(10.0, 20.0),
            speed_mps: 12.0,
            heading: 0.5,
            valid: true,
        };
        let s = serde_json::to_string(&gps).unwrap();
        let back: GpsSample = serde_json::from_str(&s).unwrap();
        assert_eq!(gps, back);
    }
}

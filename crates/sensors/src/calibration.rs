//! Phone-mount calibration — the compensation method the paper cites as
//! \[14\] (Paefgen & Kehr, "Driving behavior analysis with smartphones").
//!
//! Given raw phone-frame IMU data, recover the mount rotation
//! (vehicle-from-phone) in two steps:
//!
//! 1. **Up axis** — while parked, the accelerometer measures pure gravity;
//!    the mean specific force direction is the vehicle's up axis in phone
//!    coordinates.
//! 2. **Forward axis** — while driving, longitudinal accelerations and
//!    decelerations dominate the horizontal specific force; regressing the
//!    gravity-orthogonal accel against the speed derivative recovers the
//!    forward axis (with the correct sign, because acceleration correlates
//!    positively with `v̇`).
//!
//! `left = forward × up` completes the right-handed vehicle basis.

use crate::raw::RawImuSample;
use crate::samples::ImuSample;
use gradest_math::{Rot3, Vec3};
use serde::{Deserialize, Serialize};

/// Calibration failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CalibrationError {
    /// Not enough samples to calibrate.
    InsufficientData,
    /// No stationary period found (needed for the gravity estimate).
    NoStationaryPeriod,
    /// The drive contains no longitudinal accelerations to regress on.
    NoLongitudinalExcitation,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::InsufficientData => write!(f, "not enough IMU samples"),
            CalibrationError::NoStationaryPeriod => {
                write!(f, "no stationary period for the gravity estimate")
            }
            CalibrationError::NoLongitudinalExcitation => {
                write!(f, "no longitudinal acceleration events to orient against")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Estimates the mount rotation (vehicle-from-phone) from raw IMU data
/// and a vehicle speed series `(t, v)` on the same clock.
///
/// # Errors
///
/// Returns [`CalibrationError`] when the data cannot support either
/// estimation step.
pub fn estimate_mount(
    raw: &[RawImuSample],
    speed: &[(f64, f64)],
) -> Result<Rot3, CalibrationError> {
    if raw.len() < 100 || speed.len() < 10 {
        return Err(CalibrationError::InsufficientData);
    }

    // --- Step 1: up axis from stationary gravity. ---
    // Stationary = speed below 0.3 m/s around the sample time.
    let mut speed_idx = 0usize;
    let speed_at = |idx: &mut usize, t: f64| -> f64 {
        while *idx + 1 < speed.len() && speed[*idx + 1].0 <= t {
            *idx += 1;
        }
        speed[*idx].1
    };
    let mut up_sum = Vec3::ZERO;
    let mut n_still = 0usize;
    for s in raw {
        if speed_at(&mut speed_idx, s.t) < 0.3 {
            up_sum += s.accel;
            n_still += 1;
        }
    }
    if n_still < 50 {
        return Err(CalibrationError::NoStationaryPeriod);
    }
    let up = (up_sum / n_still as f64).normalized().ok_or(CalibrationError::NoStationaryPeriod)?;

    // --- Step 2: forward axis from the v̇-correlated horizontal accel. ---
    // Numeric speed derivative on the speed clock.
    let mut fwd_sum = Vec3::ZERO;
    let mut excitation = 0.0;
    let mut raw_idx = 0usize;
    for w in speed.windows(2) {
        let (t0, v0) = w[0];
        let (t1, v1) = w[1];
        let dt = t1 - t0;
        if dt <= 0.0 {
            continue;
        }
        let vdot = (v1 - v0) / dt;
        if vdot.abs() < 0.15 {
            continue; // coasting tells us nothing about direction
        }
        // Mean phone accel over the interval.
        let mut acc = Vec3::ZERO;
        let mut n = 0usize;
        while raw_idx < raw.len() && raw[raw_idx].t < t1 {
            if raw[raw_idx].t >= t0 {
                acc += raw[raw_idx].accel;
                n += 1;
            }
            raw_idx += 1;
        }
        if n == 0 {
            continue;
        }
        let mean = acc / n as f64;
        // Remove the gravity component, keep the horizontal part, weight
        // by v̇ so braking (negative v̇, backward force) also votes for
        // +forward.
        let horiz = mean - up * mean.dot(up);
        fwd_sum += horiz * vdot;
        excitation += vdot * vdot;
    }
    if excitation < 1.0 {
        return Err(CalibrationError::NoLongitudinalExcitation);
    }
    let fwd_raw = fwd_sum.normalized().ok_or(CalibrationError::NoLongitudinalExcitation)?;
    // Re-orthogonalize against up.
    let fwd = (fwd_raw - up * fwd_raw.dot(up))
        .normalized()
        .ok_or(CalibrationError::NoLongitudinalExcitation)?;
    let left = fwd.cross(up);

    // Columns = vehicle axes in phone coordinates = phone-from-vehicle.
    let phone_from_vehicle = Rot3::from_basis(left, fwd, up);
    Ok(phone_from_vehicle.inverse())
}

/// Rotates raw phone-frame samples into aligned vehicle-frame
/// [`ImuSample`]s using a mount estimate, optionally shifting timestamps
/// by `-t_offset` (the stationary preamble length) so they land on the
/// trip clock.
pub fn apply_mount(raw: &[RawImuSample], mount: &Rot3, t_offset: f64) -> Vec<ImuSample> {
    raw.iter()
        .filter(|s| s.t >= t_offset)
        .map(|s| {
            let f_v = mount.rotate(s.accel);
            let w_v = mount.rotate(s.gyro);
            ImuSample { t: s.t - t_offset, accel_long: f_v.y, accel_lat: f_v.x, gyro_z: w_v.z }
        })
        .collect()
}

/// Residual misalignment angle (radians) between an estimated mount and
/// the true one — the calibration quality metric.
pub fn misalignment(estimated: &Rot3, truth: &Rot3) -> f64 {
    (estimated.inverse() * *truth).angle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseSpec;
    use crate::raw::{simulate_raw_imu, RawImuConfig};
    use gradest_geo::generate::straight_road;
    use gradest_geo::Route;
    use gradest_math::GRAVITY;
    use gradest_sim::driver::DriverProfile;
    use gradest_sim::trip::{simulate_trip, Trajectory, TripConfig};

    fn wandering_traj(seed: u64) -> Trajectory {
        // Strong speed wander => plenty of longitudinal excitation.
        let route = Route::new(vec![straight_road(2500.0, 2.0)]).unwrap();
        let cfg = TripConfig {
            driver: DriverProfile {
                lane_change_rate_per_km: 0.0,
                wander_amp_mps: 2.5,
                wander_period_s: 25.0,
                ..Default::default()
            },
            ..Default::default()
        };
        simulate_trip(&route, &cfg, seed)
    }

    /// Speed series on the raw clock (preamble + trip), from ground truth.
    fn speed_series(traj: &Trajectory, preamble: f64) -> Vec<(f64, f64)> {
        let mut out = vec![(0.0, 0.0), (preamble * 0.9, 0.0)];
        out.extend(traj.samples().iter().step_by(5).map(|s| (s.t + preamble, s.speed_mps)));
        out
    }

    #[test]
    fn recovers_a_tilted_mount() {
        let traj = wandering_traj(5);
        let mount = Rot3::from_euler(0.6, 0.25, -0.35); // a phone tossed on the seat
        let cfg = RawImuConfig { mount, ..Default::default() };
        let raw = simulate_raw_imu(&traj, &cfg, 5);
        let speeds = speed_series(&traj, cfg.stationary_s);
        let est = estimate_mount(&raw, &speeds).expect("calibration succeeds");
        let err = misalignment(&est, &mount);
        assert!(err < 0.05, "misalignment {:.2}°", err.to_degrees());
    }

    #[test]
    fn identity_mount_estimates_near_identity() {
        let traj = wandering_traj(6);
        let cfg = RawImuConfig::default();
        let raw = simulate_raw_imu(&traj, &cfg, 6);
        let speeds = speed_series(&traj, cfg.stationary_s);
        let est = estimate_mount(&raw, &speeds).unwrap();
        assert!(est.angle() < 0.05, "estimated {:.2}°", est.angle().to_degrees());
    }

    #[test]
    fn aligned_output_matches_reference_frame() {
        let traj = wandering_traj(7);
        let mount = Rot3::from_euler(-0.4, 0.2, 0.3);
        let cfg = RawImuConfig {
            mount,
            accel_noise: NoiseSpec::CLEAN,
            gyro_noise: NoiseSpec::CLEAN,
            ..Default::default()
        };
        let raw = simulate_raw_imu(&traj, &cfg, 7);
        let speeds = speed_series(&traj, cfg.stationary_s);
        let est = estimate_mount(&raw, &speeds).unwrap();
        let aligned = apply_mount(&raw, &est, cfg.stationary_s);
        // Mean aligned longitudinal specific force over the cruise ≈
        // g·sin(2°) (constant-gradient road, wander averages out).
        let n = aligned.len();
        let mid = &aligned[n / 4..3 * n / 4];
        let mean = mid.iter().map(|s| s.accel_long).sum::<f64>() / mid.len() as f64;
        let expect = GRAVITY * 2.0f64.to_radians().sin();
        assert!((mean - expect).abs() < 0.06, "mean {mean} expect {expect}");
        // Timestamps shifted onto the trip clock.
        assert!(aligned[0].t >= 0.0 && aligned[0].t < 0.1);
    }

    #[test]
    fn errors_without_stationary_data() {
        let traj = wandering_traj(8);
        let cfg = RawImuConfig { stationary_s: 0.0, ..Default::default() };
        let raw = simulate_raw_imu(&traj, &cfg, 8);
        // Speed series says "always moving".
        let speeds: Vec<(f64, f64)> =
            traj.samples().iter().step_by(5).map(|s| (s.t, s.speed_mps.max(1.0))).collect();
        assert_eq!(
            estimate_mount(&raw, &speeds).unwrap_err(),
            CalibrationError::NoStationaryPeriod
        );
    }

    #[test]
    fn errors_on_insufficient_data() {
        assert_eq!(estimate_mount(&[], &[]).unwrap_err(), CalibrationError::InsufficientData);
    }

    #[test]
    fn misalignment_metric_basics() {
        let a = Rot3::from_euler(0.1, 0.0, 0.0);
        assert!(misalignment(&a, &a) < 1e-9);
        let b = Rot3::from_euler(0.1 + 0.05, 0.0, 0.0);
        assert!((misalignment(&a, &b) - 0.05).abs() < 1e-9);
    }
}

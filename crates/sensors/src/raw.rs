//! Raw (unaligned) phone IMU simulation.
//!
//! The main [`crate::suite::SensorSuite`] emits IMU samples already in the
//! aligned frame of Section III-A. Real phones are mounted at an arbitrary
//! orientation; this module emits the full 3-axis specific force and
//! angular rate **in the phone's own frame**, for the
//! [`crate::calibration`] module to align — reproducing the compensation
//! method the paper cites as \[14\].
//!
//! Vehicle frame convention: `X` left, `Y` forward, `Z` up (right-handed).
//! The specific force in the vehicle frame on a gradient θ is
//! `(v·ω_z, v̇ + g·sinθ, g·cosθ)`; the phone measures it rotated by the
//! inverse mount rotation.

use crate::noise::{NoiseChannel, NoiseSpec};
use gradest_math::{Rot3, Vec3, GRAVITY};
use gradest_sim::Trajectory;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One raw IMU sample in the phone frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawImuSample {
    /// Time since recording start (includes the stationary preamble),
    /// seconds.
    pub t: f64,
    /// Specific force, phone frame, m/s².
    pub accel: Vec3,
    /// Angular rate, phone frame, rad/s.
    pub gyro: Vec3,
}

/// Configuration of the raw IMU simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawImuConfig {
    /// Sample rate, Hz.
    pub rate_hz: f64,
    /// Per-axis accelerometer noise.
    pub accel_noise: NoiseSpec,
    /// Per-axis gyro noise.
    pub gyro_noise: NoiseSpec,
    /// Mount rotation: vehicle-from-phone (`f_vehicle = R · f_phone`).
    pub mount: Rot3,
    /// Seconds of parked (stationary) data prepended to the trip — what
    /// the calibration uses to find gravity.
    pub stationary_s: f64,
}

impl Default for RawImuConfig {
    fn default() -> Self {
        RawImuConfig {
            rate_hz: 50.0,
            accel_noise: NoiseSpec {
                white_sd: 0.06,
                bias_walk_sd: 0.004,
                bias_init_sd: 0.03,
                quantization: 0.0,
                scale: 1.0,
            },
            gyro_noise: NoiseSpec {
                white_sd: 0.004,
                bias_walk_sd: 2e-4,
                bias_init_sd: 0.002,
                quantization: 0.0,
                scale: 1.0,
            },
            mount: Rot3::IDENTITY,
            stationary_s: 5.0,
        }
    }
}

/// Simulates the raw phone IMU over a trip, deterministic in `seed`.
/// Timestamps are shifted by `stationary_s` so that the trip's `t = 0`
/// corresponds to raw-time `stationary_s` (helpers on the output handle
/// the conversion).
pub fn simulate_raw_imu(traj: &Trajectory, cfg: &RawImuConfig, seed: u64) -> Vec<RawImuSample> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5E55ED);
    let ch = |spec: NoiseSpec, rng: &mut StdRng| NoiseChannel::new(spec, rng);
    let mut ax = ch(cfg.accel_noise, &mut rng);
    let mut ay = ch(cfg.accel_noise, &mut rng);
    let mut az = ch(cfg.accel_noise, &mut rng);
    let mut gx = ch(cfg.gyro_noise, &mut rng);
    let mut gy = ch(cfg.gyro_noise, &mut rng);
    let mut gz = ch(cfg.gyro_noise, &mut rng);

    let dt = 1.0 / cfg.rate_hz;
    let phone_from_vehicle = cfg.mount.inverse();
    let mut out = Vec::new();
    let emit = |t: f64,
                f_v: Vec3,
                w_v: Vec3,
                ax: &mut NoiseChannel,
                ay: &mut NoiseChannel,
                az: &mut NoiseChannel,
                gx: &mut NoiseChannel,
                gy: &mut NoiseChannel,
                gz: &mut NoiseChannel,
                rng: &mut StdRng| {
        let f_p = phone_from_vehicle.rotate(f_v);
        let w_p = phone_from_vehicle.rotate(w_v);
        RawImuSample {
            t,
            accel: Vec3::new(
                ax.corrupt(f_p.x, dt, rng),
                ay.corrupt(f_p.y, dt, rng),
                az.corrupt(f_p.z, dt, rng),
            ),
            gyro: Vec3::new(
                gx.corrupt(w_p.x, dt, rng),
                gy.corrupt(w_p.y, dt, rng),
                gz.corrupt(w_p.z, dt, rng),
            ),
        }
    };

    // Stationary preamble: the phone is calibrated parked on level
    // ground (a parking lot), so the resting specific force is pure
    // vehicle-up gravity. Calibrating while parked on a slope would fold
    // that slope's pitch into the mount estimate and cancel the very
    // gravity leak the estimator needs.
    let f_rest = Vec3::new(0.0, 0.0, GRAVITY);
    let n_rest = (cfg.stationary_s * cfg.rate_hz) as usize;
    for i in 0..n_rest {
        out.push(emit(
            i as f64 * dt,
            f_rest,
            Vec3::ZERO,
            &mut ax,
            &mut ay,
            &mut az,
            &mut gx,
            &mut gy,
            &mut gz,
            &mut rng,
        ));
    }

    // Driving.
    let mut next_t = 0.0;
    for s in traj.samples() {
        if s.t < next_t {
            continue;
        }
        next_t += dt;
        let f_v = Vec3::new(
            s.speed_mps * s.yaw_rate,
            s.accel_mps2 + GRAVITY * s.theta.sin(),
            GRAVITY * s.theta.cos(),
        );
        let w_v = Vec3::new(0.0, 0.0, s.yaw_rate);
        out.push(emit(
            s.t + cfg.stationary_s,
            f_v,
            w_v,
            &mut ax,
            &mut ay,
            &mut az,
            &mut gx,
            &mut gy,
            &mut gz,
            &mut rng,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradest_geo::generate::straight_road;
    use gradest_geo::Route;
    use gradest_sim::driver::DriverProfile;
    use gradest_sim::trip::{simulate_trip, TripConfig};

    fn quiet_traj(gradient_deg: f64, seed: u64) -> Trajectory {
        let route = Route::new(vec![straight_road(1200.0, gradient_deg)]).unwrap();
        let cfg = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 0.0, ..Default::default() },
            ..Default::default()
        };
        simulate_trip(&route, &cfg, seed)
    }

    #[test]
    fn identity_mount_measures_vehicle_frame() {
        let traj = quiet_traj(3.0, 1);
        let cfg = RawImuConfig {
            accel_noise: NoiseSpec::CLEAN,
            gyro_noise: NoiseSpec::CLEAN,
            ..Default::default()
        };
        let raw = simulate_raw_imu(&traj, &cfg, 1);
        // Stationary preamble (level parking lot): accel ≈ (0, 0, g).
        let first = raw[10];
        assert!(first.accel.x.abs() < 1e-9);
        assert!(first.accel.y.abs() < 1e-9);
        assert!((first.accel.z - GRAVITY).abs() < 1e-9);
        assert!(first.gyro.norm() < 1e-12);
        // Driving portion: z-axis still carries ≈ g.
        let later = raw[raw.len() / 2];
        assert!((later.accel.z - GRAVITY).abs() < 0.1);
    }

    #[test]
    fn mount_rotation_moves_gravity_between_axes() {
        let traj = quiet_traj(0.0, 2);
        // Phone rolled 90°: gravity shows on the phone's x-axis
        // (vehicle-up maps from phone frame through the mount).
        let mount = Rot3::about_y(std::f64::consts::FRAC_PI_2);
        let cfg = RawImuConfig {
            accel_noise: NoiseSpec::CLEAN,
            gyro_noise: NoiseSpec::CLEAN,
            mount,
            ..Default::default()
        };
        let raw = simulate_raw_imu(&traj, &cfg, 2);
        let rest = raw[10];
        // f_p = R⁻¹·(0,0,g): about_y(π/2) inverse maps z→... check the
        // magnitude moved off the z-axis entirely.
        assert!(rest.accel.z.abs() < 1e-6, "{:?}", rest.accel);
        assert!((rest.accel.norm() - GRAVITY).abs() < 1e-6);
    }

    #[test]
    fn sample_rate_and_preamble() {
        let traj = quiet_traj(1.0, 3);
        let cfg = RawImuConfig::default();
        let raw = simulate_raw_imu(&traj, &cfg, 3);
        let expected = (cfg.stationary_s + traj.duration_s()) * cfg.rate_hz;
        assert!((raw.len() as f64 - expected).abs() < 10.0);
        // Timestamps strictly increase.
        for w in raw.windows(2) {
            assert!(w[1].t > w[0].t);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let traj = quiet_traj(1.0, 4);
        let cfg = RawImuConfig::default();
        let a = simulate_raw_imu(&traj, &cfg, 9);
        let b = simulate_raw_imu(&traj, &cfg, 9);
        assert_eq!(a[100], b[100]);
        let c = simulate_raw_imu(&traj, &cfg, 10);
        assert_ne!(a[100], c[100]);
    }
}

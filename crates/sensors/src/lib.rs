//! # gradest-sensors
//!
//! Smartphone (and CAN-bus) sensor models plus the paper's Section III-A
//! smartphone coordinate alignment system.
//!
//! The paper's pipeline consumes, from a phone riding in the vehicle:
//!
//! * accelerometer — longitudinal specific force. On a gradient the phone
//!   (pitched with the vehicle) measures `a_meas = v̇ + g·sinθ`, which is
//!   precisely what makes θ observable from velocity deviations;
//! * angular-velocity sensor (gyroscope z) — vehicle yaw rate
//!   `ŵ_vehicle`;
//! * GPS — 1 Hz position/speed/heading, with urban outages;
//! * "speedometer" — an app-level vehicle speed source;
//! * CAN-bus — wheel speed over Bluetooth OBD;
//! * barometer — altitude, notoriously poor (metre-level noise + drift,
//!   Section III-C1), used by the altitude-EKF baseline.
//!
//! [`suite::SensorSuite`] runs all of them over a ground-truth
//! [`gradest_sim::Trajectory`] and produces a timestamped [`suite::SensorLog`].
//! [`alignment`] converts gyro yaw rate into steering rate
//! (`w_steer = ŵ_vehicle − w_road`) via map-matched road geometry.
//!
//! # Example
//!
//! ```
//! use gradest_geo::generate::red_road;
//! use gradest_geo::Route;
//! use gradest_sim::trip::{simulate_trip, TripConfig};
//! use gradest_sensors::suite::{SensorConfig, SensorSuite};
//!
//! let route = Route::new(vec![red_road()]).unwrap();
//! let traj = simulate_trip(&route, &TripConfig::default(), 1);
//! let log = SensorSuite::new(SensorConfig::default()).run(&traj, 1);
//! assert!(!log.imu.is_empty());
//! assert!(!log.gps.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod calibration;
pub mod columnar;
pub mod noise;
pub mod raw;
pub mod samples;
pub mod suite;

pub use alignment::{
    steering_rate_profile, steering_rate_profile_into, MapMatcher, NetworkMatcher, PhoneMount,
    TripMatch, WRoadScratch,
};
pub use calibration::{apply_mount, estimate_mount, CalibrationError};
pub use columnar::ImuColumns;
pub use raw::{simulate_raw_imu, RawImuConfig, RawImuSample};
pub use samples::{BaroSample, GpsSample, ImuSample, SpeedSample};
pub use suite::{SensorConfig, SensorLog, SensorSuite};

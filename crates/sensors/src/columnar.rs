//! Columnar (structure-of-arrays) views over sensor logs.
//!
//! The hot per-trip loops — steering-profile construction, LOWESS
//! smoothing, and the EKF predict sweep — touch one field of every
//! [`ImuSample`] per pass. Iterating the array-of-structs layout drags
//! the other three fields through cache on every access; these columns
//! transpose the log once so each loop reads a contiguous `&[f64]`.
//!
//! The buffers are reusable: [`ImuColumns::fill_from`] clears and
//! refills without reallocating once grown, so a warm estimator
//! columnarizes every trip allocation-free.

use crate::samples::ImuSample;
use serde::{Deserialize, Serialize};

/// Columnar copy of an IMU stream: one contiguous slice per field.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImuColumns {
    /// Sample times, seconds.
    pub t: Vec<f64>,
    /// Longitudinal specific force, m/s².
    pub accel_long: Vec<f64>,
    /// Lateral specific force, m/s².
    pub accel_lat: Vec<f64>,
    /// Yaw rate, rad/s.
    pub gyro_z: Vec<f64>,
}

impl ImuColumns {
    /// Creates empty columns (buffers grow on first fill).
    pub fn new() -> Self {
        ImuColumns::default()
    }

    /// Transposes `samples` into the columns, reusing the buffers.
    pub fn fill_from(&mut self, samples: &[ImuSample]) {
        self.t.clear();
        self.accel_long.clear();
        self.accel_lat.clear();
        self.gyro_z.clear();
        self.t.extend(samples.iter().map(|s| s.t));
        self.accel_long.extend(samples.iter().map(|s| s.accel_long));
        self.accel_lat.extend(samples.iter().map(|s| s.accel_lat));
        self.gyro_z.extend(samples.iter().map(|s| s.gyro_z));
    }

    /// Builds columns from a sample slice (allocating convenience).
    pub fn from_samples(samples: &[ImuSample]) -> Self {
        let mut c = ImuColumns::new();
        c.fill_from(samples);
        c
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ImuSample> {
        (0..5)
            .map(|i| ImuSample {
                t: i as f64 * 0.02,
                accel_long: i as f64,
                accel_lat: -(i as f64),
                gyro_z: i as f64 * 0.1,
            })
            .collect()
    }

    #[test]
    fn fill_transposes_every_field() {
        let s = samples();
        let c = ImuColumns::from_samples(&s);
        assert_eq!(c.len(), s.len());
        assert!(!c.is_empty());
        for (i, sample) in s.iter().enumerate() {
            assert_eq!(c.t[i], sample.t);
            assert_eq!(c.accel_long[i], sample.accel_long);
            assert_eq!(c.accel_lat[i], sample.accel_lat);
            assert_eq!(c.gyro_z[i], sample.gyro_z);
        }
    }

    #[test]
    fn refill_reuses_buffers() {
        let mut c = ImuColumns::from_samples(&samples());
        let cap = c.t.capacity();
        c.fill_from(&samples()[..3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.t.capacity(), cap);
        c.fill_from(&[]);
        assert!(c.is_empty());
    }
}

//! The smartphone coordinate alignment system (paper Section III-A).
//!
//! The phone frame `X_B Y_B Z_B` is aligned with the road frame
//! `X_E Y_E Z_E`: face-up, `Y_B` along the driving direction. The
//! angular-velocity sensor then measures the vehicle direction change rate
//! `ŵ_vehicle`, and the **steering rate** — the signal the lane-change
//! detector needs — is
//!
//! ```text
//! w_steer = ŵ_vehicle − w_road
//! ```
//!
//! where `w_road` is the road-direction change rate obtained from road
//! geography (map geometry at the map-matched GPS position). When no map
//! is available (or GPS is out), `w_road` is unknown and road curvature
//! leaks into the steering profile — which is exactly why the paper needs
//! the Figure 5 displacement test to tell S-curves from lane changes.

use crate::samples::{GpsSample, ImuSample};
use gradest_geo::Route;
use gradest_math::Vec2;
use serde::{Deserialize, Serialize};

/// Residual misalignment between the phone and the vehicle after the
/// calibration of \[14\] (Section III-A); radians.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhoneMount {
    /// Pitch residual (rotation about `X_B`): leaks `g·sin(ε)` into the
    /// longitudinal accelerometer.
    pub pitch_error_rad: f64,
    /// Roll residual (rotation about `Y_B`): leaks gravity into the
    /// lateral axis.
    pub roll_error_rad: f64,
}

impl Default for PhoneMount {
    fn default() -> Self {
        // ~0.1° residuals — what the compensation method of [14] leaves.
        PhoneMount { pitch_error_rad: 0.0017, roll_error_rad: 0.0026 }
    }
}

impl PhoneMount {
    /// A perfectly calibrated mount.
    pub const PERFECT: PhoneMount = PhoneMount { pitch_error_rad: 0.0, roll_error_rad: 0.0 };
}

/// Projects GPS fixes onto a known route (map matching) to recover arc
/// position and road-direction change rate.
#[derive(Debug, Clone)]
pub struct MapMatcher<'a> {
    route: &'a Route,
    last_s: f64,
}

impl<'a> MapMatcher<'a> {
    /// Creates a matcher starting at the route origin.
    pub fn new(route: &'a Route) -> Self {
        MapMatcher { route, last_s: 0.0 }
    }

    /// Matches a planar position to an arc position on the route.
    ///
    /// Searches a forward window around the previous match (vehicles drive
    /// forward; GPS arrives at ≥1 Hz), refining to 1 m resolution.
    pub fn match_s(&mut self, position: Vec2) -> f64 {
        let lo = (self.last_s - 30.0).max(0.0);
        let hi = (self.last_s + 120.0).min(self.route.length());
        // Coarse 5 m scan, then 1 m refinement around the best candidate.
        let mut best_s = lo;
        let mut best_d = f64::INFINITY;
        self.scan_window(position, lo, hi, 5.0, &mut best_s, &mut best_d);
        let lo2 = (best_s - 5.0).max(0.0);
        let hi2 = (best_s + 5.0).min(self.route.length());
        self.scan_window(position, lo2, hi2, 1.0, &mut best_s, &mut best_d);
        self.last_s = best_s;
        best_s
    }

    /// Samples `[lo, hi]` every `step` metres, tracking the closest
    /// candidate. Positions come from an integer step count — an
    /// `s += step` accumulator drifts, and after enough drift the loop
    /// condition can exclude `hi` itself — and the window's far edge is
    /// always sampled.
    fn scan_window(
        &self,
        position: Vec2,
        lo: f64,
        hi: f64,
        step: f64,
        best_s: &mut f64,
        best_d: &mut f64,
    ) {
        let steps = (((hi - lo) / step).floor()).max(0.0) as usize;
        let mut consider = |s: f64| {
            let d = (self.route.point_at(s) - position).norm_squared();
            if d < *best_d {
                *best_d = d;
                *best_s = s;
            }
        };
        for k in 0..=steps {
            consider(lo + k as f64 * step);
        }
        if lo + steps as f64 * step < hi {
            consider(hi);
        }
    }

    /// Road-direction change rate `w_road` (rad/s) for a vehicle at
    /// `position` moving at `speed` m/s: map-matched curvature × speed.
    pub fn w_road(&mut self, position: Vec2, speed: f64) -> f64 {
        let s = self.match_s(position);
        self.route.heading_rate_at(s, 12.0) * speed
    }
}

/// A steering-rate profile at IMU rate: `(t, w_steer)` pairs.
pub type SteeringProfile = Vec<(f64, f64)>;

/// Reusable buffers for [`steering_rate_profile_into`]: per-fix `w_road`
/// staging that survives across trips on a warm estimator.
#[derive(Debug, Clone, Default)]
pub struct WRoadScratch {
    fix_times: Vec<f64>,
    fix_wroad: Vec<f64>,
}

/// Computes the steering rate `w_steer = ŵ_vehicle − w_road` per IMU
/// sample into `out_w`, reading timestamps and yaw rates from columnar
/// slices (see [`crate::columnar::ImuColumns`]).
///
/// Identical arithmetic to [`steering_rate_profile`], but writes into the
/// caller's buffer and stages per-fix state in `scratch`, so a warm caller
/// pays no allocation. `out_w[i]` pairs with `t[i]`.
///
/// # Panics
///
/// Panics if `t` and `gyro_z` differ in length.
pub fn steering_rate_profile_into(
    t: &[f64],
    gyro_z: &[f64],
    gps: &[GpsSample],
    route: Option<&Route>,
    scratch: &mut WRoadScratch,
    out_w: &mut Vec<f64>,
) {
    assert_eq!(t.len(), gyro_z.len(), "column length mismatch");
    // Precompute w_road at each fix time.
    let fix_times = &mut scratch.fix_times;
    let fix_wroad = &mut scratch.fix_wroad;
    fix_times.clear();
    fix_wroad.clear();
    if let Some(route) = route {
        let mut matcher = MapMatcher::new(route);
        let mut last_valid_t = f64::NEG_INFINITY;
        let mut last_w = 0.0;
        for fix in gps {
            let w = if fix.valid {
                last_valid_t = fix.t;
                last_w = matcher.w_road(fix.position, fix.speed_mps);
                last_w
            } else if fix.t - last_valid_t <= 3.0 {
                last_w
            } else {
                0.0
            };
            fix_times.push(fix.t);
            fix_wroad.push(w);
        }
    }
    out_w.clear();
    out_w.reserve(t.len());
    // Hoist the end-clamp values so the per-sample loop needs no
    // `last()` unwrapping: `fix_times`/`fix_wroad` grow in lockstep
    // above, so a nonempty `fix_times` guarantees both ends exist.
    let ends = match (fix_times.last(), fix_wroad.last()) {
        (Some(&lt), Some(&lw)) => Some((fix_times[0], fix_wroad[0], lt, lw)),
        _ => None,
    };
    // Segment sweep over the non-decreasing IMU timestamps: instead of
    // re-deciding clamp-vs-interpolate and re-loading the bracketing fix
    // per sample, emit each region in its own tight loop with the
    // segment endpoints hoisted. Per sample the arithmetic is exactly
    // the cursor-scan form this replaces (same clamp, same per-sample
    // division), so the output is bit-identical — asserted by
    // `segment_sweep_matches_reference`.
    let n = t.len();
    let mut idx = 0usize;
    let Some((first_t, first_w, last_t, last_w)) = ends else {
        // No fixes (or no map): w_road is 0 everywhere.
        out_w.extend(gyro_z.iter().map(|&gz| gz - 0.0));
        return;
    };
    // Head clamp: everything at or before the first fix.
    while idx < n && t[idx] <= first_t {
        out_w.push(gyro_z[idx] - first_w);
        idx += 1;
    }
    // Interior: linearly interpolate w_road between fixes; a zero-order
    // hold would inject sign-flip transients at curve transitions that
    // look like steering bumps.
    let mut cursor = 0usize;
    while idx < n && t[idx] < last_t {
        // `cursor + 1` stays in bounds: the while condition checks it,
        // and `t[idx] < last_t` means the scan stops before the final
        // fix.
        // lint:allow(hot-index) left operand of && proves cursor + 1 < len
        while cursor + 1 < fix_times.len() && fix_times[cursor + 1] <= t[idx] {
            cursor += 1;
        }
        let t0 = fix_times[cursor];
        let t1 = fix_times[cursor + 1]; // lint:allow(hot-index) the scan above leaves cursor + 1 <= len - 1
        let w0 = fix_wroad[cursor];
        let w1 = fix_wroad[cursor + 1]; // lint:allow(hot-index) fix_wroad grows in lockstep with fix_times
                                        // After the scan, t1 > t[idx] (the final fix time is last_t),
                                        // so this inner loop always advances — no livelock.
        while idx < n && t[idx] < last_t && t[idx] < t1 {
            let u = ((t[idx] - t0) / (t1 - t0)).clamp(0.0, 1.0);
            out_w.push(gyro_z[idx] - (w0 * (1.0 - u) + w1 * u));
            idx += 1;
        }
    }
    // Tail clamp: everything at or after the last fix.
    while idx < n {
        out_w.push(gyro_z[idx] - last_w);
        idx += 1;
    }
}

/// Computes the steering-rate profile `w_steer = ŵ_vehicle − w_road`.
///
/// `route` is the map used to derive `w_road`: between valid GPS fixes the
/// last map-matched `w_road` is held; while GPS is invalid it is held for
/// up to 3 s and then decays to 0 (the road geometry is unknown). Pass
/// `None` to model an unmapped road — `w_road` is then 0 everywhere and
/// road curvature appears in the steering profile (the paper's S-curve
/// confusion case).
///
/// Allocating convenience wrapper over [`steering_rate_profile_into`].
pub fn steering_rate_profile(
    imu: &[ImuSample],
    gps: &[GpsSample],
    route: Option<&Route>,
) -> SteeringProfile {
    let t: Vec<f64> = imu.iter().map(|s| s.t).collect();
    let gyro_z: Vec<f64> = imu.iter().map(|s| s.gyro_z).collect();
    let mut scratch = WRoadScratch::default();
    let mut w = Vec::new();
    steering_rate_profile_into(&t, &gyro_z, gps, route, &mut scratch, &mut w);
    t.into_iter().zip(w).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{SensorConfig, SensorSuite};
    use gradest_geo::generate::{s_curve_road, straight_road, two_lane_straight};
    use gradest_sim::driver::DriverProfile;
    use gradest_sim::trip::{simulate_trip, TripConfig};

    fn quiet_cfg() -> TripConfig {
        TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 0.0, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn map_matcher_tracks_progress() {
        let route = Route::new(vec![straight_road(2000.0, 1.0)]).unwrap();
        let mut m = MapMatcher::new(&route);
        for s_true in [0.0, 25.0, 60.0, 110.0, 180.0] {
            let pos = route.point_at(s_true) + Vec2::new(2.0, -1.5); // GPS-ish error
            let s_hat = m.match_s(pos);
            assert!((s_hat - s_true).abs() < 5.0, "{s_hat} vs {s_true}");
        }
    }

    #[test]
    fn map_matcher_handles_curves() {
        let route = Route::new(vec![s_curve_road(100.0, 60.0)]).unwrap();
        let mut m = MapMatcher::new(&route);
        let mut s_true = 0.0;
        while s_true < route.length() {
            let s_hat = m.match_s(route.point_at(s_true));
            assert!((s_hat - s_true).abs() < 3.0, "{s_hat} vs {s_true}");
            s_true += 20.0;
        }
    }

    #[test]
    fn steering_profile_is_flat_on_straight_road() {
        let route = Route::new(vec![straight_road(1500.0, 2.0)]).unwrap();
        let traj = simulate_trip(&route, &quiet_cfg(), 31);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 31);
        let prof = steering_rate_profile(&log.imu, &log.gps, Some(&route));
        let max = prof.iter().map(|(_, w)| w.abs()).fold(0.0f64, f64::max);
        // Only gyro noise remains: well below the paper's δ = 0.1167.
        assert!(max < 0.08, "max |w_steer| = {max}");
    }

    #[test]
    fn steering_profile_cancels_road_curvature_with_map() {
        let route = Route::new(vec![s_curve_road(150.0, 50.0)]).unwrap();
        let traj = simulate_trip(&route, &quiet_cfg(), 32);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 32);
        let with_map = steering_rate_profile(&log.imu, &log.gps, Some(&route));
        let without_map = steering_rate_profile(&log.imu, &log.gps, None);
        let rms = |p: &SteeringProfile| {
            (p.iter().map(|(_, w)| w * w).sum::<f64>() / p.len() as f64).sqrt()
        };
        // Without the map, the S-curve yaw shows up at full strength; with
        // it, most is cancelled (narrow residual transients remain at the
        // curve transitions because w_road updates at GPS rate).
        assert!(
            rms(&without_map) > 1.8 * rms(&with_map),
            "with={} without={}",
            rms(&with_map),
            rms(&without_map)
        );
    }

    #[test]
    fn lane_change_bumps_survive_map_subtraction() {
        let route = Route::new(vec![two_lane_straight(4000.0)]).unwrap();
        let cfg = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 1.0, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &cfg, 33);
        assert!(!traj.events().is_empty());
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 33);
        let prof = steering_rate_profile(&log.imu, &log.gps, Some(&route));
        let ev = traj.events()[0];
        // Peak |w_steer| inside the first maneuver approximates its
        // commanded amplitude.
        let peak_in_event = prof
            .iter()
            .filter(|(t, _)| *t >= ev.start_t && *t <= ev.end_t)
            .map(|(_, w)| w.abs())
            .fold(0.0f64, f64::max);
        assert!(peak_in_event > 0.05, "peak {peak_in_event}");
    }

    #[test]
    fn profile_without_gps_uses_raw_gyro() {
        let route = Route::new(vec![straight_road(800.0, 0.0)]).unwrap();
        let traj = simulate_trip(&route, &quiet_cfg(), 34);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 34);
        let prof = steering_rate_profile(&log.imu, &[], Some(&route));
        for ((t, w), imu) in prof.iter().zip(&log.imu) {
            assert_eq!(*t, imu.t);
            assert_eq!(*w, imu.gyro_z);
        }
    }

    #[test]
    fn columnar_into_matches_wrapper() {
        let route = Route::new(vec![s_curve_road(150.0, 50.0)]).unwrap();
        let traj = simulate_trip(&route, &quiet_cfg(), 35);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 35);
        let prof = steering_rate_profile(&log.imu, &log.gps, Some(&route));
        let cols = crate::columnar::ImuColumns::from_samples(&log.imu);
        let mut scratch = WRoadScratch::default();
        let mut w = Vec::new();
        steering_rate_profile_into(
            &cols.t,
            &cols.gyro_z,
            &log.gps,
            Some(&route),
            &mut scratch,
            &mut w,
        );
        assert_eq!(prof.len(), w.len());
        for ((t, pw), (ct, cw)) in prof.iter().zip(cols.t.iter().zip(&w)) {
            assert_eq!(t, ct);
            assert_eq!(pw, cw);
        }
    }

    /// The per-sample cursor scan the segment sweep replaced, kept as
    /// the test oracle: one clamp-vs-interpolate decision per sample.
    fn reference_profile(t: &[f64], gyro_z: &[f64], gps: &[GpsSample], route: &Route) -> Vec<f64> {
        let mut scratch = WRoadScratch::default();
        let mut sink = Vec::new();
        // Reuse the production fix staging (identical by construction),
        // then replay the original per-sample lookup.
        steering_rate_profile_into(t, gyro_z, gps, Some(route), &mut scratch, &mut sink);
        let (fix_times, fix_wroad) = (&scratch.fix_times, &scratch.fix_wroad);
        let ends = match (fix_times.last(), fix_wroad.last()) {
            (Some(&lt), Some(&lw)) => Some((fix_times[0], fix_wroad[0], lt, lw)),
            _ => None,
        };
        let mut cursor = 0usize;
        let mut out = Vec::with_capacity(t.len());
        for (&ti, &gz) in t.iter().zip(gyro_z) {
            let w_road = match ends {
                None => 0.0,
                Some((first_t, first_w, _, _)) if ti <= first_t => first_w,
                Some((_, _, last_t, last_w)) if ti >= last_t => last_w,
                Some(_) => {
                    while cursor + 1 < fix_times.len() && fix_times[cursor + 1] <= ti {
                        cursor += 1;
                    }
                    let t0 = fix_times[cursor];
                    let t1 = fix_times[cursor + 1];
                    let u = ((ti - t0) / (t1 - t0)).clamp(0.0, 1.0);
                    fix_wroad[cursor] * (1.0 - u) + fix_wroad[cursor + 1] * u
                }
            };
            out.push(gz - w_road);
        }
        out
    }

    #[test]
    fn segment_sweep_matches_reference() {
        // The hoisted three-phase sweep must reproduce the per-sample
        // cursor scan bit for bit, including samples clamped before the
        // first fix and after the last one.
        let route = Route::new(vec![s_curve_road(150.0, 50.0)]).unwrap();
        let traj = simulate_trip(&route, &quiet_cfg(), 36);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 36);
        let cols = crate::columnar::ImuColumns::from_samples(&log.imu);

        let mut scratch = WRoadScratch::default();
        let mut fused = Vec::new();
        let mut check = |gps: &[GpsSample]| {
            steering_rate_profile_into(
                &cols.t,
                &cols.gyro_z,
                gps,
                Some(&route),
                &mut scratch,
                &mut fused,
            );
            let expected = reference_profile(&cols.t, &cols.gyro_z, gps, &route);
            assert_eq!(fused, expected);
        };
        // Full fix sequence.
        check(&log.gps);
        // A truncated fix window forces head and tail clamp regions to
        // cover real samples on both sides.
        let inner: Vec<GpsSample> =
            log.gps.iter().filter(|g| g.t > 30.0 && g.t < 90.0).cloned().collect();
        assert!(!inner.is_empty());
        check(&inner);
        // A single fix degenerates to pure clamping (no interior).
        check(&inner[..1]);
        // No fixes at all: the raw gyro passes through.
        check(&[]);
    }

    #[test]
    fn match_s_reaches_window_far_edge() {
        // A position near the route end must match there even though the
        // search window span is not a multiple of the scan steps.
        let route = Route::new(vec![straight_road(123.7, 0.0)]).unwrap();
        let mut m = MapMatcher::new(&route);
        let end = route.length();
        let s_hat = m.match_s(route.point_at(end));
        assert!((s_hat - end).abs() <= 1.0, "{s_hat} vs {end}");
    }

    #[test]
    fn mount_default_is_small() {
        let m = PhoneMount::default();
        assert!(m.pitch_error_rad.abs() < 0.01);
        assert!(m.roll_error_rad.abs() < 0.01);
        assert_eq!(PhoneMount::PERFECT.pitch_error_rad, 0.0);
    }
}

//! The smartphone coordinate alignment system (paper Section III-A).
//!
//! The phone frame `X_B Y_B Z_B` is aligned with the road frame
//! `X_E Y_E Z_E`: face-up, `Y_B` along the driving direction. The
//! angular-velocity sensor then measures the vehicle direction change rate
//! `ŵ_vehicle`, and the **steering rate** — the signal the lane-change
//! detector needs — is
//!
//! ```text
//! w_steer = ŵ_vehicle − w_road
//! ```
//!
//! where `w_road` is the road-direction change rate obtained from road
//! geography (map geometry at the map-matched GPS position). When no map
//! is available (or GPS is out), `w_road` is unknown and road curvature
//! leaks into the steering profile — which is exactly why the paper needs
//! the Figure 5 displacement test to tell S-curves from lane changes.

use crate::samples::{GpsSample, ImuSample};
use gradest_geo::index::{project_point_segment, NetworkIndex, QueryScratch, SegmentHit};
use gradest_geo::network::RoadNetwork;
use gradest_geo::road::Road;
use gradest_geo::Route;
use gradest_math::Vec2;
use serde::{Deserialize, Serialize};

/// Residual misalignment between the phone and the vehicle after the
/// calibration of \[14\] (Section III-A); radians.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhoneMount {
    /// Pitch residual (rotation about `X_B`): leaks `g·sin(ε)` into the
    /// longitudinal accelerometer.
    pub pitch_error_rad: f64,
    /// Roll residual (rotation about `Y_B`): leaks gravity into the
    /// lateral axis.
    pub roll_error_rad: f64,
}

impl Default for PhoneMount {
    fn default() -> Self {
        // ~0.1° residuals — what the compensation method of [14] leaves.
        PhoneMount { pitch_error_rad: 0.0017, roll_error_rad: 0.0026 }
    }
}

impl PhoneMount {
    /// A perfectly calibrated mount.
    pub const PERFECT: PhoneMount = PhoneMount { pitch_error_rad: 0.0, roll_error_rad: 0.0 };
}

/// Projects GPS fixes onto a known route (map matching) to recover arc
/// position and road-direction change rate.
#[derive(Debug, Clone)]
pub struct MapMatcher<'a> {
    route: &'a Route,
    last_s: f64,
}

/// The best candidate of an exact-projection window walk.
#[derive(Debug, Clone, Copy)]
struct BestMatch {
    /// Squared distance from the query to the candidate point.
    d2: f64,
    /// Route arc length of the candidate.
    s: f64,
    /// Road index the candidate lies on.
    road: usize,
    /// Arc length on that road.
    sr: f64,
}

impl<'a> MapMatcher<'a> {
    /// Creates a matcher starting at the route origin.
    pub fn new(route: &'a Route) -> Self {
        MapMatcher { route, last_s: 0.0 }
    }

    /// Creates a matcher whose search window is already centred at arc
    /// position `s` (clamped to the route), as if the previous fix had
    /// matched there. Lets a caller that persists matcher state across
    /// calls (the online estimator) restore continuity without paying a
    /// throwaway `match_s`.
    pub fn resume(route: &'a Route, s: f64) -> Self {
        MapMatcher { route, last_s: s.clamp(0.0, route.length()) }
    }

    /// Matches a planar position to an arc position on the route.
    ///
    /// Searches a forward window around the previous match (vehicles drive
    /// forward; GPS arrives at ≥1 Hz) using exact closed-form
    /// point-to-segment projection over the centerline segments in the
    /// window — no sampling grid. Agrees with the 5 m/1 m sampled scan it
    /// replaced to within the scan's 1 m quantisation (pinned by
    /// `exact_projection_agrees_with_sampled_scan`).
    pub fn match_s(&mut self, position: Vec2) -> f64 {
        self.match_located(position).0
    }

    /// [`MapMatcher::match_s`] that also reports which road of the route
    /// the match landed on: `(route arc s, road index, arc on that road)`,
    /// following the [`Route::locate`] convention (a boundary hit belongs
    /// to the later road). The caller can then query road attributes
    /// without `locate`'s repeat binary search.
    pub fn match_located(&mut self, position: Vec2) -> (f64, usize, f64) {
        let len = self.route.length();
        let lo = (self.last_s - 30.0).max(0.0);
        let hi = (self.last_s + 120.0).min(len);
        let (start, _) = self.route.locate(lo);
        let mut best = BestMatch {
            d2: f64::INFINITY,
            s: lo,
            road: start,
            sr: lo - self.route.offsets()[start],
        };
        self.project_window(position, lo, hi, &mut best);
        // The sampled scan this replaced refined in a ±5 m window around
        // its coarse best, which can spill up to 5 m past the main
        // window's edges; keep that reach so the contract (and the end-
        // of-route behaviour) is unchanged.
        let lo2 = (best.s - 5.0).max(0.0);
        let hi2 = (best.s + 5.0).min(len);
        if lo2 < lo || hi2 > hi {
            self.project_window(position, lo2, hi2, &mut best);
        }
        self.last_s = best.s;
        let BestMatch { mut road, mut sr, .. } = best;
        // Route::locate assigns an exact boundary hit to the second road.
        let roads = self.route.roads();
        if road + 1 < roads.len() && sr >= roads[road].length() {
            road += 1;
            sr = 0.0;
        }
        (best.s, road, sr)
    }

    /// Exact constrained projection of `position` onto the route span
    /// `[lo, hi]`: walks the roads and centerline segments overlapping
    /// the span (one `locate` binary search to seed the walk), projects
    /// onto each segment in closed form, clamps into the span, and keeps
    /// the closest candidate in `best`.
    fn project_window(&self, position: Vec2, lo: f64, hi: f64, best: &mut BestMatch) {
        let roads = self.route.roads();
        let offsets = self.route.offsets();
        let (start, _) = self.route.locate(lo);
        let mut i = start;
        while i < roads.len() && offsets[i] < hi {
            let base = offsets[i];
            let road = &roads[i];
            let rlo = (lo - base).max(0.0);
            let rhi = (hi - base).min(road.length());
            if rhi >= rlo {
                let line = road.centerline();
                let pts = line.points();
                let cum = line.cumulative_lengths();
                // First segment whose span reaches rlo.
                let mut j = cum.partition_point(|&c| c < rlo);
                j = j.saturating_sub(1);
                while j + 1 < pts.len() && cum[j] <= rhi {
                    let a = pts[j];
                    let b = pts[j + 1]; // lint:allow(hot-index) j + 1 < pts.len() by the loop bound
                    let (t, _) = project_point_segment(position, a, b);
                    let seg_len = cum[j + 1] - cum[j]; // lint:allow(hot-index) cum.len() == pts.len()
                                                       // Clamp the projection into the window (constrained
                                                       // minimisation: the best point may sit on the window
                                                       // edge) and score the clamped point.
                    let s_seg = (cum[j] + t * seg_len).clamp(rlo, rhi);
                    let u = if seg_len > 0.0 {
                        ((s_seg - cum[j]) / seg_len).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let p = a.lerp(b, u);
                    let d2 = (p - position).norm_squared();
                    if d2 < best.d2 {
                        *best = BestMatch { d2, s: base + s_seg, road: i, sr: s_seg };
                    }
                    j += 1;
                }
            }
            i += 1;
        }
    }

    /// Road-direction change rate `w_road` (rad/s) for a vehicle at
    /// `position` moving at `speed` m/s: map-matched curvature × speed.
    /// The match already resolves the road index, so the curvature lookup
    /// skips [`Route::locate`]'s second binary search.
    pub fn w_road(&mut self, position: Vec2, speed: f64) -> f64 {
        let (_, road, sr) = self.match_located(position);
        self.route.heading_rate_located(road, sr, 12.0) * speed
    }
}

/// Result of free-space map matching one trip against a road network:
/// the matched edge sequence and the recovered drivable [`Route`].
#[derive(Debug, Clone)]
pub struct TripMatch {
    /// Distinct network edge indices in visit order.
    pub edges: Vec<usize>,
    /// The recovered route (Dijkstra-stitched through the matched
    /// edges), or `None` when no valid fix matched or the matched edges
    /// cannot be connected.
    pub route: Option<Route>,
    /// Mean snap distance of the matched fixes, metres.
    pub mean_snap_m: f64,
    /// Number of valid fixes that produced a match.
    pub matched_fixes: usize,
}

/// Free-space map matcher: snaps GPS fixes to the nearest edge of a
/// whole [`RoadNetwork`] through its [`NetworkIndex`] (no known route
/// required) and reconstructs a drivable [`Route`] for the trip.
///
/// Per fix this is one exact nearest-segment query (allocation-free on
/// the warm scratch the matcher owns); per trip the matched edge
/// sequence is stitched with Dijkstra legs between the shared nodes of
/// consecutive matched edges.
#[derive(Debug)]
pub struct NetworkMatcher<'a> {
    net: &'a RoadNetwork,
    index: &'a NetworkIndex,
    scratch: QueryScratch,
}

impl<'a> NetworkMatcher<'a> {
    /// Creates a matcher over `net` and its prebuilt index.
    pub fn new(net: &'a RoadNetwork, index: &'a NetworkIndex) -> Self {
        NetworkMatcher { net, index, scratch: QueryScratch::new() }
    }

    /// Exact nearest point on the network to `p` (edge, arc position,
    /// snapped point, distance), or `None` for an empty network.
    pub fn nearest(&mut self, p: Vec2) -> Option<SegmentHit> {
        self.index.nearest_s_on_network(p, &mut self.scratch)
    }

    /// Matches a whole trip: snaps every valid fix, records the edge
    /// visit sequence, and recovers a drivable route through it.
    pub fn match_trip(&mut self, gps: &[GpsSample]) -> TripMatch {
        let mut edges: Vec<usize> = Vec::new();
        let mut first_hit: Option<SegmentHit> = None;
        let mut last_hit: Option<SegmentHit> = None;
        let mut snap_sum = 0.0;
        let mut matched = 0usize;
        for fix in gps.iter().filter(|f| f.valid) {
            let Some(hit) = self.index.nearest_s_on_network(fix.position, &mut self.scratch) else {
                continue;
            };
            snap_sum += hit.dist_m;
            matched += 1;
            if edges.last() != Some(&hit.edge) {
                edges.push(hit.edge);
            }
            if first_hit.is_none() {
                first_hit = Some(hit);
            }
            last_hit = Some(hit);
        }
        let mean_snap_m = if matched > 0 { snap_sum / matched as f64 } else { 0.0 };
        let route = self.recover_route(&edges, first_hit, last_hit);
        TripMatch { edges, route, mean_snap_m, matched_fixes: matched }
    }

    /// Stitches the matched edge sequence into a drivable route: anchor
    /// nodes at the trip ends (the endpoint of the first/last matched
    /// edge nearer the fix), via-nodes wherever consecutive matched
    /// edges share one, Dijkstra legs in between.
    fn recover_route(
        &self,
        edges: &[usize],
        first: Option<SegmentHit>,
        last: Option<SegmentHit>,
    ) -> Option<Route> {
        let (first, last) = (first?, last?);
        let net_edges = self.net.edges();
        let e0 = net_edges.get(first.edge)?;
        let ek = net_edges.get(last.edge)?;
        let n_start = if first.s < e0.road.length() * 0.5 { e0.a } else { e0.b };
        let n_end = if last.s < ek.road.length() * 0.5 { ek.a } else { ek.b };
        let mut waypoints = vec![n_start];
        for w in edges.windows(2) {
            let (ea, eb) = (net_edges.get(w[0])?, net_edges.get(w[1])?);
            let shared = if ea.a == eb.a || ea.a == eb.b {
                Some(ea.a)
            } else if ea.b == eb.a || ea.b == eb.b {
                Some(ea.b)
            } else {
                None
            };
            if let Some(nid) = shared {
                if waypoints.last() != Some(&nid) {
                    waypoints.push(nid);
                }
            }
        }
        if waypoints.last() != Some(&n_end) {
            waypoints.push(n_end);
        }
        let mut roads: Vec<Road> = Vec::new();
        for w in waypoints.windows(2) {
            let hops = self.net.shortest_path(w[0], w[1], |r| r.length())?;
            for (ei, forward) in hops {
                let r = &net_edges.get(ei)?.road;
                roads.push(if forward { r.clone() } else { r.reversed() });
            }
        }
        if roads.is_empty() {
            return None;
        }
        Route::new(roads).ok()
    }
}

/// A steering-rate profile at IMU rate: `(t, w_steer)` pairs.
pub type SteeringProfile = Vec<(f64, f64)>;

/// Reusable buffers for [`steering_rate_profile_into`]: per-fix `w_road`
/// staging that survives across trips on a warm estimator.
#[derive(Debug, Clone, Default)]
pub struct WRoadScratch {
    fix_times: Vec<f64>,
    fix_wroad: Vec<f64>,
}

/// Computes the steering rate `w_steer = ŵ_vehicle − w_road` per IMU
/// sample into `out_w`, reading timestamps and yaw rates from columnar
/// slices (see [`crate::columnar::ImuColumns`]).
///
/// Identical arithmetic to [`steering_rate_profile`], but writes into the
/// caller's buffer and stages per-fix state in `scratch`, so a warm caller
/// pays no allocation. `out_w[i]` pairs with `t[i]`.
///
/// # Panics
///
/// Panics if `t` and `gyro_z` differ in length.
pub fn steering_rate_profile_into(
    t: &[f64],
    gyro_z: &[f64],
    gps: &[GpsSample],
    route: Option<&Route>,
    scratch: &mut WRoadScratch,
    out_w: &mut Vec<f64>,
) {
    assert_eq!(t.len(), gyro_z.len(), "column length mismatch");
    // Precompute w_road at each fix time.
    let fix_times = &mut scratch.fix_times;
    let fix_wroad = &mut scratch.fix_wroad;
    fix_times.clear();
    fix_wroad.clear();
    if let Some(route) = route {
        let mut matcher = MapMatcher::new(route);
        let mut last_valid_t = f64::NEG_INFINITY;
        let mut last_w = 0.0;
        for fix in gps {
            let w = if fix.valid {
                last_valid_t = fix.t;
                last_w = matcher.w_road(fix.position, fix.speed_mps);
                last_w
            } else if fix.t - last_valid_t <= 3.0 {
                last_w
            } else {
                0.0
            };
            fix_times.push(fix.t);
            fix_wroad.push(w);
        }
    }
    out_w.clear();
    out_w.reserve(t.len());
    // Hoist the end-clamp values so the per-sample loop needs no
    // `last()` unwrapping: `fix_times`/`fix_wroad` grow in lockstep
    // above, so a nonempty `fix_times` guarantees both ends exist.
    let ends = match (fix_times.last(), fix_wroad.last()) {
        (Some(&lt), Some(&lw)) => Some((fix_times[0], fix_wroad[0], lt, lw)),
        _ => None,
    };
    // Segment sweep over the non-decreasing IMU timestamps: instead of
    // re-deciding clamp-vs-interpolate and re-loading the bracketing fix
    // per sample, emit each region in its own tight loop with the
    // segment endpoints hoisted. Per sample the arithmetic is exactly
    // the cursor-scan form this replaces (same clamp, same per-sample
    // division), so the output is bit-identical — asserted by
    // `segment_sweep_matches_reference`.
    let n = t.len();
    let mut idx = 0usize;
    let Some((first_t, first_w, last_t, last_w)) = ends else {
        // No fixes (or no map): w_road is 0 everywhere.
        out_w.extend(gyro_z.iter().map(|&gz| gz - 0.0));
        return;
    };
    // Head clamp: everything at or before the first fix.
    while idx < n && t[idx] <= first_t {
        out_w.push(gyro_z[idx] - first_w);
        idx += 1;
    }
    // Interior: linearly interpolate w_road between fixes; a zero-order
    // hold would inject sign-flip transients at curve transitions that
    // look like steering bumps.
    let mut cursor = 0usize;
    while idx < n && t[idx] < last_t {
        // `cursor + 1` stays in bounds: the while condition checks it,
        // and `t[idx] < last_t` means the scan stops before the final
        // fix.
        // lint:allow(hot-index) left operand of && proves cursor + 1 < len
        while cursor + 1 < fix_times.len() && fix_times[cursor + 1] <= t[idx] {
            cursor += 1;
        }
        let t0 = fix_times[cursor];
        let t1 = fix_times[cursor + 1]; // lint:allow(hot-index) the scan above leaves cursor + 1 <= len - 1
        let w0 = fix_wroad[cursor];
        let w1 = fix_wroad[cursor + 1]; // lint:allow(hot-index) fix_wroad grows in lockstep with fix_times
                                        // After the scan, t1 > t[idx] (the final fix time is last_t),
                                        // so this inner loop always advances — no livelock.
        while idx < n && t[idx] < last_t && t[idx] < t1 {
            let u = ((t[idx] - t0) / (t1 - t0)).clamp(0.0, 1.0);
            out_w.push(gyro_z[idx] - (w0 * (1.0 - u) + w1 * u));
            idx += 1;
        }
    }
    // Tail clamp: everything at or after the last fix.
    while idx < n {
        out_w.push(gyro_z[idx] - last_w);
        idx += 1;
    }
}

/// Computes the steering-rate profile `w_steer = ŵ_vehicle − w_road`.
///
/// `route` is the map used to derive `w_road`: between valid GPS fixes the
/// last map-matched `w_road` is held; while GPS is invalid it is held for
/// up to 3 s and then decays to 0 (the road geometry is unknown). Pass
/// `None` to model an unmapped road — `w_road` is then 0 everywhere and
/// road curvature appears in the steering profile (the paper's S-curve
/// confusion case).
///
/// Allocating convenience wrapper over [`steering_rate_profile_into`].
pub fn steering_rate_profile(
    imu: &[ImuSample],
    gps: &[GpsSample],
    route: Option<&Route>,
) -> SteeringProfile {
    let t: Vec<f64> = imu.iter().map(|s| s.t).collect();
    let gyro_z: Vec<f64> = imu.iter().map(|s| s.gyro_z).collect();
    let mut scratch = WRoadScratch::default();
    let mut w = Vec::new();
    steering_rate_profile_into(&t, &gyro_z, gps, route, &mut scratch, &mut w);
    t.into_iter().zip(w).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{SensorConfig, SensorSuite};
    use gradest_geo::generate::{s_curve_road, straight_road, two_lane_straight};
    use gradest_sim::driver::DriverProfile;
    use gradest_sim::trip::{simulate_trip, TripConfig};

    fn quiet_cfg() -> TripConfig {
        TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 0.0, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn map_matcher_tracks_progress() {
        let route = Route::new(vec![straight_road(2000.0, 1.0)]).unwrap();
        let mut m = MapMatcher::new(&route);
        for s_true in [0.0, 25.0, 60.0, 110.0, 180.0] {
            let pos = route.point_at(s_true) + Vec2::new(2.0, -1.5); // GPS-ish error
            let s_hat = m.match_s(pos);
            assert!((s_hat - s_true).abs() < 5.0, "{s_hat} vs {s_true}");
        }
    }

    #[test]
    fn map_matcher_handles_curves() {
        let route = Route::new(vec![s_curve_road(100.0, 60.0)]).unwrap();
        let mut m = MapMatcher::new(&route);
        let mut s_true = 0.0;
        while s_true < route.length() {
            let s_hat = m.match_s(route.point_at(s_true));
            assert!((s_hat - s_true).abs() < 3.0, "{s_hat} vs {s_true}");
            s_true += 20.0;
        }
    }

    #[test]
    fn steering_profile_is_flat_on_straight_road() {
        let route = Route::new(vec![straight_road(1500.0, 2.0)]).unwrap();
        let traj = simulate_trip(&route, &quiet_cfg(), 31);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 31);
        let prof = steering_rate_profile(&log.imu, &log.gps, Some(&route));
        let max = prof.iter().map(|(_, w)| w.abs()).fold(0.0f64, f64::max);
        // Only gyro noise remains: well below the paper's δ = 0.1167.
        assert!(max < 0.08, "max |w_steer| = {max}");
    }

    #[test]
    fn steering_profile_cancels_road_curvature_with_map() {
        let route = Route::new(vec![s_curve_road(150.0, 50.0)]).unwrap();
        let traj = simulate_trip(&route, &quiet_cfg(), 32);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 32);
        let with_map = steering_rate_profile(&log.imu, &log.gps, Some(&route));
        let without_map = steering_rate_profile(&log.imu, &log.gps, None);
        let rms = |p: &SteeringProfile| {
            (p.iter().map(|(_, w)| w * w).sum::<f64>() / p.len() as f64).sqrt()
        };
        // Without the map, the S-curve yaw shows up at full strength; with
        // it, most is cancelled (narrow residual transients remain at the
        // curve transitions because w_road updates at GPS rate).
        assert!(
            rms(&without_map) > 1.8 * rms(&with_map),
            "with={} without={}",
            rms(&with_map),
            rms(&without_map)
        );
    }

    #[test]
    fn lane_change_bumps_survive_map_subtraction() {
        let route = Route::new(vec![two_lane_straight(4000.0)]).unwrap();
        let cfg = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 1.0, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &cfg, 33);
        assert!(!traj.events().is_empty());
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 33);
        let prof = steering_rate_profile(&log.imu, &log.gps, Some(&route));
        let ev = traj.events()[0];
        // Peak |w_steer| inside the first maneuver approximates its
        // commanded amplitude.
        let peak_in_event = prof
            .iter()
            .filter(|(t, _)| *t >= ev.start_t && *t <= ev.end_t)
            .map(|(_, w)| w.abs())
            .fold(0.0f64, f64::max);
        assert!(peak_in_event > 0.05, "peak {peak_in_event}");
    }

    #[test]
    fn profile_without_gps_uses_raw_gyro() {
        let route = Route::new(vec![straight_road(800.0, 0.0)]).unwrap();
        let traj = simulate_trip(&route, &quiet_cfg(), 34);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 34);
        let prof = steering_rate_profile(&log.imu, &[], Some(&route));
        for ((t, w), imu) in prof.iter().zip(&log.imu) {
            assert_eq!(*t, imu.t);
            assert_eq!(*w, imu.gyro_z);
        }
    }

    #[test]
    fn columnar_into_matches_wrapper() {
        let route = Route::new(vec![s_curve_road(150.0, 50.0)]).unwrap();
        let traj = simulate_trip(&route, &quiet_cfg(), 35);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 35);
        let prof = steering_rate_profile(&log.imu, &log.gps, Some(&route));
        let cols = crate::columnar::ImuColumns::from_samples(&log.imu);
        let mut scratch = WRoadScratch::default();
        let mut w = Vec::new();
        steering_rate_profile_into(
            &cols.t,
            &cols.gyro_z,
            &log.gps,
            Some(&route),
            &mut scratch,
            &mut w,
        );
        assert_eq!(prof.len(), w.len());
        for ((t, pw), (ct, cw)) in prof.iter().zip(cols.t.iter().zip(&w)) {
            assert_eq!(t, ct);
            assert_eq!(pw, cw);
        }
    }

    /// The per-sample cursor scan the segment sweep replaced, kept as
    /// the test oracle: one clamp-vs-interpolate decision per sample.
    fn reference_profile(t: &[f64], gyro_z: &[f64], gps: &[GpsSample], route: &Route) -> Vec<f64> {
        let mut scratch = WRoadScratch::default();
        let mut sink = Vec::new();
        // Reuse the production fix staging (identical by construction),
        // then replay the original per-sample lookup.
        steering_rate_profile_into(t, gyro_z, gps, Some(route), &mut scratch, &mut sink);
        let (fix_times, fix_wroad) = (&scratch.fix_times, &scratch.fix_wroad);
        let ends = match (fix_times.last(), fix_wroad.last()) {
            (Some(&lt), Some(&lw)) => Some((fix_times[0], fix_wroad[0], lt, lw)),
            _ => None,
        };
        let mut cursor = 0usize;
        let mut out = Vec::with_capacity(t.len());
        for (&ti, &gz) in t.iter().zip(gyro_z) {
            let w_road = match ends {
                None => 0.0,
                Some((first_t, first_w, _, _)) if ti <= first_t => first_w,
                Some((_, _, last_t, last_w)) if ti >= last_t => last_w,
                Some(_) => {
                    while cursor + 1 < fix_times.len() && fix_times[cursor + 1] <= ti {
                        cursor += 1;
                    }
                    let t0 = fix_times[cursor];
                    let t1 = fix_times[cursor + 1];
                    let u = ((ti - t0) / (t1 - t0)).clamp(0.0, 1.0);
                    fix_wroad[cursor] * (1.0 - u) + fix_wroad[cursor + 1] * u
                }
            };
            out.push(gz - w_road);
        }
        out
    }

    #[test]
    fn segment_sweep_matches_reference() {
        // The hoisted three-phase sweep must reproduce the per-sample
        // cursor scan bit for bit, including samples clamped before the
        // first fix and after the last one.
        let route = Route::new(vec![s_curve_road(150.0, 50.0)]).unwrap();
        let traj = simulate_trip(&route, &quiet_cfg(), 36);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 36);
        let cols = crate::columnar::ImuColumns::from_samples(&log.imu);

        let mut scratch = WRoadScratch::default();
        let mut fused = Vec::new();
        let mut check = |gps: &[GpsSample]| {
            steering_rate_profile_into(
                &cols.t,
                &cols.gyro_z,
                gps,
                Some(&route),
                &mut scratch,
                &mut fused,
            );
            let expected = reference_profile(&cols.t, &cols.gyro_z, gps, &route);
            assert_eq!(fused, expected);
        };
        // Full fix sequence.
        check(&log.gps);
        // A truncated fix window forces head and tail clamp regions to
        // cover real samples on both sides.
        let inner: Vec<GpsSample> =
            log.gps.iter().filter(|g| g.t > 30.0 && g.t < 90.0).cloned().collect();
        assert!(!inner.is_empty());
        check(&inner);
        // A single fix degenerates to pure clamping (no interior).
        check(&inner[..1]);
        // No fixes at all: the raw gyro passes through.
        check(&[]);
    }

    #[test]
    fn match_s_reaches_window_far_edge() {
        // A position near the route end must match there even though the
        // search window span is not a multiple of the scan steps.
        let route = Route::new(vec![straight_road(123.7, 0.0)]).unwrap();
        let mut m = MapMatcher::new(&route);
        let end = route.length();
        let s_hat = m.match_s(route.point_at(end));
        assert!((s_hat - end).abs() <= 1.0, "{s_hat} vs {end}");
    }

    #[test]
    fn mount_default_is_small() {
        let m = PhoneMount::default();
        assert!(m.pitch_error_rad.abs() < 0.01);
        assert!(m.roll_error_rad.abs() < 0.01);
        assert_eq!(PhoneMount::PERFECT.pitch_error_rad, 0.0);
    }

    /// The sampled 5 m/1 m window scan `match_s` used before the exact
    /// projection rewrite, kept verbatim as the A/B oracle.
    struct SampledMatcher<'a> {
        route: &'a Route,
        last_s: f64,
    }

    impl<'a> SampledMatcher<'a> {
        fn new(route: &'a Route) -> Self {
            SampledMatcher { route, last_s: 0.0 }
        }

        fn match_s(&mut self, position: Vec2) -> f64 {
            let lo = (self.last_s - 30.0).max(0.0);
            let hi = (self.last_s + 120.0).min(self.route.length());
            let mut best_s = lo;
            let mut best_d = f64::INFINITY;
            self.scan_window(position, lo, hi, 5.0, &mut best_s, &mut best_d);
            let lo2 = (best_s - 5.0).max(0.0);
            let hi2 = (best_s + 5.0).min(self.route.length());
            self.scan_window(position, lo2, hi2, 1.0, &mut best_s, &mut best_d);
            self.last_s = best_s;
            best_s
        }

        fn scan_window(
            &self,
            position: Vec2,
            lo: f64,
            hi: f64,
            step: f64,
            best_s: &mut f64,
            best_d: &mut f64,
        ) {
            let steps = (((hi - lo) / step).floor()).max(0.0) as usize;
            let mut consider = |s: f64| {
                let d = (self.route.point_at(s) - position).norm_squared();
                if d < *best_d {
                    *best_d = d;
                    *best_s = s;
                }
            };
            for k in 0..=steps {
                consider(lo + k as f64 * step);
            }
            if lo + steps as f64 * step < hi {
                consider(hi);
            }
        }
    }

    /// Tolerance policy (documented in DESIGN.md §12): the old scan
    /// quantises its answer to a 1 m refinement grid, so the exact
    /// projection may differ from it by up to half a grid step plus the
    /// coarse-scan's basin error on curved geometry. 1.0 m bounds both
    /// on every route class the pipeline drives.
    #[test]
    fn exact_projection_agrees_with_sampled_scan() {
        let routes = [
            Route::new(vec![straight_road(2000.0, 1.5)]).unwrap(),
            Route::new(vec![s_curve_road(120.0, 60.0)]).unwrap(),
            Route::new(vec![two_lane_straight(1500.0)]).unwrap(),
        ];
        for route in &routes {
            let traj = simulate_trip(route, &quiet_cfg(), 44);
            let log = SensorSuite::new(SensorConfig::default()).run(&traj, 44);
            let mut exact = MapMatcher::new(route);
            let mut sampled = SampledMatcher::new(route);
            for fix in log.gps.iter().filter(|f| f.valid) {
                let se = exact.match_s(fix.position);
                let ss = sampled.match_s(fix.position);
                assert!((se - ss).abs() <= 1.0, "exact {se} vs sampled {ss} at t={}", fix.t);
            }
        }
    }

    #[test]
    fn exact_projection_beats_sampled_scan_on_truth() {
        // Noise-free positions on a curve: exact projection recovers the
        // true arc position to numerical precision, the sampled scan
        // only to its grid.
        let route = Route::new(vec![s_curve_road(100.0, 60.0)]).unwrap();
        let mut m = MapMatcher::new(&route);
        let mut s_true = 0.0;
        while s_true < route.length() {
            let s_hat = m.match_s(route.point_at(s_true));
            assert!((s_hat - s_true).abs() < 0.51, "{s_hat} vs {s_true}");
            s_true += 20.0;
        }
    }

    #[test]
    fn resume_seeds_the_search_window() {
        let route = Route::new(vec![straight_road(5000.0, 0.0)]).unwrap();
        // A fresh matcher cannot reach s=3000 (window tops out at 120).
        let mut fresh = MapMatcher::new(&route);
        let far = route.point_at(3000.0);
        assert!((fresh.match_s(far) - 3000.0).abs() > 100.0);
        // A resumed matcher starts its window there.
        let mut resumed = MapMatcher::resume(&route, 2990.0);
        assert!((resumed.match_s(far) - 3000.0).abs() < 1e-6);
    }

    #[test]
    fn match_located_agrees_with_route_locate() {
        use gradest_geo::generate::city_network;
        let net = city_network(9);
        let route = net.route_between(0, 35, |r| r.length()).unwrap();
        let mut m = MapMatcher::new(&route);
        let mut s_true = 0.0;
        while s_true < route.length() {
            let (s_hat, road, sr) = m.match_located(route.point_at(s_true));
            let (road_ref, sr_ref) = route.locate(s_hat);
            assert_eq!(road, road_ref, "at s={s_true}");
            assert!((sr - sr_ref).abs() < 1e-9, "at s={s_true}: {sr} vs {sr_ref}");
            s_true += 37.0;
        }
    }

    #[test]
    fn w_road_matches_unfused_lookup() {
        let route = Route::new(vec![s_curve_road(150.0, 50.0)]).unwrap();
        let mut a = MapMatcher::new(&route);
        let mut b = MapMatcher::new(&route);
        let mut s = 0.0;
        while s < route.length() {
            let pos = route.point_at(s) + Vec2::new(1.0, -0.5);
            let w = a.w_road(pos, 13.0);
            let s_hat = b.match_s(pos);
            let w_ref = route.heading_rate_at(s_hat, 12.0) * 13.0;
            assert!((w - w_ref).abs() < 1e-12, "at s={s}: {w} vs {w_ref}");
            s += 25.0;
        }
    }

    #[test]
    fn network_matcher_recovers_trip_route() {
        use gradest_geo::generate::city_network;
        use gradest_geo::index::NetworkIndex;
        let net = city_network(21);
        let index = NetworkIndex::build(&net);
        let original = net.route_between(3, 77, |r| r.length()).unwrap();
        // Fixes every ~20 m along the route with a small lateral error.
        let mut gps = Vec::new();
        let mut s = 0.0;
        let mut k = 0u32;
        while s <= original.length() {
            let off = if k.is_multiple_of(2) { 2.0 } else { -1.5 };
            gps.push(GpsSample {
                t: k as f64,
                position: original.point_at(s) + Vec2::new(off, off * 0.5),
                speed_mps: 20.0,
                heading: 0.0,
                valid: true,
            });
            s += 20.0;
            k += 1;
        }
        let mut matcher = NetworkMatcher::new(&net, &index);
        let m = matcher.match_trip(&gps);
        assert!(m.matched_fixes > 0);
        assert!(m.mean_snap_m < 10.0, "mean snap {}", m.mean_snap_m);
        assert!(!m.edges.is_empty());
        let recovered = m.route.expect("route recovered");
        let ratio = recovered.length() / original.length();
        assert!(
            (0.8..1.25).contains(&ratio),
            "recovered {} m vs original {} m",
            recovered.length(),
            original.length()
        );
    }

    #[test]
    fn network_matcher_handles_empty_and_invalid_input() {
        use gradest_geo::generate::city_network;
        use gradest_geo::index::NetworkIndex;
        let net = city_network(21);
        let index = NetworkIndex::build(&net);
        let mut matcher = NetworkMatcher::new(&net, &index);
        let m = matcher.match_trip(&[]);
        assert_eq!(m.matched_fixes, 0);
        assert!(m.route.is_none());
        let invalid =
            GpsSample { t: 0.0, position: Vec2::ZERO, speed_mps: 0.0, heading: 0.0, valid: false };
        let m = matcher.match_trip(&[invalid]);
        assert_eq!(m.matched_fixes, 0);
        assert!(m.route.is_none());
    }
}

//! Composable sensor-noise models.
//!
//! Every smartphone sensor in the paper suffers "measuring noise and drift
//! noise"; we model those as white Gaussian noise plus a bias random walk,
//! with optional output quantization.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Draws a standard-normal sample via Box–Muller.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Static description of a sensor channel's error behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseSpec {
    /// White (measuring) noise standard deviation, in output units.
    pub white_sd: f64,
    /// Bias random-walk intensity, output units per √second
    /// (the paper's "drift noise").
    pub bias_walk_sd: f64,
    /// Standard deviation of the initial bias, output units.
    pub bias_init_sd: f64,
    /// Output quantization step (0 = none).
    pub quantization: f64,
    /// Constant multiplicative scale error (1.0 = perfect scale).
    pub scale: f64,
}

impl NoiseSpec {
    /// A perfectly clean channel.
    pub const CLEAN: NoiseSpec = NoiseSpec {
        white_sd: 0.0,
        bias_walk_sd: 0.0,
        bias_init_sd: 0.0,
        quantization: 0.0,
        scale: 1.0,
    };

    /// White-noise-only channel.
    pub fn white(sd: f64) -> Self {
        NoiseSpec { white_sd: sd, ..NoiseSpec::CLEAN }
    }
}

/// Stateful noise channel instantiated from a [`NoiseSpec`].
#[derive(Debug, Clone)]
pub struct NoiseChannel {
    spec: NoiseSpec,
    bias: f64,
}

impl NoiseChannel {
    /// Instantiates a channel, drawing its initial bias from `rng`.
    pub fn new(spec: NoiseSpec, rng: &mut StdRng) -> Self {
        let bias = spec.bias_init_sd * gaussian(rng);
        NoiseChannel { spec, bias }
    }

    /// Corrupts a true value measured after `dt` seconds since the last
    /// sample: advances the bias walk, applies scale error, adds bias and
    /// white noise, then quantizes.
    pub fn corrupt(&mut self, truth: f64, dt: f64, rng: &mut StdRng) -> f64 {
        if self.spec.bias_walk_sd > 0.0 && dt > 0.0 {
            self.bias += self.spec.bias_walk_sd * dt.sqrt() * gaussian(rng);
        }
        let mut v = truth * self.spec.scale + self.bias + self.spec.white_sd * gaussian(rng);
        if self.spec.quantization > 0.0 {
            v = (v / self.spec.quantization).round() * self.spec.quantization;
        }
        v
    }

    /// Current bias (for tests and diagnostics).
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn clean_channel_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ch = NoiseChannel::new(NoiseSpec::CLEAN, &mut rng);
        for &v in &[0.0, 1.5, -3.25] {
            assert_eq!(ch.corrupt(v, 0.1, &mut rng), v);
        }
    }

    #[test]
    fn white_noise_statistics() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ch = NoiseChannel::new(NoiseSpec::white(0.5), &mut rng);
        let n = 10_000;
        let errs: Vec<f64> = (0..n).map(|_| ch.corrupt(10.0, 0.1, &mut rng) - 10.0).collect();
        let sd = (errs.iter().map(|e| e * e).sum::<f64>() / n as f64).sqrt();
        assert!((sd - 0.5).abs() < 0.03, "sd {sd}");
    }

    #[test]
    fn bias_walk_accumulates() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = NoiseSpec { bias_walk_sd: 0.1, ..NoiseSpec::CLEAN };
        let mut ch = NoiseChannel::new(spec, &mut rng);
        // After 1000 s of walking, the bias magnitude should typically be
        // on the order of 0.1·√1000 ≈ 3.2 — i.e., visibly nonzero.
        for _ in 0..10_000 {
            let _ = ch.corrupt(0.0, 0.1, &mut rng);
        }
        assert!(ch.bias().abs() > 0.05, "bias {}", ch.bias());
    }

    #[test]
    fn quantization_rounds_to_grid() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = NoiseSpec { quantization: 0.25, ..NoiseSpec::CLEAN };
        let mut ch = NoiseChannel::new(spec, &mut rng);
        assert_eq!(ch.corrupt(1.1, 0.1, &mut rng), 1.0);
        assert_eq!(ch.corrupt(1.13, 0.1, &mut rng), 1.25);
    }

    #[test]
    fn scale_error_multiplies() {
        let mut rng = StdRng::seed_from_u64(6);
        let spec = NoiseSpec { scale: 1.02, ..NoiseSpec::CLEAN };
        let mut ch = NoiseChannel::new(spec, &mut rng);
        assert!((ch.corrupt(10.0, 0.1, &mut rng) - 10.2).abs() < 1e-12);
    }

    #[test]
    fn initial_bias_is_seeded() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let spec = NoiseSpec { bias_init_sd: 0.3, ..NoiseSpec::CLEAN };
        let a = NoiseChannel::new(spec, &mut rng1);
        let b = NoiseChannel::new(spec, &mut rng2);
        assert_eq!(a.bias(), b.bias());
        assert_ne!(a.bias(), 0.0);
    }
}

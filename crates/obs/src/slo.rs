//! Declarative service-level objectives over the live time-series ring.
//!
//! An [`SloSpec`] names an objective ("99% of frames answer within
//! 50 ms"), how to measure its error ratio from a
//! [`crate::timeseries::TimeSeries`] ([`SloKind`]), and when to escalate.
//! Escalation uses the standard multi-window burn-rate scheme: the
//! error ratio is normalised by the error budget `1 − target` into a
//! *burn rate* (1 = exactly consuming budget at the sustainable pace),
//! and an alert fires only when **both** a short and a long lookback
//! burn hot — the short window makes alerts reset quickly once the
//! problem stops, the long window keeps one bad scrape from paging.
//!
//! Everything is hand-rolled over the ring's counters and sketches —
//! no external SLO machinery — and evaluation allocates only the
//! report vector (query path, never the record path).

use crate::metrics::{Counter, Span};
use crate::timeseries::TimeSeries;

/// How one objective's error ratio is measured from the ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Ratio of `bad` events to `bad + good` events (availability-style
    /// objectives). No traffic means no errors.
    EventRatio {
        /// Counter of budget-consuming events.
        bad: Counter,
        /// Counter of in-objective events.
        good: Counter,
    },
    /// Fraction of a span's durations above `bound_ns`
    /// (latency-style objectives: "target of frames finish within
    /// bound"). Subject to the sketch's relative error at the bound.
    SpanLatency {
        /// The timed region the objective covers.
        span: Span,
        /// The latency bound, nanoseconds.
        bound_ns: f64,
    },
}

/// One declarative objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Stable identifier (STATUS JSON key).
    pub name: &'static str,
    /// How the error ratio is measured.
    pub kind: SloKind,
    /// Target good fraction in `(0, 1)`, e.g. `0.99`.
    pub target: f64,
    /// Short lookback, windows (fast alert reset).
    pub short_windows: usize,
    /// Long lookback, windows (flake suppression).
    pub long_windows: usize,
    /// Burn rate at which both lookbacks must run to `Warn`.
    pub warn_burn: f64,
    /// Burn rate at which both lookbacks must run to `Page`.
    pub page_burn: f64,
}

/// Escalation state of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloState {
    /// Burn rates below the warn threshold.
    Healthy,
    /// Budget burning faster than sustainable, not yet page-worthy.
    Warn,
    /// Budget burning fast enough to exhaust well inside the window.
    Page,
}

impl SloState {
    /// Stable lowercase name (STATUS JSON value).
    pub fn name(self) -> &'static str {
        match self {
            SloState::Healthy => "healthy",
            SloState::Warn => "warn",
            SloState::Page => "page",
        }
    }
}

/// One objective's evaluated state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloReport {
    /// The spec's name.
    pub name: &'static str,
    /// Escalation state.
    pub state: SloState,
    /// The spec's target good fraction.
    pub target: f64,
    /// Error ratio over the short lookback.
    pub error_short: f64,
    /// Error ratio over the long lookback.
    pub error_long: f64,
    /// Burn rate over the short lookback.
    pub burn_short: f64,
    /// Burn rate over the long lookback.
    pub burn_long: f64,
}

/// An ordered set of objectives evaluated together.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTable {
    specs: Vec<SloSpec>,
}

impl SloTable {
    /// A table of the given objectives (order is report order).
    pub fn new(specs: Vec<SloSpec>) -> Self {
        SloTable { specs }
    }

    /// The default `gradest-serve` objectives, with lookbacks in units
    /// of ring windows (tune them to the configured window width):
    /// frame availability (99% of decoded frames answered without a
    /// typed error), frame latency (99% within `frame_bound_ns`), and
    /// admission (95% of frames not shed with BUSY).
    pub fn service_default(frame_bound_ns: f64, short_windows: usize, long_windows: usize) -> Self {
        let short_windows = short_windows.max(1);
        let long_windows = long_windows.max(short_windows);
        SloTable::new(vec![
            SloSpec {
                name: "frame-availability",
                kind: SloKind::EventRatio {
                    bad: Counter::ServiceFramesRejected,
                    good: Counter::ServiceFramesOk,
                },
                target: 0.99,
                short_windows,
                long_windows,
                warn_burn: 1.0,
                page_burn: 10.0,
            },
            SloSpec {
                name: "frame-latency",
                kind: SloKind::SpanLatency { span: Span::ServiceFrame, bound_ns: frame_bound_ns },
                target: 0.99,
                short_windows,
                long_windows,
                warn_burn: 1.0,
                page_burn: 10.0,
            },
            SloSpec {
                name: "admission",
                kind: SloKind::EventRatio {
                    bad: Counter::ServiceBusyRejects,
                    good: Counter::ServiceFramesOk,
                },
                target: 0.95,
                short_windows,
                long_windows,
                warn_burn: 1.0,
                page_burn: 6.0,
            },
        ])
    }

    /// The objectives, in report order.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Evaluates every objective against the ring at `now_ns`.
    pub fn evaluate(&self, ts: &TimeSeries, now_ns: u64) -> Vec<SloReport> {
        self.specs.iter().map(|spec| evaluate_spec(spec, ts, now_ns)).collect()
    }

    /// The most severe state across all objectives at `now_ns`
    /// (`Healthy` for an empty table).
    pub fn worst_state(&self, ts: &TimeSeries, now_ns: u64) -> SloState {
        let mut worst = SloState::Healthy;
        for spec in &self.specs {
            let state = evaluate_spec(spec, ts, now_ns).state;
            worst = match (worst, state) {
                (_, SloState::Page) | (SloState::Page, _) => SloState::Page,
                (_, SloState::Warn) | (SloState::Warn, _) => SloState::Warn,
                _ => SloState::Healthy,
            };
        }
        worst
    }
}

/// Error ratio of one kind over one lookback; `None` when no traffic.
fn error_ratio(kind: SloKind, ts: &TimeSeries, lookback: usize, now_ns: u64) -> Option<f64> {
    match kind {
        SloKind::EventRatio { bad, good } => {
            let bad = ts.delta(bad, lookback, now_ns);
            let total = bad + ts.delta(good, lookback, now_ns);
            if total == 0 {
                None
            } else {
                Some(bad as f64 / total as f64)
            }
        }
        SloKind::SpanLatency { span, bound_ns } => {
            ts.span_fraction_above(span, bound_ns, lookback, now_ns)
        }
    }
}

fn evaluate_spec(spec: &SloSpec, ts: &TimeSeries, now_ns: u64) -> SloReport {
    let budget = (1.0 - spec.target).max(f64::MIN_POSITIVE);
    let error_short = error_ratio(spec.kind, ts, spec.short_windows, now_ns).unwrap_or(0.0);
    let error_long = error_ratio(spec.kind, ts, spec.long_windows, now_ns).unwrap_or(0.0);
    let burn_short = error_short / budget;
    let burn_long = error_long / budget;
    let both_at = |thr: f64| burn_short >= thr && burn_long >= thr;
    let state = if both_at(spec.page_burn) {
        SloState::Page
    } else if both_at(spec.warn_burn) {
        SloState::Warn
    } else {
        SloState::Healthy
    };
    SloReport {
        name: spec.name,
        state,
        target: spec.target,
        error_short,
        error_long,
        burn_short,
        burn_long,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::TimeSeriesConfig;

    const W: u64 = 1_000;

    fn ring() -> TimeSeries {
        TimeSeries::new(TimeSeriesConfig { window_ns: W, windows: 64 })
    }

    fn availability_spec() -> SloSpec {
        SloSpec {
            name: "avail",
            kind: SloKind::EventRatio {
                bad: Counter::ServiceFramesRejected,
                good: Counter::ServiceFramesOk,
            },
            target: 0.99,
            short_windows: 2,
            long_windows: 10,
            warn_burn: 1.0,
            page_burn: 10.0,
        }
    }

    #[test]
    fn no_traffic_is_healthy() {
        let ts = ring();
        let table = SloTable::new(vec![availability_spec()]);
        let reports = table.evaluate(&ts, 5 * W);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].state, SloState::Healthy);
        assert_eq!(reports[0].error_long, 0.0);
        assert_eq!(table.worst_state(&ts, 5 * W), SloState::Healthy);
    }

    #[test]
    fn sustained_errors_escalate_to_page() {
        let ts = ring();
        let table = SloTable::new(vec![availability_spec()]);
        // 50% error ratio sustained over the long window: burn 50 ≥ 10.
        for w in 0..10u64 {
            ts.incr_at(w * W, Counter::ServiceFramesOk, 5);
            ts.incr_at(w * W, Counter::ServiceFramesRejected, 5);
        }
        let now = 9 * W;
        let r = table.evaluate(&ts, now)[0];
        assert_eq!(r.state, SloState::Page);
        assert!((r.error_short - 0.5).abs() < 1e-12);
        assert!((r.burn_long - 50.0).abs() < 1e-9);
        assert_eq!(table.worst_state(&ts, now), SloState::Page);
    }

    #[test]
    fn short_recovery_downgrades_page() {
        let ts = ring();
        let table = SloTable::new(vec![availability_spec()]);
        // Errors stop at window 8; the short window goes clean while
        // the long window still remembers the incident.
        for w in 0..8u64 {
            ts.incr_at(w * W, Counter::ServiceFramesOk, 5);
            ts.incr_at(w * W, Counter::ServiceFramesRejected, 5);
        }
        for w in 8..10u64 {
            ts.incr_at(w * W, Counter::ServiceFramesOk, 10);
        }
        let r = table.evaluate(&ts, 9 * W)[0];
        assert_eq!(r.error_short, 0.0, "short window is clean");
        assert!(r.error_long > 0.0, "long window remembers");
        assert_eq!(r.state, SloState::Healthy, "paging requires both windows hot");
    }

    #[test]
    fn warn_band_sits_between_healthy_and_page() {
        let ts = ring();
        let table = SloTable::new(vec![availability_spec()]);
        // 5% errors: burn 5 — above warn (1), below page (10).
        for w in 0..10u64 {
            ts.incr_at(w * W, Counter::ServiceFramesOk, 95);
            ts.incr_at(w * W, Counter::ServiceFramesRejected, 5);
        }
        let r = table.evaluate(&ts, 9 * W)[0];
        assert_eq!(r.state, SloState::Warn);
    }

    #[test]
    fn latency_kind_uses_span_sketch() {
        let ts = ring();
        let spec = SloSpec {
            name: "latency",
            kind: SloKind::SpanLatency { span: Span::ServiceFrame, bound_ns: 1.0e6 },
            target: 0.5,
            short_windows: 2,
            long_windows: 4,
            warn_burn: 1.0,
            page_burn: 1.8,
        };
        let table = SloTable::new(vec![spec]);
        // All frames answer at 10 ms, 10× over the 1 ms bound: error
        // ratio 1.0, budget 0.5, burn 2.0 ≥ page.
        for _ in 0..10 {
            ts.span_at(100, Span::ServiceFrame, 10_000_000);
        }
        let r = table.evaluate(&ts, 100)[0];
        assert_eq!(r.state, SloState::Page);
        assert!((r.error_long - 1.0).abs() < 1e-12);
    }

    #[test]
    fn service_default_table_shape() {
        let table = SloTable::service_default(50.0e6, 5, 0);
        assert_eq!(table.specs().len(), 3);
        // long is clamped up to short.
        assert!(table.specs().iter().all(|s| s.long_windows >= s.short_windows));
        let names: Vec<&str> = table.specs().iter().map(|s| s.name).collect();
        assert_eq!(names, ["frame-availability", "frame-latency", "admission"]);
        for s in table.specs() {
            assert!(s.page_burn > s.warn_burn);
            assert!(s.target > 0.0 && s.target < 1.0);
        }
    }
}

//! The [`Recorder`] trait — the seam between instrumented code and
//! metric sinks — plus the statically zero-cost [`NoopRecorder`].
//!
//! Instrumented functions are generic over `R: Recorder` and call the
//! sink through monomorphized methods. [`NoopRecorder`] reports
//! `enabled() == false` from a body the optimizer sees as the constant
//! `false`, so every `if rec.enabled() { … }` block — including the
//! `Instant::now()` reads inside [`SpanTimer`] — compiles out of the
//! no-op instantiation. That is the overhead contract the warm-path
//! 0-alloc invariant relies on (DESIGN.md §9).

use crate::metrics::{Counter, Histogram, Span};
use crate::trace::TraceEvent;
use std::time::Instant;

/// A sink for spans, counters, and histogram observations.
///
/// All methods default to no-ops so recorders can implement only the
/// subsets they aggregate. Implementations must be `Sync`: the fleet
/// pool and parallel EKF tracks record from scoped worker threads
/// through a shared `&R`.
pub trait Recorder: Sync {
    /// Whether this recorder wants data at all. Call sites guard any
    /// work done *only* for observability (timestamps, derived
    /// statistics) behind this, so a no-op recorder costs nothing.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one completed timed region of `ns` nanoseconds.
    fn record_span(&self, span: Span, ns: u64) {
        let _ = (span, ns);
    }

    /// Increase a counter by `by` events.
    fn incr(&self, counter: Counter, by: u64) {
        let _ = (counter, by);
    }

    /// Record one observation of a distribution.
    fn observe(&self, hist: Histogram, value: f64) {
        let _ = (hist, value);
    }

    /// Record one typed flight-recorder event (`obs::trace`). Metric
    /// sinks ignore events by default; the `TraceRing` stores them.
    /// Events are `Copy` and heap-free, so emitting one through an
    /// enabled recorder never allocates.
    fn event(&self, ev: TraceEvent) {
        let _ = ev;
    }

    /// How many records this sink has silently discarded (ring
    /// overflow, late time-series windows). Lossless sinks report 0;
    /// `Tee` sums its halves. Exposed so exporters (the service's
    /// Prometheus frame) can surface telemetry loss without knowing
    /// the concrete recorder type.
    fn dropped_events(&self) -> u64 {
        0
    }
}

// sync: forwarding impl — `&R` shares the underlying sink, which is
// already Sync by the trait bound; no state lives in the reference.
impl<R: Recorder + ?Sized> Recorder for &R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record_span(&self, span: Span, ns: u64) {
        (**self).record_span(span, ns);
    }

    fn incr(&self, counter: Counter, by: u64) {
        (**self).incr(counter, by);
    }

    fn observe(&self, hist: Histogram, value: f64) {
        (**self).observe(hist, value);
    }

    fn event(&self, ev: TraceEvent) {
        (**self).event(ev);
    }

    fn dropped_events(&self) -> u64 {
        (**self).dropped_events()
    }
}

/// The do-nothing recorder. `enabled()` is the constant `false`, so
/// monomorphized call sites drop their instrumentation entirely — the
/// un-instrumented entry points (`estimate_into`, `process_batch`, …)
/// are thin wrappers instantiated with this type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
}

/// A started span: captures `Instant::now()` only when the recorder is
/// enabled, and reports the elapsed nanoseconds on [`SpanTimer::finish`].
///
/// Dropping a timer without finishing it records nothing — spans are
/// reported explicitly so error paths stay silent by construction.
#[derive(Debug)]
#[must_use = "a SpanTimer records nothing unless finished"]
pub struct SpanTimer {
    start: Option<Instant>,
}

impl SpanTimer {
    /// Start timing. Reads the monotonic clock only if `rec.enabled()`.
    pub fn start<R: Recorder + ?Sized>(rec: &R) -> Self {
        SpanTimer { start: if rec.enabled() { Some(Instant::now()) } else { None } }
    }

    /// Stop timing and record the elapsed nanoseconds under `span`.
    pub fn finish<R: Recorder + ?Sized>(self, rec: &R, span: Span) {
        if let Some(t0) = self.start {
            rec.record_span(span, saturating_ns(t0));
        }
    }
}

/// Nanoseconds since `t0`, saturating at `u64::MAX` (584 years).
pub fn saturating_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn noop_is_disabled_and_silent() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        // All sink methods accept data without effect.
        rec.record_span(Span::Trip, 1);
        rec.incr(Counter::TripsProcessed, 1);
        rec.observe(Histogram::EkfInnovation, 0.5);
        let timer = SpanTimer::start(&rec);
        assert!(timer.start.is_none(), "noop timer must not read the clock");
        timer.finish(&rec, Span::Trip);
    }

    struct CountingSink {
        // sync: test-only tally of sink calls; Relaxed is enough, the
        // test reads it after all recording on the same thread.
        calls: AtomicU64,
    }

    impl Recorder for CountingSink {
        fn record_span(&self, _span: Span, _ns: u64) {
            // sync: single-threaded test tally, no ordering needed.
            self.calls.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn enabled_timer_reports_through_references() {
        // sync: see field comment — test-only tally.
        let sink = CountingSink { calls: AtomicU64::new(0) };
        let by_ref: &dyn Recorder = &sink;
        assert!(by_ref.enabled(), "default enabled() must be true");
        let timer = SpanTimer::start(&by_ref);
        assert!(timer.start.is_some());
        timer.finish(&by_ref, Span::Steering);
        // sync: single-threaded test tally, no ordering needed.
        assert_eq!(sink.calls.load(Ordering::Relaxed), 1);
    }
}

//! [`RunRecorder`] — the aggregating recorder behind every
//! `RunReport` — and the report types it emits.
//!
//! The recorder is a fixed block of atomics (spans, counters) plus one
//! small mutex cell per histogram: no allocation after construction, no
//! contention hot spots beyond the histogram cells, and safe to share
//! across fleet workers by reference. Reports are read *after* the
//! recorded work completes, which is why relaxed atomics suffice
//! throughout.

use crate::metrics::{Counter, Histogram, Span};
use crate::recorder::Recorder;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Decade histogram buckets cover `10^-9 ..= 10^9` by power of ten.
/// Bucket `i` counts magnitudes in `[10^(i + DECADE_MIN_EXP),
/// 10^(i + DECADE_MIN_EXP + 1))` — exposed for consumers that band
/// distributions, like `obs::health`'s NIS bands.
pub const DECADE_MIN_EXP: i32 = -9;
/// Upper decade exponent (inclusive).
const MAX_EXP: i32 = 9;
/// Bucket count: one per decade exponent in `DECADE_MIN_EXP..=MAX_EXP`.
pub const DECADE_BUCKETS: usize = 19;

/// Internal aliases keeping the original short names readable.
const MIN_EXP: i32 = DECADE_MIN_EXP;
/// See [`DECADE_BUCKETS`].
const BUCKETS: usize = DECADE_BUCKETS;

/// Bucket index for `|value|`'s decade; zero and subnormal magnitudes
/// land in the lowest bucket, huge magnitudes saturate into the top.
fn decade_bucket(value: f64) -> usize {
    let exp = value.abs().log10().floor();
    let exp = if exp.is_finite() { exp as i32 } else { MIN_EXP };
    (exp.clamp(MIN_EXP, MAX_EXP) - MIN_EXP) as usize
}

/// Mutable aggregation state of one histogram.
#[derive(Debug)]
struct HistCell {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }
}

/// An aggregating [`Recorder`]: fixed atomic slots per [`Span`] and
/// [`Counter`], a mutex cell per [`Histogram`]. Construct once per run,
/// share by reference, then [`RunRecorder::report`] after the work
/// joins.
#[derive(Debug)]
pub struct RunRecorder {
    // Every atomic below is a standalone statistic slot written with
    // Relaxed operations from any recording thread; a report is only
    // taken after those threads join (or between trips on one thread),
    // so the join's happens-before edge is the only ordering needed and
    // per-slot atomicity is enough.
    // sync: span hit counts (Relaxed slot, see above).
    span_count: [AtomicU64; Span::COUNT],
    // sync: span summed durations (Relaxed slot, see above).
    span_total_ns: [AtomicU64; Span::COUNT],
    // sync: span minimum durations (Relaxed slot, see above).
    span_min_ns: [AtomicU64; Span::COUNT],
    // sync: span maximum durations (Relaxed slot, see above).
    span_max_ns: [AtomicU64; Span::COUNT],
    // sync: event counters (Relaxed slot, see above).
    counters: [AtomicU64; Counter::COUNT],
    // sync: each mutex guards one histogram's aggregation cell
    // (count/sum/min/max/buckets must move together); cells are
    // independent, so recording threads only contend when observing
    // the same histogram. A poisoned cell is skipped, never unwrapped.
    hists: [Mutex<HistCell>; Histogram::COUNT],
}

impl Default for RunRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl RunRecorder {
    /// A recorder with every slot zeroed.
    pub fn new() -> Self {
        RunRecorder {
            span_count: std::array::from_fn(|_| AtomicU64::new(0)),
            span_total_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            span_min_ns: std::array::from_fn(|_| AtomicU64::new(u64::MAX)),
            span_max_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| Mutex::new(HistCell::new())),
        }
    }

    /// Aggregate everything recorded so far into a [`RunReport`].
    /// Ids never touched are omitted, so the report doubles as the
    /// "which metrics did this workload emit" set the snapshot test
    /// pins.
    pub fn report(&self) -> RunReport {
        let mut spans = Vec::new();
        for s in Span::ALL {
            let i = s as usize;
            // sync: report-side Relaxed reads (field contract above).
            let count = self.span_count[i].load(Ordering::Relaxed);
            let total_ns = self.span_total_ns[i].load(Ordering::Relaxed);
            let min_ns = self.span_min_ns[i].load(Ordering::Relaxed);
            let max_ns = self.span_max_ns[i].load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            spans.push(SpanReport {
                name: s.name().to_string(),
                depth: s.depth() as u64,
                count,
                total_ns,
                mean_ns: total_ns / count,
                min_ns,
                max_ns,
            });
        }
        let mut counters = Vec::new();
        for c in Counter::ALL {
            // sync: report-side read; Relaxed per the field contract.
            let value = self.counters[c as usize].load(Ordering::Relaxed);
            if value == 0 {
                continue;
            }
            counters.push(CounterReport { name: c.name().to_string(), value });
        }
        let mut histograms = Vec::new();
        for h in Histogram::ALL {
            if let Ok(cell) = self.hists[h as usize].lock() {
                if cell.count == 0 {
                    continue;
                }
                let n = cell.count as f64;
                let mean = cell.sum / n;
                let var = (cell.sum_sq / n) - mean * mean;
                histograms.push(HistogramReport {
                    name: h.name().to_string(),
                    count: cell.count,
                    mean,
                    stddev: var.max(0.0).sqrt(),
                    min: cell.min,
                    max: cell.max,
                    decades: cell.buckets,
                });
            }
        }
        RunReport { spans, counters, histograms }
    }

    /// Current value of one counter (0 if never incremented). Cheaper
    /// than building a full report when one value drives a decision —
    /// `obs::health` folds several of these into `FleetHealth`.
    pub fn counter_value(&self, counter: Counter) -> u64 {
        // sync: report-side read; Relaxed per the field contract.
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Observation count and mean of one histogram, or `None` if it was
    /// never observed.
    pub fn histogram_stats(&self, hist: Histogram) -> Option<(u64, f64)> {
        match self.hists[hist as usize].lock() {
            Ok(cell) if cell.count > 0 => Some((cell.count, cell.sum / cell.count as f64)),
            _ => None,
        }
    }

    /// Copy of one histogram's decade buckets: slot `i` counts
    /// magnitudes with decade exponent `i + DECADE_MIN_EXP` (clamped at
    /// the ends). Lets consumers band a distribution — e.g. NIS bands
    /// `<1`, `1–10`, `10–100`, `≥100` — without the recorder keeping
    /// raw observations.
    pub fn histogram_decades(&self, hist: Histogram) -> [u64; DECADE_BUCKETS] {
        match self.hists[hist as usize].lock() {
            Ok(cell) => cell.buckets,
            Err(_) => [0; DECADE_BUCKETS],
        }
    }

    /// A deterministic, integers-only rendering of what was recorded:
    /// span hit counts, counter values, and histogram observation
    /// counts — no wall-clock quantities, so identical workloads
    /// produce byte-identical strings. This is the surface the obs
    /// snapshot test pins.
    pub fn snapshot_string(&self) -> String {
        let mut out = String::new();
        for s in Span::ALL {
            // sync: report-side read; Relaxed per the field contract.
            let count = self.span_count[s as usize].load(Ordering::Relaxed);
            if count > 0 {
                let _ = writeln!(out, "span {} count={count}", s.name());
            }
        }
        for c in Counter::ALL {
            // sync: report-side read; Relaxed per the field contract.
            let value = self.counters[c as usize].load(Ordering::Relaxed);
            if value > 0 {
                let _ = writeln!(out, "counter {} = {value}", c.name());
            }
        }
        for h in Histogram::ALL {
            if let Ok(cell) = self.hists[h as usize].lock() {
                if cell.count > 0 {
                    let _ = writeln!(out, "hist {} count={}", h.name(), cell.count);
                }
            }
        }
        out
    }
}

impl Recorder for RunRecorder {
    fn record_span(&self, span: Span, ns: u64) {
        let i = span as usize;
        // sync: Relaxed statistic slots (RunRecorder field contract).
        self.span_count[i].fetch_add(1, Ordering::Relaxed);
        self.span_total_ns[i].fetch_add(ns, Ordering::Relaxed);
        self.span_min_ns[i].fetch_min(ns, Ordering::Relaxed);
        self.span_max_ns[i].fetch_max(ns, Ordering::Relaxed);
    }

    fn incr(&self, counter: Counter, by: u64) {
        // sync: Relaxed counter slot; see the RunRecorder field comment.
        self.counters[counter as usize].fetch_add(by, Ordering::Relaxed);
    }

    fn observe(&self, hist: Histogram, value: f64) {
        let bucket = decade_bucket(value);
        if let Ok(mut cell) = self.hists[hist as usize].lock() {
            cell.count += 1;
            cell.sum += value;
            cell.sum_sq += value * value;
            cell.min = cell.min.min(value);
            cell.max = cell.max.max(value);
            if let Some(slot) = cell.buckets.get_mut(bucket) {
                *slot += 1;
            }
        }
    }
}

/// Aggregated statistics of one span over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Stable span name (see `Span::name`).
    pub name: String,
    /// Nesting depth in the span forest (0 for roots).
    pub depth: u64,
    /// Times the span completed.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Mean duration, nanoseconds.
    pub mean_ns: u64,
    /// Shortest observed duration, nanoseconds.
    pub min_ns: u64,
    /// Longest observed duration, nanoseconds.
    pub max_ns: u64,
}

/// Final value of one counter over a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterReport {
    /// Stable counter name (see `Counter::name`).
    pub name: String,
    /// Total events counted.
    pub value: u64,
}

/// Summary statistics of one histogram over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramReport {
    /// Stable histogram name (see `Histogram::name`).
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean of observed values.
    pub mean: f64,
    /// Population standard deviation of observed values.
    pub stddev: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Decade-band counts (see [`RunRecorder::histogram_decades`]):
    /// slot `i` counts magnitudes with decade exponent
    /// `i + DECADE_MIN_EXP`, clamped at the ends. Carried in reports so
    /// multi-run merges keep banded distributions (NIS health bands)
    /// instead of collapsing to summary moments.
    pub decades: [u64; DECADE_BUCKETS],
}

/// Everything one run recorded, in serializable form. Only ids that
/// were actually touched appear.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Touched spans, in taxonomy order.
    pub spans: Vec<SpanReport>,
    /// Non-zero counters, in taxonomy order.
    pub counters: Vec<CounterReport>,
    /// Touched histograms, in taxonomy order.
    pub histograms: Vec<HistogramReport>,
}

impl RunReport {
    /// Look up a span's statistics by report name.
    pub fn span(&self, name: &str) -> Option<&SpanReport> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Look up a counter's value by report name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Look up a histogram's statistics by report name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramReport> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Pretty-printed JSON (the `BENCH_*.json` embedding format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parse a report back from [`RunReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the parser's message when `s` is not a report.
    pub fn from_json(s: &str) -> Result<RunReport, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Combine two reports as if one recorder had seen both runs:
    /// span/counter/histogram entries with the same name are folded
    /// (counts and totals add, extremes take the wider bound, means and
    /// standard deviations recompute count-weighted), names unique to
    /// either side pass through. Order: `self`'s entries first, then
    /// `other`'s extras — both already in taxonomy order, so merging
    /// reports from the same build preserves it.
    ///
    /// This is the multi-run aggregation primitive: fleet health over
    /// several batches, bench-gate averaging across repeats.
    pub fn merge(&self, other: &RunReport) -> RunReport {
        let mut spans: Vec<SpanReport> = self.spans.clone();
        for os in &other.spans {
            if let Some(s) = spans.iter_mut().find(|s| s.name == os.name) {
                s.count += os.count;
                s.total_ns += os.total_ns;
                s.mean_ns = s.total_ns.checked_div(s.count).unwrap_or(0);
                s.min_ns = s.min_ns.min(os.min_ns);
                s.max_ns = s.max_ns.max(os.max_ns);
            } else {
                spans.push(os.clone());
            }
        }
        let mut counters: Vec<CounterReport> = self.counters.clone();
        for oc in &other.counters {
            if let Some(c) = counters.iter_mut().find(|c| c.name == oc.name) {
                c.value += oc.value;
            } else {
                counters.push(oc.clone());
            }
        }
        let mut histograms: Vec<HistogramReport> = self.histograms.clone();
        for oh in &other.histograms {
            if let Some(h) = histograms.iter_mut().find(|h| h.name == oh.name) {
                // Empty-vs-nonempty is asymmetric: an empty side has
                // no observations, so its moments, extremes, and
                // decade bands are placeholders that must not dilute
                // the populated side (folding them used to zero the
                // band counts and corrupt min/max).
                if oh.count == 0 {
                    continue;
                }
                if h.count == 0 {
                    *h = oh.clone();
                    continue;
                }
                let (n1, n2) = (h.count as f64, oh.count as f64);
                let n = n1 + n2;
                // Recover E[x] and E[x²] per side, combine
                // count-weighted, and rebuild mean/stddev — exact
                // for the population statistics the reports carry.
                let mean = (n1 * h.mean + n2 * oh.mean) / n;
                let e2_1 = h.stddev * h.stddev + h.mean * h.mean;
                let e2_2 = oh.stddev * oh.stddev + oh.mean * oh.mean;
                let e2 = (n1 * e2_1 + n2 * e2_2) / n;
                h.mean = mean;
                h.stddev = (e2 - mean * mean).max(0.0).sqrt();
                h.count += oh.count;
                h.min = h.min.min(oh.min);
                h.max = h.max.max(oh.max);
                for (band, extra) in h.decades.iter_mut().zip(oh.decades.iter()) {
                    *band += extra;
                }
            } else {
                histograms.push(oh.clone());
            }
        }
        RunReport { spans, counters, histograms }
    }

    /// Human-readable rendering: the span tree (indented by depth)
    /// with timing columns, then counters, then histograms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<34} {:>9} {:>12} {:>11} {:>11}",
            "span", "count", "total_ms", "mean_us", "max_us"
        );
        for s in &self.spans {
            let pad = (s.depth as usize) * 2;
            let _ = writeln!(
                out,
                "{:<34} {:>9} {:>12.3} {:>11.1} {:>11.1}",
                format!("{:pad$}{}", "", s.name),
                s.count,
                s.total_ns as f64 / 1.0e6,
                s.mean_ns as f64 / 1.0e3,
                s.max_ns as f64 / 1.0e3,
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<34} {:>9}", "counter", "value");
            for c in &self.counters {
                let _ = writeln!(out, "{:<34} {:>9}", c.name, c.value);
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<34} {:>9} {:>12} {:>12} {:>12} {:>12}",
                "histogram", "count", "mean", "stddev", "min", "max"
            );
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<34} {:>9} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
                    h.name, h.count, h.mean, h.stddev, h.min, h.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_ids_are_omitted() {
        let rec = RunRecorder::new();
        assert_eq!(rec.report(), RunReport::default());
        assert!(rec.snapshot_string().is_empty());
    }

    #[test]
    fn span_statistics_aggregate() {
        let rec = RunRecorder::new();
        rec.record_span(Span::Trip, 100);
        rec.record_span(Span::Trip, 300);
        let report = rec.report();
        let trip = report.span("trip").expect("trip span recorded");
        assert_eq!(trip.count, 2);
        assert_eq!(trip.total_ns, 400);
        assert_eq!(trip.mean_ns, 200);
        assert_eq!(trip.min_ns, 100);
        assert_eq!(trip.max_ns, 300);
        assert_eq!(trip.depth, 0);
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let rec = RunRecorder::new();
        rec.incr(Counter::TripsProcessed, 2);
        rec.incr(Counter::TripsProcessed, 3);
        rec.observe(Histogram::EkfInnovation, -1.0);
        rec.observe(Histogram::EkfInnovation, 3.0);
        rec.observe(Histogram::EkfInnovation, 0.0);
        let report = rec.report();
        assert_eq!(report.counter("trips-processed"), Some(5));
        let h = report.histogram("ekf-innovation").expect("innovation recorded");
        assert_eq!(h.count, 3);
        assert!((h.mean - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 3.0);
        assert!(h.stddev > 0.0);
    }

    #[test]
    fn decade_buckets_clamp() {
        assert_eq!(decade_bucket(0.0), 0);
        assert_eq!(decade_bucket(1e-30), 0);
        assert_eq!(decade_bucket(1.5), (0 - MIN_EXP) as usize);
        assert_eq!(decade_bucket(-1.5), (0 - MIN_EXP) as usize);
        assert_eq!(decade_bucket(1e30), BUCKETS - 1);
        assert_eq!(decade_bucket(f64::NAN), 0);
    }

    #[test]
    fn snapshot_string_is_integers_only() {
        let rec = RunRecorder::new();
        rec.record_span(Span::Steering, 12345);
        rec.incr(Counter::LaneChangesDetected, 4);
        rec.observe(Histogram::LaneChangeDisplacement, 3.2);
        let snap = rec.snapshot_string();
        assert_eq!(
            snap,
            "span steering count=1\ncounter lane-changes-detected = 4\n\
             hist lane-change-displacement count=1\n"
        );
        assert!(!snap.contains("12345"), "snapshot must not leak timings");
    }

    #[test]
    fn report_json_round_trips() {
        let rec = RunRecorder::new();
        rec.record_span(Span::Trip, 500);
        rec.record_span(Span::Fusion, 200);
        rec.incr(Counter::CloudUploads, 7);
        rec.observe(Histogram::FusionWeightGps, 0.25);
        let report = rec.report();
        let back = RunReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(back, report);
    }

    #[test]
    fn render_indents_by_depth() {
        let rec = RunRecorder::new();
        rec.record_span(Span::Trip, 1_000);
        rec.record_span(Span::TrackGps, 400);
        let text = rec.report().render();
        assert!(text.contains("\ntrip "));
        assert!(text.contains("    track:gps"), "depth-2 span indented:\n{text}");
    }

    #[test]
    fn counter_value_and_histogram_accessors() {
        let rec = RunRecorder::new();
        assert_eq!(rec.counter_value(Counter::GpsGaps), 0);
        rec.incr(Counter::GpsGaps, 3);
        assert_eq!(rec.counter_value(Counter::GpsGaps), 3);

        assert_eq!(rec.histogram_stats(Histogram::EkfMeanNis), None);
        rec.observe(Histogram::EkfMeanNis, 0.5); // decade -1
        rec.observe(Histogram::EkfMeanNis, 1.5); // decade 0
        rec.observe(Histogram::EkfMeanNis, 250.0); // decade 2
        let (count, mean) = rec.histogram_stats(Histogram::EkfMeanNis).expect("observed");
        assert_eq!(count, 3);
        assert!((mean - 252.0 / 3.0).abs() < 1e-12);
        let decades = rec.histogram_decades(Histogram::EkfMeanNis);
        assert_eq!(decades[(-1 - DECADE_MIN_EXP) as usize], 1);
        assert_eq!(decades[(0 - DECADE_MIN_EXP) as usize], 1);
        assert_eq!(decades[(2 - DECADE_MIN_EXP) as usize], 1);
        assert_eq!(decades.iter().sum::<u64>(), 3);
    }

    #[test]
    fn merge_disjoint_metric_sets_concatenates() {
        let a = RunRecorder::new();
        a.record_span(Span::Trip, 100);
        a.incr(Counter::TripsProcessed, 1);
        a.observe(Histogram::EkfInnovation, 1.0);
        let b = RunRecorder::new();
        b.record_span(Span::CloudUpload, 50);
        b.incr(Counter::CloudUploads, 2);
        b.observe(Histogram::GpsGapSeconds, 4.0);

        let merged = a.report().merge(&b.report());
        assert_eq!(merged.spans.len(), 2);
        assert_eq!(merged.span("trip").map(|s| s.count), Some(1));
        assert_eq!(merged.span("cloud-upload").map(|s| s.count), Some(1));
        assert_eq!(merged.counter("trips-processed"), Some(1));
        assert_eq!(merged.counter("cloud-uploads"), Some(2));
        assert_eq!(merged.histogram("ekf-innovation").map(|h| h.count), Some(1));
        assert_eq!(merged.histogram("gps-gap-seconds").map(|h| h.count), Some(1));
    }

    #[test]
    fn merge_overlapping_metric_sets_folds() {
        let a = RunRecorder::new();
        a.record_span(Span::Trip, 100);
        a.record_span(Span::Trip, 300);
        a.incr(Counter::TripsProcessed, 2);
        a.observe(Histogram::EkfInnovation, 1.0);
        a.observe(Histogram::EkfInnovation, 3.0);
        let b = RunRecorder::new();
        b.record_span(Span::Trip, 500);
        b.incr(Counter::TripsProcessed, 1);
        b.incr(Counter::GpsGaps, 4);
        b.observe(Histogram::EkfInnovation, 5.0);

        let merged = a.report().merge(&b.report());
        let trip = merged.span("trip").expect("trip span merged");
        assert_eq!(trip.count, 3);
        assert_eq!(trip.total_ns, 900);
        assert_eq!(trip.mean_ns, 300);
        assert_eq!(trip.min_ns, 100);
        assert_eq!(trip.max_ns, 500);
        assert_eq!(merged.counter("trips-processed"), Some(3));
        assert_eq!(merged.counter("gps-gaps"), Some(4));
        let h = merged.histogram("ekf-innovation").expect("merged hist");
        assert_eq!(h.count, 3);
        assert!((h.mean - 3.0).abs() < 1e-12);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 5.0);
        // Population stddev of {1, 3, 5} is sqrt(8/3) — the merge must
        // match a single recorder that saw all three observations.
        let all = RunRecorder::new();
        for v in [1.0, 3.0, 5.0] {
            all.observe(Histogram::EkfInnovation, v);
        }
        let direct = all.report();
        let dh = direct.histogram("ekf-innovation").expect("direct hist");
        assert!((h.stddev - dh.stddev).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = RunRecorder::new();
        a.record_span(Span::Fusion, 10);
        a.incr(Counter::CloudUploads, 1);
        a.observe(Histogram::FusionWeightGps, 0.5);
        let report = a.report();
        assert_eq!(report.merge(&RunReport::default()), report);
        assert_eq!(RunReport::default().merge(&report), report);
    }

    #[test]
    fn merge_folds_decade_bands_elementwise() {
        let a = RunRecorder::new();
        a.observe(Histogram::EkfMeanNis, 0.5); // decade -1
        a.observe(Histogram::EkfMeanNis, 1.5); // decade 0
        let b = RunRecorder::new();
        b.observe(Histogram::EkfMeanNis, 2.5); // decade 0
        b.observe(Histogram::EkfMeanNis, 250.0); // decade 2

        let merged = a.report().merge(&b.report());
        let h = merged.histogram(Histogram::EkfMeanNis.name()).expect("merged hist");
        assert_eq!(h.decades[(-1 - DECADE_MIN_EXP) as usize], 1);
        assert_eq!(h.decades[(0 - DECADE_MIN_EXP) as usize], 2);
        assert_eq!(h.decades[(2 - DECADE_MIN_EXP) as usize], 1);
        assert_eq!(h.decades.iter().sum::<u64>(), 4);
    }

    #[test]
    fn merge_empty_histogram_entry_is_asymmetric() {
        // Regression: an entry that exists but recorded nothing used to
        // have its placeholder extremes folded in (and, once bands were
        // carried, would have diluted them). Empty-vs-nonempty must
        // keep the populated side untouched in both directions.
        let a = RunRecorder::new();
        a.observe(Histogram::EkfMeanNis, 0.5); // decade -1
        a.observe(Histogram::EkfMeanNis, 250.0); // decade 2
        let populated = a.report();

        let empty_entry = RunReport {
            histograms: vec![HistogramReport {
                name: Histogram::EkfMeanNis.name().to_string(),
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                decades: [0; DECADE_BUCKETS],
            }],
            ..RunReport::default()
        };

        let kept = populated.merge(&empty_entry);
        assert_eq!(
            kept.histogram(Histogram::EkfMeanNis.name()),
            populated.histogram(Histogram::EkfMeanNis.name())
        );

        let adopted = empty_entry.merge(&populated);
        assert_eq!(
            adopted.histogram(Histogram::EkfMeanNis.name()),
            populated.histogram(Histogram::EkfMeanNis.name())
        );
    }

    #[test]
    fn recording_is_shareable_across_threads() {
        let rec = RunRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        rec.incr(Counter::FleetJobsCompleted, 1);
                        rec.record_span(Span::FleetWorkerTrip, 10);
                        rec.observe(Histogram::FleetWorkerUtilization, 0.5);
                    }
                });
            }
        });
        let report = rec.report();
        assert_eq!(report.counter("fleet-jobs-completed"), Some(400));
        let span = report.span("fleet-worker-trip").expect("worker span");
        assert_eq!(span.count, 400);
        assert_eq!(span.total_ns, 4_000);
        let util = report.histogram("fleet-worker-utilization").expect("util");
        assert_eq!(util.count, 400);
        assert_eq!(util.mean, 0.5);
    }
}

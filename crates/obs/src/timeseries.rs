//! Windowed live telemetry: a fixed-interval ring of windows holding
//! counters-as-rates and log-linear histogram sketches.
//!
//! `RunReport` answers "what happened over the whole run"; this module
//! answers "what is happening *right now*". A [`TimeSeries`] keeps the
//! last `windows` intervals of `window_ns` each (default 1 s × 120) and
//! supports [`TimeSeries::rate`], [`TimeSeries::delta`], and
//! [`TimeSeries::span_quantile`]/[`TimeSeries::hist_quantile`] over any
//! suffix of that ring — the queries behind the `STATUS` frame, the
//! quality drift monitors (`obs::quality`), and SLO burn rates
//! (`obs::slo`).
//!
//! Distributions use a DDSketch-style log-linear layout: fixed buckets
//! at geometric boundaries `2^(k/4)`, so a quantile estimate is within
//! [`SKETCH_RELATIVE_ERROR`] of the true value for magnitudes inside
//! [`SKETCH_MIN_MAGNITUDE`]`..`[`SKETCH_MAX_MAGNITUDE`] (values outside
//! clamp into the edge buckets). Negative values mirror into a second
//! store, so signed histograms (EKF innovations) keep a total order.
//!
//! The record path follows the same discipline as `RunRecorder`: all
//! window memory is allocated once at construction, recording mutates
//! fixed slots under one mutex, and rotation resets slots in place —
//! zero allocations after warm-up, which the service soak's alloc probe
//! asserts with a live [`TimeSeriesRecorder`] attached. Core methods
//! are keyed by explicit nanosecond timestamps (`*_at`), so rotation
//! and boundary behaviour are deterministic under test; the
//! [`TimeSeriesRecorder`] wrapper supplies wall-clock timestamps from
//! its construction epoch.

use crate::metrics::{Counter, Histogram, Span};
use crate::recorder::{saturating_ns, Recorder};
use std::sync::Mutex;
use std::time::Instant;

/// Log-linear subdivisions per power of two. Four sub-buckets per
/// octave bound the relative quantile error below ten percent while a
/// whole sketch stays two pages of `u32` counts.
const SUB_PER_OCTAVE: i64 = 4;

/// Buckets per signed store. With [`SUB_PER_OCTAVE`] = 4 this covers 64
/// octaves of magnitude.
pub const SKETCH_BUCKETS: usize = 256;

/// Lowest covered octave: magnitudes below `2^-20` (≈ 9.5e-7) fall
/// into the zero bucket together with exact zeros.
const MIN_OCTAVE: i64 = -20;

/// Smallest magnitude the sketch resolves; below this, observations
/// count as zero.
pub const SKETCH_MIN_MAGNITUDE: f64 = 9.5367431640625e-7; // 2^-20

/// Largest magnitude before saturation into the top bucket: `2^44`
/// (≈ 1.76e13 — more than 4 hours in nanoseconds).
pub const SKETCH_MAX_MAGNITUDE: f64 = 1.7592186044416e13; // 2^44

/// Worst-case relative error of a quantile estimate for in-range
/// magnitudes: bucket bounds are a factor `2^(1/4)` apart and estimates
/// sit at the geometric midpoint, so the error never exceeds
/// `2^(1/8) − 1 ≈ 9.06%`. The proptest suite pins estimates against an
/// exact oracle at this bound. The constant carries a few ulps of
/// upward slack so values landing exactly on a bucket boundary (where
/// the midpoint error is maximal) still compare inside the bound.
pub const SKETCH_RELATIVE_ERROR: f64 = 0.090507732665258; // 2^(1/8) - 1, rounded up

/// Bucket index for a positive, in-range magnitude.
fn sketch_bucket(mag: f64) -> usize {
    let idx = (mag.log2() * SUB_PER_OCTAVE as f64).floor() as i64 - MIN_OCTAVE * SUB_PER_OCTAVE;
    idx.clamp(0, SKETCH_BUCKETS as i64 - 1) as usize
}

/// Representative magnitude of one bucket: the geometric midpoint of
/// its bounds `[2^(k/4), 2^((k+1)/4))`.
fn bucket_magnitude(idx: usize) -> f64 {
    let k = idx as i64 + MIN_OCTAVE * SUB_PER_OCTAVE;
    ((2.0 * k as f64 + 1.0) / (2.0 * SUB_PER_OCTAVE as f64)).exp2()
}

/// One distribution's state inside one window: summary moments plus
/// the signed log-linear stores.
#[derive(Debug)]
struct SketchCell {
    count: u64,
    sum: f64,
    /// Zeros, sub-resolution magnitudes, and NaNs.
    zero: u64,
    /// Counts of negative observations by `|value|` bucket.
    neg: [u32; SKETCH_BUCKETS],
    /// Counts of positive observations by value bucket.
    pos: [u32; SKETCH_BUCKETS],
}

impl SketchCell {
    fn new() -> Self {
        SketchCell {
            count: 0,
            sum: 0.0,
            zero: 0,
            neg: [0; SKETCH_BUCKETS],
            pos: [0; SKETCH_BUCKETS],
        }
    }

    fn reset(&mut self) {
        self.count = 0;
        self.sum = 0.0;
        self.zero = 0;
        self.neg = [0; SKETCH_BUCKETS];
        self.pos = [0; SKETCH_BUCKETS];
    }

    fn observe(&mut self, value: f64) {
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
        }
        let mag = value.abs();
        if mag.is_nan() || mag < SKETCH_MIN_MAGNITUDE {
            // Zero, sub-resolution-tiny, or NaN: counts, but carries no
            // resolvable magnitude.
            self.zero += 1;
            return;
        }
        let b = sketch_bucket(mag);
        let store = if value < 0.0 { &mut self.neg } else { &mut self.pos };
        store[b] = store[b].saturating_add(1);
    }
}

/// One window's worth of telemetry: its absolute index plus fixed
/// slots for every counter, span-duration sketch, and histogram sketch.
#[derive(Debug)]
struct Window {
    /// Absolute window number (`t_ns / window_ns`); `u64::MAX` marks a
    /// slot that has never held data.
    index: u64,
    counters: [u64; Counter::COUNT],
    spans: [SketchCell; Span::COUNT],
    hists: [SketchCell; Histogram::COUNT],
}

impl Window {
    fn new() -> Self {
        Window {
            index: u64::MAX,
            counters: [0; Counter::COUNT],
            spans: std::array::from_fn(|_| SketchCell::new()),
            hists: std::array::from_fn(|_| SketchCell::new()),
        }
    }

    fn reset(&mut self, index: u64) {
        self.index = index;
        self.counters = [0; Counter::COUNT];
        for c in &mut self.spans {
            c.reset();
        }
        for c in &mut self.hists {
            c.reset();
        }
    }
}

/// Ring configuration: window width × window count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeSeriesConfig {
    /// Width of one window, nanoseconds (clamped to ≥ 1).
    pub window_ns: u64,
    /// Number of live windows (clamped to ≥ 2).
    pub windows: usize,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        TimeSeriesConfig { window_ns: 1_000_000_000, windows: 120 }
    }
}

/// Everything behind the ring mutex: the slot array plus the rotation
/// cursor.
#[derive(Debug)]
struct RingState {
    /// Highest absolute window index any record has reached.
    cur: u64,
    /// Slot `i` holds absolute window `w` iff `w % slots.len() == i`
    /// and `w` is within the live suffix ending at `cur`.
    slots: Vec<Window>,
    /// Records that arrived too late for their window (older than the
    /// ring covers) and were discarded.
    late_drops: u64,
}

/// The windowed time-series ring. Keyed by explicit timestamps so
/// tests control rotation exactly; production code goes through
/// [`TimeSeriesRecorder`], which stamps records from a wall-clock
/// epoch.
#[derive(Debug)]
pub struct TimeSeries {
    cfg: TimeSeriesConfig,
    // sync: one mutex guards the whole ring — rotation must atomically
    // reset a slot and move the cursor. Contention is bounded by the
    // service worker count (single digits); a poisoned ring is
    // skipped, never unwrapped, matching RunRecorder's cells.
    state: Mutex<RingState>,
}

impl TimeSeries {
    /// A ring with every window empty. All memory is allocated here;
    /// recording and rotation never allocate again.
    pub fn new(cfg: TimeSeriesConfig) -> Self {
        let cfg = TimeSeriesConfig { window_ns: cfg.window_ns.max(1), windows: cfg.windows.max(2) };
        let mut slots = Vec::with_capacity(cfg.windows);
        for _ in 0..cfg.windows {
            slots.push(Window::new());
        }
        TimeSeries { cfg, state: Mutex::new(RingState { cur: 0, slots, late_drops: 0 }) }
    }

    /// The configuration the ring was built with (after clamping).
    pub fn config(&self) -> TimeSeriesConfig {
        self.cfg
    }

    /// Width of one window, seconds.
    pub fn window_secs(&self) -> f64 {
        self.cfg.window_ns as f64 / 1.0e9
    }

    /// Absolute window index of a timestamp.
    pub fn window_index(&self, t_ns: u64) -> u64 {
        t_ns / self.cfg.window_ns
    }

    /// Records dropped because they arrived after their window left
    /// the ring.
    pub fn late_drops(&self) -> u64 {
        match self.state.lock() {
            Ok(st) => st.late_drops,
            Err(_) => 0,
        }
    }

    /// Rotates the ring forward so the window containing `t_ns` is
    /// live, resetting every window it skips. Recording does this
    /// implicitly; an explicit tick keeps rates decaying while idle.
    pub fn advance_to(&self, t_ns: u64) {
        let w = self.window_index(t_ns);
        if let Ok(mut st) = self.state.lock() {
            advance(&mut st, w);
        }
    }

    /// Adds `by` to `counter`'s bucket in the window containing `t_ns`.
    pub fn incr_at(&self, t_ns: u64, counter: Counter, by: u64) {
        let w = self.window_index(t_ns);
        if let Ok(mut st) = self.state.lock() {
            if let Some(slot) = live_slot(&mut st, w) {
                slot.counters[counter as usize] += by;
            }
        }
    }

    /// Records one span duration into the window containing `t_ns`.
    pub fn span_at(&self, t_ns: u64, span: Span, ns: u64) {
        let w = self.window_index(t_ns);
        if let Ok(mut st) = self.state.lock() {
            if let Some(slot) = live_slot(&mut st, w) {
                slot.spans[span as usize].observe(ns as f64);
            }
        }
    }

    /// Records one histogram observation into the window containing
    /// `t_ns`.
    pub fn observe_at(&self, t_ns: u64, hist: Histogram, value: f64) {
        let w = self.window_index(t_ns);
        if let Ok(mut st) = self.state.lock() {
            if let Some(slot) = live_slot(&mut st, w) {
                slot.hists[hist as usize].observe(value);
            }
        }
    }

    /// Sum of `counter` over the last `lookback` windows ending at the
    /// window containing `now_ns` (inclusive — the current, possibly
    /// partial, window counts).
    pub fn delta(&self, counter: Counter, lookback: usize, now_ns: u64) -> u64 {
        let mut total = 0u64;
        self.fold_windows(lookback, now_ns, |w| total += w.counters[counter as usize]);
        total
    }

    /// `counter` events per second over the last `lookback` windows
    /// (the current partial window counts as a full one, biasing fresh
    /// rates low rather than spiking them).
    pub fn rate(&self, counter: Counter, lookback: usize, now_ns: u64) -> f64 {
        let lookback = lookback.max(1);
        let span_secs = lookback as f64 * self.window_secs();
        self.delta(counter, lookback, now_ns) as f64 / span_secs
    }

    /// Quantile estimate of a span's durations (nanoseconds) over the
    /// last `lookback` windows, or `None` if nothing was recorded.
    pub fn span_quantile(&self, span: Span, q: f64, lookback: usize, now_ns: u64) -> Option<f64> {
        let mut merged = MergedSketch::new();
        self.fold_windows(lookback, now_ns, |w| merged.add(&w.spans[span as usize]));
        merged.quantile(q)
    }

    /// Quantile estimate of a histogram over the last `lookback`
    /// windows, or `None` if nothing was recorded.
    pub fn hist_quantile(
        &self,
        hist: Histogram,
        q: f64,
        lookback: usize,
        now_ns: u64,
    ) -> Option<f64> {
        let mut merged = MergedSketch::new();
        self.fold_windows(lookback, now_ns, |w| merged.add(&w.hists[hist as usize]));
        merged.quantile(q)
    }

    /// Mean of a histogram over the last `lookback` windows (exact —
    /// from the summed moments, not the sketch).
    pub fn hist_mean(&self, hist: Histogram, lookback: usize, now_ns: u64) -> Option<f64> {
        let mut count = 0u64;
        let mut sum = 0.0f64;
        self.fold_windows(lookback, now_ns, |w| {
            let cell = &w.hists[hist as usize];
            count += cell.count;
            sum += cell.sum;
        });
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }

    /// Observation count of a histogram over the last `lookback`
    /// windows.
    pub fn hist_count(&self, hist: Histogram, lookback: usize, now_ns: u64) -> u64 {
        let mut count = 0u64;
        self.fold_windows(lookback, now_ns, |w| count += w.hists[hist as usize].count);
        count
    }

    /// Fraction of a histogram's observations whose sketch estimate
    /// exceeds `threshold`, over the last `lookback` windows. Bucket
    /// resolution applies: observations within one bucket of the
    /// threshold may land on either side.
    pub fn hist_fraction_above(
        &self,
        hist: Histogram,
        threshold: f64,
        lookback: usize,
        now_ns: u64,
    ) -> Option<f64> {
        let mut merged = MergedSketch::new();
        self.fold_windows(lookback, now_ns, |w| merged.add(&w.hists[hist as usize]));
        merged.fraction_above(threshold)
    }

    /// Duration count of a span over the last `lookback` windows.
    pub fn span_count(&self, span: Span, lookback: usize, now_ns: u64) -> u64 {
        let mut count = 0u64;
        self.fold_windows(lookback, now_ns, |w| count += w.spans[span as usize].count);
        count
    }

    /// Fraction of a span's durations whose sketch estimate exceeds
    /// `threshold_ns`, over the last `lookback` windows — the
    /// latency-SLO error ratio (`obs::slo`). Bucket resolution applies
    /// as for [`TimeSeries::hist_fraction_above`].
    pub fn span_fraction_above(
        &self,
        span: Span,
        threshold_ns: f64,
        lookback: usize,
        now_ns: u64,
    ) -> Option<f64> {
        let mut merged = MergedSketch::new();
        self.fold_windows(lookback, now_ns, |w| merged.add(&w.spans[span as usize]));
        merged.fraction_above(threshold_ns)
    }

    /// Runs `f` over every live window in the `lookback`-window suffix
    /// ending at `now_ns`'s window.
    fn fold_windows<F: FnMut(&Window)>(&self, lookback: usize, now_ns: u64, mut f: F) {
        let end = self.window_index(now_ns);
        let lookback = lookback.max(1) as u64;
        let start = end.saturating_sub(lookback - 1);
        let Ok(st) = self.state.lock() else {
            return;
        };
        let len = st.slots.len() as u64;
        for w in start..=end {
            // Only slots still holding exactly window `w` contribute —
            // `cur` may trail `now_ns` (nothing recorded lately) or a
            // slot may have been recycled for a newer window.
            let slot = &st.slots[(w % len) as usize];
            if slot.index == w {
                f(slot);
            }
        }
    }
}

/// Rotate the ring forward to absolute window `w` (no-op if already
/// there or past it), resetting every slot the move recycles.
fn advance(st: &mut RingState, w: u64) {
    if w <= st.cur {
        return;
    }
    let len = st.slots.len() as u64;
    // Only the last `len` windows can be live; skipping further back
    // would reset the same slots twice.
    let first = (st.cur + 1).max(w.saturating_sub(len - 1));
    for idx in first..=w {
        st.slots[(idx % len) as usize].reset(idx);
    }
    st.cur = w;
}

/// The slot for absolute window `w`, rotating forward if `w` is new;
/// `None` when `w` already left the ring (the record is counted as a
/// late drop).
fn live_slot(st: &mut RingState, w: u64) -> Option<&mut Window> {
    advance(st, w);
    let len = st.slots.len() as u64;
    if st.cur.saturating_sub(w) >= len {
        st.late_drops += 1;
        return None;
    }
    let slot = &mut st.slots[(w % len) as usize];
    if slot.index != w {
        // First touch of this window: the slot still holds an expired
        // window (or has never been used) because rotation only resets
        // slots from `cur+1` forward.
        slot.reset(w);
    }
    Some(slot)
}

/// Accumulator merging several windows' sketch cells for one query.
/// Stack-allocated (4 KiB of counts), so queries stay allocation-free.
struct MergedSketch {
    count: u64,
    zero: u64,
    neg: [u64; SKETCH_BUCKETS],
    pos: [u64; SKETCH_BUCKETS],
}

impl MergedSketch {
    fn new() -> Self {
        MergedSketch { count: 0, zero: 0, neg: [0; SKETCH_BUCKETS], pos: [0; SKETCH_BUCKETS] }
    }

    fn add(&mut self, cell: &SketchCell) {
        self.count += cell.count;
        self.zero += cell.zero;
        for (acc, n) in self.neg.iter_mut().zip(cell.neg.iter()) {
            *acc += *n as u64;
        }
        for (acc, n) in self.pos.iter_mut().zip(cell.pos.iter()) {
            *acc += *n as u64;
        }
    }

    /// Nearest-rank quantile: the `⌈q·n⌉`-th smallest estimate (so
    /// `q=0` is the minimum bucket, `q=1` the maximum). Walks the
    /// stores in value order: negatives from largest magnitude down,
    /// then zeros, then positives up.
    fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in (0..SKETCH_BUCKETS).rev() {
            seen += self.neg[b];
            if seen >= rank {
                return Some(-bucket_magnitude(b));
            }
        }
        seen += self.zero;
        if seen >= rank {
            return Some(0.0);
        }
        for b in 0..SKETCH_BUCKETS {
            seen += self.pos[b];
            if seen >= rank {
                return Some(bucket_magnitude(b));
            }
        }
        // Unreachable when counts are consistent; saturated u32 cells
        // can leave `count` ahead of the stores, so fall back to the
        // top estimate instead of panicking.
        Some(bucket_magnitude(SKETCH_BUCKETS - 1))
    }

    /// Fraction of observations whose bucket estimate exceeds
    /// `threshold`.
    fn fraction_above(&self, threshold: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mut above = 0u64;
        for b in 0..SKETCH_BUCKETS {
            if -bucket_magnitude(b) > threshold {
                above += self.neg[b];
            }
            if bucket_magnitude(b) > threshold {
                above += self.pos[b];
            }
        }
        if 0.0 > threshold {
            above += self.zero;
        }
        Some(above as f64 / self.count as f64)
    }
}

/// Wall-clock front end: a [`TimeSeries`] stamped from a construction
/// epoch, usable anywhere a [`Recorder`] is (typically the `b` side of
/// an `obs::Tee`, or composed by `gradest-serve` next to the run
/// recorder). Trace events pass through untouched — this sink only
/// aggregates.
#[derive(Debug)]
pub struct TimeSeriesRecorder {
    epoch: Instant,
    series: TimeSeries,
}

impl TimeSeriesRecorder {
    /// A live ring whose window zero starts now.
    pub fn new(cfg: TimeSeriesConfig) -> Self {
        TimeSeriesRecorder { epoch: Instant::now(), series: TimeSeries::new(cfg) }
    }

    /// Nanoseconds since construction — the timestamp recording uses.
    pub fn now_ns(&self) -> u64 {
        saturating_ns(self.epoch)
    }

    /// The ring, for queries (pass [`TimeSeriesRecorder::now_ns`] as
    /// the query timestamp).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

impl Default for TimeSeriesRecorder {
    fn default() -> Self {
        Self::new(TimeSeriesConfig::default())
    }
}

impl Recorder for TimeSeriesRecorder {
    fn record_span(&self, span: Span, ns: u64) {
        self.series.span_at(self.now_ns(), span, ns);
    }

    fn incr(&self, counter: Counter, by: u64) {
        self.series.incr_at(self.now_ns(), counter, by);
    }

    fn observe(&self, hist: Histogram, value: f64) {
        self.series.observe_at(self.now_ns(), hist, value);
    }

    fn dropped_events(&self) -> u64 {
        self.series.late_drops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(window_ns: u64, windows: usize) -> TimeSeries {
        TimeSeries::new(TimeSeriesConfig { window_ns, windows })
    }

    #[test]
    fn config_is_clamped() {
        let ts = TimeSeries::new(TimeSeriesConfig { window_ns: 0, windows: 0 });
        assert_eq!(ts.config(), TimeSeriesConfig { window_ns: 1, windows: 2 });
    }

    #[test]
    fn delta_and_rate_over_windows() {
        let ts = ring(1_000, 4);
        ts.incr_at(0, Counter::ServiceFramesOk, 2); // window 0
        ts.incr_at(1_500, Counter::ServiceFramesOk, 3); // window 1
        ts.incr_at(2_100, Counter::ServiceFramesOk, 5); // window 2
        assert_eq!(ts.delta(Counter::ServiceFramesOk, 1, 2_900), 5);
        assert_eq!(ts.delta(Counter::ServiceFramesOk, 2, 2_900), 8);
        assert_eq!(ts.delta(Counter::ServiceFramesOk, 3, 2_900), 10);
        // 10 events over 3 windows of 1 µs each.
        let rate = ts.rate(Counter::ServiceFramesOk, 3, 2_900);
        assert!((rate - 10.0 / 3.0e-6).abs() / rate < 1e-12);
    }

    #[test]
    fn rotation_evicts_old_windows() {
        let ts = ring(1_000, 3);
        ts.incr_at(500, Counter::ServiceFramesOk, 7); // window 0
        ts.incr_at(3_500, Counter::ServiceFramesOk, 1); // window 3 evicts 0
        assert_eq!(ts.delta(Counter::ServiceFramesOk, 4, 3_900), 1);
        // A record into an evicted window is dropped, not resurrected.
        ts.incr_at(500, Counter::ServiceFramesOk, 9);
        assert_eq!(ts.delta(Counter::ServiceFramesOk, 4, 3_900), 1);
        assert_eq!(ts.late_drops(), 1);
    }

    #[test]
    fn queries_ignore_stale_slots_when_now_advances() {
        let ts = ring(1_000, 3);
        ts.incr_at(100, Counter::ServiceFramesOk, 4); // window 0
                                                      // Window 0's slot would alias windows 3, 6, … — a query from
                                                      // window 5's viewpoint must not see it.
        assert_eq!(ts.delta(Counter::ServiceFramesOk, 3, 5_500), 0);
        assert_eq!(ts.delta(Counter::ServiceFramesOk, 1, 900), 4);
    }

    #[test]
    fn advance_to_decays_rates() {
        let ts = ring(1_000, 4);
        ts.incr_at(100, Counter::ServiceFramesOk, 8);
        ts.advance_to(10_000);
        assert_eq!(ts.delta(Counter::ServiceFramesOk, 4, 10_000), 0);
    }

    #[test]
    fn span_quantiles_within_bound() {
        let ts = ring(1_000_000, 8);
        let values: Vec<f64> = (1..=100).map(|i| i as f64 * 1_000.0).collect();
        for (i, v) in values.iter().enumerate() {
            ts.span_at(i as u64 * 10, Span::ServiceFrame, *v as u64);
        }
        for (q, exact) in [(0.5, 50_000.0), (0.99, 99_000.0), (1.0, 100_000.0)] {
            let est = ts.span_quantile(Span::ServiceFrame, q, 8, 1_000).expect("recorded");
            assert!(
                (est - exact).abs() / exact <= SKETCH_RELATIVE_ERROR,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn signed_quantiles_keep_total_order() {
        let ts = ring(1_000, 2);
        for v in [-8.0, -2.0, 0.0, 2.0, 8.0] {
            ts.observe_at(100, Histogram::EkfInnovation, v);
        }
        let lo = ts.hist_quantile(Histogram::EkfInnovation, 0.0, 1, 100).expect("lo");
        let mid = ts.hist_quantile(Histogram::EkfInnovation, 0.5, 1, 100).expect("mid");
        let hi = ts.hist_quantile(Histogram::EkfInnovation, 1.0, 1, 100).expect("hi");
        assert!(lo < 0.0 && (lo + 8.0).abs() / 8.0 <= SKETCH_RELATIVE_ERROR);
        assert_eq!(mid, 0.0);
        assert!(hi > 0.0 && (hi - 8.0).abs() / 8.0 <= SKETCH_RELATIVE_ERROR);
    }

    #[test]
    fn mean_and_fraction_above() {
        let ts = ring(1_000, 4);
        for v in [0.5, 1.0, 3.0, 5.0] {
            ts.observe_at(10, Histogram::EkfMeanNis, v);
        }
        let mean = ts.hist_mean(Histogram::EkfMeanNis, 1, 10).expect("mean");
        assert!((mean - 2.375).abs() < 1e-12);
        assert_eq!(ts.hist_count(Histogram::EkfMeanNis, 1, 10), 4);
        let frac = ts.hist_fraction_above(Histogram::EkfMeanNis, 2.5, 1, 10).expect("frac");
        assert!((frac - 0.5).abs() < 1e-12, "2 of 4 above 2.5, got {frac}");
        assert_eq!(ts.hist_fraction_above(Histogram::GpsGapSeconds, 1.0, 1, 10), None);
    }

    #[test]
    fn tiny_magnitudes_count_as_zero() {
        let ts = ring(1_000, 2);
        ts.observe_at(0, Histogram::FusionWeightGps, 1e-9);
        ts.observe_at(0, Histogram::FusionWeightGps, f64::NAN);
        assert_eq!(ts.hist_quantile(Histogram::FusionWeightGps, 1.0, 1, 0), Some(0.0));
    }

    #[test]
    fn recorder_wrapper_records_now() {
        let rec =
            TimeSeriesRecorder::new(TimeSeriesConfig { window_ns: 1_000_000_000, windows: 4 });
        assert!(rec.enabled());
        rec.incr(Counter::TripsProcessed, 3);
        rec.record_span(Span::ServiceFrame, 42_000);
        rec.observe(Histogram::EkfMeanNis, 1.0);
        let now = rec.now_ns();
        assert_eq!(rec.series().delta(Counter::TripsProcessed, 4, now), 3);
        assert!(rec.series().span_quantile(Span::ServiceFrame, 0.5, 4, now).is_some());
        assert_eq!(rec.series().hist_count(Histogram::EkfMeanNis, 4, now), 1);
    }

    #[test]
    fn recording_is_shareable_across_threads() {
        let ts = ring(1_000_000_000, 4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        ts.incr_at(10, Counter::ServiceFramesOk, 1);
                        ts.span_at(10, Span::ServiceFrame, 500);
                    }
                });
            }
        });
        assert_eq!(ts.delta(Counter::ServiceFramesOk, 1, 10), 400);
    }
}

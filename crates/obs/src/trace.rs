//! `obs::trace` — the flight recorder: a bounded, allocation-free ring
//! of typed events answering the *when/where* questions aggregate
//! metrics cannot (which trip diverged, where rejection fired, how the
//! Eq-6 weights shifted through a GPS dropout).
//!
//! The design mirrors an aircraft flight recorder: a fixed-capacity
//! buffer filled by the instrumented hot path through the same
//! [`Recorder`] seam the metric sinks use. Recording one event is a
//! clock read, a mutex lock, and a slot write — never an allocation.
//! When the buffer is full, *new* events are dropped and counted
//! ([`TraceRing::dropped`]); the recorded prefix of the run survives
//! intact and the warm-path zero-allocation invariant holds whether
//! the ring has room or not (`pipeline_hotpath_smoke` gates both).
//!
//! Reading happens after the fact: [`TraceRing::snapshot`] clones the
//! events out (report-side allocation, like `RunRecorder::report`),
//! and [`TraceSnapshot`] renders a timeline table, a deterministic
//! golden-test sequence, and feeds the Perfetto export
//! (`obs::export::chrome_trace_json`).

use crate::metrics::{Counter, Histogram, Span};
use crate::recorder::{saturating_ns, Recorder};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// Velocity source of a per-track event, mirrored from the core
/// pipeline's source set (obs sits below `gradest-core`, so the enum is
/// duplicated here rather than imported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSource {
    /// GPS Doppler speed track.
    Gps,
    /// Speedometer track.
    Speedometer,
    /// CAN-bus wheel-speed track.
    CanBus,
    /// Accelerometer-integrated velocity track.
    Accelerometer,
}

impl TraceSource {
    /// All four sources, in the pipeline's order (the order of the
    /// [`TraceEvent::FusionWeights`] array).
    pub const ALL: [TraceSource; 4] = [
        TraceSource::Gps,
        TraceSource::Speedometer,
        TraceSource::CanBus,
        TraceSource::Accelerometer,
    ];

    /// Stable label, matching the pipeline's track labels.
    pub fn name(self) -> &'static str {
        match self {
            TraceSource::Gps => "gps",
            TraceSource::Speedometer => "speedometer",
            TraceSource::CanBus => "can-bus",
            TraceSource::Accelerometer => "accelerometer",
        }
    }
}

/// The fleet-quality signal a [`TraceEvent::QualityAlert`] transition
/// refers to, mirroring `obs::quality`'s monitored signals (defined
/// here so the event stays a leaf type with no module cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QualitySignal {
    /// Per-window mean Eq-6 fusion weight of the monitored source.
    MeanFusionWeight,
    /// Fraction of per-track windowed mean-NIS observations outside
    /// the consistency band.
    NisOutOfBand,
    /// GPS dropout events per processed trip.
    GpsDropoutRate,
}

impl QualitySignal {
    /// All monitored signals, in report order.
    pub const ALL: [QualitySignal; 3] = [
        QualitySignal::MeanFusionWeight,
        QualitySignal::NisOutOfBand,
        QualitySignal::GpsDropoutRate,
    ];

    /// Stable label (trace lines, STATUS JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            QualitySignal::MeanFusionWeight => "mean-fusion-weight",
            QualitySignal::NisOutOfBand => "nis-out-of-band",
            QualitySignal::GpsDropoutRate => "gps-dropout-rate",
        }
    }
}

/// Health verdict carried by [`TraceEvent::EkfHealth`] transitions,
/// mirroring `gradest_core::diagnostics::FilterHealth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceHealth {
    /// Innovations consistent with the filter covariance.
    Healthy,
    /// Windowed NIS persistently hot; variances optimistic.
    Inconsistent,
    /// Divergence latched; the track should be discarded.
    Diverged,
}

impl TraceHealth {
    /// Stable label.
    pub fn name(self) -> &'static str {
        match self {
            TraceHealth::Healthy => "healthy",
            TraceHealth::Inconsistent => "inconsistent",
            TraceHealth::Diverged => "diverged",
        }
    }
}

/// One typed flight-recorder event. Every variant is `Copy` and
/// heap-free by construction — recording an event never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A per-trip estimation began.
    TripStart,
    /// A per-trip estimation finished.
    TripEnd {
        /// Lane changes accepted during the trip.
        detections: u32,
    },
    /// Algorithm 1 accepted a bump pair as a lane change.
    LaneChangeAccepted {
        /// Midpoint of the maneuver window, trip seconds.
        t_mid_s: f64,
        /// Signed Eq-1 horizontal displacement, metres.
        displacement_m: f64,
    },
    /// Algorithm 1 rejected a bump pair as an S-curve (Eq-1 width over
    /// `3·W_lane`).
    LaneChangeRejected {
        /// Midpoint of the candidate window, trip seconds.
        t_mid_s: f64,
        /// Signed Eq-1 horizontal displacement, metres.
        displacement_m: f64,
    },
    /// An EKF track's `InnovationMonitor` verdict changed.
    EkfHealth {
        /// The track whose monitor transitioned.
        source: TraceSource,
        /// Verdict before the update.
        from: TraceHealth,
        /// Verdict after the update.
        to: TraceHealth,
    },
    /// A track finished its trip with divergence latched.
    TrackDiverged {
        /// The diverged track.
        source: TraceSource,
    },
    /// Per-trip mean Eq-6 fusion weights, one slot per
    /// [`TraceSource::ALL`] entry (0 when a source produced no track).
    FusionWeights {
        /// Mean convex-combination weight per source.
        weights: [f64; 4],
    },
    /// A gap in valid GPS fixes longer than the detection threshold.
    GpsGap {
        /// Last valid fix before the gap, trip seconds.
        t_start_s: f64,
        /// Gap length, seconds.
        duration_s: f64,
    },
    /// A fleet worker picked up a job.
    FleetJobStart {
        /// Submission index of the job.
        job: u32,
    },
    /// A fleet worker finished a job.
    FleetJobEnd {
        /// Submission index of the job.
        job: u32,
    },
    /// The cloud aggregator merged one uploaded track.
    CloudUpload {
        /// Road the track was filed under.
        road_id: u64,
        /// Arc cells the merge touched.
        cells: u32,
    },
    /// A timed region completed (mirrors `Recorder::record_span`, so
    /// the trace carries the span tree the Perfetto export renders).
    SpanEnd {
        /// The completed span.
        span: Span,
        /// Its duration, nanoseconds.
        dur_ns: u64,
    },
    /// `gradest-serve` accepted a client connection.
    ServiceConnOpened {
        /// Accept-order connection index.
        conn: u32,
    },
    /// A `gradest-serve` connection closed (client EOF, error, or drain).
    ServiceConnClosed {
        /// Accept-order connection index.
        conn: u32,
        /// Request frames handled on the connection.
        frames: u32,
    },
    /// `gradest-serve` refused work with a BUSY frame.
    ServiceBusy {
        /// Accept-order connection index (the accept counter when the
        /// refusal happened at accept time).
        conn: u32,
        /// Typed busy reason code (`protocol::BUSY_QUEUE_FULL` /
        /// `protocol::BUSY_DRAINING` in `gradest-serve`).
        reason: u8,
    },
    /// `gradest-serve` rejected a malformed frame with a typed ERR frame.
    ServiceFrameRejected {
        /// Accept-order connection index.
        conn: u32,
        /// Typed decode-error code (`protocol::DecodeError::code`).
        code: u8,
    },
    /// `gradest-serve` began its shutdown drain.
    ServiceDrain {
        /// Uploads still in flight when the drain gate closed.
        in_flight: u32,
    },
    /// A quality drift monitor crossed its Page–Hinkley threshold
    /// (`raised`) or returned below it (`!raised`).
    QualityAlert {
        /// The monitored signal that transitioned.
        signal: QualitySignal,
        /// `true` when the alert raised, `false` when it cleared.
        raised: bool,
    },
}

impl TraceEvent {
    /// Stable kind label (the Perfetto event name and the first token
    /// of the golden sequence line).
    pub fn kind(self) -> &'static str {
        match self {
            TraceEvent::TripStart => "trip-start",
            TraceEvent::TripEnd { .. } => "trip-end",
            TraceEvent::LaneChangeAccepted { .. } => "lane-change-accepted",
            TraceEvent::LaneChangeRejected { .. } => "lane-change-rejected",
            TraceEvent::EkfHealth { .. } => "ekf-health",
            TraceEvent::TrackDiverged { .. } => "track-diverged",
            TraceEvent::FusionWeights { .. } => "fusion-weights",
            TraceEvent::GpsGap { .. } => "gps-gap",
            TraceEvent::FleetJobStart { .. } => "fleet-job-start",
            TraceEvent::FleetJobEnd { .. } => "fleet-job-end",
            TraceEvent::CloudUpload { .. } => "cloud-upload",
            TraceEvent::SpanEnd { .. } => "span-end",
            TraceEvent::ServiceConnOpened { .. } => "service-conn-opened",
            TraceEvent::ServiceConnClosed { .. } => "service-conn-closed",
            TraceEvent::ServiceBusy { .. } => "service-busy",
            TraceEvent::ServiceFrameRejected { .. } => "service-frame-rejected",
            TraceEvent::ServiceDrain { .. } => "service-drain",
            TraceEvent::QualityAlert { .. } => "quality-alert",
        }
    }

    /// Deterministic payload rendering: everything except wall-clock
    /// quantities (span durations are elided; simulated trip times and
    /// Eq-1/Eq-6 values are seed-deterministic and included). This is
    /// the golden-test surface of one event.
    pub fn sequence_line(self) -> String {
        match self {
            TraceEvent::TripStart => "trip-start".to_string(),
            TraceEvent::TripEnd { detections } => format!("trip-end detections={detections}"),
            TraceEvent::LaneChangeAccepted { t_mid_s, displacement_m } => {
                format!("lane-change-accepted t={t_mid_s:.2}s w={displacement_m:.3}m")
            }
            TraceEvent::LaneChangeRejected { t_mid_s, displacement_m } => {
                format!("lane-change-rejected t={t_mid_s:.2}s w={displacement_m:.3}m")
            }
            TraceEvent::EkfHealth { source, from, to } => {
                format!("ekf-health {} {}->{}", source.name(), from.name(), to.name())
            }
            TraceEvent::TrackDiverged { source } => {
                format!("track-diverged {}", source.name())
            }
            TraceEvent::FusionWeights { weights } => {
                let mut line = String::from("fusion-weights");
                for (src, w) in TraceSource::ALL.iter().zip(weights.iter()) {
                    let _ = write!(line, " {}={:.3}", src.name(), w);
                }
                line
            }
            TraceEvent::GpsGap { t_start_s, duration_s } => {
                format!("gps-gap t={t_start_s:.2}s dur={duration_s:.2}s")
            }
            TraceEvent::FleetJobStart { job } => format!("fleet-job-start job={job}"),
            TraceEvent::FleetJobEnd { job } => format!("fleet-job-end job={job}"),
            TraceEvent::CloudUpload { road_id, cells } => {
                format!("cloud-upload road={road_id} cells={cells}")
            }
            TraceEvent::SpanEnd { span, .. } => format!("span-end {}", span.name()),
            TraceEvent::ServiceConnOpened { conn } => {
                format!("service-conn-opened conn={conn}")
            }
            TraceEvent::ServiceConnClosed { conn, frames } => {
                format!("service-conn-closed conn={conn} frames={frames}")
            }
            TraceEvent::ServiceBusy { conn, reason } => {
                format!("service-busy conn={conn} reason={reason}")
            }
            TraceEvent::ServiceFrameRejected { conn, code } => {
                format!("service-frame-rejected conn={conn} code={code}")
            }
            TraceEvent::ServiceDrain { in_flight } => {
                format!("service-drain in-flight={in_flight}")
            }
            TraceEvent::QualityAlert { signal, raised } => {
                let edge = if raised { "raised" } else { "cleared" };
                format!("quality-alert {} {edge}", signal.name())
            }
        }
    }
}

/// One recorded event with its capture context: nanoseconds since the
/// ring's construction and the recording thread's lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Nanoseconds since [`TraceRing`] construction.
    pub ts_ns: u64,
    /// Recording thread's lane (stable small integer per thread; lane
    /// [`TraceRing::LANE_OVERFLOW`] collects threads beyond the fixed
    /// lane table).
    pub lane: u8,
    /// The event itself.
    pub event: TraceEvent,
}

/// Threads the lane table distinguishes; later threads share the
/// overflow lane.
const MAX_LANES: usize = 32;

/// Interior state of the ring: the bounded event buffer plus the
/// thread-to-lane table (kept under the same lock so lane assignment
/// is race-free without a second synchronization point).
#[derive(Debug)]
struct RingState {
    buf: Vec<TraceRecord>,
    lanes: [Option<ThreadId>; MAX_LANES],
}

/// The bounded flight recorder. Implements [`Recorder`], so any
/// instrumented entry point (`estimate_into_recorded`,
/// `process_batch_recorded`, …) can write into it — alone or fanned
/// out together with a `RunRecorder` through [`Tee`].
///
/// Capacity is fixed at construction; recording into a full ring drops
/// the new event and bumps [`TraceRing::dropped`]. Dropping is *silent
/// and allocation-free* on the record side by design — a flight
/// recorder must never slow the flight.
#[derive(Debug)]
pub struct TraceRing {
    epoch: Instant,
    capacity: usize,
    // sync: one mutex guards the event buffer and the lane table
    // together (an event write needs its lane in the same critical
    // section). Recording threads contend only on this lock; a
    // poisoned ring is skipped, never unwrapped.
    state: Mutex<RingState>,
    // sync: overflow tally incremented outside the buffer lock;
    // Relaxed — standalone statistic read after the recorded work
    // completes, exactness from fetch_add atomicity alone.
    dropped: AtomicU64,
}

impl TraceRing {
    /// The shared lane index for threads beyond the fixed lane table.
    pub const LANE_OVERFLOW: u8 = (MAX_LANES - 1) as u8;

    /// Creates a ring holding at most `capacity` events (at least one).
    /// The buffer is allocated here, once — recording never grows it.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            epoch: Instant::now(),
            capacity,
            // sync: see field comment — buffer + lane table under one lock.
            state: Mutex::new(RingState {
                buf: Vec::with_capacity(capacity),
                lanes: [None; MAX_LANES],
            }),
            // sync: see field comment — Relaxed statistic.
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        // sync: Relaxed — standalone statistic (see field comment).
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        // sync: buffer length read under the state lock.
        self.state.lock().map(|st| st.buf.len()).unwrap_or(0)
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records one event: timestamp, lane lookup, bounded push. Drops
    /// and counts when full. Never allocates.
    fn push(&self, event: TraceEvent) {
        let ts_ns = saturating_ns(self.epoch);
        let id = std::thread::current().id();
        if let Ok(mut st) = self.state.lock() {
            if st.buf.len() >= self.capacity {
                drop(st);
                // sync: Relaxed statistic bump (see field comment).
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let mut lane = Self::LANE_OVERFLOW;
            for (i, slot) in st.lanes.iter_mut().enumerate() {
                match slot {
                    Some(existing) if *existing == id => {
                        lane = i as u8;
                        break;
                    }
                    None => {
                        *slot = Some(id);
                        lane = i as u8;
                        break;
                    }
                    Some(_) => {}
                }
            }
            st.buf.push(TraceRecord { ts_ns, lane, event });
        }
    }

    /// Clones the recorded events out for reading (report-side
    /// allocation, after the measured work — like
    /// `RunRecorder::report`).
    pub fn snapshot(&self) -> TraceSnapshot {
        let events = match self.state.lock() {
            Ok(st) => st.buf.clone(),
            Err(_) => Vec::new(),
        };
        TraceSnapshot { events, dropped: self.dropped(), capacity: self.capacity }
    }
}

impl Recorder for TraceRing {
    fn record_span(&self, span: Span, ns: u64) {
        self.push(TraceEvent::SpanEnd { span, dur_ns: ns });
    }

    fn event(&self, ev: TraceEvent) {
        self.push(ev);
    }

    fn dropped_events(&self) -> u64 {
        self.dropped()
    }
}

/// A point-in-time copy of a [`TraceRing`]'s contents, ready for
/// rendering and export.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Recorded events, in capture order.
    pub events: Vec<TraceRecord>,
    /// Events lost to overflow while recording.
    pub dropped: u64,
    /// The ring's capacity (for overflow context in reports).
    pub capacity: usize,
}

impl TraceSnapshot {
    /// Deterministic golden-test surface: one [`TraceEvent::sequence_line`]
    /// per event, no timestamps or lanes, plus a trailing drop count.
    /// Identical workloads (serial, fixed seeds) produce byte-identical
    /// strings.
    pub fn sequence_string(&self) -> String {
        let mut out = String::new();
        for rec in &self.events {
            out.push_str(&rec.event.sequence_line());
            out.push('\n');
        }
        let _ = writeln!(out, "dropped={}", self.dropped);
        out
    }

    /// Human-readable timeline table: capture time (milliseconds since
    /// ring construction), lane, and the event line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:>12} {:>4}  event", "t_ms", "lane");
        for rec in &self.events {
            let _ = writeln!(
                out,
                "{:>12.3} {:>4}  {}",
                rec.ts_ns as f64 / 1.0e6,
                rec.lane,
                rec.event.sequence_line()
            );
        }
        let _ = writeln!(
            out,
            "{} event(s), {} dropped (capacity {})",
            self.events.len(),
            self.dropped,
            self.capacity
        );
        out
    }
}

/// Fans one recording out to two sinks — typically a `RunRecorder`
/// (aggregates) and a [`TraceRing`] (timeline) over the same run.
/// `enabled()` is the OR of the halves, and each sink still sees every
/// call, so either half may be a no-op without silencing the other.
#[derive(Debug, Clone, Copy)]
pub struct Tee<A, B> {
    /// First sink.
    pub a: A,
    /// Second sink.
    pub b: B,
}

impl<A: Recorder, B: Recorder> Tee<A, B> {
    /// Pairs two sinks (pass references: `Tee::new(&run, &ring)`).
    pub fn new(a: A, b: B) -> Self {
        Tee { a, b }
    }
}

impl<A: Recorder, B: Recorder> Recorder for Tee<A, B> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn record_span(&self, span: Span, ns: u64) {
        self.a.record_span(span, ns);
        self.b.record_span(span, ns);
    }

    fn incr(&self, counter: Counter, by: u64) {
        self.a.incr(counter, by);
        self.b.incr(counter, by);
    }

    fn observe(&self, hist: Histogram, value: f64) {
        self.a.observe(hist, value);
        self.b.observe(hist, value);
    }

    fn event(&self, ev: TraceEvent) {
        self.a.event(ev);
        self.b.event(ev);
    }

    fn dropped_events(&self) -> u64 {
        self.a.dropped_events() + self.b.dropped_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::NoopRecorder;
    use crate::run::RunRecorder;

    #[test]
    fn records_events_in_order() {
        let ring = TraceRing::with_capacity(16);
        ring.event(TraceEvent::TripStart);
        ring.event(TraceEvent::GpsGap { t_start_s: 10.0, duration_s: 4.0 });
        ring.event(TraceEvent::TripEnd { detections: 2 });
        let snap = ring.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped, 0);
        assert_eq!(
            snap.sequence_string(),
            "trip-start\ngps-gap t=10.00s dur=4.00s\ntrip-end detections=2\ndropped=0\n"
        );
        // Timestamps are monotone non-decreasing in capture order.
        for w in snap.events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
        // Single-threaded capture lands on lane 0.
        assert!(snap.events.iter().all(|r| r.lane == 0));
    }

    #[test]
    fn overflow_drops_and_counts() {
        let ring = TraceRing::with_capacity(2);
        for i in 0..5 {
            ring.event(TraceEvent::FleetJobStart { job: i });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let snap = ring.snapshot();
        // The *first* events survive; overflow drops the new ones.
        assert_eq!(snap.events[0].event, TraceEvent::FleetJobStart { job: 0 });
        assert_eq!(snap.events[1].event, TraceEvent::FleetJobStart { job: 1 });
        assert!(snap.sequence_string().ends_with("dropped=3\n"));
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let ring = TraceRing::with_capacity(0);
        assert_eq!(ring.capacity(), 1);
        ring.event(TraceEvent::TripStart);
        ring.event(TraceEvent::TripStart);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn span_recording_becomes_span_end_events() {
        let ring = TraceRing::with_capacity(4);
        ring.record_span(Span::Trip, 1234);
        let snap = ring.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].event, TraceEvent::SpanEnd { span: Span::Trip, dur_ns: 1234 });
        // Durations are elided from the golden surface.
        assert_eq!(snap.events[0].event.sequence_line(), "span-end trip");
    }

    #[test]
    fn lanes_distinguish_threads() {
        let ring = TraceRing::with_capacity(64);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..4 {
                        ring.event(TraceEvent::TripStart);
                    }
                });
            }
        });
        let snap = ring.snapshot();
        assert_eq!(snap.events.len(), 12);
        let mut lanes: Vec<u8> = snap.events.iter().map(|r| r.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), 3, "three threads must land on three lanes");
    }

    #[test]
    fn tee_fans_out_to_both_sinks() {
        let run = RunRecorder::new();
        let ring = TraceRing::with_capacity(8);
        let tee = Tee::new(&run, &ring);
        assert!(tee.enabled());
        tee.incr(Counter::TripsProcessed, 1);
        tee.observe(Histogram::EkfInnovation, 0.5);
        tee.record_span(Span::Trip, 100);
        tee.event(TraceEvent::TripEnd { detections: 0 });
        let report = run.report();
        assert_eq!(report.counter("trips-processed"), Some(1));
        assert_eq!(report.span("trip").map(|s| s.count), Some(1));
        let snap = ring.snapshot();
        // The ring keeps the span end and the event; counters and
        // histograms are the RunRecorder's job.
        assert_eq!(snap.events.len(), 2);
    }

    #[test]
    fn tee_with_noop_half_stays_enabled() {
        let ring = TraceRing::with_capacity(8);
        let tee = Tee::new(NoopRecorder, &ring);
        assert!(tee.enabled(), "live ring must keep the tee enabled");
        tee.event(TraceEvent::TripStart);
        assert_eq!(ring.len(), 1);
        let both_off = Tee::new(NoopRecorder, NoopRecorder);
        assert!(!both_off.enabled());
    }

    #[test]
    fn event_kinds_are_unique_and_stable() {
        let samples = [
            TraceEvent::TripStart,
            TraceEvent::TripEnd { detections: 0 },
            TraceEvent::LaneChangeAccepted { t_mid_s: 0.0, displacement_m: 0.0 },
            TraceEvent::LaneChangeRejected { t_mid_s: 0.0, displacement_m: 0.0 },
            TraceEvent::EkfHealth {
                source: TraceSource::Gps,
                from: TraceHealth::Healthy,
                to: TraceHealth::Inconsistent,
            },
            TraceEvent::TrackDiverged { source: TraceSource::Gps },
            TraceEvent::FusionWeights { weights: [0.25; 4] },
            TraceEvent::GpsGap { t_start_s: 0.0, duration_s: 0.0 },
            TraceEvent::FleetJobStart { job: 0 },
            TraceEvent::FleetJobEnd { job: 0 },
            TraceEvent::CloudUpload { road_id: 0, cells: 0 },
            TraceEvent::SpanEnd { span: Span::Trip, dur_ns: 0 },
            TraceEvent::ServiceConnOpened { conn: 0 },
            TraceEvent::ServiceConnClosed { conn: 0, frames: 0 },
            TraceEvent::ServiceBusy { conn: 0, reason: 0 },
            TraceEvent::ServiceFrameRejected { conn: 0, code: 0 },
            TraceEvent::ServiceDrain { in_flight: 0 },
            TraceEvent::QualityAlert { signal: QualitySignal::MeanFusionWeight, raised: true },
        ];
        let mut kinds: Vec<&str> = samples.iter().map(|e| e.kind()).collect();
        let total = kinds.len();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), total, "duplicate event kind");
        // Every sequence line leads with its kind.
        for e in samples {
            assert!(e.sequence_line().starts_with(e.kind()), "{:?}", e);
        }
    }
}

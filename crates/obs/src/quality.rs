//! Fleet-wide estimation-quality drift monitors.
//!
//! The crowd-sourcing loop only works if the cloud notices when the
//! fused gradient map is getting *worse* — a biased sensor population,
//! a GPS-hostile corridor, a remounted-phone epidemic. Per-track
//! `InnovationMonitor` verdicts and Eq-6 fusion weights already flow
//! through the recorder seam; this module watches their per-window
//! aggregates over an [`crate::timeseries::TimeSeries`] ring and flags
//! sustained drift:
//!
//! - [`QualitySignal::MeanFusionWeight`]: per-window mean Eq-6 weight
//!   of a canary source (default the accelerometer track — dead
//!   reckoning degrades first when the IMU population sours). Watched
//!   for *downward* drift.
//! - [`QualitySignal::NisOutOfBand`]: fraction of per-track windowed
//!   mean-NIS observations above the consistency band (the same 2.5
//!   bound `MonitorConfig::inconsistent_nis` uses). Watched *upward*.
//! - [`QualitySignal::GpsDropoutRate`]: GPS dropout events per
//!   processed trip. Watched *upward*.
//!
//! Each signal runs an EWMA smoother feeding a one-sided Page–Hinkley
//! cumulative test — the standard sequential change-point detector: it
//! accumulates deviations beyond a drift allowance `delta` and alarms
//! when the cumulative excursion from its running extremum exceeds
//! `lambda`. Alerts latch until the excursion resets, and every edge
//! emits a [`TraceEvent::QualityAlert`] plus a counter bump through
//! the recorder, so drift lands in the flight recorder and the
//! Prometheus exposition without polling.

use crate::metrics::{Counter, Histogram};
use crate::recorder::Recorder;
use crate::timeseries::TimeSeries;
use crate::trace::{QualitySignal, TraceEvent};

/// Tuning for one Page–Hinkley detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// EWMA smoothing factor in `(0, 1]` (1 = no smoothing).
    pub ewma_alpha: f64,
    /// Drift allowance: per-window deviation tolerated before the
    /// cumulative sum grows.
    pub delta: f64,
    /// Alarm threshold on the cumulative excursion.
    pub lambda: f64,
    /// Windows of evidence required before the detector may alarm
    /// (it still learns its baseline during this burn-in).
    pub min_windows: u32,
}

/// Tuning for the whole monitor set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityConfig {
    /// Which fusion-weight histogram the canary watches.
    pub weight_hist: Histogram,
    /// Mean-NIS bound above which an observation counts out-of-band
    /// (matches `MonitorConfig::inconsistent_nis`).
    pub nis_bound: f64,
    /// Windows each per-window statistic aggregates over (smooths the
    /// shot noise of sparse uploads).
    pub lookback: usize,
    /// Detector for [`QualitySignal::MeanFusionWeight`] (downward).
    pub weight: DetectorConfig,
    /// Detector for [`QualitySignal::NisOutOfBand`] (upward).
    pub nis: DetectorConfig,
    /// Detector for [`QualitySignal::GpsDropoutRate`] (upward).
    pub gps: DetectorConfig,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            weight_hist: Histogram::FusionWeightAccelerometer,
            nis_bound: 2.5,
            lookback: 5,
            // Fusion weights live in [0, 1]; a sustained drop of a few
            // hundredths below baseline is a real redistribution.
            weight: DetectorConfig { ewma_alpha: 0.5, delta: 0.01, lambda: 0.05, min_windows: 3 },
            // The out-of-band fraction is ~0 for a healthy fleet.
            nis: DetectorConfig { ewma_alpha: 0.5, delta: 0.05, lambda: 0.5, min_windows: 3 },
            // Dropouts per trip: healthy synthetic fleets sit near 0.
            gps: DetectorConfig { ewma_alpha: 0.5, delta: 0.05, lambda: 0.5, min_windows: 3 },
        }
    }
}

/// Drift direction a detector watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Up,
    Down,
}

/// One EWMA + Page–Hinkley detector instance.
#[derive(Debug, Clone)]
struct Detector {
    signal: QualitySignal,
    direction: Direction,
    cfg: DetectorConfig,
    ewma: Option<f64>,
    /// Running mean of the (smoothed) signal — the PH baseline.
    mean: f64,
    /// Cumulative sum of directed deviations beyond `delta`.
    cum: f64,
    /// Running extremum of `cum` (minimum — deviations are oriented so
    /// drift pushes `cum` up regardless of direction).
    cum_min: f64,
    windows: u32,
    alert: bool,
}

impl Detector {
    fn new(signal: QualitySignal, direction: Direction, cfg: DetectorConfig) -> Self {
        Detector {
            signal,
            direction,
            cfg,
            ewma: None,
            mean: 0.0,
            cum: 0.0,
            cum_min: 0.0,
            windows: 0,
            alert: false,
        }
    }

    /// Feeds one per-window statistic; returns `Some(edge)` when the
    /// alert state flipped (`true` = raised).
    fn update(&mut self, value: f64) -> Option<bool> {
        if !value.is_finite() {
            return None;
        }
        let alpha = self.cfg.ewma_alpha.clamp(1.0e-6, 1.0);
        let smoothed = match self.ewma {
            Some(prev) => prev + alpha * (value - prev),
            None => value,
        };
        self.ewma = Some(smoothed);
        self.windows += 1;
        let n = self.windows as f64;
        self.mean += (smoothed - self.mean) / n;
        // Orient deviations so the watched drift direction is positive.
        let dev = match self.direction {
            Direction::Up => smoothed - self.mean,
            Direction::Down => self.mean - smoothed,
        };
        self.cum += dev - self.cfg.delta;
        self.cum_min = self.cum_min.min(self.cum);
        let excursion = self.cum - self.cum_min;
        let alarming = self.windows >= self.cfg.min_windows && excursion > self.cfg.lambda;
        if alarming != self.alert {
            self.alert = alarming;
            return Some(alarming);
        }
        None
    }
}

/// Latest state of one monitored signal, for reports and STATUS JSON.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalReport {
    /// Which signal.
    pub signal: QualitySignal,
    /// Last raw per-window statistic fed to the detector (NaN before
    /// any window carried data).
    pub value: f64,
    /// Current EWMA-smoothed statistic (NaN before any data).
    pub ewma: f64,
    /// Current Page–Hinkley excursion (compare against `lambda`).
    pub excursion: f64,
    /// Whether the drift alert is raised.
    pub drifting: bool,
    /// Windows of evidence consumed so far.
    pub windows: u32,
}

/// Snapshot of all monitored signals.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// One entry per [`QualitySignal::ALL`], in that order.
    pub signals: Vec<SignalReport>,
}

impl QualityReport {
    /// Whether any signal is currently drifting.
    pub fn any_drifting(&self) -> bool {
        self.signals.iter().any(|s| s.drifting)
    }
}

/// The fleet-quality monitor set: ticks once per elapsed time-series
/// window, reading per-window aggregates from the ring and pushing
/// alert edges back through the recorder.
///
/// Single-owner by design (`&mut self` tick) — the service wraps it in
/// its shared state's mutex and lets whichever worker crosses a window
/// boundary run the tick.
#[derive(Debug)]
pub struct QualityMonitors {
    cfg: QualityConfig,
    detectors: [Detector; 3],
    last_values: [f64; 3],
    /// Last fully processed absolute window index.
    last_window: Option<u64>,
}

impl QualityMonitors {
    /// A monitor set with no evidence yet.
    pub fn new(cfg: QualityConfig) -> Self {
        QualityMonitors {
            cfg,
            detectors: [
                Detector::new(QualitySignal::MeanFusionWeight, Direction::Down, cfg.weight),
                Detector::new(QualitySignal::NisOutOfBand, Direction::Up, cfg.nis),
                Detector::new(QualitySignal::GpsDropoutRate, Direction::Up, cfg.gps),
            ],
            last_values: [f64::NAN; 3],
            last_window: None,
        }
    }

    /// Advances the monitors to `now_ns`. Processes each *completed*
    /// window exactly once (multiple calls inside one window are
    /// no-ops); windows that elapsed unseen are skipped, not
    /// back-filled — drift detection needs only the live suffix.
    /// Returns how many alert edges fired.
    pub fn tick<R: Recorder>(&mut self, ts: &TimeSeries, now_ns: u64, rec: &R) -> usize {
        let cur = ts.window_index(now_ns);
        // Window `cur` is still filling; the newest complete one is its
        // predecessor.
        let Some(complete) = cur.checked_sub(1) else {
            return 0;
        };
        if self.last_window == Some(complete) {
            return 0;
        }
        self.last_window = Some(complete);
        // Evaluate the lookback suffix ending at the completed window.
        let end_ns = complete.saturating_mul(ts.config().window_ns);
        let lookback = self.cfg.lookback.max(1);
        let mut edges = 0usize;

        let weight = ts.hist_mean(self.cfg.weight_hist, lookback, end_ns);
        let nis =
            ts.hist_fraction_above(Histogram::EkfMeanNis, self.cfg.nis_bound, lookback, end_ns);
        let trips = ts.delta(Counter::TripsProcessed, lookback, end_ns);
        let gaps = ts.delta(Counter::GpsGaps, lookback, end_ns);
        let gps = if trips == 0 { None } else { Some(gaps as f64 / trips as f64) };

        for (i, value) in [weight, nis, gps].into_iter().enumerate() {
            let Some(value) = value else {
                continue;
            };
            self.last_values[i] = value;
            if let Some(raised) = self.detectors[i].update(value) {
                edges += 1;
                let signal = self.detectors[i].signal;
                rec.event(TraceEvent::QualityAlert { signal, raised });
                let counter = if raised {
                    Counter::QualityAlertsRaised
                } else {
                    Counter::QualityAlertsCleared
                };
                rec.incr(counter, 1);
            }
        }
        edges
    }

    /// Current state of every signal.
    pub fn report(&self) -> QualityReport {
        let signals = self
            .detectors
            .iter()
            .enumerate()
            .map(|(i, d)| SignalReport {
                signal: d.signal,
                value: self.last_values[i],
                ewma: d.ewma.unwrap_or(f64::NAN),
                excursion: d.cum - d.cum_min,
                drifting: d.alert,
                windows: d.windows,
            })
            .collect();
        QualityReport { signals }
    }

    /// Whether any signal is currently drifting.
    pub fn any_drifting(&self) -> bool {
        self.detectors.iter().any(|d| d.alert)
    }
}

impl Default for QualityMonitors {
    fn default() -> Self {
        Self::new(QualityConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunRecorder;
    use crate::timeseries::TimeSeriesConfig;
    use crate::trace::TraceRing;

    const W: u64 = 1_000; // window width, test nanoseconds

    fn ring() -> TimeSeries {
        TimeSeries::new(TimeSeriesConfig { window_ns: W, windows: 32 })
    }

    /// Feed one window's worth of healthy observations.
    fn healthy_window(ts: &TimeSeries, w: u64) {
        let t = w * W;
        ts.incr_at(t, Counter::TripsProcessed, 4);
        ts.observe_at(t, Histogram::FusionWeightAccelerometer, 0.25);
        ts.observe_at(t, Histogram::EkfMeanNis, 1.0);
    }

    /// Feed one window of a degraded fleet: the canary weight collapses
    /// and NIS runs hot.
    fn degraded_window(ts: &TimeSeries, w: u64) {
        let t = w * W;
        ts.incr_at(t, Counter::TripsProcessed, 4);
        ts.incr_at(t, Counter::GpsGaps, 8);
        ts.observe_at(t, Histogram::FusionWeightAccelerometer, 0.02);
        ts.observe_at(t, Histogram::EkfMeanNis, 8.0);
    }

    #[test]
    fn healthy_fleet_never_alerts() {
        let ts = ring();
        let mut mon = QualityMonitors::default();
        let rec = RunRecorder::new();
        for w in 0..20 {
            healthy_window(&ts, w);
            assert_eq!(mon.tick(&ts, (w + 1) * W, &rec), 0, "window {w}");
        }
        assert!(!mon.any_drifting());
        assert_eq!(rec.counter_value(Counter::QualityAlertsRaised), 0);
        let report = mon.report();
        assert_eq!(report.signals.len(), 3);
        assert!(!report.any_drifting());
        let weight = &report.signals[0];
        assert_eq!(weight.signal, QualitySignal::MeanFusionWeight);
        assert!((weight.value - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degradation_raises_alerts_and_emits_events() {
        let ts = ring();
        let mut mon = QualityMonitors::default();
        let run = RunRecorder::new();
        let trace = TraceRing::with_capacity(64);
        let rec = crate::trace::Tee::new(&run, &trace);
        for w in 0..8 {
            healthy_window(&ts, w);
            mon.tick(&ts, (w + 1) * W, &rec);
        }
        assert!(!mon.any_drifting(), "healthy baseline must stay quiet");
        let mut raised_at = None;
        for w in 8..20 {
            degraded_window(&ts, w);
            if mon.tick(&ts, (w + 1) * W, &rec) > 0 && raised_at.is_none() {
                raised_at = Some(w);
            }
        }
        let raised_at = raised_at.expect("sustained degradation must raise an alert");
        assert!(raised_at <= 14, "alert latency too high: window {raised_at}");
        assert!(mon.any_drifting());
        assert!(run.counter_value(Counter::QualityAlertsRaised) >= 1);
        let seq = trace.snapshot().sequence_string();
        assert!(seq.contains("quality-alert"), "alert edge must land in the trace:\n{seq}");
        let report = mon.report();
        assert!(report.any_drifting());
    }

    #[test]
    fn tick_is_idempotent_within_a_window() {
        let ts = ring();
        let mut mon = QualityMonitors::default();
        let rec = RunRecorder::new();
        healthy_window(&ts, 0);
        mon.tick(&ts, W + 1, &rec);
        let before = mon.report();
        mon.tick(&ts, W + 500, &rec);
        assert_eq!(mon.report(), before, "same window must not re-feed the detectors");
    }

    #[test]
    fn empty_windows_leave_detectors_unfed() {
        let ts = ring();
        let mut mon = QualityMonitors::default();
        let rec = RunRecorder::new();
        mon.tick(&ts, 5 * W, &rec);
        let report = mon.report();
        assert!(report.signals.iter().all(|s| s.windows == 0));
        assert!(report.signals.iter().all(|s| s.value.is_nan()));
    }

    #[test]
    fn page_hinkley_detects_a_step_without_false_positives() {
        // Pure detector: flat signal, then a step beyond delta.
        let cfg = DetectorConfig { ewma_alpha: 1.0, delta: 0.01, lambda: 0.05, min_windows: 3 };
        let mut d = Detector::new(QualitySignal::NisOutOfBand, Direction::Up, cfg);
        for _ in 0..50 {
            assert_eq!(d.update(0.1), None, "flat signal must not alarm");
        }
        let mut raised = false;
        for _ in 0..10 {
            if d.update(0.4) == Some(true) {
                raised = true;
                break;
            }
        }
        assert!(raised, "a 0.3 step with lambda=0.05 must alarm within 10 windows");
    }
}

//! `obs::health` — fleet-level quality screening.
//!
//! Crowd-sourced grade estimation lives or dies on per-track quality
//! screening before fusion: one phone with a bad mount or a starved
//! GPS can poison a cloud cell for everyone. The pipeline's
//! `InnovationMonitor` produces a per-track verdict
//! (healthy/inconsistent/diverged) plus a windowed mean NIS; the
//! recorded entry points fold those into `RunRecorder` counters and the
//! `ekf-mean-nis` histogram. [`FleetHealth::from_run`] reads that back
//! as one fleet-level report: track verdict counts, health-transition
//! churn, NIS bands, and GPS dropout rates — the per-segment confidence
//! context a map consumer needs next to the gradient number.

use crate::metrics::{Counter, Histogram};
use crate::run::{RunRecorder, DECADE_MIN_EXP};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Aggregated fleet quality over everything one [`RunRecorder`] saw.
///
/// All fields derive from counters and decade buckets, so building the
/// report is cheap and the underlying recorder keeps no raw
/// observations. Serializable (named fields only) for embedding in
/// bench JSON and the Prometheus export.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetHealth {
    /// Trips processed.
    pub trips: u64,
    /// Per-source tracks that finished `Healthy`.
    pub tracks_healthy: u64,
    /// Per-source tracks that finished `Inconsistent`.
    pub tracks_degraded: u64,
    /// Per-source tracks that finished `Diverged`.
    pub tracks_diverged: u64,
    /// Monitor transitions out of `Healthy` during tracking.
    pub health_degraded_transitions: u64,
    /// Monitor transitions back to `Healthy` during tracking.
    pub health_recovered_transitions: u64,
    /// GPS dropouts detected (gaps between valid fixes over threshold).
    pub gps_gaps: u64,
    /// Mean dropouts per trip (0 when no trips ran).
    pub gps_gap_rate_per_trip: f64,
    /// Tracks contributing a windowed mean NIS sample.
    pub nis_tracks: u64,
    /// Mean of the per-track mean NIS samples (~1 for honest filters).
    pub nis_mean: f64,
    /// Tracks with mean NIS below 1 (conservative covariance).
    pub nis_band_lt_1: u64,
    /// Tracks with mean NIS in `[1, 10)` (consistent band).
    pub nis_band_1_to_10: u64,
    /// Tracks with mean NIS in `[10, 100)` (optimistic covariance).
    pub nis_band_10_to_100: u64,
    /// Tracks with mean NIS at or above 100 (divergence territory).
    pub nis_band_ge_100: u64,
}

impl FleetHealth {
    /// Fold a recorder's health counters and NIS decade buckets into a
    /// fleet report. Works on a recorder from one trip or a whole
    /// fleet batch — the counters already aggregate across workers.
    pub fn from_run(rec: &RunRecorder) -> FleetHealth {
        let trips = rec.counter_value(Counter::TripsProcessed);
        let gps_gaps = rec.counter_value(Counter::GpsGaps);
        let (nis_tracks, nis_mean) = rec.histogram_stats(Histogram::EkfMeanNis).unwrap_or((0, 0.0));
        let decades = rec.histogram_decades(Histogram::EkfMeanNis);
        // Decade bucket i covers magnitudes with exponent
        // i + DECADE_MIN_EXP, so the NIS bands are contiguous slices:
        // exponents <= -1, exactly 0, exactly 1, and >= 2.
        let band = |lo_exp: i32, hi_exp: i32| -> u64 {
            decades
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let exp = *i as i32 + DECADE_MIN_EXP;
                    exp >= lo_exp && exp <= hi_exp
                })
                .map(|(_, n)| *n)
                .sum()
        };
        FleetHealth {
            trips,
            tracks_healthy: rec.counter_value(Counter::TracksHealthy),
            tracks_degraded: rec.counter_value(Counter::TracksDegraded),
            tracks_diverged: rec.counter_value(Counter::TracksDiverged),
            health_degraded_transitions: rec.counter_value(Counter::EkfHealthDegraded),
            health_recovered_transitions: rec.counter_value(Counter::EkfHealthRecovered),
            gps_gaps,
            gps_gap_rate_per_trip: if trips > 0 { gps_gaps as f64 / trips as f64 } else { 0.0 },
            nis_tracks,
            nis_mean,
            nis_band_lt_1: band(i32::MIN + 1, -1),
            nis_band_1_to_10: band(0, 0),
            nis_band_10_to_100: band(1, 1),
            nis_band_ge_100: band(2, i32::MAX),
        }
    }

    /// Total tracks that reported a final verdict.
    pub fn tracks_total(&self) -> u64 {
        self.tracks_healthy + self.tracks_degraded + self.tracks_diverged
    }

    /// Fraction of verdict-reporting tracks that finished `Healthy`
    /// (1.0 when no tracks reported, so an empty fleet reads healthy).
    pub fn healthy_fraction(&self) -> f64 {
        let total = self.tracks_total();
        if total == 0 {
            1.0
        } else {
            self.tracks_healthy as f64 / total as f64
        }
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fleet health over {} trip(s)", self.trips);
        let _ = writeln!(
            out,
            "  tracks: {} healthy / {} degraded / {} diverged ({:.1}% healthy)",
            self.tracks_healthy,
            self.tracks_degraded,
            self.tracks_diverged,
            self.healthy_fraction() * 100.0,
        );
        let _ = writeln!(
            out,
            "  monitor churn: {} degraded, {} recovered transitions",
            self.health_degraded_transitions, self.health_recovered_transitions,
        );
        let _ = writeln!(
            out,
            "  mean NIS: {:.3} over {} track(s); bands <1:{} 1-10:{} 10-100:{} >=100:{}",
            self.nis_mean,
            self.nis_tracks,
            self.nis_band_lt_1,
            self.nis_band_1_to_10,
            self.nis_band_10_to_100,
            self.nis_band_ge_100,
        );
        let _ = writeln!(
            out,
            "  gps dropouts: {} ({:.2} per trip)",
            self.gps_gaps, self.gps_gap_rate_per_trip,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn seeded_recorder() -> RunRecorder {
        let rec = RunRecorder::new();
        rec.incr(Counter::TripsProcessed, 4);
        rec.incr(Counter::TracksHealthy, 13);
        rec.incr(Counter::TracksDegraded, 2);
        rec.incr(Counter::TracksDiverged, 1);
        rec.incr(Counter::EkfHealthDegraded, 5);
        rec.incr(Counter::EkfHealthRecovered, 3);
        rec.incr(Counter::GpsGaps, 6);
        // One NIS sample per band.
        rec.observe(Histogram::EkfMeanNis, 0.4);
        rec.observe(Histogram::EkfMeanNis, 2.5);
        rec.observe(Histogram::EkfMeanNis, 40.0);
        rec.observe(Histogram::EkfMeanNis, 300.0);
        rec
    }

    #[test]
    fn from_run_folds_counters_and_bands() {
        let h = FleetHealth::from_run(&seeded_recorder());
        assert_eq!(h.trips, 4);
        assert_eq!(h.tracks_healthy, 13);
        assert_eq!(h.tracks_degraded, 2);
        assert_eq!(h.tracks_diverged, 1);
        assert_eq!(h.tracks_total(), 16);
        assert_eq!(h.health_degraded_transitions, 5);
        assert_eq!(h.health_recovered_transitions, 3);
        assert_eq!(h.gps_gaps, 6);
        assert!((h.gps_gap_rate_per_trip - 1.5).abs() < 1e-12);
        assert_eq!(h.nis_tracks, 4);
        assert!((h.nis_mean - (0.4 + 2.5 + 40.0 + 300.0) / 4.0).abs() < 1e-12);
        assert_eq!(h.nis_band_lt_1, 1);
        assert_eq!(h.nis_band_1_to_10, 1);
        assert_eq!(h.nis_band_10_to_100, 1);
        assert_eq!(h.nis_band_ge_100, 1);
        assert!((h.healthy_fraction() - 13.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_reads_healthy() {
        let h = FleetHealth::from_run(&RunRecorder::new());
        assert_eq!(h, FleetHealth::default());
        assert_eq!(h.healthy_fraction(), 1.0);
        assert_eq!(h.gps_gap_rate_per_trip, 0.0);
    }

    #[test]
    fn health_json_round_trips() {
        let h = FleetHealth::from_run(&seeded_recorder());
        let json = serde_json::to_string_pretty(&h).expect("serialize");
        let back: FleetHealth = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, h);
    }

    #[test]
    fn render_mentions_the_verdicts() {
        let text = FleetHealth::from_run(&seeded_recorder()).render();
        assert!(text.contains("13 healthy / 2 degraded / 1 diverged"));
        assert!(text.contains("gps dropouts: 6"));
    }
}

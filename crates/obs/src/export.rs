//! `obs::export` — standard telemetry formats.
//!
//! Two exporters, both pure string builders over already-captured
//! data:
//!
//! - [`chrome_trace_json`]: a [`TraceSnapshot`] as Chrome/Perfetto
//!   `trace_event` JSON (the `{"traceEvents": […]}` object format).
//!   Span ends become complete (`"X"`) slices, point events become
//!   instants (`"i"`), and Eq-6 fusion-weight snapshots become counter
//!   (`"C"`) tracks — load the file in `ui.perfetto.dev` or
//!   `chrome://tracing`.
//! - [`prometheus_text`]: a `RunReport` (and optionally a
//!   [`FleetHealth`]) in Prometheus text exposition format, ready for a
//!   scrape endpoint or the textfile collector. Metric names are the
//!   taxonomy names with `-`/`:` mapped to `_` under a `gradest_`
//!   prefix; spans and histograms export as labelled families so the
//!   metric set stays fixed as the taxonomy grows.
//!
//! [`validate_prometheus_text`] checks an exposition line-by-line
//! against the text-format grammar (comments, metric names, label
//! syntax, float values) — the golden tests run every export through
//! it.
//!
//! The trace_event payload is hand-written: the vendored serde derive
//! supports named-field structs only, and the event array mixes shapes
//! per phase, so a small JSON writer is simpler than fighting the shim.

use crate::health::FleetHealth;
use crate::run::RunReport;
use crate::trace::{TraceEvent, TraceSnapshot, TraceSource};
use std::fmt::Write as _;

/// A JSON number from an `f64`: non-finite values (unrepresentable in
/// JSON) map to 0, matching the serde shim's null-avoidance posture.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Append a JSON string literal (quotes + minimal escaping; taxonomy
/// names need none of it, but the writer stays safe for any input).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One trace_event record: shared header fields plus a caller-built
/// `args` object body (pass `""` for no args).
#[allow(clippy::too_many_arguments)] // flat JSON header fields, used only below
fn push_trace_record(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: &str,
    ts_us: f64,
    tid: u8,
    extra: &str,
    args: &str,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("    {\"name\": ");
    push_json_str(out, name);
    let _ =
        write!(out, ", \"ph\": \"{ph}\", \"ts\": {}, \"pid\": 1, \"tid\": {tid}", json_num(ts_us));
    out.push_str(extra);
    if !args.is_empty() {
        let _ = write!(out, ", \"args\": {{{args}}}");
    }
    out.push('}');
}

/// Render a trace snapshot as Chrome/Perfetto `trace_event` JSON.
///
/// Timestamps are microseconds since ring construction; each recording
/// thread's lane becomes a `tid`, so fleet-worker activity lands on
/// separate tracks. The ring records span *ends* (duration attached),
/// so complete `"X"` slices are reconstructed as `ts = end − dur`.
pub fn chrome_trace_json(snapshot: &TraceSnapshot) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;
    for rec in &snapshot.events {
        let ts_us = rec.ts_ns as f64 / 1.0e3;
        let tid = rec.lane;
        match rec.event {
            TraceEvent::SpanEnd { span, dur_ns } => {
                let dur_us = dur_ns as f64 / 1.0e3;
                let start_us = (ts_us - dur_us).max(0.0);
                let extra = format!(", \"dur\": {}, \"cat\": \"span\"", json_num(dur_us));
                push_trace_record(
                    &mut out,
                    &mut first,
                    span.name(),
                    "X",
                    start_us,
                    tid,
                    &extra,
                    "",
                );
            }
            TraceEvent::FusionWeights { weights } => {
                let mut args = String::new();
                for (i, (src, w)) in TraceSource::ALL.iter().zip(weights.iter()).enumerate() {
                    if i > 0 {
                        args.push_str(", ");
                    }
                    let _ = write!(args, "\"{}\": {}", src.name(), json_num(*w));
                }
                push_trace_record(
                    &mut out,
                    &mut first,
                    "fusion-weights",
                    "C",
                    ts_us,
                    tid,
                    "",
                    &args,
                );
            }
            ev => {
                let args = instant_args(ev);
                let extra = ", \"s\": \"t\", \"cat\": \"event\"";
                push_trace_record(&mut out, &mut first, ev.kind(), "i", ts_us, tid, extra, &args);
            }
        }
    }
    let _ = write!(
        out,
        "\n  ],\n  \"otherData\": {{\"dropped_events\": {}, \"ring_capacity\": {}}}\n}}\n",
        snapshot.dropped, snapshot.capacity
    );
    out
}

/// The `args` object body for an instant event (no braces).
fn instant_args(ev: TraceEvent) -> String {
    match ev {
        TraceEvent::TripStart => String::new(),
        TraceEvent::TripEnd { detections } => format!("\"detections\": {detections}"),
        TraceEvent::LaneChangeAccepted { t_mid_s, displacement_m }
        | TraceEvent::LaneChangeRejected { t_mid_s, displacement_m } => format!(
            "\"t_mid_s\": {}, \"displacement_m\": {}",
            json_num(t_mid_s),
            json_num(displacement_m)
        ),
        TraceEvent::EkfHealth { source, from, to } => format!(
            "\"source\": \"{}\", \"from\": \"{}\", \"to\": \"{}\"",
            source.name(),
            from.name(),
            to.name()
        ),
        TraceEvent::TrackDiverged { source } => format!("\"source\": \"{}\"", source.name()),
        TraceEvent::GpsGap { t_start_s, duration_s } => format!(
            "\"t_start_s\": {}, \"duration_s\": {}",
            json_num(t_start_s),
            json_num(duration_s)
        ),
        TraceEvent::FleetJobStart { job } | TraceEvent::FleetJobEnd { job } => {
            format!("\"job\": {job}")
        }
        TraceEvent::CloudUpload { road_id, cells } => {
            format!("\"road_id\": {road_id}, \"cells\": {cells}")
        }
        TraceEvent::ServiceConnOpened { conn } => format!("\"conn\": {conn}"),
        TraceEvent::ServiceConnClosed { conn, frames } => {
            format!("\"conn\": {conn}, \"frames\": {frames}")
        }
        TraceEvent::ServiceBusy { conn, reason } => {
            format!("\"conn\": {conn}, \"reason\": {reason}")
        }
        TraceEvent::ServiceFrameRejected { conn, code } => {
            format!("\"conn\": {conn}, \"code\": {code}")
        }
        TraceEvent::ServiceDrain { in_flight } => format!("\"in_flight\": {in_flight}"),
        TraceEvent::QualityAlert { signal, raised } => {
            format!("\"signal\": \"{}\", \"raised\": {raised}", signal.name())
        }
        // Handled by dedicated phases above; kept total for safety.
        TraceEvent::FusionWeights { .. } | TraceEvent::SpanEnd { .. } => String::new(),
    }
}

/// A taxonomy name (`ekf-updates:gps`) as a Prometheus metric-name
/// fragment (`ekf_updates_gps`).
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// A Prometheus sample value: finite floats print plainly, non-finite
/// values use the exposition spellings `+Inf`/`-Inf`/`NaN`.
fn prom_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// One `# HELP` + `# TYPE` header pair.
fn push_family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Render a report (and optionally fleet health) in Prometheus text
/// exposition format.
///
/// Counters become `gradest_<name>_total` counter families; spans and
/// histograms become labelled families (`gradest_span_*{span="…"}`,
/// `gradest_hist_*{hist="…"}`); fleet health becomes `gradest_fleet_*`
/// gauges. Every output line passes [`validate_prometheus_text`].
pub fn prometheus_text(report: &RunReport, health: Option<&FleetHealth>) -> String {
    let mut out = String::new();
    for c in &report.counters {
        let name = format!("gradest_{}_total", sanitize(&c.name));
        push_family(&mut out, &name, "counter", "Cumulative event count from the obs taxonomy.");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    if !report.spans.is_empty() {
        push_family(
            &mut out,
            "gradest_span_count_total",
            "counter",
            "Completions of each timed region.",
        );
        for s in &report.spans {
            let _ = writeln!(
                out,
                "gradest_span_count_total{{span=\"{}\"}} {}",
                sanitize(&s.name),
                s.count
            );
        }
        push_family(
            &mut out,
            "gradest_span_duration_seconds_total",
            "counter",
            "Total wall-clock seconds spent in each timed region.",
        );
        for s in &report.spans {
            let _ = writeln!(
                out,
                "gradest_span_duration_seconds_total{{span=\"{}\"}} {}",
                sanitize(&s.name),
                prom_value(s.total_ns as f64 / 1.0e9)
            );
        }
    }
    if !report.histograms.is_empty() {
        type HistStat = fn(&crate::run::HistogramReport) -> f64;
        let stats: [(&str, &str, HistStat); 5] = [
            ("gradest_hist_count", "Observations recorded per histogram.", |h| h.count as f64),
            ("gradest_hist_mean", "Mean observed value per histogram.", |h| h.mean),
            ("gradest_hist_stddev", "Population stddev per histogram.", |h| h.stddev),
            ("gradest_hist_min", "Smallest observed value per histogram.", |h| h.min),
            ("gradest_hist_max", "Largest observed value per histogram.", |h| h.max),
        ];
        for (name, help, get) in stats {
            push_family(&mut out, name, "gauge", help);
            for h in &report.histograms {
                let _ = writeln!(
                    out,
                    "{name}{{hist=\"{}\"}} {}",
                    sanitize(&h.name),
                    prom_value(get(h))
                );
            }
        }
    }
    if let Some(fh) = health {
        push_family(&mut out, "gradest_fleet_trips", "gauge", "Trips folded into fleet health.");
        let _ = writeln!(out, "gradest_fleet_trips {}", fh.trips);
        push_family(
            &mut out,
            "gradest_fleet_tracks",
            "gauge",
            "Per-source track count by final InnovationMonitor verdict.",
        );
        for (verdict, n) in [
            ("healthy", fh.tracks_healthy),
            ("degraded", fh.tracks_degraded),
            ("diverged", fh.tracks_diverged),
        ] {
            let _ = writeln!(out, "gradest_fleet_tracks{{verdict=\"{verdict}\"}} {n}");
        }
        push_family(
            &mut out,
            "gradest_fleet_health_transitions_total",
            "counter",
            "InnovationMonitor verdict transitions during tracking.",
        );
        for (dir, n) in [
            ("degraded", fh.health_degraded_transitions),
            ("recovered", fh.health_recovered_transitions),
        ] {
            let _ =
                writeln!(out, "gradest_fleet_health_transitions_total{{direction=\"{dir}\"}} {n}");
        }
        push_family(
            &mut out,
            "gradest_fleet_nis_mean",
            "gauge",
            "Mean of per-track windowed mean NIS (about 1 when filters are honest).",
        );
        let _ = writeln!(out, "gradest_fleet_nis_mean {}", prom_value(fh.nis_mean));
        push_family(
            &mut out,
            "gradest_fleet_nis_band",
            "gauge",
            "Tracks per mean-NIS decade band.",
        );
        for (band, n) in [
            ("lt_1", fh.nis_band_lt_1),
            ("1_to_10", fh.nis_band_1_to_10),
            ("10_to_100", fh.nis_band_10_to_100),
            ("ge_100", fh.nis_band_ge_100),
        ] {
            let _ = writeln!(out, "gradest_fleet_nis_band{{band=\"{band}\"}} {n}");
        }
        push_family(
            &mut out,
            "gradest_fleet_gps_gaps_total",
            "counter",
            "GPS dropouts detected across the fleet.",
        );
        let _ = writeln!(out, "gradest_fleet_gps_gaps_total {}", fh.gps_gaps);
        push_family(
            &mut out,
            "gradest_fleet_gps_gap_rate_per_trip",
            "gauge",
            "Mean GPS dropouts per trip.",
        );
        let _ = writeln!(
            out,
            "gradest_fleet_gps_gap_rate_per_trip {}",
            prom_value(fh.gps_gap_rate_per_trip)
        );
    }
    out
}

/// Whether `s` is a valid Prometheus metric or label name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`; labels additionally forbid `:`).
fn valid_name(s: &str, allow_colon: bool) -> bool {
    let mut chars = s.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    let head_ok = first.is_ascii_alphabetic() || first == '_' || (allow_colon && first == ':');
    head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || (allow_colon && c == ':'))
}

/// Check one `name{label="v",…}` sample line against the grammar.
fn validate_sample(line: &str, lineno: usize) -> Result<(), String> {
    let err = |msg: &str| Err(format!("line {lineno}: {msg}: {line:?}"));
    // Split off the metric name: everything before '{' or whitespace.
    let name_end = line.find(|c: char| c == '{' || c.is_ascii_whitespace()).unwrap_or(line.len());
    let (name, mut rest) = line.split_at(name_end);
    if !valid_name(name, true) {
        return err("invalid metric name");
    }
    if let Some(stripped) = rest.strip_prefix('{') {
        let Some(close) = stripped.find('}') else {
            return err("unterminated label set");
        };
        let (labels, after) = stripped.split_at(close);
        rest = &after[1..];
        for pair in labels.split(',').filter(|p| !p.trim().is_empty()) {
            let Some((lname, lval)) = pair.trim().split_once('=') else {
                return err("label without '='");
            };
            if !valid_name(lname.trim(), false) {
                return err("invalid label name");
            }
            let lval = lval.trim();
            if !(lval.len() >= 2 && lval.starts_with('"') && lval.ends_with('"')) {
                return err("label value not quoted");
            }
        }
    }
    let mut fields = rest.split_ascii_whitespace();
    let Some(value) = fields.next() else {
        return err("missing sample value");
    };
    if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
        return err("unparseable sample value");
    }
    // Optional millisecond timestamp.
    if let Some(ts) = fields.next() {
        if ts.parse::<i64>().is_err() {
            return err("unparseable timestamp");
        }
    }
    if fields.next().is_some() {
        return err("trailing tokens after sample");
    }
    Ok(())
}

/// Validate a full exposition line-by-line against the Prometheus text
/// format grammar: `# HELP`/`# TYPE` headers (with known metric types),
/// other comments, blank lines, and `name{labels} value [timestamp]`
/// samples. Returns the first offending line on failure.
///
/// # Errors
///
/// A message naming the line number and the grammar rule it broke.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    const TYPES: [&str; 5] = ["counter", "gauge", "histogram", "summary", "untyped"];
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut toks = comment.trim_start().splitn(2, ' ');
            match toks.next() {
                Some("HELP") => {
                    let rest = toks.next().unwrap_or("");
                    let name = rest.split_ascii_whitespace().next().unwrap_or("");
                    if !valid_name(name, true) {
                        return Err(format!("line {lineno}: HELP without valid metric name"));
                    }
                }
                Some("TYPE") => {
                    let rest = toks.next().unwrap_or("");
                    let mut parts = rest.split_ascii_whitespace();
                    let name = parts.next().unwrap_or("");
                    let kind = parts.next().unwrap_or("");
                    if !valid_name(name, true) {
                        return Err(format!("line {lineno}: TYPE without valid metric name"));
                    }
                    if !TYPES.contains(&kind) {
                        return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                    }
                    if parts.next().is_some() {
                        return Err(format!("line {lineno}: trailing tokens after TYPE"));
                    }
                }
                // Any other comment is legal.
                _ => {}
            }
            continue;
        }
        validate_sample(line, lineno)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Histogram, Span};
    use crate::recorder::Recorder;
    use crate::run::RunRecorder;
    use crate::trace::TraceRing;

    fn sample_snapshot() -> TraceSnapshot {
        let ring = TraceRing::with_capacity(32);
        ring.event(TraceEvent::TripStart);
        ring.event(TraceEvent::LaneChangeAccepted { t_mid_s: 12.5, displacement_m: 3.4 });
        ring.event(TraceEvent::FusionWeights { weights: [0.4, 0.3, 0.2, 0.1] });
        ring.record_span(Span::Trip, 2_000_000);
        ring.event(TraceEvent::TripEnd { detections: 1 });
        ring.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_phases() {
        let json = chrome_trace_json(&sample_snapshot());
        let v: serde_json::Value = serde_json::from_str(&json).expect("trace JSON parses");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
        assert_eq!(events.len(), 5);
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(|p| p.as_str())).collect();
        assert_eq!(phases, ["i", "i", "C", "X", "i"]);
        // The complete slice carries a duration in microseconds.
        let slice = &events[3];
        assert_eq!(slice.get("name").and_then(|n| n.as_str()), Some("trip"));
        assert_eq!(slice.get("dur").and_then(|d| d.as_f64()), Some(2_000.0));
        // The counter track carries one arg per source.
        let weights = events[2].get("args").expect("fusion-weights args");
        assert_eq!(weights.get("gps").and_then(|w| w.as_f64()), Some(0.4));
        assert_eq!(weights.get("accelerometer").and_then(|w| w.as_f64()), Some(0.1));
    }

    #[test]
    fn chrome_trace_reports_overflow() {
        let ring = TraceRing::with_capacity(1);
        ring.event(TraceEvent::TripStart);
        ring.event(TraceEvent::TripEnd { detections: 0 });
        let json = chrome_trace_json(&ring.snapshot());
        let v: serde_json::Value = serde_json::from_str(&json).expect("parses");
        let other = v.get("otherData").expect("otherData");
        assert_eq!(other.get("dropped_events").and_then(|d| d.as_u64()), Some(1));
        assert_eq!(other.get("ring_capacity").and_then(|c| c.as_u64()), Some(1));
    }

    #[test]
    fn json_strings_escape_controls() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    fn sample_report() -> RunReport {
        let rec = RunRecorder::new();
        rec.record_span(Span::Trip, 1_500_000);
        rec.incr(Counter::TripsProcessed, 1);
        rec.incr(Counter::EkfUpdatesGps, 140);
        rec.observe(Histogram::EkfInnovation, 0.25);
        rec.report()
    }

    #[test]
    fn prometheus_text_passes_its_own_validator() {
        let rec = RunRecorder::new();
        rec.incr(Counter::TripsProcessed, 4);
        rec.incr(Counter::TracksHealthy, 3);
        rec.observe(Histogram::EkfMeanNis, 1.2);
        let health = FleetHealth::from_run(&rec);
        let text = prometheus_text(&sample_report(), Some(&health));
        validate_prometheus_text(&text).expect("exposition conforms to the grammar");
        // Taxonomy punctuation must be gone from metric names.
        assert!(text.contains("gradest_ekf_updates_gps_total 140"));
        assert!(!text.lines().any(|l| !l.starts_with('#') && (l.contains('-') || l.contains(':'))));
        assert!(text.contains("gradest_fleet_tracks{verdict=\"healthy\"} 3"));
    }

    #[test]
    fn validator_rejects_bad_lines() {
        assert!(validate_prometheus_text("ok_metric 1\n").is_ok());
        assert!(validate_prometheus_text("bad-name 1\n").is_err());
        assert!(validate_prometheus_text("metric 1.5e3\n").is_ok());
        assert!(validate_prometheus_text("metric not_a_number\n").is_err());
        assert!(validate_prometheus_text("metric{label=\"v\"} 2\n").is_ok());
        assert!(validate_prometheus_text("metric{label=unquoted} 2\n").is_err());
        assert!(validate_prometheus_text("metric{label=\"v\" 2\n").is_err(), "unterminated labels");
        assert!(validate_prometheus_text("# TYPE m counter\n").is_ok());
        assert!(validate_prometheus_text("# TYPE m flavor\n").is_err());
        assert!(validate_prometheus_text("# arbitrary comment\n").is_ok());
        assert!(validate_prometheus_text("m +Inf\n").is_ok());
        assert!(validate_prometheus_text("m 1 1700000000000\n").is_ok(), "timestamp allowed");
        assert!(validate_prometheus_text("m 1 t\n").is_err());
        // Gauge samples with labels keep their optional timestamp too —
        // the service's uptime gauge exports this exact shape.
        assert!(validate_prometheus_text(
            "# TYPE gradest_service_uptime_seconds gauge\n\
             gradest_service_uptime_seconds{instance=\"a\"} 12.5 1700000000000\n"
        )
        .is_ok());
        assert!(validate_prometheus_text("m 1 1.5\n").is_err(), "timestamps are integral ms");
    }

    #[test]
    fn non_finite_values_use_exposition_spellings() {
        assert_eq!(prom_value(f64::INFINITY), "+Inf");
        assert_eq!(prom_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(prom_value(f64::NAN), "NaN");
        assert_eq!(prom_value(1.5), "1.5");
    }
}

//! `gradest-obs` — the observability substrate for the gradient
//! estimation stack.
//!
//! Nine pieces (DESIGN.md §9–§10, §15):
//!
//! - [`metrics`]: the closed taxonomy of [`Span`]s (a static forest of
//!   timed regions: trip stages, per-source EKF tracks, fleet workers,
//!   cloud uploads), [`Counter`]s, and [`Histogram`]s, plus the shared
//!   [`StageNanos`] per-trip stage split.
//! - [`recorder`]: the [`Recorder`] trait instrumented code is generic
//!   over, the statically zero-cost [`NoopRecorder`], and the
//!   [`SpanTimer`] helper that only reads the clock when the recorder
//!   is enabled.
//! - [`run`]: [`RunRecorder`], a fixed-slot atomic aggregator safe to
//!   share across worker threads, and the [`RunReport`] it emits
//!   (JSON for `BENCH_*.json` and `bench-gate.sh`, rendered tables
//!   for humans, an integers-only snapshot string for tests).
//! - [`trace`]: the flight recorder — a bounded, allocation-free
//!   [`TraceRing`] of typed [`TraceEvent`]s (trip/lane-change/EKF
//!   health/fusion-weight/GPS-gap/fleet/cloud), plus [`Tee`] to fan a
//!   run out to metrics and trace simultaneously.
//! - [`health`]: [`FleetHealth`], folding per-track monitor verdicts
//!   and dropout counters from a [`RunRecorder`] into a fleet-level
//!   quality report (healthy/degraded/diverged tracks, NIS bands).
//! - [`export`]: standard telemetry formats — Perfetto/Chrome
//!   `trace_event` JSON for trace snapshots and Prometheus text
//!   exposition for reports and fleet health.
//! - [`timeseries`]: the live-telemetry ring — fixed windows of
//!   counters-as-rates and log-linear quantile sketches behind
//!   [`TimeSeries`]/[`TimeSeriesRecorder`], answering "what is p99
//!   frame latency *right now*" for the `STATUS` frame.
//! - [`quality`]: fleet-wide estimation-quality drift monitors —
//!   EWMA + Page–Hinkley detectors over mean fusion weight, NIS
//!   out-of-band fraction, and GPS-dropout rate, emitting
//!   [`TraceEvent::QualityAlert`] transitions.
//! - [`slo`]: a small declarative SLO table evaluated over the
//!   time-series ring with burn-rate thresholds, driving the
//!   `Healthy`/`Warn`/`Page` states the service reports.
//!
//! The crate depends only on the vendored serde shims, so every layer
//! from `gradest-math` up can adopt it without dependency cycles.
//!
//! # Overhead contract
//!
//! With `NoopRecorder`, instrumentation must be free: `enabled()` is a
//! constant `false`, all sink methods are empty, and call sites keep
//! observability-only work (timestamps, derived statistics) behind
//! `if rec.enabled()`. The warm-path invariants — 0 allocations per
//! trip and bit-identical gradients — are enforced with obs wired
//! through by `pipeline_hotpath_smoke`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod health;
pub mod metrics;
pub mod quality;
pub mod recorder;
pub mod run;
pub mod slo;
pub mod timeseries;
pub mod trace;

pub use export::{chrome_trace_json, prometheus_text, validate_prometheus_text};
pub use health::FleetHealth;
pub use metrics::{Counter, Histogram, Span, StageNanos};
pub use quality::{QualityConfig, QualityMonitors, QualityReport, SignalReport};
pub use recorder::{saturating_ns, NoopRecorder, Recorder, SpanTimer};
pub use run::{CounterReport, HistogramReport, RunRecorder, RunReport, SpanReport};
pub use slo::{SloKind, SloReport, SloSpec, SloState, SloTable};
pub use timeseries::{TimeSeries, TimeSeriesConfig, TimeSeriesRecorder, SKETCH_RELATIVE_ERROR};
pub use trace::{
    QualitySignal, Tee, TraceEvent, TraceHealth, TraceRecord, TraceRing, TraceSnapshot, TraceSource,
};

//! `gradest-obs` — the observability substrate for the gradient
//! estimation stack.
//!
//! Three pieces (DESIGN.md §9):
//!
//! - [`metrics`]: the closed taxonomy of [`Span`]s (a static forest of
//!   timed regions: trip stages, per-source EKF tracks, fleet workers,
//!   cloud uploads), [`Counter`]s, and [`Histogram`]s, plus the shared
//!   [`StageNanos`] per-trip stage split.
//! - [`recorder`]: the [`Recorder`] trait instrumented code is generic
//!   over, the statically zero-cost [`NoopRecorder`], and the
//!   [`SpanTimer`] helper that only reads the clock when the recorder
//!   is enabled.
//! - [`run`]: [`RunRecorder`], a fixed-slot atomic aggregator safe to
//!   share across worker threads, and the [`RunReport`] it emits
//!   (JSON for `BENCH_*.json` and `bench-gate.sh`, rendered tables
//!   for humans, an integers-only snapshot string for tests).
//!
//! The crate depends only on the vendored serde shims, so every layer
//! from `gradest-math` up can adopt it without dependency cycles.
//!
//! # Overhead contract
//!
//! With `NoopRecorder`, instrumentation must be free: `enabled()` is a
//! constant `false`, all sink methods are empty, and call sites keep
//! observability-only work (timestamps, derived statistics) behind
//! `if rec.enabled()`. The warm-path invariants — 0 allocations per
//! trip and bit-identical gradients — are enforced with obs wired
//! through by `pipeline_hotpath_smoke`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod recorder;
pub mod run;

pub use metrics::{Counter, Histogram, Span, StageNanos};
pub use recorder::{saturating_ns, NoopRecorder, Recorder, SpanTimer};
pub use run::{CounterReport, HistogramReport, RunRecorder, RunReport, SpanReport};

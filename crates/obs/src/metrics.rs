//! The metric taxonomy: every span, counter, and histogram the gradest
//! layers emit, as closed enums.
//!
//! Typed ids (rather than string keys) keep recording allocation-free —
//! a recorder backs each id with a fixed array slot — and make the set
//! of emitted metrics a reviewable, testable surface: the obs snapshot
//! test pins exactly which ids one canonical trip touches.

use serde::{Deserialize, Serialize};

/// Wall-clock nanoseconds spent in each pipeline stage of one
/// `estimate_into` call (the per-trip stage split reported in
/// `BENCH_pipeline.json` and by `EstimatorScratch::stages`).
///
/// This started life inside the perf benchmarks; it lives here because
/// it is the same data the [`Span`] taxonomy aggregates — the pipeline
/// populates both from one set of stage timestamps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageNanos {
    /// Stage 1: columnarization + steering profile + LOWESS smoothing.
    pub steering: u64,
    /// Stage 2: lane-change detection + steering-angle series.
    pub detection: u64,
    /// Stage 3: per-source EKF tracks (incl. RTS smoothing).
    pub tracks: u64,
    /// Stage 4: resampling + Eq-6 fusion.
    pub fusion: u64,
}

impl StageNanos {
    /// Total nanoseconds across all stages.
    pub fn total(&self) -> u64 {
        self.steering + self.detection + self.tracks + self.fusion
    }
}

/// One timed region of the system. Spans form a static forest (see
/// [`Span::parent`]): per-trip pipeline stages under [`Span::Trip`],
/// fleet-pool activity under [`Span::FleetBatch`], and cloud ingestion
/// under [`Span::CloudUpload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Span {
    /// One full `estimate_into` call.
    Trip,
    /// Stage 1: columnarization + steering profile + LOWESS.
    Steering,
    /// Stage 2: lane-change detection + α(t) series.
    Detection,
    /// Stage 3: all per-source EKF tracks.
    Tracks,
    /// One GPS-source EKF track.
    TrackGps,
    /// One speedometer-source EKF track.
    TrackSpeedometer,
    /// One CAN-bus-source EKF track.
    TrackCanBus,
    /// One accelerometer-source EKF track.
    TrackAccelerometer,
    /// Stage 4: resampling + Eq-6 fusion.
    Fusion,
    /// One fleet batch, enqueue to last in-order delivery.
    FleetBatch,
    /// One trip processed by a fleet worker (its busy time).
    FleetWorkerTrip,
    /// One track ingested by the cloud aggregator.
    CloudUpload,
    /// One spatial-index construction over a road network.
    GeoIndexBuild,
    /// One trip map-matched against a whole network (free-space).
    NetworkMatchTrip,
    /// One request frame handled end-to-end by a `gradest-serve` worker.
    ServiceFrame,
    /// Wire-decode of one upload frame into the worker's scratch.
    ServiceDecode,
    /// One bbox tile query answered from the fused map.
    ServiceTileQuery,
    /// One STATUS frame answered (SLO/drift/quantile snapshot build).
    ServiceStatus,
}

impl Span {
    /// Every span, in report order.
    pub const ALL: [Span; 18] = [
        Span::Trip,
        Span::Steering,
        Span::Detection,
        Span::Tracks,
        Span::TrackGps,
        Span::TrackSpeedometer,
        Span::TrackCanBus,
        Span::TrackAccelerometer,
        Span::Fusion,
        Span::FleetBatch,
        Span::FleetWorkerTrip,
        Span::CloudUpload,
        Span::GeoIndexBuild,
        Span::NetworkMatchTrip,
        Span::ServiceFrame,
        Span::ServiceDecode,
        Span::ServiceTileQuery,
        Span::ServiceStatus,
    ];

    /// Number of spans (array-slot count for recorders).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Span::Trip => "trip",
            Span::Steering => "steering",
            Span::Detection => "detection",
            Span::Tracks => "tracks",
            Span::TrackGps => "track:gps",
            Span::TrackSpeedometer => "track:speedometer",
            Span::TrackCanBus => "track:can-bus",
            Span::TrackAccelerometer => "track:accelerometer",
            Span::Fusion => "fusion",
            Span::FleetBatch => "fleet-batch",
            Span::FleetWorkerTrip => "fleet-worker-trip",
            Span::CloudUpload => "cloud-upload",
            Span::GeoIndexBuild => "geo-index-build",
            Span::NetworkMatchTrip => "network-match-trip",
            Span::ServiceFrame => "service-frame",
            Span::ServiceDecode => "service-decode",
            Span::ServiceTileQuery => "service-tile-query",
            Span::ServiceStatus => "service-status",
        }
    }

    /// The enclosing span, or `None` for a root.
    pub fn parent(self) -> Option<Span> {
        match self {
            Span::Trip
            | Span::FleetBatch
            | Span::CloudUpload
            | Span::GeoIndexBuild
            | Span::ServiceFrame => None,
            Span::Steering | Span::Detection | Span::Tracks | Span::Fusion => Some(Span::Trip),
            Span::TrackGps
            | Span::TrackSpeedometer
            | Span::TrackCanBus
            | Span::TrackAccelerometer => Some(Span::Tracks),
            Span::FleetWorkerTrip => Some(Span::FleetBatch),
            Span::NetworkMatchTrip => Some(Span::FleetWorkerTrip),
            Span::ServiceDecode | Span::ServiceTileQuery | Span::ServiceStatus => {
                Some(Span::ServiceFrame)
            }
        }
    }

    /// Nesting depth (0 for roots) — used by tree rendering.
    pub fn depth(self) -> usize {
        let mut d = 0usize;
        let mut cur = self;
        while let Some(p) = cur.parent() {
            d += 1;
            cur = p;
        }
        d
    }
}

/// A monotonically increasing count of discrete events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Counter {
    /// Trips run through `estimate_into`.
    TripsProcessed,
    /// Lane changes accepted by Algorithm 1 (paired bumps passing Eq 1).
    LaneChangesDetected,
    /// Candidate bump pairs rejected as S-curves by the Eq-1
    /// displacement test (`|W| > 3·W_lane`).
    LaneChangesRejected,
    /// EKF predict steps (all sources).
    EkfPredicts,
    /// EKF measurement updates on the GPS track.
    EkfUpdatesGps,
    /// EKF measurement updates on the speedometer track.
    EkfUpdatesSpeedometer,
    /// EKF measurement updates on the CAN-bus track.
    EkfUpdatesCanBus,
    /// EKF measurement updates on the accelerometer track.
    EkfUpdatesAccelerometer,
    /// Jobs submitted to a fleet worker pool.
    FleetJobsSubmitted,
    /// Jobs completed by fleet workers.
    FleetJobsCompleted,
    /// Tracks ingested by the cloud aggregator.
    CloudUploads,
    /// Arc cells updated across all cloud uploads.
    CloudCellsTouched,
    /// `InnovationMonitor` transitions out of `Healthy` (any source).
    EkfHealthDegraded,
    /// `InnovationMonitor` transitions back to `Healthy` (any source).
    EkfHealthRecovered,
    /// Per-source tracks that finished their trip `Healthy`.
    TracksHealthy,
    /// Per-source tracks that finished their trip `Inconsistent`.
    TracksDegraded,
    /// Per-source tracks that finished their trip `Diverged` (latched).
    TracksDiverged,
    /// Gaps between valid GPS fixes longer than the dropout threshold.
    GpsGaps,
    /// Client connections accepted by `gradest-serve`.
    ServiceConnections,
    /// Request frames handled successfully (ACK/TILE/METRICS sent).
    ServiceFramesOk,
    /// Request frames rejected with a typed ERR frame (decode failure).
    ServiceFramesRejected,
    /// Connections or frames refused with a BUSY frame (queue full or
    /// draining).
    ServiceBusyRejects,
    /// Bbox tile queries answered.
    ServiceTileQueries,
    /// STATUS frames answered.
    ServiceStatusQueries,
    /// Quality drift alerts raised (any signal entering `Drifting`).
    QualityAlertsRaised,
    /// Quality drift alerts cleared (any signal returning to `Ok`).
    QualityAlertsCleared,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 26] = [
        Counter::TripsProcessed,
        Counter::LaneChangesDetected,
        Counter::LaneChangesRejected,
        Counter::EkfPredicts,
        Counter::EkfUpdatesGps,
        Counter::EkfUpdatesSpeedometer,
        Counter::EkfUpdatesCanBus,
        Counter::EkfUpdatesAccelerometer,
        Counter::FleetJobsSubmitted,
        Counter::FleetJobsCompleted,
        Counter::CloudUploads,
        Counter::CloudCellsTouched,
        Counter::EkfHealthDegraded,
        Counter::EkfHealthRecovered,
        Counter::TracksHealthy,
        Counter::TracksDegraded,
        Counter::TracksDiverged,
        Counter::GpsGaps,
        Counter::ServiceConnections,
        Counter::ServiceFramesOk,
        Counter::ServiceFramesRejected,
        Counter::ServiceBusyRejects,
        Counter::ServiceTileQueries,
        Counter::ServiceStatusQueries,
        Counter::QualityAlertsRaised,
        Counter::QualityAlertsCleared,
    ];

    /// Number of counters (array-slot count for recorders).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::TripsProcessed => "trips-processed",
            Counter::LaneChangesDetected => "lane-changes-detected",
            Counter::LaneChangesRejected => "lane-changes-rejected",
            Counter::EkfPredicts => "ekf-predicts",
            Counter::EkfUpdatesGps => "ekf-updates:gps",
            Counter::EkfUpdatesSpeedometer => "ekf-updates:speedometer",
            Counter::EkfUpdatesCanBus => "ekf-updates:can-bus",
            Counter::EkfUpdatesAccelerometer => "ekf-updates:accelerometer",
            Counter::FleetJobsSubmitted => "fleet-jobs-submitted",
            Counter::FleetJobsCompleted => "fleet-jobs-completed",
            Counter::CloudUploads => "cloud-uploads",
            Counter::CloudCellsTouched => "cloud-cells-touched",
            Counter::EkfHealthDegraded => "ekf-health-degraded",
            Counter::EkfHealthRecovered => "ekf-health-recovered",
            Counter::TracksHealthy => "tracks-healthy",
            Counter::TracksDegraded => "tracks-degraded",
            Counter::TracksDiverged => "tracks-diverged",
            Counter::GpsGaps => "gps-gaps",
            Counter::ServiceConnections => "service-connections",
            Counter::ServiceFramesOk => "service-frames-ok",
            Counter::ServiceFramesRejected => "service-frames-rejected",
            Counter::ServiceBusyRejects => "service-busy-rejects",
            Counter::ServiceTileQueries => "service-tile-queries",
            Counter::ServiceStatusQueries => "service-status-queries",
            Counter::QualityAlertsRaised => "quality-alerts-raised",
            Counter::QualityAlertsCleared => "quality-alerts-cleared",
        }
    }
}

/// A distribution of observed values (summary statistics plus fixed
/// decade buckets — see `RunRecorder`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Histogram {
    /// EKF velocity innovation `v̂ − v` at each measurement update, m/s.
    EkfInnovation,
    /// Per-trip mean Eq-6 fusion weight of the GPS track.
    FusionWeightGps,
    /// Per-trip mean Eq-6 fusion weight of the speedometer track.
    FusionWeightSpeedometer,
    /// Per-trip mean Eq-6 fusion weight of the CAN-bus track.
    FusionWeightCanBus,
    /// Per-trip mean Eq-6 fusion weight of the accelerometer track.
    FusionWeightAccelerometer,
    /// Absolute Eq-1 horizontal displacement of accepted lane changes, m.
    LaneChangeDisplacement,
    /// Hold-back buffer depth when a fleet result arrives out of order.
    FleetHoldbackDepth,
    /// Per-worker busy fraction over the worker's lifetime, 0..1.
    FleetWorkerUtilization,
    /// Per-track windowed mean NIS at trip end (consistency statistic
    /// of the `InnovationMonitor`; ~1 when the filter is honest).
    EkfMeanNis,
    /// Length of each detected GPS dropout, seconds.
    GpsGapSeconds,
}

impl Histogram {
    /// Every histogram, in report order.
    pub const ALL: [Histogram; 10] = [
        Histogram::EkfInnovation,
        Histogram::FusionWeightGps,
        Histogram::FusionWeightSpeedometer,
        Histogram::FusionWeightCanBus,
        Histogram::FusionWeightAccelerometer,
        Histogram::LaneChangeDisplacement,
        Histogram::FleetHoldbackDepth,
        Histogram::FleetWorkerUtilization,
        Histogram::EkfMeanNis,
        Histogram::GpsGapSeconds,
    ];

    /// Number of histograms (array-slot count for recorders).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Histogram::EkfInnovation => "ekf-innovation",
            Histogram::FusionWeightGps => "fusion-weight:gps",
            Histogram::FusionWeightSpeedometer => "fusion-weight:speedometer",
            Histogram::FusionWeightCanBus => "fusion-weight:can-bus",
            Histogram::FusionWeightAccelerometer => "fusion-weight:accelerometer",
            Histogram::LaneChangeDisplacement => "lane-change-displacement",
            Histogram::FleetHoldbackDepth => "fleet-holdback-depth",
            Histogram::FleetWorkerUtilization => "fleet-worker-utilization",
            Histogram::EkfMeanNis => "ekf-mean-nis",
            Histogram::GpsGapSeconds => "gps-gap-seconds",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Span::ALL.iter().map(|s| s.name()).collect();
        names.extend(Counter::ALL.iter().map(|c| c.name()));
        names.extend(Histogram::ALL.iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name");
    }

    #[test]
    fn span_forest_is_acyclic_and_shallow() {
        for s in Span::ALL {
            assert!(s.depth() <= 2, "{} unexpectedly deep", s.name());
            if let Some(p) = s.parent() {
                assert!(Span::ALL.contains(&p));
            }
        }
        assert_eq!(Span::Trip.depth(), 0);
        assert_eq!(Span::TrackGps.depth(), 2);
        assert_eq!(Span::TrackGps.parent(), Some(Span::Tracks));
    }

    #[test]
    fn stage_nanos_total() {
        let s = StageNanos { steering: 1, detection: 2, tracks: 3, fusion: 4 };
        assert_eq!(s.total(), 10);
    }

    #[test]
    fn enum_discriminants_match_all_order() {
        for (i, s) in Span::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i, "Span::ALL out of declaration order");
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "Counter::ALL out of declaration order");
        }
        for (i, h) in Histogram::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i, "Histogram::ALL out of declaration order");
        }
    }
}

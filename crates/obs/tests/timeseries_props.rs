//! Property tests for `obs::timeseries`: the log-linear sketch's
//! quantile estimates stay inside the advertised relative-error bound
//! against an exact nearest-rank oracle, and the ring's rotation /
//! `delta()` bookkeeping matches a straightforward per-window model
//! across window boundaries.

use gradest_obs::timeseries::{
    TimeSeries, TimeSeriesConfig, SKETCH_MAX_MAGNITUDE, SKETCH_MIN_MAGNITUDE, SKETCH_RELATIVE_ERROR,
};
use gradest_obs::{Counter, Histogram};
use proptest::prelude::*;

/// Positive magnitudes inside the sketch's representable range (with a
/// little margin off both ends), spread across many decades so the
/// generated sets exercise far-apart buckets, not one octave.
fn sketch_value() -> impl Strategy<Value = f64> {
    (-5.0..12.0f64, 1.0..10.0f64).prop_map(|(exp, mantissa)| {
        let v = mantissa * 10.0f64.powf(exp);
        v.clamp(SKETCH_MIN_MAGNITUDE * 2.0, SKETCH_MAX_MAGNITUDE / 2.0)
    })
}

/// Exact nearest-rank quantile over `sorted`: the `max(⌈q·n⌉, 1)`-th
/// smallest value — the same rank convention the sketch uses.
fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1).min(sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every quantile estimate is within `SKETCH_RELATIVE_ERROR` of the
    /// exact nearest-rank value, for arbitrary positive value sets and
    /// arbitrary q.
    #[test]
    fn quantile_estimates_stay_inside_relative_error_bound(
        values in prop::collection::vec(sketch_value(), 1..200),
        q in 0.001..1.0f64,
    ) {
        let ts = TimeSeries::new(TimeSeriesConfig::default());
        let t = 10; // all observations in one live window
        for &v in &values {
            ts.observe_at(t, Histogram::EkfMeanNis, v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let exact = oracle_quantile(&sorted, q);
        let est = ts
            .hist_quantile(Histogram::EkfMeanNis, q, 1, t)
            .expect("populated sketch has quantiles");
        prop_assert!(
            (est - exact).abs() <= SKETCH_RELATIVE_ERROR * exact.abs(),
            "q={q}: estimate {est} deviates from exact {exact} by more than {}",
            SKETCH_RELATIVE_ERROR
        );
    }

    /// The median and the extremes never cross: p0.01 ≤ p0.5 ≤ p0.99 on
    /// the same merged sketch (monotonicity of the cumulative walk).
    #[test]
    fn quantiles_are_monotone_in_q(
        values in prop::collection::vec(sketch_value(), 1..100),
    ) {
        let ts = TimeSeries::new(TimeSeriesConfig::default());
        for &v in &values {
            ts.observe_at(5, Histogram::GpsGapSeconds, v);
        }
        let p01 = ts.hist_quantile(Histogram::GpsGapSeconds, 0.01, 1, 5).expect("p01");
        let p50 = ts.hist_quantile(Histogram::GpsGapSeconds, 0.5, 1, 5).expect("p50");
        let p99 = ts.hist_quantile(Histogram::GpsGapSeconds, 0.99, 1, 5).expect("p99");
        prop_assert!(p01 <= p50 && p50 <= p99, "p01={p01} p50={p50} p99={p99}");
    }

    /// `delta()` over the last k windows equals a straightforward
    /// per-window model, for monotone event streams that cross many
    /// ring-rotation boundaries (offsets range over 3× the ring size).
    #[test]
    fn delta_matches_per_window_model_across_rotations(
        events in prop::collection::vec((0..24u64, 1..100u64), 1..60),
        lookback in 1..8usize,
    ) {
        const WINDOW_NS: u64 = 1_000;
        const WINDOWS: usize = 8;
        let ts = TimeSeries::new(TimeSeriesConfig { window_ns: WINDOW_NS, windows: WINDOWS });
        // The ring only moves forward; feed events in time order so
        // none are late-dropped (late arrival is pinned separately).
        let mut events = events;
        events.sort_by_key(|(w, _)| *w);
        for &(w, by) in &events {
            ts.incr_at(w * WINDOW_NS + WINDOW_NS / 2, Counter::TripsProcessed, by);
        }
        let newest = events.last().map(|(w, _)| *w).unwrap_or(0);
        let now = newest * WINDOW_NS + WINDOW_NS / 2;
        // Model: the k windows ending at (and including) the live one.
        let oldest_counted = (newest + 1).saturating_sub(lookback as u64);
        let expected: u64 = events
            .iter()
            .filter(|(w, _)| *w >= oldest_counted && *w <= newest)
            .map(|(_, by)| *by)
            .sum();
        prop_assert_eq!(ts.delta(Counter::TripsProcessed, lookback, now), expected);
        prop_assert_eq!(ts.late_drops(), 0);
    }

    /// Advancing a full ring past the newest event clears every window:
    /// the delta over the whole ring drains to zero and no spurious
    /// counts survive rotation.
    #[test]
    fn advancing_a_full_ring_forgets_everything(
        events in prop::collection::vec((0..8u64, 1..100u64), 1..30),
    ) {
        const WINDOW_NS: u64 = 1_000;
        const WINDOWS: usize = 8;
        let ts = TimeSeries::new(TimeSeriesConfig { window_ns: WINDOW_NS, windows: WINDOWS });
        let mut sorted = events.clone();
        sorted.sort_by_key(|(w, _)| *w);
        for &(w, by) in &sorted {
            ts.incr_at(w * WINDOW_NS, Counter::TripsProcessed, by);
        }
        let far = (8 + WINDOWS as u64 + 1) * WINDOW_NS;
        ts.advance_to(far);
        prop_assert_eq!(ts.delta(Counter::TripsProcessed, WINDOWS, far), 0);
    }

    /// An event older than the whole ring is dropped, counted in
    /// `late_drops`, and never resurrects an evicted window.
    #[test]
    fn late_events_are_dropped_not_misfiled(
        newest in 20..40u64,
        by in 1..100u64,
    ) {
        const WINDOW_NS: u64 = 1_000;
        const WINDOWS: usize = 8;
        let ts = TimeSeries::new(TimeSeriesConfig { window_ns: WINDOW_NS, windows: WINDOWS });
        let now = newest * WINDOW_NS;
        ts.incr_at(now, Counter::TripsProcessed, 1);
        // A timestamp from before the ring's horizon: window 0 was
        // evicted long ago.
        ts.incr_at(0, Counter::TripsProcessed, by);
        prop_assert_eq!(ts.late_drops(), 1);
        prop_assert_eq!(ts.delta(Counter::TripsProcessed, WINDOWS, now), 1);
    }
}

//! `RunReport` JSON robustness: error paths of `from_json` against the
//! vendored parser's semantics, and a property test that arbitrary
//! well-formed reports survive the round trip byte-exactly.

use gradest_obs::{CounterReport, HistogramReport, RunReport, SpanReport};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// from_json error paths
// ---------------------------------------------------------------------

fn valid_json() -> String {
    RunReport {
        spans: vec![SpanReport {
            name: "trip".to_string(),
            depth: 0,
            count: 1,
            total_ns: 500,
            mean_ns: 500,
            min_ns: 500,
            max_ns: 500,
        }],
        counters: vec![CounterReport { name: "trips-processed".to_string(), value: 1 }],
        histograms: vec![HistogramReport {
            name: "ekf-innovation".to_string(),
            count: 3,
            mean: 0.5,
            stddev: 0.1,
            min: 0.2,
            max: 0.9,
            decades: [0; gradest_obs::run::DECADE_BUCKETS],
        }],
    }
    .to_json()
}

#[test]
fn truncated_input_is_a_parse_error() {
    let json = valid_json();
    // Chop the document at several depths; every prefix must fail
    // cleanly (an Err, never a panic or a silently partial report).
    for cut in [1, json.len() / 4, json.len() / 2, json.len() - 2] {
        let truncated = &json[..cut];
        let err = RunReport::from_json(truncated).expect_err("truncated JSON must not parse");
        assert!(!err.is_empty(), "error message should name the failure");
    }
}

#[test]
fn empty_and_non_object_inputs_fail() {
    assert!(RunReport::from_json("").is_err());
    assert!(RunReport::from_json("null").is_err());
    assert!(RunReport::from_json("42").is_err());
    assert!(RunReport::from_json("[]").is_err());
    assert!(RunReport::from_json("\"spans\"").is_err());
}

#[test]
fn wrong_type_fields_name_the_field() {
    // A scalar where the spans array belongs.
    let err = RunReport::from_json(r#"{"spans": 7, "counters": [], "histograms": []}"#)
        .expect_err("scalar spans must fail");
    assert!(err.contains("spans"), "error should name the field: {err}");

    // A wrong-typed element inside an otherwise valid array.
    let err = RunReport::from_json(
        r#"{"spans": [], "counters": [{"name": 3, "value": 1}], "histograms": []}"#,
    )
    .expect_err("numeric counter name must fail");
    assert!(err.contains("name"), "error should name the field: {err}");

    // A string where a numeric field belongs.
    let err = RunReport::from_json(
        r#"{"spans": [], "counters": [{"name": "x", "value": "lots"}], "histograms": []}"#,
    )
    .expect_err("string counter value must fail");
    assert!(err.contains("value"), "error should name the field: {err}");
}

#[test]
fn missing_fields_fail() {
    // The parser treats a missing key as null, which no Vec field
    // accepts — a report without its sections is rejected, not
    // defaulted.
    let err = RunReport::from_json(r#"{"counters": [], "histograms": []}"#)
        .expect_err("missing spans must fail");
    assert!(err.contains("spans"), "error should name the field: {err}");
}

#[test]
fn unknown_keys_are_ignored() {
    // Forward compatibility: fields added by a newer writer (or the
    // surrounding bench JSON) must not break older readers. The parser
    // looks fields up by name and skips the rest.
    let json = r#"{
        "spans": [],
        "counters": [{"name": "trips-processed", "value": 2, "annotation": "new"}],
        "histograms": [],
        "fleet_health": {"trips": 2}
    }"#;
    let report = RunReport::from_json(json).expect("unknown keys are tolerated");
    assert_eq!(report.counter("trips-processed"), Some(2));
    assert!(report.spans.is_empty());
}

// ---------------------------------------------------------------------
// Round-trip property
// ---------------------------------------------------------------------

/// Alphabet for generated metric names: taxonomy punctuation (`-`,
/// `:`) plus characters JSON must escape, so the round trip covers the
/// string-escaping path too.
const NAME_CHARS: [char; 12] = ['a', 'z', 'A', '0', '-', ':', '_', ' ', '"', '\\', '\n', 'é'];

/// Metric-name-ish strings drawn from [`NAME_CHARS`].
fn name_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0..NAME_CHARS.len(), 1..12)
        .prop_map(|idxs| idxs.into_iter().map(|i| NAME_CHARS[i]).collect())
}

/// Finite floats only: JSON has no spelling for NaN/±Inf (the shim
/// serializes them as null), so round-trip equality is scoped to the
/// values a report can faithfully carry. Mixes magnitudes from
/// subnormal-adjacent to 1e12, plus exact zero.
fn finite_f64() -> impl Strategy<Value = f64> {
    (0..3usize, -1.0e12..1.0e12f64).prop_map(|(kind, x)| match kind {
        0 => x,
        1 => x * 1.0e-21,
        _ => 0.0,
    })
}

fn span_strategy() -> impl Strategy<Value = SpanReport> {
    (name_strategy(), 0..3u64, 1..1_000_000u64, 0..u64::MAX / 4, 0..u64::MAX / 4).prop_map(
        |(name, depth, count, a, b)| {
            let (lo, hi) = (a.min(b), a.max(b));
            let total_ns = hi.saturating_mul(count.min(1_000));
            SpanReport {
                name,
                depth,
                count,
                total_ns,
                mean_ns: total_ns / count,
                min_ns: lo,
                max_ns: hi,
            }
        },
    )
}

fn counter_strategy() -> impl Strategy<Value = CounterReport> {
    (name_strategy(), 0..u64::MAX).prop_map(|(name, value)| CounterReport { name, value })
}

fn histogram_strategy() -> impl Strategy<Value = HistogramReport> {
    (name_strategy(), 1..1_000_000u64, finite_f64(), finite_f64(), finite_f64()).prop_map(
        |(name, count, mean, spread, x)| {
            let mut decades = [0u64; gradest_obs::run::DECADE_BUCKETS];
            decades[(count % gradest_obs::run::DECADE_BUCKETS as u64) as usize] = count;
            HistogramReport {
                name,
                count,
                mean,
                stddev: spread.abs(),
                min: x.min(mean),
                max: x.max(mean),
                decades,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn report_round_trips_exactly(
        spans in prop::collection::vec(span_strategy(), 0..5),
        counters in prop::collection::vec(counter_strategy(), 0..5),
        histograms in prop::collection::vec(histogram_strategy(), 0..5),
    ) {
        let report = RunReport { spans, counters, histograms };
        let json = report.to_json();
        let back = RunReport::from_json(&json).expect("serializer output must parse");
        prop_assert_eq!(&back, &report);
        // Stability: a second trip through text changes nothing.
        let json2 = back.to_json();
        prop_assert_eq!(json2, json);
    }
}

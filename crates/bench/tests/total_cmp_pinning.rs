//! Pins the `partial_cmp` → `total_cmp` migration: on every float
//! series the benchmark scenarios actually produce, `total_cmp` must
//! order the data exactly as the old `partial_cmp(..).unwrap()` did.
//!
//! The two comparators differ only on NaN (where `partial_cmp` panics)
//! and on signed zeros (`total_cmp` puts `-0.0` before `+0.0`, which
//! `partial_cmp` treats as equal — an order `sort` was free to produce
//! anyway, so it pins bit-stably without changing any observable
//! ranking). If a scenario ever starts emitting NaN, the old code
//! would have panicked; this test fails loudly instead.

use gradest_bench::scenarios::red_road_drive;

/// Sorts with both comparators and asserts bit-identical results.
/// `partial_cmp` runs first, so a NaN in the series fails here with a
/// clear message rather than a panic inside `sort_by`.
fn assert_orderings_agree(name: &str, series: &[f64]) {
    assert!(!series.is_empty(), "{name}: empty series pins nothing");
    assert!(series.iter().all(|v| !v.is_nan()), "{name}: NaN entered the scenario data");

    let mut by_partial = series.to_vec();
    by_partial.sort_by(|a, b| a.partial_cmp(b).expect("NaN ruled out above"));
    let mut by_total = series.to_vec();
    by_total.sort_by(f64::total_cmp);

    let identical = by_partial.iter().zip(&by_total).all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "{name}: total_cmp reordered the series relative to partial_cmp");
}

#[test]
fn total_cmp_matches_partial_cmp_on_scenario_series() {
    let drive = red_road_drive(400);

    let gyro: Vec<f64> = drive.log.imu.iter().map(|s| s.gyro_z).collect();
    assert_orderings_agree("imu.gyro_z", &gyro);

    let accel: Vec<f64> = drive.log.imu.iter().map(|s| s.accel_long).collect();
    assert_orderings_agree("imu.accel_long", &accel);

    let est = drive.ops();
    assert_orderings_agree("fused.theta", &est.fused.theta);
    assert_orderings_agree("fused.variance", &est.fused.variance);
}

#[test]
fn total_cmp_matches_partial_cmp_with_signed_zeros_present() {
    // Steering rates cross zero constantly; make the signed-zero case
    // explicit rather than hoping a scenario happens to produce -0.0.
    let drive = red_road_drive(401);
    let mut series: Vec<f64> = drive.log.imu.iter().take(256).map(|s| s.gyro_z).collect();
    series.push(0.0);
    series.push(-0.0);

    let mut by_partial = series.clone();
    by_partial.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));
    let mut by_total = series;
    by_total.sort_by(f64::total_cmp);

    // Signed zeros compare equal under partial_cmp, so demand identical
    // *values* (not bits) here: every ranking observable to the old
    // code is preserved.
    assert_eq!(by_partial, by_total);
}

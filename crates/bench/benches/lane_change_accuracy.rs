//! Lane-change detector precision/recall evaluation.
use gradest_bench::experiments::lane_accuracy;

fn main() {
    let r = lane_accuracy::run(8, 700);
    lane_accuracy::print_report(&r);
}

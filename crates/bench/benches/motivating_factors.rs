//! Checks the introduction's motivating fuel-vs-gradient citations.
use gradest_bench::experiments::motivating;

fn main() {
    let r = motivating::run();
    motivating::print_report(&r);
}

//! Regenerates Figure 10(b) (city CO2 emission map).
use gradest_bench::experiments::fig10;

fn main() {
    let r = fig10::run(42);
    fig10::print_report_co2(&r);
}

//! Regenerates Figure 8(a) (OPS/EKF/ANN error along the red road).
use gradest_bench::experiments::fig8a;

fn main() {
    let r = fig8a::run_averaged(&[11, 12, 13]);
    fig8a::print_report(&r);
}

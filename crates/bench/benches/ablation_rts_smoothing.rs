//! Ablation A3: backward RTS smoothing vs forward-only filtering.
use gradest_bench::experiments::ablations;

fn main() {
    let r = ablations::run_rts(31);
    ablations::print_report_rts(&r);
}

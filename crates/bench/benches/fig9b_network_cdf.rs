//! Regenerates Figure 9(b) (city-scale error CDFs + 22% headline).
use gradest_bench::experiments::fig9;

fn main() {
    let r = fig9::run(&fig9::Fig9Config::default());
    fig9::print_report_cdf(&r);
}

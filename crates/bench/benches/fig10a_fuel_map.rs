//! Regenerates Figure 10(a) (city fuel-consumption map).
use gradest_bench::experiments::fig10;

fn main() {
    let r = fig10::run(42);
    fig10::print_report_fuel(&r);
}

//! Ablation A2: Eq 2 lane-change velocity correction on/off.
use gradest_bench::experiments::ablations;

fn main() {
    let r = ablations::run_lane_correction(33);
    ablations::print_report_lane(&r);
}

//! Regenerates Figure 9(a) (city-scale gradient map).
use gradest_bench::experiments::fig9;

fn main() {
    let r = fig9::run(&fig9::Fig9Config::default());
    fig9::print_report_map(&r);
}

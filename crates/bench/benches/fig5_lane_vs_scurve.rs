//! Regenerates Figure 5 (lane change vs S-curve discrimination).
use gradest_bench::experiments::fig5;

fn main() {
    let r = fig5::run(50);
    fig5::print_report(&r);
}

//! Regenerates Figures 3-4 (lane-change steering-rate profiles).
use gradest_bench::experiments::fig3_4;

fn main() {
    let r = fig3_4::run(40);
    fig3_4::print_report(&r);
}

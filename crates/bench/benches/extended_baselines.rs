//! Extended six-estimator comparison (beyond the paper's three methods).
use gradest_bench::experiments::extended;

fn main() {
    let r = extended::run(11);
    extended::print_report(&r);
}

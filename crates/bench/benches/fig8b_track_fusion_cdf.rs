//! Regenerates Figure 8(b) (error CDFs vs number of fused tracks).
use gradest_bench::experiments::fig8b;

fn main() {
    let r = fig8b::run(21);
    fig8b::print_report(&r);
}

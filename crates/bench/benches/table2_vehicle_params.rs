//! Regenerates Table II (vehicle fuel-model parameters).
use gradest_bench::experiments::table2;

fn main() {
    let r = table2::run();
    table2::print_report(&r);
}

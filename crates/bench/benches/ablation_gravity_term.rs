//! Ablation A1: literal Eq 5 predict vs gravity-compensated predict.
use gradest_bench::experiments::ablations;

fn main() {
    let r = ablations::run_gravity(31);
    ablations::print_report_gravity(&r);
}

//! Regenerates Table I (bump features of the 10-driver steering study).
use gradest_bench::experiments::table1;

fn main() {
    let r = table1::run(10);
    table1::print_report(&r);
}

//! Criterion micro-benchmarks of the estimation kernels (P1–P4): EKF
//! step throughput, LOWESS smoothing, the lane-change detector, and track
//! fusion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gradest_core::ekf::{EkfConfig, GradientEkf};
use gradest_core::fusion::fuse_tracks;
use gradest_core::lane_change::LaneChangeDetector;
use gradest_core::steering::{smooth_profile, SmoothedProfile};
use gradest_core::track::GradientTrack;
use gradest_emissions::FuelModel;
use std::hint::black_box;

fn ekf_step(c: &mut Criterion) {
    c.bench_function("ekf_predict_update", |b| {
        let mut ekf = GradientEkf::new(EkfConfig::default(), 15.0);
        b.iter(|| {
            ekf.predict(black_box(0.5), 0.02);
            ekf.update(black_box(15.0), 0.05);
            black_box(ekf.theta())
        });
    });
}

fn lowess_smoothing(c: &mut Criterion) {
    // 60 s of 50 Hz steering data.
    let raw: Vec<(f64, f64)> = (0..3000)
        .map(|i| {
            let t = i as f64 * 0.02;
            (t, 0.02 * (t * 7.3).sin() + 0.1 * (t / 8.0).sin())
        })
        .collect();
    c.bench_function("lowess_smooth_3000", |b| {
        b.iter(|| black_box(smooth_profile(black_box(&raw), 0.8)));
    });
}

fn lane_change_detection(c: &mut Criterion) {
    let dt = 0.02;
    let profile = SmoothedProfile {
        t: (0..6000).map(|i| i as f64 * dt).collect(),
        w: (0..6000)
            .map(|i| {
                let t = i as f64 * dt;
                if (30.0..34.0).contains(&t) {
                    0.15 * (std::f64::consts::TAU * (t - 30.0) / 4.0).sin()
                } else {
                    0.003 * (t * 9.1).sin()
                }
            })
            .collect(),
    };
    let det = LaneChangeDetector::default();
    c.bench_function("lane_change_detect_6000", |b| {
        b.iter(|| black_box(det.detect(black_box(&profile), &|_| 12.0)));
    });
}

fn track_fusion(c: &mut Criterion) {
    let mk = |offset: f64| {
        let mut t = GradientTrack::new("t");
        for i in 0..10_000 {
            t.push(i as f64, 0.03 + offset, 1e-4 + offset.abs());
        }
        t
    };
    let tracks = vec![mk(0.0), mk(0.002), mk(-0.001), mk(0.004)];
    c.bench_function("fuse_4_tracks_10000", |b| {
        b.iter_batched(
            || tracks.clone(),
            |t| black_box(fuse_tracks(&t).expect("aligned")),
            BatchSize::SmallInput,
        );
    });
}

fn pipeline_end_to_end(c: &mut Criterion) {
    use gradest_core::pipeline::{EstimatorConfig, GradientEstimator};
    use gradest_geo::generate::red_road;
    use gradest_geo::Route;
    use gradest_sensors::suite::{SensorConfig, SensorSuite};
    use gradest_sim::trip::{simulate_trip, TripConfig};
    // One full red-road trip (~140 s of driving at 50 Hz).
    let route = Route::new(vec![red_road()]).expect("valid route");
    let traj = simulate_trip(&route, &TripConfig::default(), 7);
    let log = SensorSuite::new(SensorConfig::default()).run(&traj, 7);
    let estimator = GradientEstimator::new(EstimatorConfig::default());
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.bench_function("estimate_full_red_road_trip", |b| {
        b.iter(|| black_box(estimator.estimate(black_box(&log), Some(&route))));
    });
    group.finish();
}

fn vsp_eval(c: &mut Criterion) {
    let model = FuelModel::default();
    c.bench_function("vsp_fuel_rate", |b| {
        b.iter(|| black_box(model.fuel_rate_gph(black_box(11.1), black_box(0.3), black_box(0.04))));
    });
}

criterion_group!(
    benches,
    ekf_step,
    lowess_smoothing,
    lane_change_detection,
    track_fusion,
    pipeline_end_to_end,
    vsp_eval
);
criterion_main!(benches);

//! Micro-benchmarks of the estimation kernels and the parallel batch
//! machinery: EKF step throughput, LOWESS smoothing, the lane-change
//! detector, track fusion, the single-trip pipeline, the fleet worker
//! pool at 1 and N workers, and concurrent cloud uploads.
//!
//! ```text
//! cargo bench -p gradest-bench --bench perf
//! ```

use gradest_bench::perfbench::{run_bench, BenchReport};
use gradest_core::cloud::CloudAggregator;
use gradest_core::ekf::{EkfConfig, GradientEkf};
use gradest_core::fleet::FleetEngine;
use gradest_core::fusion::fuse_tracks;
use gradest_core::lane_change::LaneChangeDetector;
use gradest_core::pipeline::{EstimatorConfig, GradientEstimator};
use gradest_core::steering::{smooth_profile, SmoothedProfile};
use gradest_core::track::GradientTrack;
use gradest_emissions::FuelModel;
use gradest_geo::generate::red_road;
use gradest_geo::Route;
use gradest_sensors::suite::{SensorConfig, SensorLog, SensorSuite};
use gradest_sim::trip::{simulate_trip, TripConfig};
use std::hint::black_box;

fn ekf_step() -> BenchReport {
    let mut ekf = GradientEkf::new(EkfConfig::default(), 15.0);
    run_bench("ekf_predict_update", 7, 100_000, || {
        for _ in 0..100_000 {
            ekf.predict(black_box(0.5), 0.02);
            ekf.update(black_box(15.0), 0.05);
            black_box(ekf.theta());
        }
    })
}

fn lowess_smoothing() -> BenchReport {
    // 60 s of 50 Hz steering data.
    let raw: Vec<(f64, f64)> = (0..3000)
        .map(|i| {
            let t = i as f64 * 0.02;
            (t, 0.02 * (t * 7.3).sin() + 0.1 * (t / 8.0).sin())
        })
        .collect();
    run_bench("lowess_smooth_3000", 7, 10, || {
        for _ in 0..10 {
            black_box(smooth_profile(black_box(&raw), 0.8));
        }
    })
}

fn lane_change_detection() -> BenchReport {
    let dt = 0.02;
    let profile = SmoothedProfile {
        t: (0..6000).map(|i| i as f64 * dt).collect(),
        w: (0..6000)
            .map(|i| {
                let t = i as f64 * dt;
                if (30.0..34.0).contains(&t) {
                    0.15 * (std::f64::consts::TAU * (t - 30.0) / 4.0).sin()
                } else {
                    0.003 * (t * 9.1).sin()
                }
            })
            .collect(),
    };
    let det = LaneChangeDetector::default();
    run_bench("lane_change_detect_6000", 7, 20, || {
        for _ in 0..20 {
            black_box(det.detect(black_box(&profile), &|_| 12.0));
        }
    })
}

fn track_fusion() -> BenchReport {
    let mk = |offset: f64| {
        let mut t = GradientTrack::new("t");
        for i in 0..10_000 {
            t.push(i as f64, 0.03 + offset, 1e-4 + offset.abs());
        }
        t
    };
    let tracks = vec![mk(0.0), mk(0.002), mk(-0.001), mk(0.004)];
    run_bench("fuse_4_tracks_10000", 7, 10, || {
        for _ in 0..10 {
            black_box(fuse_tracks(black_box(&tracks)).expect("aligned"));
        }
    })
}

fn red_road_batch(n: u64) -> (Route, Vec<SensorLog>) {
    let route = Route::new(vec![red_road()]).expect("valid route");
    let logs = (0..n)
        .map(|seed| {
            let traj = simulate_trip(&route, &TripConfig::default(), 7 + seed);
            SensorSuite::new(SensorConfig::default()).run(&traj, 7 + seed)
        })
        .collect();
    (route, logs)
}

fn pipeline_single_trip(route: &Route, log: &SensorLog) -> BenchReport {
    let estimator = GradientEstimator::new(EstimatorConfig::default());
    run_bench("pipeline_estimate_single_trip", 5, 1, || {
        black_box(estimator.estimate(black_box(log), Some(route)));
    })
}

fn fleet_batch(route: &Route, logs: &[SensorLog], workers: usize) -> BenchReport {
    // Track-level parallelism off: measure pure worker-pool scaling.
    let estimator =
        GradientEstimator::new(EstimatorConfig { parallel_tracks: false, ..Default::default() });
    let engine = FleetEngine::new(estimator, workers);
    run_bench(
        &format!("fleet_batch_{}_trips_{workers}_workers", logs.len()),
        3,
        logs.len() as u64,
        || {
            let out = engine.process_batch(black_box(logs), Some(route));
            assert_eq!(out.len(), logs.len());
        },
    )
}

fn cloud_upload_contention(threads: usize) -> BenchReport {
    let uploads: Vec<(u64, GradientTrack)> = (0..64u64)
        .map(|i| {
            let mut t = GradientTrack::new(format!("v{i}"));
            for j in 0..400 {
                t.push(j as f64 * 5.0, 0.02, 1e-4);
            }
            (i % 8, t)
        })
        .collect();
    run_bench("cloud_upload_contention", 7, uploads.len() as u64, || {
        let cloud = CloudAggregator::new(5.0);
        std::thread::scope(|scope| {
            for chunk in uploads.chunks(uploads.len().div_ceil(threads)) {
                let cloud = &cloud;
                scope.spawn(move || {
                    for (road, track) in chunk {
                        cloud.upload(*road, track);
                    }
                });
            }
        });
        assert_eq!(cloud.uploads(), uploads.len() as u64);
    })
}

fn vsp_eval() -> BenchReport {
    let model = FuelModel::default();
    run_bench("vsp_fuel_rate", 7, 1_000_000, || {
        for _ in 0..1_000_000 {
            black_box(model.fuel_rate_gph(black_box(11.1), black_box(0.3), black_box(0.04)));
        }
    })
}

fn main() {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, 4);
    let (route, logs) = red_road_batch(16);
    let reports = [
        ekf_step(),
        lowess_smoothing(),
        lane_change_detection(),
        track_fusion(),
        pipeline_single_trip(&route, &logs[0]),
        fleet_batch(&route, &logs, 1),
        fleet_batch(&route, &logs, workers),
        cloud_upload_contention(workers),
        vsp_eval(),
    ];
    println!("perf micro-benchmarks ({workers} worker(s) for parallel targets):");
    for r in &reports {
        println!("  {}", r.line());
    }
}

//! Regenerates the +33.4% fuel/emission headline (Section IV-C).
use gradest_bench::experiments::headline_fuel;

fn main() {
    let r = headline_fuel::run(42);
    headline_fuel::print_report(&r);
}

//! Regenerates Table III (red-road sections).
use gradest_bench::experiments::table3;

fn main() {
    let r = table3::run();
    table3::print_report(&r);
}

//! Minimal wall-clock micro-benchmark harness.
//!
//! The perf targets used to depend on an external benchmark framework;
//! this harness replaces it with the ~60 lines the experiments actually
//! need: fixed-sample timing with an internal-iteration multiplier, a
//! median-of-samples estimate (robust to scheduler noise), and a
//! serializable report for the machine-readable JSON dumps.

use serde::{Deserialize, Serialize};
use std::time::Instant;

pub mod alloc_counter {
    //! Process-wide allocation counter — the safe half of allocation
    //! tracking.
    //!
    //! This crate forbids `unsafe`, so the `GlobalAlloc` wrapper that
    //! feeds the counter lives in the `gradest-experiments` binary (see
    //! its `CountingAlloc`); library code only reads the atomics. When no
    //! counting allocator is installed, [`is_installed`] stays false and
    //! consumers must report "not measured" rather than zero.

    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    // sync: standalone monotonic counter; Relaxed everywhere because no
    // other data is published through it — readers diff it around a
    // single-threaded region of interest.
    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    // sync: write-once latch flipped before any benchmark runs; Relaxed
    // suffices because readers only gate on "was an allocator ever
    // installed", not on ordering relative to counts.
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    /// Records one heap allocation (called from a counting global
    /// allocator's `alloc`/`realloc`).
    #[inline]
    pub fn record() {
        // sync: Relaxed — pure count, carries no dependent data.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }

    /// Declares that a counting global allocator is feeding [`record`].
    pub fn mark_installed() {
        // sync: Relaxed — latch set in main before benchmarks start.
        INSTALLED.store(true, Ordering::Relaxed);
    }

    /// Whether a counting global allocator is active in this process.
    pub fn is_installed() -> bool {
        // sync: Relaxed — see the latch note on INSTALLED.
        INSTALLED.load(Ordering::Relaxed)
    }

    /// Total allocations recorded so far (monotonic; diff around a
    /// region of interest).
    pub fn allocations() -> u64 {
        // sync: Relaxed — monotonic statistic, no ordering dependency.
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

/// One benchmark's timing summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Benchmark name.
    pub name: String,
    /// Timed samples taken (after one warm-up sample).
    pub samples: usize,
    /// Operations executed inside each sample.
    pub ops_per_sample: u64,
    /// Median nanoseconds per operation across samples.
    pub median_ns_per_op: f64,
    /// Fastest sample's nanoseconds per operation.
    pub min_ns_per_op: f64,
    /// Throughput implied by the median, operations per second.
    pub ops_per_sec: f64,
}

impl BenchReport {
    /// One aligned human-readable summary line.
    pub fn line(&self) -> String {
        format!(
            "{:<40} {:>14.1} ns/op {:>14.0} op/s",
            self.name, self.median_ns_per_op, self.ops_per_sec
        )
    }
}

/// Times `f` over `samples` repetitions (plus one untimed warm-up).
///
/// `f` must execute `ops_per_sample` operations per call; per-op figures
/// divide by it, so cheap kernels should loop internally to amortise the
/// clock overhead. The median across samples is reported.
///
/// # Panics
///
/// Panics if `samples == 0` or `ops_per_sample == 0`.
pub fn run_bench(
    name: &str,
    samples: usize,
    ops_per_sample: u64,
    mut f: impl FnMut(),
) -> BenchReport {
    assert!(samples > 0, "need at least one sample");
    assert!(ops_per_sample > 0, "need at least one op per sample");
    f(); // warm-up: page in code and data
    let mut per_op: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64 / ops_per_sample as f64
        })
        .collect();
    per_op.sort_by(f64::total_cmp);
    let median = per_op[per_op.len() / 2];
    BenchReport {
        name: name.to_string(),
        samples,
        ops_per_sample,
        median_ns_per_op: median,
        min_ns_per_op: per_op[0],
        ops_per_sec: 1e9 / median.max(f64::MIN_POSITIVE),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_plausible_timings() {
        let mut acc = 0u64;
        let r = run_bench("spin", 5, 1000, || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i);
            }
        });
        assert_eq!(r.samples, 5);
        assert!(r.median_ns_per_op >= 0.0);
        assert!(r.min_ns_per_op <= r.median_ns_per_op);
        assert!(r.ops_per_sec > 0.0);
        assert!(!r.line().is_empty());
        assert!(acc > 0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = run_bench("bad", 0, 1, || {});
    }
}

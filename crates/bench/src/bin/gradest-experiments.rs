//! Runs the paper's full evaluation sequentially from one binary.
//!
//! ```text
//! cargo run --release -p gradest-bench --bin gradest-experiments           # everything
//! cargo run --release -p gradest-bench --bin gradest-experiments -- fig8  # name filter
//! ```
//!
//! Identical to running the individual bench targets; this entry point
//! exists for users who want the complete evaluation (and its JSON
//! artifacts under `target/experiment-results/`) in one command.

use gradest_bench::experiments::*;
use gradest_bench::perfbench::alloc_counter;
use std::alloc::{GlobalAlloc, Layout, System};

/// System allocator wrapped to count allocations for the hot-path
/// benchmark's warm-trip gate. Lives in the binary because the library
/// crates forbid `unsafe`; it delegates everything to [`System`] and only
/// bumps an atomic on `alloc`/`realloc`.
struct CountingAlloc;

// SAFETY: delegates every operation unchanged to the system allocator;
// the counter update is a side effect with no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        alloc_counter::record();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        alloc_counter::record();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    alloc_counter::mark_installed();
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let wants = |name: &str| filter.is_empty() || filter.iter().any(|f| name.contains(f.as_str()));
    let mut ran = 0usize;

    let mut run_exp = |name: &str, f: &mut dyn FnMut()| {
        if wants(name) {
            println!("\n################ {name} ################");
            f();
            ran += 1;
        }
    };

    run_exp("table1_bump_features", &mut || table1::print_report(&table1::run(10)));
    run_exp("table2_vehicle_params", &mut || table2::print_report(&table2::run()));
    run_exp("table3_red_road", &mut || table3::print_report(&table3::run()));
    run_exp("fig3_4_steering_profiles", &mut || fig3_4::print_report(&fig3_4::run(40)));
    run_exp("fig5_lane_vs_scurve", &mut || fig5::print_report(&fig5::run(50)));
    run_exp("fig8a_error_comparison", &mut || {
        fig8a::print_report(&fig8a::run_averaged(&[11, 12, 13]))
    });
    run_exp("fig8b_track_fusion_cdf", &mut || fig8b::print_report(&fig8b::run(21)));
    run_exp("fig9_network", &mut || {
        let r = fig9::run(&fig9::Fig9Config::default());
        fig9::print_report_map(&r);
        fig9::print_report_cdf(&r);
    });
    run_exp("fig10_maps", &mut || {
        let r = fig10::run(42);
        fig10::print_report_fuel(&r);
        fig10::print_report_co2(&r);
    });
    run_exp("headline_fuel_delta", &mut || headline_fuel::print_report(&headline_fuel::run(42)));
    run_exp("motivating_factors", &mut || motivating::print_report(&motivating::run()));
    run_exp("lane_change_accuracy", &mut || {
        lane_accuracy::print_report(&lane_accuracy::run(8, 700))
    });
    run_exp("ablation_gravity_term", &mut || {
        ablations::print_report_gravity(&ablations::run_gravity(31))
    });
    run_exp("ablation_lane_correction", &mut || {
        ablations::print_report_lane(&ablations::run_lane_correction(33))
    });
    run_exp("ablation_rts_smoothing", &mut || ablations::print_report_rts(&ablations::run_rts(31)));
    run_exp("extended_baselines", &mut || extended::print_report(&extended::run(11)));
    run_exp("fleet_scaling", &mut || {
        let workers =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, 4);
        fleet_bench::print_report(&fleet_bench::run(900, 16, workers))
    });
    run_exp("pipeline_hotpath", &mut || {
        pipeline_hotpath::print_report(&pipeline_hotpath::run(77, 5))
    });
    run_exp("kernel_microbench", &mut || kernels::print_report(&kernels::run(77, 5)));
    run_exp("geo_index", &mut || geo_index::print_report(&geo_index::run(77, 200.0, 3)));
    run_exp("service_soak", &mut || service_soak::print_report(&service_soak::run(77, 8, 8)));

    // CI smoke gate: exact-name only, so plain `pipeline_hotpath` runs
    // don't trigger it. One trip, and the warm path must not allocate —
    // with or without a live recorder, which must also reproduce the
    // plain estimate bit for bit.
    if filter.iter().any(|f| f == "pipeline_hotpath_smoke") {
        println!("\n################ pipeline_hotpath_smoke ################");
        let r = pipeline_hotpath::run(77, 1);
        assert_eq!(r.allocs_per_trip_warm, Some(0), "warm estimation path allocated");
        assert_eq!(
            r.allocs_per_trip_warm_recorded,
            Some(0),
            "recorded warm estimation path allocated"
        );
        assert_eq!(
            r.allocs_per_trip_warm_traced,
            Some(0),
            "warm estimation path with a live trace ring allocated"
        );
        assert!(r.fast_vs_generic_max_abs_diff < 1e-12, "fast LOWESS path diverged");
        assert!(r.generic_bit_identical, "warm scratch broke bit-identity");
        assert!(r.recorded_bit_identical, "recorder changed the estimate");
        assert!(r.traced_bit_identical, "trace ring changed the estimate");
        assert!(r.trace_overflow_dropped > 0, "overflowing ring did not count drops");
        pipeline_hotpath::print_report(&r);
        ran += 1;
    }

    // Spatial-index smoke gate: exact-name only. A country-scale
    // network (≥ 10⁵ segments) where the packed tree must beat the
    // brute-force oracle ≥ 10x at identical answers, with zero heap
    // allocations per warm query.
    if filter.iter().any(|f| f == "geo_index_smoke") {
        println!("\n################ geo_index_smoke ################");
        let r = geo_index::run(77, 1000.0, 1);
        assert!(r.segments >= 100_000, "expected >= 1e5 segments, got {}", r.segments);
        assert!(r.nearest_matches_oracle, "indexed nearest diverged from brute force");
        assert!(
            r.nearest_speedup_vs_oracle >= 10.0,
            "index only {:.1}x faster than linear scan",
            r.nearest_speedup_vs_oracle
        );
        assert_eq!(r.allocs_per_query_warm, Some(0), "warm nearest query allocated");
        geo_index::print_report(&r);
        ran += 1;
    }

    // Ingestion-service smoke gate: exact-name only. 64 simulated
    // phones over loopback must sustain >= 500 trips/s into the
    // service, tiles served over the wire must be bit-identical to
    // direct aggregation, ~2x overload must answer typed BUSY rejects
    // with every client terminating, the drain must complete cleanly
    // (including one raced by a live uploader), the warm
    // decode → estimate window must not allocate (with the live
    // time-series recorder wired in), healthy traffic must stay
    // drift-free with STATUS quantiles inside the sketch bound, and
    // degraded sensors must trip a quality alert within the deadline.
    if filter.iter().any(|f| f == "service_soak_smoke") {
        println!("\n################ service_soak_smoke ################");
        let r = service_soak::run(77, 64, 3);
        assert!(
            r.sustained_trips_per_sec >= 500.0,
            "service sustained only {:.0} trips/s",
            r.sustained_trips_per_sec
        );
        assert!(r.tiles_bit_identical, "served tiles diverged from direct aggregation");
        assert_eq!(r.uploads_acked, r.trips_total as u64, "service dropped uploads");
        assert_eq!(r.frames_rejected, 0, "well-formed fleet saw rejects");
        assert!(r.overload_busy_rejects > 0, "overload produced no BUSY rejects");
        assert!(r.overload_clients_finished, "an overloaded client wedged");
        assert!(r.drain_clean, "shutdown left uploads in flight");
        assert!(r.prometheus_valid, "METRICS frame failed the Prometheus grammar check");
        assert_eq!(r.allocs_per_frame_warm, Some(0), "warm decode->estimate window allocated");
        assert!(r.status_healthy_drift_free, "drift alert false-positive during healthy traffic");
        assert!(
            r.status_quantiles_in_bounds,
            "STATUS latency quantiles left the sketch error bound"
        );
        assert!(
            r.drift_alert_fired,
            "degraded sensors raised no drift alert within the deadline \
             ({:.1} windows elapsed)",
            r.alert_latency_windows
        );
        service_soak::print_report(&r);
        ran += 1;
    }

    if ran == 0 {
        eprintln!("no experiment matches filter {filter:?}");
        std::process::exit(1);
    }
    println!("\n{ran} experiment group(s) complete.");
}

//! Flight-recorder demo: a canonical simulated fleet run with the
//! trace ring teed into the metrics recorder, rendered as a per-trip
//! timeline and exported in standard telemetry formats.
//!
//! Usage: `cargo run -p gradest-bench --release --bin gradest-trace`
//!
//! Writes to `target/experiment-results/`:
//!
//! * `TRACE_fleet.json` — Chrome/Perfetto `trace_event` JSON; open it
//!   in `ui.perfetto.dev` or `chrome://tracing`.
//! * `gradest-metrics.prom` — Prometheus text exposition of the run's
//!   counters, spans, histograms, and the fleet health report.

use gradest_bench::report::results_dir;
use gradest_bench::scenarios::red_road_drive;
use gradest_core::cloud::CloudAggregator;
use gradest_core::fleet::FleetEngine;
use gradest_core::pipeline::{EstimatorConfig, GradientEstimator};
use gradest_obs::{
    chrome_trace_json, prometheus_text, validate_prometheus_text, FleetHealth, RunRecorder, Tee,
    TraceRing,
};

/// Trips in the canonical fleet batch.
const TRIPS: usize = 4;
/// Flight-recorder capacity: ample for the canonical batch, so the
/// exported trace is complete (`dropped=0`).
const RING_CAPACITY: usize = 65_536;

fn main() {
    // The canonical fleet: red-road trips with distinct seeds, two
    // workers, cloud fan-in — the same shape `fleet_scaling` times,
    // sized for a readable timeline rather than for throughput.
    let logs: Vec<_> = (0..TRIPS as u64).map(|i| red_road_drive(700 + i).log).collect();
    let road_ids: Vec<u64> = (0..TRIPS as u64).map(|i| i % 2).collect();
    let estimator =
        GradientEstimator::new(EstimatorConfig { parallel_tracks: false, ..Default::default() });
    let engine = FleetEngine::new(estimator, 2);
    let cloud = CloudAggregator::new(5.0);

    let run = RunRecorder::new();
    let ring = TraceRing::with_capacity(RING_CAPACITY);
    let rec = Tee::new(&run, &ring);
    let estimates = engine.process_batch_to_cloud_recorded(&logs, &road_ids, None, &cloud, &rec);
    assert_eq!(estimates.len(), TRIPS, "fleet run lost a trip");

    let snapshot = ring.snapshot();
    println!("{}", snapshot.render());
    let health = FleetHealth::from_run(&run);
    println!("{}", health.render());

    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }

    let trace_path = dir.join("TRACE_fleet.json");
    if let Err(e) = std::fs::write(&trace_path, chrome_trace_json(&snapshot)) {
        eprintln!("error: cannot write {}: {e}", trace_path.display());
        std::process::exit(1);
    }
    println!(
        "[saved {}] ({} events, {} dropped)",
        trace_path.display(),
        snapshot.events.len(),
        snapshot.dropped
    );

    let prom = prometheus_text(&run.report(), Some(&health));
    if let Err(e) = validate_prometheus_text(&prom) {
        eprintln!("error: generated exposition failed validation: {e}");
        std::process::exit(1);
    }
    let prom_path = dir.join("gradest-metrics.prom");
    if let Err(e) = std::fs::write(&prom_path, prom) {
        eprintln!("error: cannot write {}: {e}", prom_path.display());
        std::process::exit(1);
    }
    println!("[saved {}]", prom_path.display());
}

//! Perf-regression gate over the committed benchmark baselines.
//!
//! ```text
//! cargo run --release -p gradest-bench --bin bench-gate                # gate HEAD
//! cargo run --release -p gradest-bench --bin bench-gate -- --update   # refresh baselines
//! cargo run --release -p gradest-bench --bin bench-gate -- --tolerance 0.35
//! cargo run --release -p gradest-bench --bin bench-gate -- --inject-regression
//! ```
//!
//! Re-runs the `pipeline_hotpath`, `fleet_scaling`,
//! `kernel_microbench`, `geo_index`, and `service_soak` experiments,
//! extracts the gated latency metrics (benchmark medians plus the
//! per-stage span means from each result's embedded obs `RunReport`),
//! and diffs them against `BENCH_pipeline.json` / `BENCH_fleet.json` /
//! `BENCH_kernels.json` / `BENCH_geo.json` / `BENCH_service.json` at
//! the repository root. Exit codes: 0 all metrics within tolerance,
//! 1 at least one regression or missing metric, 2 usage or missing
//! baseline files (the error names each absent baseline and the
//! `--update` command that regenerates it).
//!
//! Every `--update` also appends one compact JSON line (timestamp,
//! git commit, all gated metrics) to `BENCH_HISTORY.jsonl` at the
//! repository root — commit it alongside the refreshed baselines so
//! the perf trajectory across refreshes stays in one greppable file.
//!
//! Like `gradest-experiments`, this binary installs a counting global
//! allocator, so the baselines it writes carry measured
//! `allocs_per_trip_warm*` counts (the hot-path JSON asserts 0)
//! instead of "not measured" nulls.
//!
//! Tolerance precedence: `--tolerance` flag, then the
//! `BENCH_GATE_TOLERANCE` environment variable, then the built-in
//! default (±20 %). `--inject-regression` triples every current metric
//! after measurement — a self-test hook proving the gate actually
//! fails (used by `scripts/bench-gate.sh --self-test`).

use gradest_bench::experiments::{fleet_bench, geo_index, kernels, pipeline_hotpath, service_soak};
use gradest_bench::gate::{self, GateReport, MetricSpec, DEFAULT_TOLERANCE};
use gradest_bench::perfbench::alloc_counter;
use gradest_bench::report::print_table;
use serde_json::{Map, Number, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

/// System allocator wrapped to count allocations (see the identical
/// wrapper in `gradest-experiments`): the hot-path benchmark can only
/// record `allocs_per_trip_warm*` when the process installs one, and
/// the committed baseline must carry the measured zeros.
struct CountingAlloc;

// SAFETY: delegates every operation unchanged to the system allocator;
// the counter update is a side effect with no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        alloc_counter::record();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        alloc_counter::record();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Pipeline experiment parameters: the same seed/sample count the
/// `gradest-experiments` binary uses, so the baseline and the gate
/// measure the identical workload.
const PIPELINE_SEED: u64 = 77;
const PIPELINE_SAMPLES: usize = 5;
/// Fleet experiment seed; trips/workers are read from the committed
/// baseline so the gate replays the baseline's workload shape.
const FLEET_SEED: u64 = 900;
/// Kernel microbench parameters (mirrors `kernel_microbench` in the
/// `gradest-experiments` binary).
const KERNEL_SEED: u64 = 77;
const KERNEL_SAMPLES: usize = 5;
/// Geo index tier parameters (mirrors `geo_index` in the
/// `gradest-experiments` binary): a 200 km country network keeps the
/// gate fast while still exercising the packed-tree traversal depth.
const GEO_SEED: u64 = 77;
const GEO_TARGET_KM: f64 = 200.0;
const GEO_SAMPLES: usize = 3;
/// Ingestion-service soak seed; phones/trips-per-phone are read from
/// the committed baseline so the gate replays its workload shape. The
/// defaults keep the gate's soak a fraction of the CI smoke's 64-phone
/// run while exercising the same concurrent decode → estimate → fuse
/// path.
const SERVICE_SEED: u64 = 77;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

struct Args {
    tolerance: f64,
    update: bool,
    inject_regression: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut tolerance: Option<f64> = None;
    let mut update = false;
    let mut inject_regression = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--inject-regression" => inject_regression = true,
            "--tolerance" => {
                let v = argv.next().ok_or("--tolerance needs a value")?;
                tolerance = Some(v.parse::<f64>().map_err(|e| format!("--tolerance {v}: {e}"))?);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let tolerance = tolerance
        .or_else(|| std::env::var("BENCH_GATE_TOLERANCE").ok().and_then(|v| v.parse().ok()))
        .unwrap_or(DEFAULT_TOLERANCE);
    if !(tolerance.is_finite() && tolerance >= 0.0) {
        return Err(format!("tolerance must be a finite non-negative ratio, got {tolerance}"));
    }
    Ok(Args { tolerance, update, inject_regression })
}

/// Appends one compact JSON line summarising a baseline refresh to the
/// committed `BENCH_HISTORY.jsonl`: a unix timestamp, the current git
/// commit (best effort — `null` outside a git checkout), and every
/// gated metric's measured value in nanoseconds. One object per
/// `--update`, newest last, so the machine's perf trajectory stays
/// greppable from the repository itself without spelunking git history
/// of the full BENCH_*.json documents.
fn append_history(root: &Path, suites: &[(&Value, &[MetricSpec])]) -> Result<PathBuf, String> {
    let mut metrics = Map::new();
    for (doc, specs) in suites {
        for (name, value) in gate::extract(doc, specs) {
            metrics.insert(name, value.map(Value::from).unwrap_or(Value::Null));
        }
    }
    let unix_s = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .map_err(|e| format!("system clock before the unix epoch: {e}"))?;
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(root)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|sha| Value::String(sha.trim().to_string()))
        .unwrap_or(Value::Null);
    let mut line = Map::new();
    line.insert("unix_time_s", Value::Number(Number::from(unix_s)));
    line.insert("commit", commit);
    line.insert("metrics", Value::Object(metrics));
    let path = root.join("BENCH_HISTORY.jsonl");
    let mut body = Value::Object(line).to_string();
    body.push('\n');
    use std::io::Write;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(body.as_bytes()))
        .map_err(|e| format!("cannot append to {}: {e}", path.display()))?;
    Ok(path)
}

/// Loads a committed baseline document, or `None` when the file is
/// absent (fresh checkout before the first `--update`).
fn load_baseline(path: &Path) -> Result<Option<Value>, String> {
    match std::fs::read_to_string(path) {
        Ok(body) => serde_json::from_str(&body)
            .map(Some)
            .map_err(|e| format!("{} is not valid JSON: {e:?}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

fn gate_suite(
    title: &str,
    baseline: &Value,
    current: &Value,
    specs: &[MetricSpec],
    tolerance: f64,
    inject: f64,
) -> GateReport {
    let baseline_metrics = gate::extract(baseline, specs);
    let mut current_metrics = gate::extract(current, specs);
    for (_, v) in &mut current_metrics {
        *v = v.map(|ns| ns * inject);
    }
    let report =
        gate::compare(&baseline_metrics, &current_metrics, tolerance, gate::DEFAULT_ABS_SLACK_NS);
    print_table(
        &format!(
            "{title} — tolerance ±{:.0}%, {} metric(s), {} failure(s)",
            tolerance * 100.0,
            report.rows.len(),
            report.failures()
        ),
        &["metric", "baseline ms", "current ms", "delta", "verdict"],
        &report.table_rows(),
    );
    report
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::from(2);
        }
    };
    alloc_counter::mark_installed();
    let root = workspace_root();
    let pipeline_path = root.join("BENCH_pipeline.json");
    let fleet_path = root.join("BENCH_fleet.json");
    let kernels_path = root.join("BENCH_kernels.json");
    let geo_path = root.join("BENCH_geo.json");
    let service_path = root.join("BENCH_service.json");

    let load = |path: &Path| match load_baseline(path) {
        Ok(doc) => Some(doc),
        Err(e) => {
            eprintln!("bench-gate: {e}");
            None
        }
    };
    let (
        Some(baseline_pipeline),
        Some(baseline_fleet),
        Some(baseline_kernels),
        Some(baseline_geo),
        Some(baseline_service),
    ) = (
        load(&pipeline_path),
        load(&fleet_path),
        load(&kernels_path),
        load(&geo_path),
        load(&service_path),
    )
    else {
        return ExitCode::from(2);
    };

    // Replay the baseline's fleet workload shape; fall back to the
    // experiment binary's defaults on a fresh checkout.
    let trips =
        baseline_fleet.as_ref().and_then(|b| b["trips"].as_u64()).map(|t| t as usize).unwrap_or(16);
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = baseline_fleet
        .as_ref()
        .and_then(|b| b["workers"].as_u64())
        .map(|w| w as usize)
        .unwrap_or_else(|| cpus.clamp(1, 4))
        .clamp(1, cpus.max(1));

    // Same idea for the service soak: replay the committed workload
    // shape so baseline and gate measure identical fleets.
    let phones = baseline_service
        .as_ref()
        .and_then(|b| b["phones"].as_u64())
        .map(|p| p as usize)
        .unwrap_or(8);
    let trips_per_phone = baseline_service
        .as_ref()
        .and_then(|b| b["trips_per_phone"].as_u64())
        .map(|t| t as usize)
        .unwrap_or(8);

    println!(
        "bench-gate: pipeline(seed={PIPELINE_SEED}, samples={PIPELINE_SAMPLES}), \
         fleet(seed={FLEET_SEED}, trips={trips}, workers={workers}), \
         kernels(seed={KERNEL_SEED}, samples={KERNEL_SAMPLES}), \
         geo(seed={GEO_SEED}, target_km={GEO_TARGET_KM}, samples={GEO_SAMPLES}), \
         service(seed={SERVICE_SEED}, phones={phones}, trips_per_phone={trips_per_phone})"
    );
    let pipeline_run = pipeline_hotpath::run(PIPELINE_SEED, PIPELINE_SAMPLES);
    let fleet_run = fleet_bench::run(FLEET_SEED, trips, workers);
    let kernels_run = kernels::run(KERNEL_SEED, KERNEL_SAMPLES);
    let geo_run = geo_index::run(GEO_SEED, GEO_TARGET_KM, GEO_SAMPLES);
    let service_run = service_soak::run(SERVICE_SEED, phones, trips_per_phone);
    let current_pipeline = serde_json::to_value(&pipeline_run);
    let current_fleet = serde_json::to_value(&fleet_run);
    let current_kernels = serde_json::to_value(&kernels_run);
    let current_geo = serde_json::to_value(&geo_run);
    let current_service = serde_json::to_value(&service_run);

    if args.update {
        let write = |path: &Path, value: &Value| match std::fs::write(
            path,
            value.to_string_pretty() + "\n",
        ) {
            Ok(()) => {
                println!("bench-gate: wrote {}", path.display());
                true
            }
            Err(e) => {
                eprintln!("bench-gate: cannot write {}: {e}", path.display());
                false
            }
        };
        let ok = write(&pipeline_path, &current_pipeline)
            & write(&fleet_path, &current_fleet)
            & write(&kernels_path, &current_kernels)
            & write(&geo_path, &current_geo)
            & write(&service_path, &current_service);
        let history_ok = match append_history(
            &root,
            &[
                (&current_pipeline, gate::PIPELINE_METRICS),
                (&current_fleet, gate::FLEET_METRICS),
                (&current_kernels, gate::KERNEL_METRICS),
                (&current_geo, gate::GEO_METRICS),
                (&current_service, gate::SERVICE_METRICS),
            ],
        ) {
            Ok(path) => {
                println!("bench-gate: appended refresh summary to {}", path.display());
                true
            }
            Err(e) => {
                eprintln!("bench-gate: {e}");
                false
            }
        };
        return if ok && history_ok { ExitCode::SUCCESS } else { ExitCode::from(2) };
    }

    // Name each absent baseline individually: "some baseline is
    // missing" sends people hunting through five files, while the
    // actual fix is one command away.
    let absent: Vec<&Path> = [
        (&baseline_pipeline, pipeline_path.as_path()),
        (&baseline_fleet, fleet_path.as_path()),
        (&baseline_kernels, kernels_path.as_path()),
        (&baseline_geo, geo_path.as_path()),
        (&baseline_service, service_path.as_path()),
    ]
    .into_iter()
    .filter(|(doc, _)| doc.is_none())
    .map(|(_, path)| path)
    .collect();
    if !absent.is_empty() {
        for path in &absent {
            eprintln!("bench-gate: baseline {} does not exist", path.display());
        }
        eprintln!(
            "bench-gate: {n} baseline(s) missing — regenerate with\n  \
             cargo run --release -p gradest-bench --bin bench-gate -- --update\n\
             then commit the refreshed BENCH_*.json file(s)",
            n = absent.len()
        );
        return ExitCode::from(2);
    }
    let (
        Some(baseline_pipeline),
        Some(baseline_fleet),
        Some(baseline_kernels),
        Some(baseline_geo),
        Some(baseline_service),
    ) = (baseline_pipeline, baseline_fleet, baseline_kernels, baseline_geo, baseline_service)
    else {
        unreachable!("absent baselines were reported above");
    };

    let inject = if args.inject_regression {
        println!("bench-gate: --inject-regression active, tripling every current metric");
        3.0
    } else {
        1.0
    };
    let pipeline_report = gate_suite(
        "Pipeline hot path vs BENCH_pipeline.json",
        &baseline_pipeline,
        &current_pipeline,
        gate::PIPELINE_METRICS,
        args.tolerance,
        inject,
    );
    let fleet_report = gate_suite(
        "Fleet scaling vs BENCH_fleet.json",
        &baseline_fleet,
        &current_fleet,
        gate::FLEET_METRICS,
        args.tolerance,
        inject,
    );
    let kernels_report = gate_suite(
        "Kernel microbenches vs BENCH_kernels.json",
        &baseline_kernels,
        &current_kernels,
        gate::KERNEL_METRICS,
        args.tolerance,
        inject,
    );
    let geo_report = gate_suite(
        "Geo index vs BENCH_geo.json",
        &baseline_geo,
        &current_geo,
        gate::GEO_METRICS,
        args.tolerance,
        inject,
    );
    let service_report = gate_suite(
        "Ingestion service vs BENCH_service.json",
        &baseline_service,
        &current_service,
        gate::SERVICE_METRICS,
        args.tolerance,
        inject,
    );

    let failures = pipeline_report.failures()
        + fleet_report.failures()
        + kernels_report.failures()
        + geo_report.failures()
        + service_report.failures();
    if failures == 0 {
        println!("\nbench-gate: PASS — all metrics within ±{:.0}%", args.tolerance * 100.0);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nbench-gate: FAIL — {failures} metric(s) regressed or missing \
             (tolerance ±{:.0}%; refresh intentional changes with --update)",
            args.tolerance * 100.0
        );
        ExitCode::FAILURE
    }
}

//! Report rendering: aligned text tables and JSON result dumps.

use serde::Serialize;
use std::path::PathBuf;

/// Prints an aligned text table with a header rule.
///
/// # Panics
///
/// Panics if any row's arity differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    println!("\n== {title} ==");
    let header_line: Vec<String> =
        headers.iter().zip(&widths).map(|(h, w)| format!("{h:>w$}")).collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        println!("{}", line.join("  "));
    }
}

/// Directory where experiment JSON results are dumped: the workspace's
/// `target/experiment-results/`, independent of the invoking working
/// directory.
pub fn results_dir() -> PathBuf {
    if let Ok(target) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(target).join("experiment-results");
    }
    // crates/bench/../../target anchors at the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target").join("experiment-results")
}

/// Serializes an experiment result to
/// `target/experiment-results/<name>.json`. I/O failures are reported to
/// stderr but never abort an experiment run.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Formats radians as degrees with two decimals.
pub fn deg(rad: f64) -> String {
    format!("{:.2}", rad.to_degrees())
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        print_table("bad", &["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(deg(std::f64::consts::PI), "180.00");
        assert_eq!(pct(0.224), "22.4%");
    }

    #[test]
    fn save_json_roundtrip() {
        #[derive(serde::Serialize)]
        struct S {
            x: u32,
        }
        save_json("unit_test_artifact", &S { x: 7 });
        let path = results_dir().join("unit_test_artifact.json");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"x\": 7"));
    }
}

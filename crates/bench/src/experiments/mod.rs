//! Experiment implementations, one module per paper artifact.
//!
//! Every experiment exposes a `run(...) -> <Result>` function returning a
//! serializable result struct, and a `print_report(&<Result>)` that
//! renders the paper's rows/series. Bench targets call both; unit and
//! integration tests assert on the result structs.

pub mod ablations;
pub mod extended;
pub mod fig10;
pub mod fig3_4;
pub mod fig5;
pub mod fig8a;
pub mod fig8b;
pub mod fig9;
pub mod fleet_bench;
pub mod geo_index;
pub mod headline_fuel;
pub mod kernels;
pub mod lane_accuracy;
pub mod motivating;
pub mod pipeline_hotpath;
pub mod service_soak;
pub mod table1;
pub mod table2;
pub mod table3;

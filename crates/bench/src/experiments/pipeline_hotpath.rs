//! Single-trip hot-path benchmark: uniform-grid LOWESS + warm
//! [`EstimatorScratch`] vs the pre-optimization shape of the pipeline.
//!
//! Not a paper artifact — an engineering benchmark for the per-trip
//! kernels everything else (fleet batches, the cloud experiments) sits
//! on. Emits `BENCH_pipeline.json` with:
//!
//! * baseline latency — cold [`GradientEstimator::estimate`] per trip
//!   with the generic LOWESS path forced (the allocation and smoothing
//!   behaviour before this optimization round);
//! * optimized latency — warm-scratch
//!   [`GradientEstimator::estimate_into`] with the uniform-grid fast
//!   path, plus its per-stage wall-clock split;
//! * correctness gates — fast-vs-generic fused-track divergence (must be
//!   < 1e-12) and warm-vs-cold bit-identity on the generic path;
//! * warm-path allocations per trip, when the `gradest-experiments`
//!   binary's counting allocator is installed (`None` elsewhere, e.g.
//!   under `cargo test`).

use crate::perfbench::{alloc_counter, run_bench, BenchReport};
use crate::report::{print_table, save_json};
use crate::scenarios::red_road_drive;
use gradest_core::pipeline::{
    EstimatorConfig, EstimatorScratch, GradientEstimate, GradientEstimator, StageNanos,
};
use gradest_obs::{RunRecorder, RunReport, Tee, TraceRing};
use serde::{Deserialize, Serialize};

/// Pipeline hot-path benchmark result (`BENCH_pipeline.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineHotpathBench {
    /// IMU samples in the benchmark trip.
    pub imu_samples: usize,
    /// Cold-estimator, generic-LOWESS latency (pre-change baseline).
    pub baseline_cold_generic: BenchReport,
    /// Warm-scratch, fast-LOWESS latency (the optimized hot path).
    pub optimized_warm_fast: BenchReport,
    /// Baseline median latency over optimized median latency.
    pub speedup: f64,
    /// Optimized trips per second (single worker).
    pub trips_per_sec: f64,
    /// Per-stage wall-clock split of one optimized warm trip.
    pub stage_ns: StageNanos,
    /// Max |Δθ| between the fast-path and generic-path fused tracks.
    pub fast_vs_generic_max_abs_diff: f64,
    /// Whether warm-scratch estimation with the fast path disabled is
    /// bit-identical to the cold generic reference.
    pub generic_bit_identical: bool,
    /// Heap allocations during one warm-path trip; `None` when no
    /// counting allocator is installed in this process.
    pub allocs_per_trip_warm: Option<u64>,
    /// Whether the [`RunRecorder`]-instrumented warm path reproduced
    /// the plain warm-path estimate bit for bit.
    pub recorded_bit_identical: bool,
    /// Heap allocations during one warm trip with a live recorder —
    /// the recording sinks are allocation-free, so this must match
    /// [`Self::allocs_per_trip_warm`]. `None` without a counting
    /// allocator.
    pub allocs_per_trip_warm_recorded: Option<u64>,
    /// Observability report from the recorded warm trip(s): span tree,
    /// counters, and histograms. `bench-gate` reads the per-stage span
    /// timings out of this field when diffing against the committed
    /// baseline.
    pub obs: RunReport,
    /// Whether the warm path with a live flight-recorder ring teed in
    /// reproduced the plain warm-path estimate bit for bit.
    pub traced_bit_identical: bool,
    /// Heap allocations during one warm trip with metrics *and* the
    /// trace ring live — the ring's buffer is pre-sized, so this must
    /// match [`Self::allocs_per_trip_warm`]. `None` without a counting
    /// allocator.
    pub allocs_per_trip_warm_traced: Option<u64>,
    /// Events one warm trip pushes into an amply-sized trace ring.
    pub trace_events_per_trip: u64,
    /// Events a deliberately tiny (capacity 8) ring dropped while the
    /// same trip ran against it — overflow must shed load by counting,
    /// not by growing.
    pub trace_overflow_dropped: u64,
}

/// Runs the hot-path benchmark over the standard red-road trip.
///
/// Both configurations run the tracks serially: this benchmark isolates
/// the per-trip kernels, and the fleet engine parallelises across trips,
/// not within them. (Thread spawns would also allocate, clouding the
/// warm-path allocation gate.)
pub fn run(seed: u64, samples: usize) -> PipelineHotpathBench {
    // The warm-path module set is no longer eyeball-synchronised: the
    // lint call graph derives which modules `estimate_into` actually
    // reaches and cross-checks that against both the pipeline's
    // declared `WARM_PATH_MODULES` const and the lint's alloc-gated
    // list. Any drift fails the smoke gate before timing happens.
    // (Source scan of the checked-out workspace: skipped gracefully by
    // the drift check if the sources are not present at runtime.)
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (sources, unreadable) = gradest_lint::workspace_sources(&repo_root);
    assert!(unreadable.is_empty(), "unreadable workspace sources: {unreadable:?}");
    let graph = gradest_lint::graph::Graph::build(sources);
    let warm: Vec<String> =
        gradest_lint::WARM_ALLOC_GATED_MODULES.iter().map(|m| m.to_string()).collect();
    let drift = gradest_lint::warm_drift_findings(&graph, &warm);
    assert!(
        drift.is_empty(),
        "warm-path module drift between the call graph, pipeline::WARM_PATH_MODULES, \
         and gradest_lint::WARM_ALLOC_GATED_MODULES:\n{}",
        drift
            .iter()
            .map(|(p, d)| format!("  {}:{}: {}", p.display(), d.line, d.msg))
            .collect::<Vec<_>>()
            .join("\n")
    );

    let drive = red_road_drive(seed);
    let log = &drive.log;
    let map = Some(&drive.route);
    let fast =
        GradientEstimator::new(EstimatorConfig { parallel_tracks: false, ..Default::default() });
    let generic = GradientEstimator::new(EstimatorConfig {
        parallel_tracks: false,
        force_generic_lowess: true,
        ..Default::default()
    });

    // Correctness gates before timing anything.
    let generic_est = generic.estimate(log, map);
    let fast_est = fast.estimate(log, map);
    let fast_vs_generic_max_abs_diff = fast_est
        .fused
        .theta
        .iter()
        .zip(&generic_est.fused.theta)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let mut scratch = EstimatorScratch::new();
    let mut out = GradientEstimate::default();
    generic.estimate_into(log, map, &mut scratch, &mut out);
    generic.estimate_into(log, map, &mut scratch, &mut out);
    let generic_bit_identical = out == generic_est;

    let baseline_cold_generic = run_bench("pipeline_cold_generic_lowess", samples, 1, || {
        let est = generic.estimate(log, map);
        assert!(!est.fused.is_empty());
    });

    // Warm the scratch and output once, then time steady-state trips.
    fast.estimate_into(log, map, &mut scratch, &mut out);
    let optimized_warm_fast = run_bench("pipeline_warm_fast_lowess", samples, 1, || {
        fast.estimate_into(log, map, &mut scratch, &mut out);
        assert!(!out.fused.is_empty());
    });
    let stage_ns = scratch.stages();

    let allocs_per_trip_warm = if alloc_counter::is_installed() {
        let before = alloc_counter::allocations();
        fast.estimate_into(log, map, &mut scratch, &mut out);
        Some(alloc_counter::allocations() - before)
    } else {
        None
    };

    // Recorded pass: the same warm trip with a live RunRecorder. The
    // recorder's sinks are atomics and fixed histogram cells, so the
    // instrumented path must stay bit-identical and allocation-free.
    let rec = RunRecorder::new();
    let mut rec_out = GradientEstimate::default();
    fast.estimate_into_recorded(log, map, &mut scratch, &mut rec_out, &rec);
    let allocs_per_trip_warm_recorded = if alloc_counter::is_installed() {
        let before = alloc_counter::allocations();
        fast.estimate_into_recorded(log, map, &mut scratch, &mut rec_out, &rec);
        Some(alloc_counter::allocations() - before)
    } else {
        None
    };
    let recorded_bit_identical = rec_out == out;
    let obs = rec.report();

    // Traced pass: metrics plus a live flight-recorder ring. The ring's
    // buffer is allocated up front, so the warm instrumented trip must
    // still not touch the heap, and the estimate stays bit-identical.
    let ring = TraceRing::with_capacity(4096);
    let traced = Tee::new(&rec, &ring);
    let mut traced_out = GradientEstimate::default();
    fast.estimate_into_recorded(log, map, &mut scratch, &mut traced_out, &traced);
    let events_warmup = ring.len() as u64;
    let allocs_per_trip_warm_traced = if alloc_counter::is_installed() {
        let before = alloc_counter::allocations();
        fast.estimate_into_recorded(log, map, &mut scratch, &mut traced_out, &traced);
        Some(alloc_counter::allocations() - before)
    } else {
        fast.estimate_into_recorded(log, map, &mut scratch, &mut traced_out, &traced);
        None
    };
    let traced_bit_identical = traced_out == out;
    let trace_events_per_trip = ring.len() as u64 - events_warmup;
    assert_eq!(ring.dropped(), 0, "amply-sized ring must not drop events");

    // Overflow pass: a ring too small for even one trip must shed the
    // excess by bumping its drop counter — never by reallocating.
    let tiny = TraceRing::with_capacity(8);
    let tee_tiny = Tee::new(&rec, &tiny);
    fast.estimate_into_recorded(log, map, &mut scratch, &mut traced_out, &tee_tiny);
    let overflow_allocs = if alloc_counter::is_installed() {
        let before = alloc_counter::allocations();
        fast.estimate_into_recorded(log, map, &mut scratch, &mut traced_out, &tee_tiny);
        Some(alloc_counter::allocations() - before)
    } else {
        None
    };
    assert_eq!(
        overflow_allocs.unwrap_or(0),
        0,
        "overflowing trace ring allocated instead of dropping"
    );
    let trace_overflow_dropped = tiny.dropped();
    assert!(tiny.len() <= 8, "tiny ring grew past its capacity");

    let speedup =
        baseline_cold_generic.median_ns_per_op / optimized_warm_fast.median_ns_per_op.max(1.0);
    PipelineHotpathBench {
        imu_samples: log.imu.len(),
        trips_per_sec: optimized_warm_fast.ops_per_sec,
        baseline_cold_generic,
        optimized_warm_fast,
        speedup,
        stage_ns,
        fast_vs_generic_max_abs_diff,
        generic_bit_identical,
        allocs_per_trip_warm,
        recorded_bit_identical,
        allocs_per_trip_warm_recorded,
        obs,
        traced_bit_identical,
        allocs_per_trip_warm_traced,
        trace_events_per_trip,
        trace_overflow_dropped,
    }
}

/// Prints the timing table and writes `BENCH_pipeline.json`.
pub fn print_report(r: &PipelineHotpathBench) {
    let rows: Vec<Vec<String>> = [&r.baseline_cold_generic, &r.optimized_warm_fast]
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                format!("{:.2}", b.median_ns_per_op / 1e6),
                format!("{:.2}", b.ops_per_sec),
            ]
        })
        .collect();
    let allocs = match r.allocs_per_trip_warm {
        Some(n) => n.to_string(),
        None => "not measured".to_string(),
    };
    print_table(
        &format!(
            "Pipeline hot path — {} IMU samples: {:.2}x, max |Δθ| {:.2e}, \
             generic bit-identical={}, warm allocs/trip={}",
            r.imu_samples,
            r.speedup,
            r.fast_vs_generic_max_abs_diff,
            r.generic_bit_identical,
            allocs
        ),
        &["bench", "ms/trip", "trips/s"],
        &rows,
    );
    let s = &r.stage_ns;
    print_table(
        "Warm-trip stage split",
        &["stage", "ms"],
        &[
            vec!["steering (columnar + LOWESS)".into(), format!("{:.3}", s.steering as f64 / 1e6)],
            vec!["lane-change detection".into(), format!("{:.3}", s.detection as f64 / 1e6)],
            vec!["EKF tracks (+RTS)".into(), format!("{:.3}", s.tracks as f64 / 1e6)],
            vec!["resample + fusion".into(), format!("{:.3}", s.fusion as f64 / 1e6)],
        ],
    );
    println!(
        "\n== Recorded warm trip (RunRecorder) — bit-identical={}, allocs/trip={} ==\n{}",
        r.recorded_bit_identical,
        match r.allocs_per_trip_warm_recorded {
            Some(n) => n.to_string(),
            None => "not measured".to_string(),
        },
        r.obs.render()
    );
    println!(
        "== Traced warm trip (Tee: RunRecorder + TraceRing) — bit-identical={}, \
         allocs/trip={}, events/trip={}, tiny-ring dropped={} ==",
        r.traced_bit_identical,
        match r.allocs_per_trip_warm_traced {
            Some(n) => n.to_string(),
            None => "not measured".to_string(),
        },
        r.trace_events_per_trip,
        r.trace_overflow_dropped,
    );
    save_json("BENCH_pipeline", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_bench_runs_and_gates_hold() {
        let r = run(400, 1);
        assert!(r.imu_samples > 1000);
        assert!(
            r.fast_vs_generic_max_abs_diff < 1e-12,
            "fast path diverged: {}",
            r.fast_vs_generic_max_abs_diff
        );
        assert!(r.generic_bit_identical, "warm generic path differs from cold reference");
        assert!(r.speedup > 0.0);
        // No counting allocator under `cargo test`.
        assert_eq!(r.allocs_per_trip_warm, None);
        assert_eq!(r.allocs_per_trip_warm_recorded, None);
        assert!(r.recorded_bit_identical, "recorded warm path diverged from plain warm path");
        // One recorded trip under `cargo test` (the alloc-measured
        // second trip only happens with the counting allocator).
        assert_eq!(r.obs.counter("trips-processed"), Some(1));
        for span in ["trip", "steering", "detection", "tracks", "fusion"] {
            assert!(r.obs.span(span).is_some(), "missing span {span}");
        }
        assert!(r.traced_bit_identical, "traced warm path diverged from plain warm path");
        assert_eq!(r.allocs_per_trip_warm_traced, None);
        // Every trip emits at least trip-start/trip-end plus the
        // per-track span-end events.
        assert!(r.trace_events_per_trip >= 2, "trace ring saw {} events", r.trace_events_per_trip);
        assert!(r.trace_overflow_dropped > 0, "capacity-8 ring should have dropped events");
    }

    #[test]
    fn bench_json_round_trips_with_obs_report() {
        let r = run(401, 1);
        let json = serde_json::to_string_pretty(&r).expect("serialize");
        let back: PipelineHotpathBench = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, r, "BENCH_pipeline.json does not round-trip");
    }
}

//! Design ablations called out in DESIGN.md.
//!
//! * **A1 — gravity term**: the literal Eq (5) predict
//!   (`v' = v + â·Δt`) vs the gravity-compensated predict this
//!   implementation uses. Quantifies why the compensation is load-bearing.
//! * **A2 — lane-change velocity correction**: Eq (2) applied vs ignored
//!   on a lane-change-heavy, low-speed drive (where the steering angle —
//!   and hence `v·(1 − cos α)` — is largest).
//! * **A3 — RTS smoothing**: the batch pipeline's backward smoothing pass
//!   vs the paper's forward-only filtering.

use crate::report::{pct, print_table, save_json};
use crate::scenarios::{red_road_drive, Drive};
use gradest_core::ekf::EkfConfig;
use gradest_core::eval::track_mre;
use gradest_core::pipeline::EstimatorConfig;
use gradest_geo::refgrade::reference_profile;
use gradest_geo::road::{build_from_sections, RoadClass, SectionSpec};
use gradest_geo::Route;
use gradest_math::Vec2;
use serde::{Deserialize, Serialize};

/// A1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GravityAblation {
    /// MRE with the gravity-compensated predict (the default).
    pub mre_compensated: f64,
    /// MRE with the literal Eq (5) predict.
    pub mre_literal: f64,
}

/// Runs A1 on the red road.
pub fn run_gravity(seed: u64) -> GravityAblation {
    let drive = red_road_drive(seed);
    let road = drive.route.roads()[0].clone();
    let truth = reference_profile(&road, 1.0, |_| 0.0);
    let compensated = drive.ops();
    let literal = drive.ops_with(EstimatorConfig {
        ekf: EkfConfig { literal_eq5: true, ..Default::default() },
        ..Default::default()
    });
    GravityAblation {
        mre_compensated: track_mre(&compensated.fused, &truth, 100.0).expect("overlap"),
        mre_literal: track_mre(&literal.fused, &truth, 100.0).expect("overlap"),
    }
}

/// Prints A1.
pub fn print_report_gravity(r: &GravityAblation) {
    print_table(
        "Ablation A1 — Eq 5 predict step",
        &["variant", "MRE"],
        &[
            vec!["gravity-compensated (ours)".into(), pct(r.mre_compensated)],
            vec!["literal Eq 5".into(), pct(r.mre_literal)],
        ],
    );
    save_json("ablation_gravity_term", r);
}

/// A3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtsAblation {
    /// MRE with the backward RTS pass (the batch default).
    pub mre_smoothed: f64,
    /// MRE with forward-only filtering (the paper's formulation).
    pub mre_forward_only: f64,
}

/// Runs A3 on the red road.
pub fn run_rts(seed: u64) -> RtsAblation {
    let drive = red_road_drive(seed);
    let road = drive.route.roads()[0].clone();
    let truth = reference_profile(&road, 1.0, |_| 0.0);
    let smoothed = drive.ops();
    let forward = drive.ops_with(EstimatorConfig { rts_smoothing: false, ..Default::default() });
    RtsAblation {
        mre_smoothed: track_mre(&smoothed.fused, &truth, 100.0).expect("overlap"),
        mre_forward_only: track_mre(&forward.fused, &truth, 100.0).expect("overlap"),
    }
}

/// Prints A3.
pub fn print_report_rts(r: &RtsAblation) {
    print_table(
        "Ablation A3 — backward RTS smoothing (batch mode)",
        &["variant", "MRE"],
        &[
            vec!["RTS smoothed (batch default)".into(), pct(r.mre_smoothed)],
            vec!["forward-only (paper)".into(), pct(r.mre_forward_only)],
        ],
    );
    save_json("ablation_rts_smoothing", r);
}

/// A2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneCorrectionAblation {
    /// Ground-truth maneuvers in the drive.
    pub events: usize,
    /// MRE with the Eq (2) correction (default pipeline).
    pub mre_corrected: f64,
    /// MRE with the correction disabled.
    pub mre_uncorrected: f64,
}

/// A low-speed two-lane road with gradient (steering angles are largest
/// at low speed, maximizing the Eq 2 effect).
fn slow_hilly_two_lane() -> Route {
    let secs = [
        SectionSpec { length_m: 1500.0, gradient_deg: 3.0, lanes: 2, curvature: 0.0 },
        SectionSpec { length_m: 1500.0, gradient_deg: -2.5, lanes: 2, curvature: 0.0 },
        SectionSpec { length_m: 1500.0, gradient_deg: 2.0, lanes: 2, curvature: 0.0 },
    ];
    let road = build_from_sections(
        77,
        "slow-hilly",
        Vec2::ZERO,
        0.0,
        &secs,
        10.0,
        120.0,
        7.0, // ~25 km/h: large steering angles during maneuvers
        RoadClass::Local,
    )
    .expect("valid spec");
    Route::new(vec![road]).expect("valid route")
}

/// Runs A2 with a high lane-change rate.
pub fn run_lane_correction(seed: u64) -> LaneCorrectionAblation {
    let drive = Drive::simulate(slow_hilly_two_lane(), seed, 1.5, Vec::new());
    let road = drive.route.roads()[0].clone();
    let truth = reference_profile(&road, 1.0, |_| 0.0);
    let corrected = drive.ops();
    let uncorrected =
        drive.ops_with(EstimatorConfig { disable_lane_correction: true, ..Default::default() });
    LaneCorrectionAblation {
        events: drive.traj.events().len(),
        mre_corrected: track_mre(&corrected.fused, &truth, 100.0).expect("overlap"),
        mre_uncorrected: track_mre(&uncorrected.fused, &truth, 100.0).expect("overlap"),
    }
}

/// Prints A2.
pub fn print_report_lane(r: &LaneCorrectionAblation) {
    print_table(
        &format!("Ablation A2 — Eq 2 lane-change velocity correction ({} maneuvers)", r.events),
        &["variant", "MRE"],
        &[
            vec!["Eq 2 correction on (ours)".into(), pct(r.mre_corrected)],
            vec!["correction off".into(), pct(r.mre_uncorrected)],
        ],
    );
    save_json("ablation_lane_correction", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravity_term_is_load_bearing() {
        let r = run_gravity(31);
        // Without gravity compensation, θ is (almost) unobservable from
        // velocity deviations: the error blows up by a large factor.
        assert!(
            r.mre_literal > 2.0 * r.mre_compensated,
            "literal {} vs compensated {}",
            r.mre_literal,
            r.mre_compensated
        );
    }

    #[test]
    fn rts_pass_materially_improves_accuracy() {
        let r = run_rts(31);
        assert!(
            r.mre_smoothed < 0.9 * r.mre_forward_only,
            "smoothed {} vs forward {}",
            r.mre_smoothed,
            r.mre_forward_only
        );
    }

    #[test]
    fn lane_correction_ablation_runs() {
        let r = run_lane_correction(33);
        assert!(r.events >= 2, "need maneuvers, got {}", r.events);
        assert!(r.mre_corrected.is_finite());
        assert!(r.mre_uncorrected.is_finite());
        // The correction must not make things materially worse.
        assert!(
            r.mre_corrected <= r.mre_uncorrected * 1.15,
            "corrected {} vs uncorrected {}",
            r.mre_corrected,
            r.mre_uncorrected
        );
    }
}

//! Lane-change detection accuracy ("the results also demonstrate the
//! accuracy of our lane change detection", §IV).
//!
//! Precision/recall over labelled simulated drives, plus the S-curve
//! false-positive stress test.

use crate::report::{pct, print_table, save_json};
use crate::scenarios::Drive;
use gradest_geo::generate::{s_curve_road, two_lane_straight};
use gradest_geo::Route;
use serde::{Deserialize, Serialize};

/// Detector accuracy result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneAccuracy {
    /// Ground-truth maneuvers across all drives.
    pub events: usize,
    /// Detections matched to a ground-truth maneuver.
    pub true_positives: usize,
    /// Detections with no matching maneuver.
    pub false_positives: usize,
    /// Maneuvers with no matching detection.
    pub false_negatives: usize,
    /// Matched detections with the correct direction.
    pub direction_correct: usize,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// Detections on S-curve-only drives (should be 0).
    pub s_curve_false_positives: usize,
}

/// Runs `drives` labelled drives plus S-curve stress drives.
pub fn run(drives: usize, seed: u64) -> LaneAccuracy {
    let mut events = 0usize;
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fname = 0usize;
    let mut dir_ok = 0usize;

    for i in 0..drives as u64 {
        let drive = Drive::simulate(
            Route::new(vec![two_lane_straight(8000.0)]).expect("valid route"),
            seed + i,
            0.8,
            Vec::new(),
        );
        let est = drive.ops();
        events += drive.traj.events().len();
        let mut matched = vec![false; drive.traj.events().len()];
        for det in &est.detections {
            let hit = drive
                .traj
                .events()
                .iter()
                .enumerate()
                .find(|(_, e)| det.t_start < e.end_t + 1.5 && det.t_end > e.start_t - 1.5);
            match hit {
                Some((idx, e)) if !matched[idx] => {
                    matched[idx] = true;
                    tp += 1;
                    if det.direction == e.direction {
                        dir_ok += 1;
                    }
                }
                Some(_) => fp += 1, // double detection of the same event
                None => fp += 1,
            }
        }
        fname += matched.iter().filter(|m| !**m).count();
    }

    // S-curve stress: unmapped S-curve roads, no maneuvers; every
    // detection is a false positive.
    let mut s_fp = 0usize;
    for i in 0..3u64 {
        let drive = Drive::simulate(
            Route::new(vec![s_curve_road(100.0 + 40.0 * i as f64, 45.0)]).expect("valid route"),
            seed ^ (0xCC << i),
            0.0,
            Vec::new(),
        );
        // No map: the worst case for S-curve confusion.
        let est = gradest_core::pipeline::GradientEstimator::new(Default::default())
            .estimate(&drive.log, None);
        s_fp += est.detections.len();
    }

    let precision = if tp + fp > 0 { tp as f64 / (tp + fp) as f64 } else { 1.0 };
    let recall = if events > 0 { tp as f64 / events as f64 } else { 1.0 };
    LaneAccuracy {
        events,
        true_positives: tp,
        false_positives: fp,
        false_negatives: fname,
        direction_correct: dir_ok,
        precision,
        recall,
        s_curve_false_positives: s_fp,
    }
}

/// Prints the accuracy summary.
pub fn print_report(r: &LaneAccuracy) {
    print_table(
        "Lane-change detection accuracy",
        &["events", "TP", "FP", "FN", "dir OK", "precision", "recall", "S-curve FP"],
        &[vec![
            r.events.to_string(),
            r.true_positives.to_string(),
            r.false_positives.to_string(),
            r.false_negatives.to_string(),
            r.direction_correct.to_string(),
            pct(r.precision),
            pct(r.recall),
            r.s_curve_false_positives.to_string(),
        ]],
    );
    save_json("lane_change_accuracy", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_is_accurate_on_simulated_drives() {
        let r = run(3, 700);
        assert!(r.events >= 5, "only {} events", r.events);
        assert!(r.precision > 0.8, "precision {}", r.precision);
        assert!(r.recall > 0.7, "recall {}", r.recall);
        // Matched detections get the direction right.
        assert_eq!(r.direction_correct, r.true_positives);
        assert_eq!(r.s_curve_false_positives, 0);
    }
}

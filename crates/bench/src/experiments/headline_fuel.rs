//! §IV-C headline — fuel consumption and emission estimates rise by
//! ~33.4 % once road gradient is considered.

use crate::report::{pct, print_table, save_json};
use gradest_emissions::map::{EmissionMap, FuelMap};
use gradest_emissions::{FuelModel, Species, TrafficModel};
use gradest_geo::generate::city_network;
use serde::{Deserialize, Serialize};

/// Headline result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineFuel {
    /// Network traverse fuel with gradient, gallons.
    pub fuel_with_gradient_gal: f64,
    /// Network traverse fuel at θ = 0, gallons.
    pub fuel_flat_gal: f64,
    /// Relative increase (paper: +33.4 %).
    pub fuel_increase: f64,
    /// CO₂ t/h with gradient.
    pub co2_with_gradient_tph: f64,
    /// CO₂ t/h at θ = 0.
    pub co2_flat_tph: f64,
    /// Relative CO₂ increase (close to, but not identical to, the fuel
    /// increase: CO₂ weights each road by its traffic volume).
    pub co2_increase: f64,
}

/// Computes the with/without-gradient comparison at 40 km/h.
pub fn run(network_seed: u64) -> HeadlineFuel {
    let network = city_network(network_seed);
    let model = FuelModel::default();
    let v = 40.0 / 3.6;
    let with = FuelMap::compute(&network, &model, v, |r, s| r.gradient_at(s));
    let flat = FuelMap::compute(&network, &model, v, |_, _| 0.0);
    let traffic = TrafficModel::default();
    let co2_with = EmissionMap::compute(&network, &with, &traffic, Species::Co2, v)
        .total_tons_per_hour(&network);
    let co2_flat = EmissionMap::compute(&network, &flat, &traffic, Species::Co2, v)
        .total_tons_per_hour(&network);
    let f_with = with.total_traverse_fuel_gal();
    let f_flat = flat.total_traverse_fuel_gal();
    HeadlineFuel {
        fuel_with_gradient_gal: f_with,
        fuel_flat_gal: f_flat,
        fuel_increase: f_with / f_flat - 1.0,
        co2_with_gradient_tph: co2_with,
        co2_flat_tph: co2_flat,
        co2_increase: co2_with / co2_flat - 1.0,
    }
}

/// Prints the headline comparison.
pub fn print_report(r: &HeadlineFuel) {
    print_table(
        "§IV-C — fuel & CO₂ with vs without gradient (paper: +33.4%)",
        &["quantity", "flat", "with gradient", "increase"],
        &[
            vec![
                "traverse fuel (gal)".into(),
                format!("{:.2}", r.fuel_flat_gal),
                format!("{:.2}", r.fuel_with_gradient_gal),
                pct(r.fuel_increase),
            ],
            vec![
                "CO₂ (t/h)".into(),
                format!("{:.2}", r.co2_flat_tph),
                format!("{:.2}", r.co2_with_gradient_tph),
                pct(r.co2_increase),
            ],
        ],
    );
    save_json("headline_fuel_delta", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_raises_estimates_materially() {
        let r = run(42);
        // Tens of percent, the paper's ballpark (+33.4 %).
        assert!(
            r.fuel_increase > 0.10 && r.fuel_increase < 1.0,
            "fuel increase {}",
            r.fuel_increase
        );
        assert!(r.co2_increase > 0.05, "CO2 increase {}", r.co2_increase);
        assert!(r.fuel_with_gradient_gal > r.fuel_flat_gal);
    }
}

//! Figure 10 — city-scale fuel-consumption and CO₂-emission maps.
//!
//! Figure 10(a): per-road average fuel consumption per hour at a 40 km/h
//! city cruise, gradient-aware. Figure 10(b): CO₂ intensity
//! (tons/km/hour) after weighting by AADT traffic volumes — whose spatial
//! pattern differs from the fuel map exactly as the paper observes,
//! because volume and gradient are independent.

use crate::report::{print_table, save_json};
use gradest_emissions::map::{EmissionMap, FuelMap};
use gradest_emissions::{FuelModel, Species, TrafficModel};
use gradest_geo::generate::city_network;
use serde::{Deserialize, Serialize};

/// Cruise speed of the paper's Figure 10(a), m/s (40 km/h).
pub const CRUISE_MPS: f64 = 40.0 / 3.6;

/// Figure 10 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10 {
    /// `(road id, signed mean θ°, fuel gal/h)` for the top fuel burners.
    pub top_fuel: Vec<(u64, f64, f64)>,
    /// `(road id, AADT/24, CO₂ t/km/h)` for the top emitters.
    pub top_co2: Vec<(u64, f64, f64)>,
    /// Mean per-road fuel rate, gal/h.
    pub mean_fuel_gph: f64,
    /// Network-total CO₂, tons/hour.
    pub total_co2_tons_per_hour: f64,
    /// Rank correlation between per-road signed mean gradient and fuel
    /// rate (signed, because a mostly-downhill road idles at the floor —
    /// |gradient| alone does not predict fuel).
    pub fuel_gradient_correlation: f64,
    /// Rank correlation between fuel rate and CO₂ intensity (the paper
    /// notes the distributions differ because traffic reshuffles them).
    pub fuel_co2_correlation: f64,
}

/// Spearman-style rank correlation.
fn rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let n = a.len() as f64;
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let cov: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = ra.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = rb.iter().map(|y| (y - mb) * (y - mb)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

/// Computes both maps over the synthetic city.
pub fn run(network_seed: u64) -> Fig10 {
    let network = city_network(network_seed);
    let model = FuelModel::default();
    let fuel = FuelMap::compute(&network, &model, CRUISE_MPS, |r, s| r.gradient_at(s));
    let traffic = TrafficModel::default();
    let co2 = EmissionMap::compute(&network, &fuel, &traffic, Species::Co2, CRUISE_MPS);

    // Per-road signed mean gradient, for ranking and correlation.
    let grads: Vec<f64> = network
        .edges()
        .iter()
        .map(|e| {
            let mut s = 5.0;
            let (mut acc, mut n) = (0.0, 0usize);
            while s < e.road.length() {
                acc += e.road.gradient_at(s);
                n += 1;
                s += 25.0;
            }
            (acc / n.max(1) as f64).to_degrees()
        })
        .collect();

    let fuel_rates: Vec<f64> = fuel.roads.iter().map(|r| r.mean_fuel_gph).collect();
    let co2_rates: Vec<f64> = co2.roads.iter().map(|r| r.tons_per_km_per_hour).collect();

    let mut fuel_rank: Vec<usize> = (0..fuel_rates.len()).collect();
    fuel_rank.sort_by(|&i, &j| fuel_rates[j].total_cmp(&fuel_rates[i]));
    let top_fuel = fuel_rank
        .iter()
        .take(10)
        .map(|&i| (fuel.roads[i].road_id, grads[i], fuel_rates[i]))
        .collect();

    let mut co2_rank: Vec<usize> = (0..co2_rates.len()).collect();
    co2_rank.sort_by(|&i, &j| co2_rates[j].total_cmp(&co2_rates[i]));
    let top_co2 = co2_rank
        .iter()
        .take(10)
        .map(|&i| (co2.roads[i].road_id, co2.roads[i].hourly_volume, co2_rates[i]))
        .collect();

    Fig10 {
        top_fuel,
        top_co2,
        mean_fuel_gph: fuel.mean_rate_gph(),
        total_co2_tons_per_hour: co2.total_tons_per_hour(&network),
        fuel_gradient_correlation: rank_correlation(&grads, &fuel_rates),
        fuel_co2_correlation: rank_correlation(&fuel_rates, &co2_rates),
    }
}

/// Prints the Figure 10(a) fuel map summary.
pub fn print_report_fuel(r: &Fig10) {
    let rows: Vec<Vec<String>> = r
        .top_fuel
        .iter()
        .map(|(id, g, f)| vec![id.to_string(), format!("{g:.2}"), format!("{f:.3}")])
        .collect();
    print_table(
        "Fig 10(a) — top fuel-consuming roads at 40 km/h (gradient-aware)",
        &["road", "mean θ (°)", "fuel (gal/h)"],
        &rows,
    );
    println!(
        "mean per-road fuel rate: {:.3} gal/h; fuel↔gradient rank correlation: {:.2}",
        r.mean_fuel_gph, r.fuel_gradient_correlation
    );
    save_json("fig10a_fuel_map", r);
}

/// Prints the Figure 10(b) CO₂ map summary.
pub fn print_report_co2(r: &Fig10) {
    let rows: Vec<Vec<String>> = r
        .top_co2
        .iter()
        .map(|(id, v, e)| vec![id.to_string(), format!("{v:.0}"), format!("{e:.4}")])
        .collect();
    print_table(
        "Fig 10(b) — top CO₂-emitting roads (traffic-weighted)",
        &["road", "veh/h", "CO₂ (t/km/h)"],
        &rows,
    );
    println!(
        "network total: {:.2} t CO₂/h; fuel↔CO₂ rank correlation: {:.2} (traffic reshuffles the map)",
        r.total_co2_tons_per_hour, r.fuel_co2_correlation
    );
    save_json("fig10b_emission_map", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_have_expected_structure() {
        let r = run(42);
        assert_eq!(r.top_fuel.len(), 10);
        assert_eq!(r.top_co2.len(), 10);
        assert!(r.mean_fuel_gph > 0.0);
        assert!(r.total_co2_tons_per_hour > 0.0);
        // Fuel map tracks gradient strongly (Fig 10(a)'s observation that
        // high fuel sits on steep roads)…
        assert!(
            r.fuel_gradient_correlation > 0.6,
            "fuel↔gradient correlation {}",
            r.fuel_gradient_correlation
        );
        // …while the CO₂ map is reshuffled by traffic (Fig 10(b)).
        assert!(
            r.fuel_co2_correlation < r.fuel_gradient_correlation,
            "CO₂ should correlate less with fuel than fuel does with gradient"
        );
    }

    #[test]
    fn rank_correlation_basics() {
        assert!((rank_correlation(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-9);
        assert!((rank_correlation(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-9);
    }
}

//! Fleet-scale throughput: the [`FleetEngine`] worker pool and the
//! concurrent cloud aggregator under contention.
//!
//! Not a paper artifact — an engineering benchmark for the batch
//! machinery the cloud experiments (Figure 9) run on. Emits
//! `BENCH_fleet.json` with machine-readable timings so regressions in
//! the parallel path are diffable across commits.

use crate::perfbench::{run_bench, BenchReport};
use crate::report::{print_table, save_json};
use crate::scenarios::red_road_drive;
use gradest_core::cloud::{CloudAggregator, CloudSnapshot};
use gradest_core::fleet::FleetEngine;
use gradest_core::pipeline::{EstimatorConfig, GradientEstimator};
use gradest_core::track::GradientTrack;
use gradest_obs::{RunRecorder, RunReport};
use gradest_sensors::suite::SensorLog;
use serde::{Deserialize, Serialize};

/// Fleet benchmark result (`BENCH_fleet.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetBench {
    /// Trips per batch.
    pub trips: usize,
    /// Worker count of the parallel configuration.
    pub workers: usize,
    /// CPUs visible to this process (speedup is bounded by it).
    pub available_parallelism: usize,
    /// Single-trip pipeline latency.
    pub single_trip: BenchReport,
    /// Batch throughput with one worker.
    pub batch_1_worker: BenchReport,
    /// Batch throughput with `workers` workers.
    pub batch_n_workers: BenchReport,
    /// Concurrent uploads into one lock-striped aggregator.
    pub cloud_upload_contention: BenchReport,
    /// Wall-clock speedup of `workers` workers over one.
    pub speedup: f64,
    /// Whether the 1-worker and N-worker outputs were bit-identical.
    pub outputs_identical: bool,
    /// Aggregator state after one parallel batch fanned into the cloud:
    /// the upload counter must equal the trip count, making lost
    /// uploads diffable across commits.
    pub cloud: CloudSnapshot,
    /// Observability report from the recorded cloud fan-in batch:
    /// fleet-batch / worker-trip / cloud-upload spans, job counters,
    /// and the hold-back-depth and worker-utilization histograms.
    pub obs: RunReport,
}

/// Simulates `n` red-road trips with distinct seeds.
fn simulate_batch(seed: u64, n: usize) -> Vec<SensorLog> {
    (0..n as u64).map(|i| red_road_drive(seed + i).log).collect()
}

/// Uploads used by the contention benchmark: dense per-trip tracks
/// spread over a handful of roads so stripes genuinely contend.
fn contention_tracks() -> Vec<(u64, GradientTrack)> {
    (0..64u64)
        .map(|i| {
            let mut t = GradientTrack::new(format!("v{i}"));
            for j in 0..400 {
                t.push(j as f64 * 5.0, 0.02 + (i as f64) * 1e-4, 1e-4);
            }
            (i % 8, t)
        })
        .collect()
}

/// Runs the fleet scaling benchmark on a `trips`-trip batch.
pub fn run(seed: u64, trips: usize, workers: usize) -> FleetBench {
    let logs = simulate_batch(seed, trips);
    // Per-trip track parallelism off: this benchmark isolates the
    // worker-pool scaling, and nested fan-out would oversubscribe the
    // pool on small machines.
    let config = EstimatorConfig { parallel_tracks: false, ..Default::default() };
    let estimator = GradientEstimator::new(config);

    let single_trip = run_bench("pipeline_estimate_single_trip", 3, 1, || {
        let est = estimator.estimate(&logs[0], None);
        assert!(!est.fused.is_empty());
    });

    let serial_engine = FleetEngine::new(estimator.clone(), 1);
    let parallel_engine = FleetEngine::new(estimator.clone(), workers);
    let serial_out = serial_engine.process_batch(&logs, None);
    let parallel_out = parallel_engine.process_batch(&logs, None);
    let outputs_identical = serial_out == parallel_out;

    let batch_1_worker =
        run_bench(&format!("fleet_batch_{trips}_trips_1_workers"), 3, trips as u64, || {
            let out = serial_engine.process_batch(&logs, None);
            assert_eq!(out.len(), logs.len());
        });
    let batch_n_workers =
        run_bench(&format!("fleet_batch_{trips}_trips_{workers}_workers"), 3, trips as u64, || {
            let out = parallel_engine.process_batch(&logs, None);
            assert_eq!(out.len(), logs.len());
        });

    let uploads = contention_tracks();
    let cloud_upload_contention =
        run_bench("cloud_upload_contention", 5, uploads.len() as u64, || {
            let cloud = CloudAggregator::new(5.0);
            std::thread::scope(|scope| {
                for chunk in uploads.chunks(uploads.len().div_ceil(workers.max(1))) {
                    let cloud = &cloud;
                    scope.spawn(move || {
                        for (road, track) in chunk {
                            cloud.upload(*road, track);
                        }
                    });
                }
            });
            assert_eq!(cloud.uploads(), uploads.len() as u64);
        });

    // One parallel batch fanned into a fresh aggregator: the snapshot's
    // upload counter is the per-run receipt that no worker's upload was
    // lost (the loom model checks the same protocol under noise). The
    // run is recorded, so the obs counters double-check the receipt and
    // the report lands in `BENCH_fleet.json` for bench-gate diffs.
    let rec = RunRecorder::new();
    let cloud_sink = CloudAggregator::new(5.0);
    let road_ids: Vec<u64> = (0..logs.len() as u64).map(|i| i % 8).collect();
    parallel_engine.process_batch_to_cloud_recorded(&logs, &road_ids, None, &cloud_sink, &rec);
    let cloud = cloud_sink.snapshot();
    assert_eq!(cloud.uploads, logs.len() as u64, "cloud fan-in lost an upload");
    let obs = rec.report();
    assert_eq!(obs.counter("fleet-jobs-completed"), Some(trips as u64), "worker lost a job");
    assert_eq!(obs.counter("cloud-uploads"), Some(trips as u64), "recorded uploads diverged");

    let speedup = batch_1_worker.median_ns_per_op / batch_n_workers.median_ns_per_op.max(1.0);
    FleetBench {
        trips,
        workers,
        available_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        single_trip,
        batch_1_worker,
        batch_n_workers,
        cloud_upload_contention,
        speedup,
        outputs_identical,
        cloud,
        obs,
    }
}

/// Prints the timing table and writes `BENCH_fleet.json`.
pub fn print_report(r: &FleetBench) {
    let rows: Vec<Vec<String>> =
        [&r.single_trip, &r.batch_1_worker, &r.batch_n_workers, &r.cloud_upload_contention]
            .iter()
            .map(|b| {
                vec![
                    b.name.clone(),
                    format!("{:.2}", b.median_ns_per_op / 1e6),
                    format!("{:.2}", b.ops_per_sec),
                ]
            })
            .collect();
    print_table(
        &format!(
            "Fleet scaling — {} trips, {} workers ({} CPU(s) visible): {:.2}x, identical={}, \
             cloud uploads={} over {} road(s)",
            r.trips,
            r.workers,
            r.available_parallelism,
            r.speedup,
            r.outputs_identical,
            r.cloud.uploads,
            r.cloud.roads
        ),
        &["bench", "ms/op", "op/s"],
        &rows,
    );
    println!("\n== Recorded cloud fan-in batch ==\n{}", r.obs.render());
    save_json("BENCH_fleet", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_bench_runs_and_is_deterministic() {
        // Tiny batch: the point is plumbing, not timing fidelity.
        let r = run(400, 2, 2);
        assert_eq!(r.trips, 2);
        assert!(r.outputs_identical, "1-worker vs N-worker outputs differ");
        assert!(r.speedup > 0.0);
        assert!(r.single_trip.median_ns_per_op > 0.0);
        assert_eq!(r.cloud.uploads, 2, "one upload per trip");
        assert_eq!(r.cloud.roads, 2, "distinct road ids per trip in a 2-trip batch");
        assert_eq!(r.obs.counter("fleet-jobs-submitted"), Some(2));
        assert_eq!(r.obs.counter("trips-processed"), Some(2));
        assert!(r.obs.span("fleet-batch").is_some(), "missing fleet-batch span");
        assert_eq!(r.obs.span("fleet-worker-trip").map(|s| s.count), Some(2));
    }
}

//! Figure 8(b) — error CDFs for different numbers of fused tracks.
//!
//! The paper fuses 1–4 velocity-source tracks and reads the error at
//! CDF = 0.5: ~0.23° unfused vs ~0.09° fused, with 3+ tracks enough.

use crate::report::{print_table, save_json};
use crate::scenarios::red_road_drive;
use gradest_core::eval::absolute_errors;
use gradest_core::pipeline::{EstimatorConfig, VelocitySource};
use gradest_geo::refgrade::reference_profile;
use gradest_math::stats::EmpiricalCdf;
use serde::{Deserialize, Serialize};

/// Result for one fusion arity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionLevel {
    /// Number of fused tracks.
    pub k: usize,
    /// Sources fused.
    pub sources: Vec<String>,
    /// Median absolute error (CDF = 0.5), degrees.
    pub median_err_deg: f64,
    /// 25-point CDF curve `(err_deg, F)`.
    pub cdf: Vec<(f64, f64)>,
}

/// Figure 8(b) result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8b {
    /// One entry per fusion arity 1..=4.
    pub levels: Vec<FusionLevel>,
}

/// The fusion order used (weakest first, as the paper's "no fuse"
/// baseline is a single phone-derived track).
pub const FUSION_ORDER: [VelocitySource; 4] = [
    VelocitySource::Gps,
    VelocitySource::Accelerometer,
    VelocitySource::Speedometer,
    VelocitySource::CanBus,
];

/// Runs the red-road drive once per fusion arity.
pub fn run(seed: u64) -> Fig8b {
    let drive = red_road_drive(seed);
    let road = drive.route.roads()[0].clone();
    let truth = reference_profile(&road, 1.0, |_| 0.0);
    let mut levels = Vec::new();
    for k in 1..=FUSION_ORDER.len() {
        let sources = FUSION_ORDER[..k].to_vec();
        let est =
            drive.ops_with(EstimatorConfig { sources: sources.clone(), ..Default::default() });
        let errs_deg: Vec<f64> = absolute_errors(&est.fused, &truth, 100.0)
            .into_iter()
            .map(|e| e.to_degrees())
            .collect();
        let cdf = EmpiricalCdf::new(&errs_deg).expect("nonempty errors");
        levels.push(FusionLevel {
            k,
            sources: sources.iter().map(|s| s.label().to_string()).collect(),
            median_err_deg: cdf.value_at(0.5),
            cdf: cdf.curve(25),
        });
    }
    Fig8b { levels }
}

/// Prints the medians and CDF curves.
pub fn print_report(r: &Fig8b) {
    let rows: Vec<Vec<String>> = r
        .levels
        .iter()
        .map(|l| vec![l.k.to_string(), l.sources.join("+"), format!("{:.3}", l.median_err_deg)])
        .collect();
    print_table(
        "Fig 8(b) — median |error| vs fused tracks (paper: 0.23 unfused → ~0.09 fused)",
        &["k", "sources", "median err (°)"],
        &rows,
    );
    for l in &r.levels {
        let rows: Vec<Vec<String>> =
            l.cdf.iter().map(|(x, f)| vec![format!("{x:.3}"), format!("{f:.3}")]).collect();
        print_table(&format!("CDF, k = {}", l.k), &["err (°)", "F"], &rows);
    }
    save_json("fig8b_track_fusion_cdf", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_reduces_median_error() {
        // Mean over three drives: a single drive's 1-track/4-track
        // ratio swings widely with sensor-noise luck.
        let runs: Vec<Fig8b> = [20, 21, 22].iter().map(|&s| run(s)).collect();
        let mut m1_sum = 0.0;
        let mut m4_sum = 0.0;
        for r in &runs {
            assert_eq!(r.levels.len(), 4);
            m1_sum += r.levels[0].median_err_deg;
            m4_sum += r.levels[3].median_err_deg;
            // CDFs are monotone.
            for l in &r.levels {
                for w in l.cdf.windows(2) {
                    assert!(w[1].1 >= w[0].1);
                }
            }
        }
        assert!(
            m4_sum < 0.75 * m1_sum,
            "fusing 4 tracks ({m4_sum}) should beat the single track ({m1_sum})"
        );
    }
}

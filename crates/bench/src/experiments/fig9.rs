//! Figure 9 — large-scale road-network evaluation.
//!
//! Figure 9(a): the estimated gradient map of the whole network (the
//! paper reports MRE 12.4 %, close to the small-scale result, under lane
//! changes and GPS outages). Figure 9(b): error CDFs of OPS vs the two
//! baselines (paper medians 0.09 / 0.13 / 0.36), plus the headline 22 %
//! error reduction.

use crate::report::{pct, print_table, save_json};
use crate::scenarios::{network_routes, train_ann, Drive};
use gradest_baselines::altitude_ekf::{AltitudeEkf, AltitudeEkfConfig};
use gradest_core::track::GradientTrack;
use gradest_geo::generate::city_network;
use gradest_math::stats::EmpiricalCdf;
use serde::{Deserialize, Serialize};

/// Burn-in skipped at the start of each drive, metres.
const SKIP_M: f64 = 100.0;

/// Pooled statistics for one estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodStats {
    /// Estimator name.
    pub name: String,
    /// Median absolute error (CDF = 0.5), degrees.
    pub median_err_deg: f64,
    /// Mean Relative Error over all pooled samples.
    pub mre: f64,
    /// 25-point CDF curve `(err_deg, F)`.
    pub cdf: Vec<(f64, f64)>,
}

/// One road of the Figure 9(a) gradient map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapRow {
    /// Road id.
    pub road_id: u64,
    /// Mean estimated |gradient| over traversals, degrees.
    pub est_deg: f64,
    /// Mean true |gradient|, degrees.
    pub true_deg: f64,
}

/// Figure 9 result (drives both 9(a) and 9(b) reports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9 {
    /// Kilometres driven.
    pub km_driven: f64,
    /// OPS statistics.
    pub ops: MethodStats,
    /// Altitude-EKF baseline statistics.
    pub ekf: MethodStats,
    /// ANN baseline statistics.
    pub ann: MethodStats,
    /// Error reduction of OPS vs the stronger baseline (paper: 22 %).
    pub error_reduction_vs_ekf: f64,
    /// Gradient-map rows (steepest roads first).
    pub map_rows: Vec<MapRow>,
}

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig9Config {
    /// Network generator seed.
    pub network_seed: u64,
    /// Number of routes driven.
    pub routes: usize,
    /// Minimum route length, metres.
    pub min_route_m: f64,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config { network_seed: 42, routes: 6, min_route_m: 4000.0 }
    }
}

/// Runs the network evaluation.
pub fn run(cfg: &Fig9Config) -> Fig9 {
    let network = city_network(cfg.network_seed);
    let routes = network_routes(&network, cfg.routes, cfg.min_route_m, cfg.network_seed ^ 0xF19);
    assert!(!routes.is_empty(), "no routes found");

    // ANN trained once on a survey drive over the first route, applied to
    // every evaluation drive (the realistic generalization setting).
    let ann = train_ann(&routes[0], cfg.network_seed ^ 0xA22);

    let mut km = 0.0;
    let mut errs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut abs_truth = Vec::new();
    let mut road_est: std::collections::HashMap<u64, (f64, f64, usize)> =
        std::collections::HashMap::new();

    for (i, route) in routes.iter().enumerate() {
        // Every drive has lane changes and a mid-trip GPS outage.
        let drive = Drive::simulate(route.clone(), 5000 + i as u64, 0.224, vec![(90.0, 120.0)]);
        km += drive.traj.distance_m() / 1000.0;

        let ops_est = drive.ops();
        // The paper's [7] baseline is a forward-only online filter, so the
        // headline comparison runs it without the RTS enhancement this
        // repository adds (that variant is scored in extended_baselines).
        let ekf_track =
            AltitudeEkf::new(AltitudeEkfConfig { rts_smoothing: false, ..Default::default() })
                .estimate(&drive.log);
        let ann_track = ann.estimate(&drive.log);

        let mut collect = |track: &GradientTrack, bucket: usize, map: bool| {
            let mut s = SKIP_M;
            while s < route.length().min(drive.traj.distance_m()) {
                if let Some(th) = track.theta_at(s) {
                    let truth = route.gradient_at(s);
                    errs[bucket].push((th - truth).abs().to_degrees());
                    if bucket == 0 {
                        abs_truth.push(truth.abs().to_degrees());
                    }
                    if map {
                        let (road_idx, _) = route.locate(s);
                        let id = route.roads()[road_idx].id();
                        let e = road_est.entry(id).or_insert((0.0, 0.0, 0));
                        e.0 += th.abs().to_degrees();
                        e.1 += truth.abs().to_degrees();
                        e.2 += 1;
                    }
                }
                s += 25.0;
            }
        };
        collect(&ops_est.fused, 0, true);
        collect(&ekf_track, 1, false);
        collect(&ann_track, 2, false);
    }

    let mean_truth = abs_truth.iter().sum::<f64>() / abs_truth.len().max(1) as f64;
    let stats = |name: &str, errs: &[f64]| -> MethodStats {
        let cdf = EmpiricalCdf::new(errs).expect("nonempty pooled errors");
        MethodStats {
            name: name.into(),
            median_err_deg: cdf.value_at(0.5),
            mre: errs.iter().sum::<f64>() / errs.len() as f64 / mean_truth,
            cdf: cdf.curve(25),
        }
    };
    let ops = stats("OPS", &errs[0]);
    let ekf = stats("EKF", &errs[1]);
    let ann = stats("ANN", &errs[2]);
    let reduction = (ekf.median_err_deg - ops.median_err_deg) / ekf.median_err_deg;

    let mut map_rows: Vec<MapRow> = road_est
        .into_iter()
        .map(|(id, (est, truth, n))| MapRow {
            road_id: id,
            est_deg: est / n as f64,
            true_deg: truth / n as f64,
        })
        .collect();
    map_rows.sort_by(|a, b| b.true_deg.total_cmp(&a.true_deg));

    Fig9 { km_driven: km, ops, ekf, ann, error_reduction_vs_ekf: reduction, map_rows }
}

/// Prints the Figure 9(a) gradient map summary.
pub fn print_report_map(r: &Fig9) {
    let rows: Vec<Vec<String>> = r
        .map_rows
        .iter()
        .take(15)
        .map(|m| {
            vec![m.road_id.to_string(), format!("{:.2}", m.est_deg), format!("{:.2}", m.true_deg)]
        })
        .collect();
    print_table(
        &format!(
            "Fig 9(a) — network gradient map, steepest roads ({:.1} km driven; paper MRE 12.4%)",
            r.km_driven
        ),
        &["road", "est |θ| (°)", "true |θ| (°)"],
        &rows,
    );
    println!("network MRE (OPS): {}", pct(r.ops.mre));
    save_json("fig9a_network_map", r);
}

/// Prints the Figure 9(b) CDF comparison and the 22 % headline.
pub fn print_report_cdf(r: &Fig9) {
    let rows: Vec<Vec<String>> = [&r.ops, &r.ekf, &r.ann]
        .iter()
        .map(|m| vec![m.name.clone(), format!("{:.3}", m.median_err_deg), pct(m.mre)])
        .collect();
    print_table(
        "Fig 9(b) — pooled error statistics (paper medians: OPS 0.09, EKF 0.13, ANN 0.36)",
        &["method", "median err (°)", "MRE"],
        &rows,
    );
    for m in [&r.ops, &r.ekf, &r.ann] {
        let rows: Vec<Vec<String>> =
            m.cdf.iter().map(|(x, f)| vec![format!("{x:.3}"), format!("{f:.3}")]).collect();
        print_table(&format!("CDF — {}", m.name), &["err (°)", "F"], &rows);
    }
    println!(
        "headline: OPS reduces the median error vs the EKF baseline by {} (paper: 22%)",
        pct(r.error_reduction_vs_ekf)
    );
    save_json("fig9b_network_cdf", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_network_run_preserves_ordering() {
        // Two short routes keep the test affordable.
        let cfg = Fig9Config { network_seed: 42, routes: 2, min_route_m: 2500.0 };
        let r = run(&cfg);
        assert!(r.km_driven > 4.0);
        assert!(
            r.ops.median_err_deg < r.ekf.median_err_deg,
            "OPS {} !< EKF {}",
            r.ops.median_err_deg,
            r.ekf.median_err_deg
        );
        assert!(
            r.ops.median_err_deg < r.ann.median_err_deg,
            "OPS {} !< ANN {}",
            r.ops.median_err_deg,
            r.ann.median_err_deg
        );
        assert!(r.error_reduction_vs_ekf > 0.0);
        assert!(!r.map_rows.is_empty());
    }
}

//! Table II — vehicle parameters of the fuel model, plus derived sanity
//! values.

use crate::report::{print_table, save_json};
use gradest_emissions::FuelModel;
use serde::{Deserialize, Serialize};

/// Table II result: the coefficients in use plus two derived fuel rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// The model (Table II coefficients).
    pub model: FuelModel,
    /// Fuel rate at 40 km/h on flat ground, gal/h.
    pub flat_40kmh_gph: f64,
    /// Fuel rate at 40 km/h on a 5° climb, gal/h.
    pub climb5_40kmh_gph: f64,
}

/// Evaluates the Table II model.
pub fn run() -> Table2 {
    let model = FuelModel::default();
    let v = 40.0 / 3.6;
    Table2 {
        model,
        flat_40kmh_gph: model.fuel_rate_gph(v, 0.0, 0.0),
        climb5_40kmh_gph: model.fuel_rate_gph(v, 0.0, 5.0f64.to_radians()),
    }
}

/// Prints Table II and the derived rates.
pub fn print_report(r: &Table2) {
    print_table(
        "Table II — vehicle parameters (paper: GGE 0.0545, A 4.7887, B 21.2903, C 0.3925, D 3.6000, m 1.479)",
        &["GGE", "A", "B", "C", "D", "m"],
        &[vec![
            format!("{:.4}", r.model.gge),
            format!("{:.4}", r.model.a),
            format!("{:.4}", r.model.b),
            format!("{:.4}", r.model.c),
            format!("{:.4}", r.model.d),
            format!("{:.3}", r.model.mass_mg),
        ]],
    );
    println!(
        "derived: 40 km/h flat {:.3} gal/h, 40 km/h on 5° {:.3} gal/h ({:+.0}%)",
        r.flat_40kmh_gph,
        r.climb5_40kmh_gph,
        (r.climb5_40kmh_gph / r.flat_40kmh_gph - 1.0) * 100.0
    );
    save_json("table2_vehicle_params", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_match_table_ii() {
        let r = run();
        assert_eq!(r.model.gge, 0.0545);
        assert_eq!(r.model.a, 4.7887);
        assert_eq!(r.model.b, 21.2903);
        assert_eq!(r.model.c, 0.3925);
        assert_eq!(r.model.d, 3.6);
        assert_eq!(r.model.mass_mg, 1.479);
        // Frey et al. (paper ref [2]): 0° → 5° raises fuel use ≥ 40 %.
        assert!(r.climb5_40kmh_gph / r.flat_40kmh_gph > 1.4);
    }
}

//! Ingestion-service soak: `gradest-serve` under a simulated phone
//! fleet on a loopback socket.
//!
//! Not a paper artifact — the engineering benchmark for the crowd
//! ingestion path (DESIGN.md §14). Emits `BENCH_service.json` with
//! sustained upload throughput, client-observed frame latency
//! percentiles, and the tile-query cost, so regressions in the
//! decode → estimate → fuse service path are diffable across commits.
//! Alongside the timings it carries the correctness bar as booleans:
//! tiles served over the wire bit-identical to direct `FleetEngine` +
//! `CloudAggregator` aggregation, typed BUSY rejects under overload
//! with every client terminating, a clean drain-on-shutdown while
//! uploads are in flight, and (when the counting allocator is
//! installed) zero allocations in the warm decode → estimate window —
//! measured with the live time-series recorder wired in, since
//! `start` always fans recording into the telemetry ring.
//!
//! A final telemetry phase exercises DESIGN.md §15's judgment loop
//! end to end: a healthy stretch must stay drift-free at every STATUS
//! poll and serve latency quantiles inside the sketch's error bound
//! of the exact span extremes, then degraded sensor logs (starved
//! noisy IMU, long GPS outages) must trip a quality drift alert
//! within `ALERT_DEADLINE_WINDOWS` windows; the detection latency is
//! gated as `alert_latency_ns` and the final STATUS snapshot is saved
//! as `service_soak_status.json`.

use crate::perfbench::{alloc_counter, run_bench, BenchReport};
use crate::report::{print_table, results_dir, save_json};
use gradest_core::cloud::CloudAggregator;
use gradest_core::fleet::FleetEngine;
use gradest_core::pipeline::GradientEstimator;
use gradest_core::track::GradientTrack;
use gradest_geo::road::{build_from_sections, RoadClass, SectionSpec};
use gradest_geo::tile::edges_in_tile_into;
use gradest_geo::{NetworkIndex, QueryScratch, RoadNetwork, Route};
use gradest_math::Vec2;
use gradest_obs::{
    validate_prometheus_text, NoopRecorder, RunRecorder, RunReport, Tee, TimeSeriesConfig,
    TraceRing, SKETCH_RELATIVE_ERROR,
};
use gradest_sensors::suite::{SensorConfig, SensorLog, SensorSuite};
use gradest_serve::client::{Client, ServerReply};
use gradest_serve::protocol::TileWriter;
use gradest_serve::server::{install_alloc_probe, start, ServeConfig};
use gradest_sim::trip::{simulate_trip, TripConfig};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Roads in the soak network (and edges served per tile).
const ROADS: usize = 8;
/// Distinct simulated trips in the upload pool; phones cycle through
/// it so trip simulation does not dominate the benchmark setup.
const POOL: usize = 16;
/// Client-side socket timeout. Generous: on one core, 64 phone
/// threads plus the server share the CPU.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);
/// Window width of the telemetry phase's time-series ring: short, so
/// dozens of windows elapse inside the phase.
const TELEMETRY_WINDOW_NS: u64 = 25_000_000;
/// Ring length of the telemetry phase (25 ms × 120 = a 3 s horizon).
const TELEMETRY_WINDOWS: usize = 120;
/// Complete windows of healthy traffic before degradation starts.
const HEALTHY_WINDOWS: u64 = 14;
/// Degraded windows after which an unfired drift alert is a failure.
const ALERT_DEADLINE_WINDOWS: u64 = 40;
/// Floor (in windows) applied to the *gated* alert latency: the alarm
/// lands on a window boundary ±1 window of alignment jitter, so
/// latencies under the floor are quantization noise, not signal. The
/// gate then only fails on real detector regressions (past
/// `floor × (1 + tolerance)`), while the raw latency stays reported.
const GATE_LATENCY_FLOOR_WINDOWS: u64 = 8;

/// Ingestion-service soak result (`BENCH_service.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSoakBench {
    /// Simulation seed.
    pub seed: u64,
    /// Concurrent phone (client) threads in the throughput phase.
    pub phones: usize,
    /// Uploads per phone.
    pub trips_per_phone: usize,
    /// Total uploads of the throughput phase.
    pub trips_total: usize,
    /// Roads in the network / edges in the served tile.
    pub roads: usize,
    /// Service worker threads.
    pub workers: usize,
    /// Bounded accept-queue depth of the throughput server.
    pub queue_depth: usize,
    /// Wall clock of the upload phase, first send to last ack.
    pub upload_elapsed_ns: u64,
    /// Sustained upload throughput over loopback.
    pub sustained_trips_per_sec: f64,
    /// Inverse throughput (gate metric; lower is better).
    pub sustained_ns_per_trip: f64,
    /// Client-observed median upload frame latency.
    pub frame_p50_ns: f64,
    /// Client-observed p99 upload frame latency.
    pub frame_p99_ns: f64,
    /// Warm bbox tile query, client-observed round trip.
    pub tile_query: BenchReport,
    /// Whether the served tile bytes equalled direct `FleetEngine` +
    /// `CloudAggregator` aggregation over the same trips.
    pub tiles_bit_identical: bool,
    /// Edges carried by the compared tile.
    pub tile_edges: usize,
    /// Uploads acknowledged by the throughput server (must equal
    /// `trips_total`).
    pub uploads_acked: u64,
    /// Frames rejected by the throughput server (must be zero — the
    /// fleet is well-behaved).
    pub frames_rejected: u64,
    /// Upload attempts of the overload phase.
    pub overload_attempts: u64,
    /// Typed BUSY rejects the overload server answered.
    pub overload_busy_rejects: u64,
    /// BUSY rejects per attempt under ~2x overload.
    pub overload_reject_rate: f64,
    /// Whether every overload client terminated (no wedged phone).
    pub overload_clients_finished: bool,
    /// Worst-case heap allocations in one warm decode → estimate
    /// window (`None` when no counting allocator is installed;
    /// the smoke gate asserts `Some(0)`).
    pub allocs_per_frame_warm: Option<u64>,
    /// Whether every shutdown drained cleanly (in-flight reached zero
    /// after the joins), including the drain raced by a live uploader.
    pub drain_clean: bool,
    /// Whether the METRICS frame's exposition passed the Prometheus
    /// grammar check.
    pub prometheus_valid: bool,
    /// Whether the healthy stretch of the telemetry phase stayed
    /// drift-free at every STATUS poll (no false positives).
    pub status_healthy_drift_free: bool,
    /// Whether the STATUS frame latency quantiles were monotone and
    /// inside the sketch's relative-error bound of the exact
    /// server-side span extremes.
    pub status_quantiles_in_bounds: bool,
    /// Whether a drift alert fired after sensor degradation.
    pub drift_alert_fired: bool,
    /// Signals reporting drift when the alert fired (per-signal names
    /// from the STATUS quality array).
    pub drift_signals: Vec<String>,
    /// Wall-clock from the first degraded upload to the first STATUS
    /// poll reporting drift (the deadline is `ALERT_DEADLINE_WINDOWS`
    /// windows).
    pub alert_latency_ns: f64,
    /// The same latency in telemetry windows.
    pub alert_latency_windows: f64,
    /// The gated detection latency: `alert_latency_ns` floored to
    /// `GATE_LATENCY_FLOOR_WINDOWS` windows so window-boundary jitter
    /// cannot fail the perf gate (see the constant's doc).
    pub alert_latency_gate_ns: f64,
    /// Observability report of the throughput server: service-frame /
    /// service-decode / service-tile-query spans, service counters,
    /// and the per-trip pipeline spans under them.
    pub obs: RunReport,
}

/// The soak network: `ROADS` disjoint straight roads, 300 m each,
/// stacked 120 m apart with distinct gradients. Short trips keep a
/// warm estimate in the hundreds of microseconds, so the soak measures
/// the service, not the simulator.
fn soak_network() -> RoadNetwork {
    let mut net = RoadNetwork::new();
    for i in 0..ROADS {
        let spec = SectionSpec {
            length_m: 300.0,
            gradient_deg: 0.6 + 0.35 * i as f64,
            lanes: 1,
            curvature: 0.0,
        };
        let road = build_from_sections(
            100 + i as u64,
            format!("soak-{i}"),
            Vec2::new(0.0, i as f64 * 120.0),
            0.0,
            &[spec],
            5.0,
            100.0,
            RoadClass::Collector.default_speed_limit(),
            RoadClass::Collector,
        )
        .expect("straight section is valid");
        let a = net.add_node(road.point_at(0.0));
        let b = net.add_node(road.point_at(road.length()));
        net.add_edge(a, b, road).expect("endpoints coincide with nodes");
    }
    net
}

/// Simulates the trip pool: `POOL` logs cycling over the roads.
fn trip_pool(net: &RoadNetwork, seed: u64) -> Vec<SensorLog> {
    (0..POOL)
        .map(|i| {
            let road = net.edges()[i % ROADS].road.clone();
            let route = Route::new(vec![road]).expect("single-road route");
            let trip_seed = seed.wrapping_add(i as u64);
            let traj = simulate_trip(&route, &TripConfig::default(), trip_seed);
            SensorSuite::new(SensorConfig::default())
                .run(&traj, trip_seed.wrapping_mul(31).wrapping_add(7))
        })
        .collect()
}

/// Degraded-sensor logs for the telemetry phase: a starved IMU (the
/// accelerometer fusion weight collapses against the dense sources),
/// a much noisier accelerometer (per-trip mean NIS leaves the
/// consistency band), and two long GPS outages per trip (the dropout
/// counter jumps from zero).
fn degraded_pool(net: &RoadNetwork, seed: u64) -> Vec<SensorLog> {
    let mut cfg = SensorConfig {
        imu_rate_hz: 5.0,
        gps_outages: vec![(3.0, 8.0), (12.0, 18.0)],
        ..Default::default()
    };
    cfg.accel_noise.white_sd *= 25.0;
    cfg.accel_noise.bias_init_sd *= 25.0;
    (0..8)
        .map(|i| {
            let road = net.edges()[i % ROADS].road.clone();
            let route = Route::new(vec![road]).expect("single-road route");
            let trip_seed = seed.wrapping_add(i as u64);
            let traj = simulate_trip(&route, &TripConfig::default(), trip_seed);
            SensorSuite::new(cfg.clone()).run(&traj, trip_seed.wrapping_mul(31).wrapping_add(7))
        })
        .collect()
}

/// One decoded STATUS snapshot: the fields the telemetry phase judges.
struct StatusSnapshot {
    drifting: bool,
    drift_signals: Vec<String>,
    frame_count: u64,
    p50_ns: Option<f64>,
    p90_ns: Option<f64>,
    p99_ns: Option<f64>,
    raw: String,
}

/// Fetches and decodes one STATUS frame.
fn poll_status(client: &mut Client) -> StatusSnapshot {
    let raw = match client.status().expect("status poll") {
        ServerReply::Status(text) => text,
        other => panic!("unexpected status reply: {other:?}"),
    };
    let doc: Value = serde_json::from_str(&raw).expect("STATUS frame carries valid JSON");
    let drift_signals = doc["quality"]
        .as_array()
        .map(|signals| {
            signals
                .iter()
                .filter(|s| s["drifting"].as_bool() == Some(true))
                .filter_map(|s| s["signal"].as_str().map(|n| n.to_string()))
                .collect()
        })
        .unwrap_or_default();
    StatusSnapshot {
        drifting: doc["drifting"].as_bool() == Some(true),
        drift_signals,
        frame_count: doc["frame"]["count"].as_u64().unwrap_or(0),
        p50_ns: doc["frame"]["p50_ns"].as_f64(),
        p90_ns: doc["frame"]["p90_ns"].as_f64(),
        p99_ns: doc["frame"]["p99_ns"].as_f64(),
        raw,
    }
}

/// The reference tile: the same `(road_id, log)` multiset pushed
/// through `FleetEngine::process_batch_to_cloud_recorded` into a
/// direct `CloudAggregator`, serialized by the same `TileWriter`.
/// Every trip carries a distinct road id, so f64 fusion order cannot
/// differ between the concurrent service and this reference.
fn reference_tile(
    net: &RoadNetwork,
    cfg: &ServeConfig,
    pool: &[SensorLog],
    total: usize,
) -> (Vec<u8>, usize) {
    let logs: Vec<SensorLog> = (0..total).map(|t| pool[t % pool.len()].clone()).collect();
    let road_ids: Vec<u64> = (0..total as u64).collect();
    let cloud = CloudAggregator::new(cfg.grid_ds);
    let engine = FleetEngine::new(GradientEstimator::new(cfg.estimator.clone()), 2);
    let _ = engine.process_batch_to_cloud_recorded(&logs, &road_ids, None, &cloud, &NoopRecorder);
    let index = NetworkIndex::build(net);
    let mut edges = Vec::new();
    let mut query = QueryScratch::new();
    edges_in_tile_into(&index, index.bounds(), &mut query, &mut edges);
    let mut payload = Vec::new();
    let mut track = GradientTrack::new("");
    let mut writer = TileWriter::begin(&mut payload);
    for edge in &edges {
        if cloud.road_profile_into(u64::from(*edge), &mut track) {
            writer.push_edge(*edge, &track);
        }
    }
    writer.finish();
    (payload, edges.len())
}

fn percentile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64
}

/// Writes a non-JSON service artifact (Prometheus exposition, trace
/// sequence) next to the experiment JSONs; failures warn, never abort.
fn save_artifact(name: &str, body: &str) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
}

/// Runs the ingestion soak: a throughput/identity phase with `phones`
/// concurrent clients, a sequential warm-allocation phase, an overload
/// phase at ~2x capacity, and a drain raced by a live uploader.
pub fn run(seed: u64, phones: usize, trips_per_phone: usize) -> ServiceSoakBench {
    assert!(phones > 0 && trips_per_phone > 0, "need at least one phone and trip");
    let net = soak_network();
    let pool = Arc::new(trip_pool(&net, seed));
    let total = phones * trips_per_phone;
    if alloc_counter::is_installed() {
        install_alloc_probe(alloc_counter::allocations);
    }

    // ---- Phase 1: throughput + identity -------------------------------
    let cfg = ServeConfig { workers: 2, queue_depth: phones.max(2), ..Default::default() };
    let rec = Arc::new(Tee::new(RunRecorder::new(), TraceRing::with_capacity(8192)));
    let server = start(&cfg, "127.0.0.1:0", &net, Arc::clone(&rec)).expect("bind loopback");
    let addr = server.addr();

    let upload_start = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..phones)
            .map(|p| {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let mut client = Client::connect(addr, CLIENT_TIMEOUT).expect("phone connects");
                    let mut lat = Vec::with_capacity(trips_per_phone);
                    for k in 0..trips_per_phone {
                        let t = p * trips_per_phone + k;
                        let log = &pool[t % pool.len()];
                        let frame_start = Instant::now();
                        match client.upload(t as u64, log).expect("upload") {
                            ServerReply::Ack { road_id } => assert_eq!(road_id, t as u64),
                            other => panic!("phone {p} got {other:?}"),
                        }
                        lat.push(frame_start.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("phone thread")).collect()
    });
    let upload_elapsed_ns = upload_start.elapsed().as_nanos() as u64;
    latencies.sort_unstable();
    let sustained_ns_per_trip = upload_elapsed_ns as f64 / total as f64;
    let sustained_trips_per_sec = total as f64 / (upload_elapsed_ns as f64 / 1e9);

    // Metrics + tile on the warm server.
    let mut client = Client::connect(addr, CLIENT_TIMEOUT).expect("connect");
    let prometheus_valid = match client.metrics().expect("metrics") {
        ServerReply::Metrics(text) => {
            save_artifact("service_soak_prometheus.txt", &text);
            validate_prometheus_text(&text).is_ok()
        }
        other => panic!("unexpected metrics reply: {other:?}"),
    };
    let index = NetworkIndex::build(&net);
    let bounds = index.bounds();
    let served_tile = match client.tile_query(&bounds).expect("tile query") {
        ServerReply::Tile(payload) => payload,
        other => panic!("unexpected tile reply: {other:?}"),
    };
    let tile_query = run_bench("service_tile_query", 3, 8, || {
        for _ in 0..8 {
            match client.tile_query(&bounds).expect("tile query") {
                ServerReply::Tile(_) => {}
                other => panic!("unexpected tile reply: {other:?}"),
            }
        }
    });
    let (reference, tile_edges) = reference_tile(&net, &cfg, &pool, total);
    let tiles_bit_identical = served_tile == reference;

    drop(client);
    let report = server.shutdown();
    let mut drain_clean = report.is_clean();
    let uploads_acked = report.stats.uploads_acked;
    let frames_rejected = report.stats.frames_rejected;
    save_artifact("service_soak_trace.txt", &rec.b.snapshot().sequence_string());

    // ---- Phase 2: warm-allocation window, sequential ------------------
    // A dedicated quiescent server: one client, one frame in flight, so
    // the probe diff around decode → estimate sees only the worker.
    let allocs_per_frame_warm = if alloc_counter::is_installed() {
        let warm_server = start(
            &ServeConfig { workers: 1, ..Default::default() },
            "127.0.0.1:0",
            &net,
            Arc::new(NoopRecorder),
        )
        .expect("bind loopback");
        let mut client = Client::connect(warm_server.addr(), CLIENT_TIMEOUT).expect("connect");
        for k in 0..8u64 {
            match client.upload(1_000_000 + k, &pool[0]).expect("warm upload") {
                ServerReply::Ack { .. } => {}
                other => panic!("unexpected warm reply: {other:?}"),
            }
        }
        drop(client);
        let warm_report = warm_server.shutdown();
        drain_clean &= warm_report.is_clean();
        warm_report.stats.max_warm_frame_allocs
    } else {
        None
    };

    // ---- Phase 3: overload at ~2x capacity ----------------------------
    // One worker and a one-deep queue; `2 * capacity` eager phones on
    // fresh connections guarantee accept-queue BUSY rejects while every
    // ack still fuses. All clients must terminate on their own.
    let overload_cfg = ServeConfig { workers: 1, queue_depth: 1, ..Default::default() };
    let overload_server =
        start(&overload_cfg, "127.0.0.1:0", &net, Arc::new(NoopRecorder)).expect("bind loopback");
    let overload_addr = overload_server.addr();
    let overload_phones = 4usize;
    let attempts_each = 6usize;
    let results: Vec<(u64, u64, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..overload_phones)
            .map(|p| {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let mut acked = 0u64;
                    let mut busy = 0u64;
                    for k in 0..attempts_each {
                        let Ok(mut client) = Client::connect(overload_addr, CLIENT_TIMEOUT) else {
                            continue;
                        };
                        match client.upload((2_000_000 + p * 100 + k) as u64, &pool[0]) {
                            Ok(ServerReply::Ack { .. }) => acked += 1,
                            Ok(ServerReply::Busy { .. }) => busy += 1,
                            Ok(other) => panic!("unexpected overload reply: {other:?}"),
                            Err(_) => {}
                        }
                    }
                    (acked, busy, true)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or((0, 0, false))).collect()
    });
    let overload_attempts = (overload_phones * attempts_each) as u64;
    let overload_busy_rejects: u64 = results.iter().map(|(_, b, _)| b).sum();
    let overload_clients_finished =
        results.len() == overload_phones && results.iter().all(|(_, _, finished)| *finished);

    // ---- Phase 4: drain raced by a live uploader ----------------------
    let drained_mid_upload = std::thread::scope(|scope| {
        let pool = Arc::clone(&pool);
        let uploader = scope.spawn(move || {
            let Ok(mut client) = Client::connect(overload_addr, CLIENT_TIMEOUT) else {
                return;
            };
            for k in 0..64u64 {
                // Acks, BUSY(draining), or a closed socket all end the
                // phone's session cleanly.
                if client.upload(3_000_000 + k, &pool[0]).is_err() {
                    return;
                }
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        let report = overload_server.shutdown();
        uploader.join().expect("uploader thread");
        report.is_clean()
    });
    drain_clean &= drained_mid_upload;

    // ---- Phase 5: live telemetry + drift detection --------------------
    // A dedicated server with short windows so the ring, the SLO table,
    // and the drift monitors all see dozens of completed windows inside
    // the phase. A healthy stretch must stay alert-free, then degraded
    // sensor logs must trip a quality alert within the deadline.
    let telemetry_cfg = ServeConfig {
        workers: 1,
        timeseries: TimeSeriesConfig { window_ns: TELEMETRY_WINDOW_NS, windows: TELEMETRY_WINDOWS },
        ..Default::default()
    };
    let tele_rec = Arc::new(RunRecorder::new());
    let tele_server =
        start(&telemetry_cfg, "127.0.0.1:0", &net, Arc::clone(&tele_rec)).expect("bind loopback");
    let mut phone = Client::connect(tele_server.addr(), CLIENT_TIMEOUT).expect("connect");

    // Healthy stretch: clean uploads until HEALTHY_WINDOWS complete
    // windows have elapsed, polling STATUS along the way — every poll
    // must be drift-free.
    let healthy_start_w = tele_server.telemetry_now_ns() / TELEMETRY_WINDOW_NS;
    let mut status_healthy_drift_free = true;
    let mut k = 0u64;
    while tele_server.telemetry_now_ns() / TELEMETRY_WINDOW_NS < healthy_start_w + HEALTHY_WINDOWS {
        match phone.upload(4_000_000 + k, &pool[(k as usize) % pool.len()]).expect("upload") {
            ServerReply::Ack { .. } => {}
            other => panic!("unexpected telemetry-phase reply: {other:?}"),
        }
        if k % 8 == 7 {
            status_healthy_drift_free &= !poll_status(&mut phone).drifting;
        }
        k += 1;
    }
    let healthy_status = poll_status(&mut phone);
    status_healthy_drift_free &= !healthy_status.drifting;

    // Oracle check: the STATUS quantiles come from the windowed
    // sketches, the Tee'd RunRecorder aggregates the very same
    // `service-frame` span durations exactly. The estimates must be
    // monotone and inside the sketch's relative-error bound of the
    // exact extremes.
    let status_quantiles_in_bounds = match (
        healthy_status.p50_ns,
        healthy_status.p90_ns,
        healthy_status.p99_ns,
        tele_rec.report().span("service-frame"),
    ) {
        (Some(p50), Some(p90), Some(p99), Some(frame)) => {
            let lo = frame.min_ns as f64 * (1.0 - SKETCH_RELATIVE_ERROR);
            let hi = frame.max_ns as f64 * (1.0 + SKETCH_RELATIVE_ERROR);
            let count_ok =
                healthy_status.frame_count > 0 && healthy_status.frame_count <= frame.count;
            p50 <= p90 && p90 <= p99 && p50 >= lo && p99 <= hi && count_ok
        }
        _ => false,
    };

    // Degraded stretch: upload broken-sensor trips until a STATUS poll
    // reports drift (or the deadline passes with no alert).
    let degraded = degraded_pool(&net, seed.wrapping_add(0x5EED));
    let degrade_start_ns = tele_server.telemetry_now_ns();
    let mut drift_alert_fired = false;
    let mut drift_signals = Vec::new();
    let alert_latency_ns;
    let mut final_status_raw = healthy_status.raw;
    let mut k = 0u64;
    loop {
        let now_ns = tele_server.telemetry_now_ns();
        if now_ns.saturating_sub(degrade_start_ns) / TELEMETRY_WINDOW_NS > ALERT_DEADLINE_WINDOWS {
            alert_latency_ns = now_ns - degrade_start_ns;
            break;
        }
        match phone.upload(5_000_000 + k, &degraded[(k as usize) % degraded.len()]).expect("upload")
        {
            ServerReply::Ack { .. } => {}
            other => panic!("unexpected degraded-phase reply: {other:?}"),
        }
        if k % 4 == 3 {
            let status = poll_status(&mut phone);
            if status.drifting {
                drift_alert_fired = true;
                drift_signals = status.drift_signals;
                alert_latency_ns = tele_server.telemetry_now_ns() - degrade_start_ns;
                final_status_raw = status.raw;
                break;
            }
        }
        k += 1;
    }
    save_artifact("service_soak_status.json", &final_status_raw);

    drop(phone);
    let tele_report = tele_server.shutdown();
    drain_clean &= tele_report.is_clean();

    ServiceSoakBench {
        seed,
        phones,
        trips_per_phone,
        trips_total: total,
        roads: ROADS,
        workers: cfg.workers,
        queue_depth: cfg.queue_depth,
        upload_elapsed_ns,
        sustained_trips_per_sec,
        sustained_ns_per_trip,
        frame_p50_ns: percentile(&latencies, 0.50),
        frame_p99_ns: percentile(&latencies, 0.99),
        tile_query,
        tiles_bit_identical,
        tile_edges,
        uploads_acked,
        frames_rejected,
        overload_attempts,
        overload_busy_rejects,
        overload_reject_rate: overload_busy_rejects as f64 / overload_attempts as f64,
        overload_clients_finished,
        allocs_per_frame_warm,
        drain_clean,
        prometheus_valid,
        status_healthy_drift_free,
        status_quantiles_in_bounds,
        drift_alert_fired,
        drift_signals,
        alert_latency_ns: alert_latency_ns as f64,
        alert_latency_windows: alert_latency_ns as f64 / TELEMETRY_WINDOW_NS as f64,
        alert_latency_gate_ns: alert_latency_ns
            .max(GATE_LATENCY_FLOOR_WINDOWS * TELEMETRY_WINDOW_NS)
            as f64,
        obs: rec.a.report(),
    }
}

/// Renders the soak summary and saves `service_soak.json`.
pub fn print_report(r: &ServiceSoakBench) {
    let rows = vec![
        vec![
            "uploads".to_string(),
            format!("{} ({} phones x {})", r.trips_total, r.phones, r.trips_per_phone),
        ],
        vec![
            "sustained throughput".to_string(),
            format!(
                "{:.0} trips/s ({:.2} ms/trip)",
                r.sustained_trips_per_sec,
                r.sustained_ns_per_trip / 1e6
            ),
        ],
        vec![
            "frame latency p50 / p99".to_string(),
            format!("{:.2} / {:.2} ms", r.frame_p50_ns / 1e6, r.frame_p99_ns / 1e6),
        ],
        vec![
            "tile query".to_string(),
            format!("{:.2} ms ({} edges)", r.tile_query.median_ns_per_op / 1e6, r.tile_edges),
        ],
        vec!["tiles bit-identical".to_string(), r.tiles_bit_identical.to_string()],
        vec![
            "overload rejects".to_string(),
            format!(
                "{}/{} busy ({:.0}%), clients finished: {}",
                r.overload_busy_rejects,
                r.overload_attempts,
                r.overload_reject_rate * 100.0,
                r.overload_clients_finished
            ),
        ],
        vec![
            "warm allocs/frame".to_string(),
            r.allocs_per_frame_warm.map_or("not measured".to_string(), |a| a.to_string()),
        ],
        vec!["drain clean".to_string(), r.drain_clean.to_string()],
        vec!["prometheus valid".to_string(), r.prometheus_valid.to_string()],
        vec!["healthy phase drift-free".to_string(), r.status_healthy_drift_free.to_string()],
        vec!["status quantiles in bounds".to_string(), r.status_quantiles_in_bounds.to_string()],
        vec![
            "drift alert".to_string(),
            if r.drift_alert_fired {
                format!(
                    "fired after {:.1} windows ({:.0} ms): {}",
                    r.alert_latency_windows,
                    r.alert_latency_ns / 1e6,
                    r.drift_signals.join(", ")
                )
            } else {
                format!("MISSED deadline of {ALERT_DEADLINE_WINDOWS} windows")
            },
        ],
    ];
    print_table("Ingestion service soak (loopback)", &["metric", "value"], &rows);
    save_json("service_soak", r);
}

//! Table I — extracted bump features of lane-change maneuvers.
//!
//! The paper runs a steering study with 10 drivers at 15–65 km/h and
//! reports, per lane-change direction, the average peak steering-rate
//! magnitudes (δ⁺/δ⁻) and dwell times above 0.7·δ (T⁺/T⁻), plus the
//! minima used as the detector thresholds. We reproduce the study with 10
//! simulated drivers (per-driver lateral-acceleration preference) driving
//! a two-lane road across the same speed range.

use crate::report::{print_table, save_json};
use crate::scenarios::Drive;
use gradest_core::steering::{extract_bump_features, smooth_profile, SmoothedProfile};
use gradest_geo::generate::two_lane_straight;
use gradest_geo::Route;
use gradest_sensors::alignment::steering_rate_profile;
use gradest_sim::LaneChangeDirection;
use serde::{Deserialize, Serialize};

/// Table I result: per-direction averaged bump features and the minima.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Mean δ⁺ during left changes, rad/s.
    pub delta_left_pos: f64,
    /// Mean δ⁻ during left changes, rad/s.
    pub delta_left_neg: f64,
    /// Mean δ⁺ during right changes, rad/s.
    pub delta_right_pos: f64,
    /// Mean δ⁻ during right changes, rad/s.
    pub delta_right_neg: f64,
    /// Mean T⁺ during left changes, s.
    pub t_left_pos: f64,
    /// Mean T⁻ during left changes, s.
    pub t_left_neg: f64,
    /// Mean T⁺ during right changes, s.
    pub t_right_pos: f64,
    /// Mean T⁻ during right changes, s.
    pub t_right_neg: f64,
    /// Minimum of the four δ means — the detector threshold δ.
    pub delta_min: f64,
    /// Minimum of the four T means — the detector threshold T.
    pub t_min: f64,
    /// Maneuvers analysed.
    pub maneuvers: usize,
}

/// Runs the 10-driver steering study with `drivers` simulated drivers.
pub fn run(drivers: usize) -> Table1 {
    let mut left_feats = Vec::new();
    let mut right_feats = Vec::new();
    let mut maneuvers = 0usize;
    for driver in 0..drivers as u64 {
        // Each driver: long two-lane road, plenty of lane changes, speed
        // spanned by the road's limit and the driver's wander.
        let drive = Drive::simulate(
            Route::new(vec![two_lane_straight(12_000.0)]).expect("valid route"),
            1000 + driver,
            1.2,
            Vec::new(),
        );
        let raw = steering_rate_profile(&drive.log.imu, &drive.log.gps, Some(&drive.route));
        let profile = smooth_profile(&raw, 0.8);
        for event in drive.traj.events() {
            let window = slice_profile(&profile, event.start_t - 0.5, event.end_t + 0.5);
            if let Some(f) = extract_bump_features(&window) {
                maneuvers += 1;
                match event.direction {
                    LaneChangeDirection::Left => left_feats.push(f),
                    LaneChangeDirection::Right => right_feats.push(f),
                }
            }
        }
    }
    let mean = |vals: &[f64]| -> f64 {
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let dl_pos = mean(&left_feats.iter().map(|f| f.delta_pos).collect::<Vec<_>>());
    let dl_neg = mean(&left_feats.iter().map(|f| f.delta_neg).collect::<Vec<_>>());
    let dr_pos = mean(&right_feats.iter().map(|f| f.delta_pos).collect::<Vec<_>>());
    let dr_neg = mean(&right_feats.iter().map(|f| f.delta_neg).collect::<Vec<_>>());
    let tl_pos = mean(&left_feats.iter().map(|f| f.t_pos).collect::<Vec<_>>());
    let tl_neg = mean(&left_feats.iter().map(|f| f.t_neg).collect::<Vec<_>>());
    let tr_pos = mean(&right_feats.iter().map(|f| f.t_pos).collect::<Vec<_>>());
    let tr_neg = mean(&right_feats.iter().map(|f| f.t_neg).collect::<Vec<_>>());
    Table1 {
        delta_left_pos: dl_pos,
        delta_left_neg: dl_neg,
        delta_right_pos: dr_pos,
        delta_right_neg: dr_neg,
        t_left_pos: tl_pos,
        t_left_neg: tl_neg,
        t_right_pos: tr_pos,
        t_right_neg: tr_neg,
        delta_min: [dl_pos, dl_neg, dr_pos, dr_neg].into_iter().fold(f64::MAX, f64::min),
        t_min: [tl_pos, tl_neg, tr_pos, tr_neg].into_iter().fold(f64::MAX, f64::min),
        maneuvers,
    }
}

/// Cuts a time window out of a smoothed profile.
fn slice_profile(profile: &SmoothedProfile, t0: f64, t1: f64) -> SmoothedProfile {
    let mut t = Vec::new();
    let mut w = Vec::new();
    for (ti, wi) in profile.t.iter().zip(&profile.w) {
        if *ti >= t0 && *ti <= t1 {
            t.push(*ti);
            w.push(*wi);
        }
    }
    SmoothedProfile { t, w }
}

/// Prints the Table I layout and saves the JSON artifact.
pub fn print_report(r: &Table1) {
    print_table(
        "Table I — extracted bump features (paper: δ rows 0.1215/0.1445/0.1723/0.1167, min 0.1167 rad/s; T rows 1.625/1.766/1.383/2.072, min 1.383 s)",
        &["δ_L+", "δ_L-", "δ_R+", "δ_R-", "min δ (rad/s)"],
        &[vec![
            format!("{:.4}", r.delta_left_pos),
            format!("{:.4}", r.delta_left_neg),
            format!("{:.4}", r.delta_right_pos),
            format!("{:.4}", r.delta_right_neg),
            format!("{:.4}", r.delta_min),
        ]],
    );
    print_table(
        "Table I (cont.) — dwell times",
        &["T_L+", "T_L-", "T_R+", "T_R-", "min T (s)"],
        &[vec![
            format!("{:.3}", r.t_left_pos),
            format!("{:.3}", r.t_left_neg),
            format!("{:.3}", r.t_right_pos),
            format!("{:.3}", r.t_right_neg),
            format!("{:.3}", r.t_min),
        ]],
    );
    println!("maneuvers analysed: {}", r.maneuvers);
    save_json("table1_bump_features", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_extracts_features_in_paper_range() {
        let r = run(3); // 3 drivers keeps the test quick
        assert!(r.maneuvers >= 6, "only {} maneuvers", r.maneuvers);
        // Peak magnitudes at urban speeds land in the 0.05–0.4 rad/s band
        // (the paper's are 0.11–0.17).
        for d in [r.delta_left_pos, r.delta_left_neg, r.delta_right_pos, r.delta_right_neg] {
            assert!((0.03..0.5).contains(&d), "δ = {d}");
        }
        // Dwell times are around a second (the paper's: 1.4–2.1 s).
        for t in [r.t_left_pos, r.t_left_neg, r.t_right_pos, r.t_right_neg] {
            assert!((0.3..3.0).contains(&t), "T = {t}");
        }
        assert!(r.delta_min <= r.delta_left_pos);
        assert!(r.t_min <= r.t_left_pos);
    }
}

//! Table III — the red road's section signs and lane counts.

use crate::report::{print_table, save_json};
use gradest_geo::generate::{red_road, red_road_sections};
use serde::{Deserialize, Serialize};

/// One section row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section {
    /// Section label ("0-1" … "6-7").
    pub label: String,
    /// Section length, metres.
    pub length_m: f64,
    /// Measured gradient at the section midpoint, radians.
    pub gradient_mid: f64,
    /// `+` for uphill, `-` for downhill (from the generated geometry).
    pub sign: char,
    /// Lane count.
    pub lanes: u32,
}

/// Table III result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// The seven sections.
    pub sections: Vec<Section>,
    /// Total road length, metres (paper: 2 160 m).
    pub total_length_m: f64,
}

/// Measures the generated red road against the Table III layout.
pub fn run() -> Table3 {
    let road = red_road();
    let specs = red_road_sections();
    let mut s0 = 0.0;
    let mut sections = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let mid = s0 + spec.length_m / 2.0;
        let g = road.gradient_at(mid);
        sections.push(Section {
            label: format!("{i}-{}", i + 1),
            length_m: spec.length_m,
            gradient_mid: g,
            sign: if g >= 0.0 { '+' } else { '-' },
            lanes: road.lanes_at(mid),
        });
        s0 += spec.length_m;
    }
    Table3 { sections, total_length_m: road.length() }
}

/// Prints the Table III layout.
pub fn print_report(r: &Table3) {
    let rows: Vec<Vec<String>> = vec![
        std::iter::once("up/down".to_string())
            .chain(r.sections.iter().map(|s| s.sign.to_string()))
            .collect(),
        std::iter::once("lanes".to_string())
            .chain(r.sections.iter().map(|s| s.lanes.to_string()))
            .collect(),
        std::iter::once("grade (°)".to_string())
            .chain(r.sections.iter().map(|s| format!("{:.1}", s.gradient_mid.to_degrees())))
            .collect(),
        std::iter::once("length (m)".to_string())
            .chain(r.sections.iter().map(|s| format!("{:.0}", s.length_m)))
            .collect(),
    ];
    let mut headers: Vec<&str> = vec!["section"];
    let labels: Vec<String> = r.sections.iter().map(|s| s.label.clone()).collect();
    headers.extend(labels.iter().map(|s| s.as_str()));
    print_table(
        "Table III — red road sections (paper: signs + - + - + - +, lanes 1 1 1 1 2 2 1, total 2.16 km)",
        &headers,
        &rows,
    );
    println!("total length: {:.0} m", r.total_length_m);
    save_json("table3_red_road", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table_iii() {
        let r = run();
        assert_eq!(r.sections.len(), 7);
        let signs: String = r.sections.iter().map(|s| s.sign).collect();
        assert_eq!(signs, "+-+-+-+");
        let lanes: Vec<u32> = r.sections.iter().map(|s| s.lanes).collect();
        assert_eq!(lanes, vec![1, 1, 1, 1, 2, 2, 1]);
        assert!((r.total_length_m - 2160.0).abs() < 1.0);
    }
}

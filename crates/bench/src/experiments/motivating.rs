//! The introduction's motivating claims, checked against this
//! implementation's fuel model:
//!
//! * Frey et al. \[2\]: fuel consumption rises ~40 % when the gradient
//!   goes from 0° to 5°.
//! * Boriboonsomsin & Barth \[3\]: vs a flat route, a downhill route cuts
//!   fuel ~2×, an uphill route costs 1.5–2×.

use crate::report::{print_table, save_json};
use gradest_emissions::FuelModel;
use serde::{Deserialize, Serialize};

/// Motivating-claims result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Motivating {
    /// Fuel rate at 0°, gal/h (40 km/h cruise).
    pub flat_gph: f64,
    /// Fuel rate at 5°, gal/h.
    pub climb5_gph: f64,
    /// Frey ratio (5° / 0°; paper's citation: ≥ 1.4).
    pub frey_ratio: f64,
    /// Per-km fuel on a +2.5° route relative to flat (Boriboonsomsin
    /// uphill factor; citation: 1.5–2).
    pub uphill_factor: f64,
    /// Per-km fuel on a −2.5° route relative to flat (citation: ~0.5).
    pub downhill_factor: f64,
}

/// Evaluates the intro's citations at a 40 km/h cruise with ±2.5° routes.
pub fn run() -> Motivating {
    let model = FuelModel::default();
    let v = 40.0 / 3.6;
    let flat = model.fuel_rate_gph(v, 0.0, 0.0);
    let climb5 = model.fuel_rate_gph(v, 0.0, 5.0f64.to_radians());
    let up = model.fuel_per_km(v, 0.0, 2.5f64.to_radians());
    let down = model.fuel_per_km(v, 0.0, -2.5f64.to_radians());
    let flat_km = model.fuel_per_km(v, 0.0, 0.0);
    Motivating {
        flat_gph: flat,
        climb5_gph: climb5,
        frey_ratio: climb5 / flat,
        uphill_factor: up / flat_km,
        downhill_factor: down / flat_km,
    }
}

/// Prints the motivating-claims check.
pub fn print_report(r: &Motivating) {
    print_table(
        "Motivating claims (paper §I citations) — model check at 40 km/h",
        &["quantity", "cited", "measured"],
        &[
            vec!["fuel ×, 0°→5° (Frey [2])".into(), "≥1.4".into(), format!("{:.2}", r.frey_ratio)],
            vec![
                "uphill route × (Boriboonsomsin [3])".into(),
                "1.5–2".into(),
                format!("{:.2}", r.uphill_factor),
            ],
            vec![
                "downhill route × (Boriboonsomsin [3])".into(),
                "~0.5".into(),
                format!("{:.2}", r.downhill_factor),
            ],
        ],
    );
    save_json("motivating_factors", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intro_citations_hold_in_the_model() {
        let r = run();
        // Frey: ≥ +40 % from 0° to 5°.
        assert!(r.frey_ratio >= 1.4, "Frey ratio {}", r.frey_ratio);
        // Boriboonsomsin: uphill costs extra, downhill saves materially.
        assert!(r.uphill_factor > 1.5, "uphill factor {}", r.uphill_factor);
        assert!(r.downhill_factor < 0.7, "downhill factor {}", r.downhill_factor);
        assert!(r.flat_gph > 0.0 && r.climb5_gph > r.flat_gph);
    }
}

//! Figure 5 — distinguishing lane changes from S-curves.
//!
//! Both produce opposite-sign steering-rate bumps (when the road geometry
//! is unknown), but the horizontal displacement W of Eq (1) separates
//! them: a lane change moves ~one lane width (≤ 3·W_lane = 10.95 m), an
//! S-curve moves far more.

use crate::report::{print_table, save_json};
use crate::scenarios::Drive;
use gradest_core::lane_change::{LaneChangeConfig, LaneChangeDetector};
use gradest_core::steering::smooth_profile;
use gradest_geo::generate::{s_curve_road, two_lane_straight};
use gradest_geo::Route;
use gradest_sensors::alignment::steering_rate_profile;
use serde::{Deserialize, Serialize};

/// One scenario's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Bumps found in the (map-free) steering profile.
    pub bumps: usize,
    /// Horizontal displacement across the paired bumps, metres
    /// (`None` when no opposite-sign pair exists).
    pub displacement_m: Option<f64>,
    /// Lane changes the detector reported.
    pub detections: usize,
}

/// Figure 5 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// Right lane change on a straight two-lane road.
    pub lane_change: ScenarioOutcome,
    /// S-curve traversal (no maneuvers).
    pub s_curve: ScenarioOutcome,
    /// The `3·W_lane` decision threshold, metres.
    pub threshold_m: f64,
}

/// Runs both scenarios with the road geometry withheld from the steering
/// profile (the confusion case the paper's Figure 5 addresses).
pub fn run(seed: u64) -> Fig5 {
    // Wider pairing gap so the Eq-1 test, not the gap test, does the
    // discriminating — mirroring the paper's framing.
    let cfg = LaneChangeConfig { max_pair_gap_s: 60.0, ..Default::default() };
    let detector = LaneChangeDetector::new(cfg);

    let outcome = |name: &str, drive: &Drive| -> ScenarioOutcome {
        let raw = steering_rate_profile(&drive.log.imu, &drive.log.gps, None);
        let profile = smooth_profile(&raw, 0.8);
        let bumps = detector.find_bumps(&profile);
        let displacement = bumps.windows(2).find(|w| w[0].sign != w[1].sign).map(|w| {
            let (vt, vv): (Vec<f64>, Vec<f64>) =
                drive.log.speedometer.iter().map(|s| (s.t, s.speed_mps)).unzip();
            let v_at = move |t: f64| gradest_math::interp::interp1(&vt, &vv, t).unwrap_or(10.0);
            detector.displacement(&profile, &v_at, w[0].t_start, w[1].t_end)
        });
        let (vt, vv): (Vec<f64>, Vec<f64>) =
            drive.log.speedometer.iter().map(|s| (s.t, s.speed_mps)).unzip();
        let v_at = move |t: f64| gradest_math::interp::interp1(&vt, &vv, t).unwrap_or(10.0);
        let detections = detector.detect(&profile, &v_at).len();
        ScenarioOutcome {
            name: name.into(),
            bumps: bumps.len(),
            displacement_m: displacement,
            detections,
        }
    };

    // A drive guaranteed to contain a lane change.
    let mut lane_drive = None;
    for attempt in 0..20u64 {
        let d = Drive::simulate(
            Route::new(vec![two_lane_straight(6000.0)]).expect("valid route"),
            seed + attempt,
            1.0,
            Vec::new(),
        );
        if !d.traj.events().is_empty() {
            lane_drive = Some(d);
            break;
        }
    }
    let lane_drive = lane_drive.expect("a lane change occurred within 20 attempts");
    // An S-curve sized so its steering-rate peaks resemble a lane
    // change's.
    let s_drive = Drive::simulate(
        Route::new(vec![s_curve_road(120.0, 40.0)]).expect("valid route"),
        seed,
        0.0,
        Vec::new(),
    );

    Fig5 {
        lane_change: outcome("right lane change", &lane_drive),
        s_curve: outcome("S-curve road", &s_drive),
        threshold_m: 3.0 * 3.65,
    }
}

/// Prints the Figure 5 comparison.
pub fn print_report(r: &Fig5) {
    let fmt = |o: &ScenarioOutcome| {
        vec![
            o.name.clone(),
            o.bumps.to_string(),
            o.displacement_m.map(|w| format!("{:.1}", w.abs())).unwrap_or_else(|| "-".into()),
            format!("{:.1}", r.threshold_m),
            o.detections.to_string(),
        ]
    };
    print_table(
        "Fig 5 — lane change vs S-curve (displacement test W ≤ 3·W_lane)",
        &["scenario", "bumps", "|W| (m)", "threshold (m)", "lane changes detected"],
        &[fmt(&r.lane_change), fmt(&r.s_curve)],
    );
    save_json("fig5_lane_vs_scurve", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displacement_separates_the_two() {
        let r = run(50);
        // Both scenarios produce bump pairs…
        assert!(r.lane_change.bumps >= 2, "lane-change bumps {}", r.lane_change.bumps);
        assert!(r.s_curve.bumps >= 2, "s-curve bumps {}", r.s_curve.bumps);
        // …but only the lane change passes the displacement test.
        let w_lane = r.lane_change.displacement_m.expect("pair found").abs();
        let w_s = r.s_curve.displacement_m.expect("pair found").abs();
        assert!(w_lane <= r.threshold_m, "lane change W {w_lane}");
        assert!(w_s > r.threshold_m, "s-curve W {w_s}");
        assert!(r.lane_change.detections >= 1);
        assert_eq!(r.s_curve.detections, 0);
    }
}

//! Kernel-level microbenches: the three inner loops the per-trip hot
//! path spends its time in, each isolated from the pipeline around it.
//!
//! Not a paper artifact — an engineering tier below `BENCH_pipeline`:
//! when the trip-level numbers move, these localize the change to a
//! kernel. Emits `BENCH_kernels.json` with:
//!
//! * `ekf_scalar_x4` / `ekf_lanes_x4` — one predict/update step of four
//!   sensor tracks, as four sequential [`GradientEkf`] filters (the
//!   pre-fusion track-stage shape) vs one SoA [`EkfLanes`] sweep;
//! * `lowess_uniform_window` — a full uniform-grid LOWESS smoothing
//!   pass over a red-road-sized steering series (the blocked
//!   first-pass convolution dominates);
//! * `steering_profile` — the `w_steer = ŵ_vehicle − w_road` segment
//!   sweep over the same trip's columnar IMU.

use crate::perfbench::{run_bench, BenchReport};
use crate::report::{print_table, save_json};
use crate::scenarios::red_road_drive;
use gradest_core::{EkfConfig, EkfLanes, GradientEkf, MAX_LANES};
use gradest_math::lowess::{lowess_into, LowessConfig, LowessScratch};
use gradest_sensors::alignment::{steering_rate_profile_into, WRoadScratch};
use gradest_sensors::columnar::ImuColumns;
use serde::{Deserialize, Serialize};
use std::hint::black_box;

/// Kernel microbench result (`BENCH_kernels.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelBench {
    /// EKF steps per timed sample (one step = predict + periodic
    /// updates for all four tracks).
    pub ekf_steps: u64,
    /// Four sequential scalar filters per step — the track stage's
    /// shape before the SoA fusion.
    pub ekf_scalar_x4: BenchReport,
    /// One four-lane SoA sweep per step.
    pub ekf_lanes_x4: BenchReport,
    /// Scalar-x4 median over lanes-x4 median.
    pub ekf_lanes_speedup: f64,
    /// Samples in the LOWESS input series.
    pub lowess_samples: usize,
    /// One full uniform-grid smoothing pass per op.
    pub lowess_uniform_window: BenchReport,
    /// IMU samples in the steering-profile input.
    pub steering_samples: usize,
    /// One full steering-rate profile per op (map-matched `w_road`
    /// staging plus the per-sample segment sweep).
    pub steering_profile: BenchReport,
}

/// Runs the kernel microbenches. `samples` is the timed repetitions per
/// bench (each containing many kernel operations).
pub fn run(seed: u64, samples: usize) -> KernelBench {
    let drive = red_road_drive(seed);
    let cols = ImuColumns::from_samples(&drive.log.imu);
    let dt = drive.log.imu_dt();

    // EKF step kernel. A synthetic but trip-shaped excitation (the
    // exact values don't matter for timing; they must only keep the
    // state finite), with one velocity update per lane every fifth
    // step — the 10 Hz speedometer/CAN cadence against a 50 Hz IMU.
    let ekf_steps: u64 = 4096;
    let accel = |k: u64| ((k as f64) * 0.013).sin() * 0.8;
    let ekf_scalar_x4 = run_bench("ekf_scalar_x4_step", samples, ekf_steps, || {
        let mut filters = [
            GradientEkf::new(EkfConfig::default(), 12.0),
            GradientEkf::new(EkfConfig::default(), 13.0),
            GradientEkf::new(EkfConfig::default(), 14.0),
            GradientEkf::new(EkfConfig::default(), 15.0),
        ];
        for k in 0..ekf_steps {
            let a = accel(k);
            for (l, ekf) in filters.iter_mut().enumerate() {
                ekf.predict(a, dt);
                if k % 5 == l as u64 % 5 {
                    ekf.update(12.0 + l as f64, 0.25);
                }
            }
        }
        for ekf in &filters {
            black_box(ekf.theta());
        }
    });
    let ekf_lanes_x4 = run_bench("ekf_lanes_x4_step", samples, ekf_steps, || {
        let mut lanes = EkfLanes::new(EkfConfig::default(), [12.0, 13.0, 14.0, 15.0]);
        for k in 0..ekf_steps {
            lanes.predict(accel(k), dt);
            for l in 0..MAX_LANES {
                if k % 5 == l as u64 % 5 {
                    lanes.update(l, 12.0 + l as f64, 0.25);
                }
            }
        }
        for l in 0..MAX_LANES {
            black_box(lanes.theta(l));
        }
    });

    // LOWESS kernel: the trip's raw yaw-rate series on its uniform
    // 50 Hz grid, with the pipeline-sized ~1.5 s window.
    let lowess_samples = cols.len();
    let window = 75.0f64;
    let cfg = LowessConfig::with_fraction((window / lowess_samples as f64).clamp(1e-3, 1.0));
    let mut lowess_scratch = LowessScratch::new();
    let mut fitted = Vec::new();
    lowess_into(&cols.t, &cols.gyro_z, cfg, &mut lowess_scratch, &mut fitted)
        .expect("uniform-grid lowess over trip gyro");
    let lowess_uniform_window = run_bench("lowess_uniform_window", samples, 1, || {
        lowess_into(&cols.t, &cols.gyro_z, cfg, &mut lowess_scratch, &mut fitted)
            .expect("uniform-grid lowess over trip gyro");
        black_box(fitted.last().copied());
    });

    // Steering-profile kernel: warm scratch, full map-matched profile.
    let mut wroad_scratch = WRoadScratch::default();
    let mut w = Vec::new();
    let steering_profile = run_bench("steering_profile", samples, 1, || {
        steering_rate_profile_into(
            &cols.t,
            &cols.gyro_z,
            &drive.log.gps,
            Some(&drive.route),
            &mut wroad_scratch,
            &mut w,
        );
        black_box(w.last().copied());
    });

    let ekf_lanes_speedup =
        ekf_scalar_x4.median_ns_per_op / ekf_lanes_x4.median_ns_per_op.max(f64::MIN_POSITIVE);
    KernelBench {
        ekf_steps,
        ekf_scalar_x4,
        ekf_lanes_x4,
        ekf_lanes_speedup,
        lowess_samples,
        lowess_uniform_window,
        steering_samples: cols.len(),
        steering_profile,
    }
}

/// Prints the kernel table and writes `BENCH_kernels.json`.
pub fn print_report(r: &KernelBench) {
    let rows: Vec<Vec<String>> =
        [&r.ekf_scalar_x4, &r.ekf_lanes_x4, &r.lowess_uniform_window, &r.steering_profile]
            .iter()
            .map(|b| {
                vec![
                    b.name.clone(),
                    format!("{:.1}", b.median_ns_per_op),
                    format!("{:.0}", b.ops_per_sec),
                ]
            })
            .collect();
    print_table(
        &format!(
            "Kernel microbenches — EKF SoA speedup {:.2}x over 4 scalar filters \
             ({} steps/sample, {} LOWESS samples)",
            r.ekf_lanes_speedup, r.ekf_steps, r.lowess_samples
        ),
        &["kernel", "ns/op", "op/s"],
        &rows,
    );
    save_json("BENCH_kernels", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_bench_runs_and_reports() {
        let r = run(402, 1);
        assert_eq!(r.ekf_scalar_x4.ops_per_sample, r.ekf_steps);
        assert_eq!(r.ekf_lanes_x4.ops_per_sample, r.ekf_steps);
        assert!(r.ekf_lanes_speedup > 0.0);
        assert!(r.lowess_samples > 1000);
        assert_eq!(r.steering_samples, r.lowess_samples);
        for b in [&r.ekf_scalar_x4, &r.ekf_lanes_x4, &r.lowess_uniform_window, &r.steering_profile]
        {
            assert!(b.median_ns_per_op > 0.0, "{} measured nothing", b.name);
        }
    }

    #[test]
    fn kernel_json_round_trips() {
        let r = run(403, 1);
        let json = serde_json::to_string_pretty(&r).expect("serialize");
        let back: KernelBench = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, r, "BENCH_kernels.json does not round-trip");
    }
}

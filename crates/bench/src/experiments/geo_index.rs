//! Spatial-index benchmark tier: packed R-tree build and query costs
//! on a country-scale deterministic network, plus free-space network
//! matching through the fleet engine.
//!
//! Not a paper artifact — an engineering benchmark for the
//! `gradest-geo` index layer. Emits `BENCH_geo.json` so regressions in
//! `nearest_s_on_network` / `edges_in_bbox` / `NetworkMatcher` are
//! diffable across commits, and carries the measured warm-query
//! allocation count so the zero-allocation contract is a gated number,
//! not a comment.

use crate::perfbench::{alloc_counter, run_bench, BenchReport};
use crate::report::{print_table, save_json};
use crate::scenarios::{network_routes, Drive};
use gradest_core::fleet::FleetEngine;
use gradest_core::pipeline::{EstimatorConfig, GradientEstimator};
use gradest_geo::generate::country_network;
use gradest_geo::index::{
    network_segments, project_point_segment, Aabb, NetworkIndex, QueryScratch,
};
use gradest_math::Vec2;
use gradest_obs::{saturating_ns, Recorder, RunRecorder, RunReport, Span};
use gradest_sensors::suite::SensorLog;
use gradest_sensors::NetworkMatcher;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Query points probed per benchmark sample.
const QUERY_POINTS: usize = 256;

/// Spatial-index benchmark result (`BENCH_geo.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoIndexBench {
    /// Network generator seed.
    pub seed: u64,
    /// Requested network size, kilometres of road.
    pub target_km: f64,
    /// Generated network size, kilometres of road.
    pub network_km: f64,
    /// Polyline segments in the index.
    pub segments: usize,
    /// Network edges in the index.
    pub edges: usize,
    /// Full `NetworkIndex` build (segment + edge trees, Hilbert sort).
    pub index_build: BenchReport,
    /// `nearest_s_on_network` over warm scratch, 256 probe points.
    pub nearest_query_hot: BenchReport,
    /// Brute-force linear-scan nearest over the same probe points.
    pub oracle_nearest: BenchReport,
    /// `edges_in_bbox` drain over 256 ~1 km query windows.
    pub bbox_query: BenchReport,
    /// Free-space `NetworkMatcher::match_trip` per simulated trip.
    pub network_match_trip: BenchReport,
    /// Median speedup of the indexed nearest query over the oracle.
    pub nearest_speedup_vs_oracle: f64,
    /// Whether every indexed nearest distance matched the oracle.
    pub nearest_matches_oracle: bool,
    /// Heap allocations per warm nearest query (`None` when the
    /// counting allocator is not installed in this binary).
    pub allocs_per_query_warm: Option<u64>,
    /// Observability report: the `geo-index-build` span plus the
    /// recorded network-matching fleet batch (`network-match-trip`
    /// under each worker trip).
    pub obs: RunReport,
}

/// Deterministic probe points spread over the index bounds.
fn probe_points(bounds: Aabb, seed: u64) -> Vec<Vec2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..QUERY_POINTS)
        .map(|_| {
            Vec2::new(
                rng.gen_range(bounds.min_x..bounds.max_x),
                rng.gen_range(bounds.min_y..bounds.max_y),
            )
        })
        .collect()
}

/// Runs the spatial-index tier on a `country_network(seed, target_km)`.
pub fn run(seed: u64, target_km: f64, samples: usize) -> GeoIndexBench {
    let net = country_network(seed, target_km);
    let rec = RunRecorder::new();

    let build_start = Instant::now();
    let index = NetworkIndex::build(&net);
    rec.record_span(Span::GeoIndexBuild, saturating_ns(build_start));

    let index_build = run_bench("geo_index_build", samples, 1, || {
        let idx = NetworkIndex::build(&net);
        assert_eq!(idx.segment_count(), index.segment_count());
    });

    let points = probe_points(index.bounds(), seed + 1);
    let mut scratch = QueryScratch::new();

    let nearest_query_hot = run_bench("nearest_query_hot", samples, QUERY_POINTS as u64, || {
        let mut acc = 0.0;
        for &p in &points {
            if let Some(hit) = index.nearest_s_on_network(p, &mut scratch) {
                acc += hit.dist_m;
            }
        }
        assert!(acc.is_finite());
    });

    // Warm-query allocation audit: the scratch is hot after the bench
    // above, so any allocation here is a contract violation the
    // committed baseline will carry as a non-zero number.
    let allocs_per_query_warm = if alloc_counter::is_installed() {
        let before = alloc_counter::allocations();
        for &p in &points {
            index.nearest_s_on_network(p, &mut scratch);
        }
        Some((alloc_counter::allocations() - before) / QUERY_POINTS as u64)
    } else {
        None
    };

    let segments = network_segments(&net);
    let oracle_nearest = run_bench("oracle_nearest_scan", samples, QUERY_POINTS as u64, || {
        let mut acc = 0.0;
        for &p in &points {
            let d2 = segments
                .iter()
                .map(|s| project_point_segment(p, s.a, s.b).1)
                .fold(f64::INFINITY, f64::min);
            acc += d2;
        }
        assert!(acc.is_finite());
    });

    let nearest_matches_oracle = points.iter().all(|&p| {
        let hit = index.nearest_s_on_network(p, &mut scratch).expect("non-empty network");
        let oracle = segments
            .iter()
            .map(|s| project_point_segment(p, s.a, s.b).1)
            .fold(f64::INFINITY, f64::min)
            .sqrt();
        (hit.dist_m - oracle).abs() < 1e-9
    });

    let bbox_query = run_bench("bbox_query", samples, QUERY_POINTS as u64, || {
        let mut hits = 0usize;
        for &p in &points {
            let query = Aabb::of_corners(
                Vec2::new(p.x - 500.0, p.y - 500.0),
                Vec2::new(p.x + 500.0, p.y + 500.0),
            );
            hits += index.edges_in_bbox(query, &mut scratch).count();
        }
        assert!(hits > 0, "1 km windows over the network found no edges");
    });

    // Free-space matching: simulate a few drives on the network, then
    // time `match_trip` (nearest per fix + Dijkstra route recovery).
    let routes = network_routes(&net, 3, 800.0, seed + 2);
    assert!(!routes.is_empty(), "no routes found on generated network");
    let logs: Vec<SensorLog> = routes
        .iter()
        .enumerate()
        .map(|(i, r)| Drive::simulate(r.clone(), seed + 3 + i as u64, 0.0, Vec::new()).log)
        .collect();

    let network_match_trip = run_bench("network_match_trip", samples, logs.len() as u64, || {
        let mut matcher = NetworkMatcher::new(&net, &index);
        for log in &logs {
            let matched = matcher.match_trip(&log.gps);
            assert!(matched.matched_fixes > 0, "trip matched no fixes");
        }
    });

    // One recorded network-matching fleet batch so the obs report pins
    // the `network-match-trip` span count alongside `geo-index-build`.
    let estimator =
        GradientEstimator::new(EstimatorConfig { parallel_tracks: false, ..Default::default() });
    let engine = FleetEngine::new(estimator, 2);
    let out = engine.process_batch_network_recorded(&logs, &net, &index, &rec);
    assert_eq!(out.len(), logs.len());
    let obs = rec.report();

    let nearest_speedup_vs_oracle =
        oracle_nearest.median_ns_per_op / nearest_query_hot.median_ns_per_op.max(1.0);

    GeoIndexBench {
        seed,
        target_km,
        network_km: net.total_length_km(),
        segments: index.segment_count(),
        edges: index.edge_count(),
        index_build,
        nearest_query_hot,
        oracle_nearest,
        bbox_query,
        network_match_trip,
        nearest_speedup_vs_oracle,
        nearest_matches_oracle,
        allocs_per_query_warm,
        obs,
    }
}

/// Prints the timing table and writes `BENCH_geo.json`.
pub fn print_report(r: &GeoIndexBench) {
    let rows: Vec<Vec<String>> = [
        &r.index_build,
        &r.nearest_query_hot,
        &r.oracle_nearest,
        &r.bbox_query,
        &r.network_match_trip,
    ]
    .iter()
    .map(|b| {
        vec![b.name.clone(), format!("{:.1}", b.median_ns_per_op), format!("{:.0}", b.ops_per_sec)]
    })
    .collect();
    print_table(
        &format!(
            "Geo index — {:.0} km / {} segments / {} edges: nearest {:.1}x vs oracle, \
             exact={}, warm allocs/query={}",
            r.network_km,
            r.segments,
            r.edges,
            r.nearest_speedup_vs_oracle,
            r.nearest_matches_oracle,
            r.allocs_per_query_warm.map_or_else(|| "uncounted".into(), |a| a.to_string()),
        ),
        &["bench", "ns/op", "op/s"],
        &rows,
    );
    println!("\n== Recorded index build + network-matching batch ==\n{}", r.obs.render());
    save_json("BENCH_geo", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_geo_index_bench_runs() {
        // Tiny network: the point is plumbing, not timing fidelity.
        let r = run(400, 40.0, 2);
        assert!(r.segments > 1_000, "40 km network should exceed 1k segments");
        assert!(r.nearest_matches_oracle, "index disagreed with brute force");
        assert!(r.nearest_speedup_vs_oracle > 1.0, "index slower than linear scan");
        assert!(r.index_build.median_ns_per_op > 0.0);
        assert!(r.obs.span("geo-index-build").is_some(), "missing geo-index-build span");
        assert_eq!(r.obs.span("network-match-trip").map(|s| s.count), Some(3));
    }
}

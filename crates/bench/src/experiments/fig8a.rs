//! Figure 8(a) — absolute estimation error along the red road for the
//! proposed system (OPS), the altitude-EKF baseline, and the ANN
//! baseline. The paper reports MREs of 11.9 % / 20.3 % / 31.6 %.

use crate::report::{pct, print_table, save_json};
use crate::scenarios::{red_road_drive, train_ann};
use gradest_baselines::altitude_ekf::AltitudeEkf;
use gradest_core::eval::track_mre;
use gradest_core::track::GradientTrack;
use gradest_geo::refgrade::{reference_profile, GradientProfile};
use serde::{Deserialize, Serialize};

/// Burn-in distance excluded from error statistics, metres.
pub const SKIP_M: f64 = 100.0;

/// Figure 8(a) result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8a {
    /// `(s, |err| OPS, |err| EKF, |err| ANN)` every ~50 m, degrees.
    pub error_series: Vec<(f64, f64, f64, f64)>,
    /// MRE of the proposed system.
    pub mre_ops: f64,
    /// MRE of the altitude-EKF baseline.
    pub mre_ekf: f64,
    /// MRE of the ANN baseline.
    pub mre_ann: f64,
}

/// Scores one track against the reference profile at ~50 m checkpoints.
fn sample_errors(track: &GradientTrack, truth: &GradientProfile, length: f64) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut s = SKIP_M;
    while s < length {
        if let Some(th) = track.theta_at(s) {
            out.push((s, (th - truth.theta_at(s)).abs().to_degrees()));
        }
        s += 50.0;
    }
    out
}

/// Runs the three estimators over one red-road drive.
pub fn run(seed: u64) -> Fig8a {
    let drive = red_road_drive(seed);
    let road = drive.route.roads()[0].clone();
    let truth = reference_profile(&road, 1.0, |_| 0.0);
    let length = drive.route.length();

    // OPS.
    let ops = drive.ops();
    // Altitude EKF baseline.
    let ekf_track = AltitudeEkf::default().estimate(&drive.log);
    // ANN baseline, trained on a separate survey drive of the same road.
    let ann = train_ann(&drive.route, seed ^ 0x5EED);
    let ann_track = ann.estimate(&drive.log);

    let ops_err = sample_errors(&ops.fused, &truth, length);
    let ekf_err = sample_errors(&ekf_track, &truth, length);
    let ann_err = sample_errors(&ann_track, &truth, length);
    let n = ops_err.len().min(ekf_err.len()).min(ann_err.len());
    let error_series =
        (0..n).map(|i| (ops_err[i].0, ops_err[i].1, ekf_err[i].1, ann_err[i].1)).collect();

    Fig8a {
        error_series,
        mre_ops: track_mre(&ops.fused, &truth, SKIP_M).expect("nonempty overlap"),
        mre_ekf: track_mre(&ekf_track, &truth, SKIP_M).expect("nonempty overlap"),
        mre_ann: track_mre(&ann_track, &truth, SKIP_M).expect("nonempty overlap"),
    }
}

/// Averages the MREs over several seeds (the paper averages over runs).
pub fn run_averaged(seeds: &[u64]) -> Fig8a {
    assert!(!seeds.is_empty(), "need at least one seed");
    let runs: Vec<Fig8a> = seeds.iter().map(|&s| run(s)).collect();
    let mean = |f: &dyn Fn(&Fig8a) -> f64| runs.iter().map(f).sum::<f64>() / runs.len() as f64;
    Fig8a {
        error_series: runs[0].error_series.clone(),
        mre_ops: mean(&|r| r.mre_ops),
        mre_ekf: mean(&|r| r.mre_ekf),
        mre_ann: mean(&|r| r.mre_ann),
    }
}

/// Prints the error series and MRE summary.
pub fn print_report(r: &Fig8a) {
    let rows: Vec<Vec<String>> = r
        .error_series
        .iter()
        .map(|(s, a, b, c)| {
            vec![format!("{s:.0}"), format!("{a:.2}"), format!("{b:.2}"), format!("{c:.2}")]
        })
        .collect();
    print_table(
        "Fig 8(a) — absolute estimation error along the red road (degrees)",
        &["s (m)", "OPS", "EKF", "ANN"],
        &rows,
    );
    print_table(
        "Fig 8(a) — Mean Relative Errors (paper: OPS 11.9%, EKF 20.3%, ANN 31.6%)",
        &["OPS", "EKF", "ANN"],
        &[vec![pct(r.mre_ops), pct(r.mre_ekf), pct(r.mre_ann)]],
    );
    save_json("fig8a_error_comparison", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        // Averaged over seeds, like the paper: single drives can flip
        // the EKF/ANN ordering on sensor-noise luck.
        let r = run_averaged(&[11, 20, 22]);
        assert!(!r.error_series.is_empty());
        // The paper's ordering: OPS < EKF < ANN.
        assert!(r.mre_ops < r.mre_ekf, "OPS {} !< EKF {}", r.mre_ops, r.mre_ekf);
        assert!(r.mre_ekf < r.mre_ann, "EKF {} !< ANN {}", r.mre_ekf, r.mre_ann);
        // OPS lands in a plausible band around the paper's 11.9 %.
        assert!(r.mre_ops < 0.45, "OPS MRE {}", r.mre_ops);
    }
}

//! Extended comparison beyond the paper: all six estimators in this
//! repository on the same red-road drive — OPS batch (RTS-smoothed), OPS
//! streaming (causal), altitude EKF (also RTS-smoothed by default), naive
//! barometer-slope, direct Eq 3, and the ANN.
//!
//! Reproduction finding worth stating plainly: with a clean offline
//! scoring protocol, the *acausal* Eq-3 direct inversion (the same
//! physics, symmetric smoothing, no filter) is statistically tied with
//! the full pipeline — the gradient information in the
//! accelerometer/wheel-speed pair is strong enough that any unbiased
//! smoother approaches the same noise floor. What the pipeline adds is
//! everything around that number: causal operation (streaming variant),
//! multi-source fusion with calibrated variances (enabling Eq-6 cloud
//! aggregation), GPS-outage tolerance, and lane-change/S-curve handling.

use crate::report::{pct, print_table, save_json};
use crate::scenarios::{red_road_drive, train_ann, Drive};
use gradest_baselines::altitude_ekf::AltitudeEkf;
use gradest_baselines::baro_slope::BaroSlope;
use gradest_baselines::eq3_direct::Eq3Direct;
use gradest_core::eval::track_mre;
use gradest_core::online::{OnlineEstimator, OnlineSource};
use gradest_core::pipeline::EstimatorConfig;
use gradest_core::track::GradientTrack;
use gradest_geo::refgrade::reference_profile;
use serde::{Deserialize, Serialize};

/// One estimator's score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodScore {
    /// Estimator name.
    pub name: String,
    /// Mean Relative Error.
    pub mre: f64,
    /// Mean absolute error, degrees.
    pub mae_deg: f64,
}

/// Extended comparison result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Extended {
    /// All methods, best first.
    pub methods: Vec<MethodScore>,
}

fn stream_online(drive: &Drive) -> GradientTrack {
    let mut online = OnlineEstimator::new(EstimatorConfig::default(), Some(drive.route.clone()));
    let (mut gi, mut si, mut ci) = (0usize, 0usize, 0usize);
    let log = &drive.log;
    for imu in &log.imu {
        while gi < log.gps.len() && log.gps[gi].t <= imu.t {
            online.push_gps(log.gps[gi]);
            gi += 1;
        }
        while si < log.speedometer.len() && log.speedometer[si].t <= imu.t {
            online.push_speed(OnlineSource::Speedometer, log.speedometer[si]);
            si += 1;
        }
        while ci < log.can.len() && log.can[ci].t <= imu.t {
            online.push_speed(OnlineSource::CanBus, log.can[ci]);
            ci += 1;
        }
        online.push_imu(*imu);
    }
    online.into_track()
}

/// Runs the six-way comparison on one red-road drive.
pub fn run(seed: u64) -> Extended {
    let drive = red_road_drive(seed);
    let road = drive.route.roads()[0].clone();
    let truth = reference_profile(&road, 1.0, |_| 0.0);
    let ann = train_ann(&drive.route, seed ^ 0x5EED);

    let tracks: Vec<(String, GradientTrack)> = vec![
        ("OPS (batch)".into(), drive.ops().fused),
        ("OPS (streaming)".into(), stream_online(&drive)),
        ("altitude EKF [7]".into(), AltitudeEkf::default().estimate(&drive.log)),
        ("baro slope (naive)".into(), BaroSlope::default().estimate(&drive.log)),
        ("Eq 3 direct [7]".into(), Eq3Direct::default().estimate(&drive.log)),
        ("ANN [8]".into(), ann.estimate(&drive.log)),
    ];

    let mut methods: Vec<MethodScore> = tracks
        .into_iter()
        .map(|(name, track)| {
            let mre = track_mre(&track, &truth, 100.0).unwrap_or(f64::NAN);
            let errs: Vec<f64> = track
                .s
                .iter()
                .zip(&track.theta)
                .filter(|(s, _)| **s > 100.0 && **s < 2100.0)
                .map(|(s, th)| (th - truth.theta_at(*s)).abs().to_degrees())
                .collect();
            let mae = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
            MethodScore { name, mre, mae_deg: mae }
        })
        .collect();
    methods.sort_by(|a, b| a.mre.total_cmp(&b.mre));
    Extended { methods }
}

/// Prints the comparison table.
pub fn print_report(r: &Extended) {
    let rows: Vec<Vec<String>> = r
        .methods
        .iter()
        .map(|m| vec![m.name.clone(), pct(m.mre), format!("{:.3}", m.mae_deg)])
        .collect();
    print_table(
        "Extended comparison — six estimators on the red road",
        &["method", "MRE", "MAE (°)"],
        &rows,
    );
    save_json("extended_baselines", r);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradest_baselines::altitude_ekf::AltitudeEkfConfig;

    #[test]
    fn orderings_hold() {
        let r = run(11);
        assert_eq!(r.methods.len(), 6);
        let mre = |name: &str| {
            r.methods
                .iter()
                .find(|m| m.name.starts_with(name))
                .map(|m| m.mre)
                .expect("method present")
        };
        // The paper's comparisons: OPS beats both of its baselines in
        // batch form. (The table's altitude EKF runs its RTS pass, so it
        // is acausal, like batch OPS.)
        assert!(mre("OPS (batch)") < mre("altitude EKF"));
        assert!(mre("OPS (batch)") < mre("ANN"));
        // Causal-vs-causal: streaming OPS against the altitude EKF as
        // published (no backward smoothing pass).
        let drive = red_road_drive(11);
        let road = drive.route.roads()[0].clone();
        let truth = reference_profile(&road, 1.0, |_| 0.0);
        let causal_alt =
            AltitudeEkf::new(AltitudeEkfConfig { rts_smoothing: false, ..Default::default() })
                .estimate(&drive.log);
        let causal_alt_mre = track_mre(&causal_alt, &truth, 100.0).expect("overlap");
        assert!(mre("OPS (streaming)") < causal_alt_mre);
        assert!(mre("OPS (streaming)") < mre("ANN"));
        // With the RTS pass, batch OPS sits in the top two: the only
        // possible rival is the acausal Eq-3 direct inversion, which uses
        // the same information with symmetric smoothing (see the module
        // docs — that statistical tie is itself a finding).
        let rank = r.methods.iter().position(|m| m.name == "OPS (batch)").unwrap();
        assert!(
            rank <= 1,
            "OPS (batch) rank {rank}: {:?}",
            r.methods.iter().map(|m| (&m.name, m.mre)).collect::<Vec<_>>()
        );
        // The ANN trails the field, as in the paper.
        let ann_rank = r.methods.iter().position(|m| m.name.starts_with("ANN")).unwrap();
        assert!(ann_rank >= 4, "ANN rank {ann_rank}");
        assert!(r.methods.iter().all(|m| m.mre.is_finite()));
    }
}

//! Figures 3 and 4 — steering-rate profiles during left/right lane
//! changes, raw (Figure 3) and after local-regression smoothing
//! (Figure 4).

use crate::report::{print_table, save_json};
use crate::scenarios::Drive;
use gradest_core::steering::smooth_profile;
use gradest_geo::generate::two_lane_straight;
use gradest_geo::Route;
use gradest_sensors::alignment::steering_rate_profile;
use gradest_sim::LaneChangeDirection;
use serde::{Deserialize, Serialize};

/// A sampled profile around one maneuver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManeuverProfile {
    /// Direction of the maneuver.
    pub direction: String,
    /// `(t_rel, raw w_steer, smoothed w_steer)` series at 5 Hz.
    pub series: Vec<(f64, f64, f64)>,
    /// Peak |raw| value, rad/s.
    pub peak_raw: f64,
    /// Peak |smoothed| value, rad/s.
    pub peak_smoothed: f64,
}

/// Figure 3/4 result: one profile per direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig34 {
    /// Left lane change profile.
    pub left: ManeuverProfile,
    /// Right lane change profile.
    pub right: ManeuverProfile,
}

/// Simulates until one left and one right lane change are captured, then
/// extracts their profiles.
///
/// # Panics
///
/// Panics if the simulation fails to produce both maneuver directions
/// (cannot happen with the fixed seed range used).
pub fn run(seed: u64) -> Fig34 {
    let mut left = None;
    let mut right = None;
    for attempt in 0..20u64 {
        let drive = Drive::simulate(
            Route::new(vec![two_lane_straight(10_000.0)]).expect("valid route"),
            seed + attempt,
            1.0,
            Vec::new(),
        );
        let raw = steering_rate_profile(&drive.log.imu, &drive.log.gps, Some(&drive.route));
        let smoothed = smooth_profile(&raw, 0.8);
        for event in drive.traj.events() {
            let (t0, t1) = (event.start_t - 1.0, event.end_t + 1.0);
            let mut series = Vec::new();
            let mut peak_raw: f64 = 0.0;
            let mut peak_smooth: f64 = 0.0;
            for (i, ((t, w_raw), w_s)) in raw.iter().zip(&smoothed.w).enumerate() {
                if *t < t0 || *t > t1 {
                    continue;
                }
                peak_raw = peak_raw.max(w_raw.abs());
                peak_smooth = peak_smooth.max(w_s.abs());
                if i % 10 == 0 {
                    series.push((*t - event.start_t, *w_raw, *w_s));
                }
            }
            let profile = ManeuverProfile {
                direction: format!("{:?}", event.direction),
                series,
                peak_raw,
                peak_smoothed: peak_smooth,
            };
            match event.direction {
                LaneChangeDirection::Left if left.is_none() => left = Some(profile),
                LaneChangeDirection::Right if right.is_none() => right = Some(profile),
                _ => {}
            }
        }
        if left.is_some() && right.is_some() {
            break;
        }
    }
    Fig34 {
        left: left.expect("a left lane change occurred"),
        right: right.expect("a right lane change occurred"),
    }
}

/// Prints both profiles as t/raw/smoothed series.
pub fn print_report(r: &Fig34) {
    for p in [&r.left, &r.right] {
        let rows: Vec<Vec<String>> = p
            .series
            .iter()
            .map(|(t, raw, s)| vec![format!("{t:.2}"), format!("{raw:.4}"), format!("{s:.4}")])
            .collect();
        print_table(
            &format!(
                "Fig 3/4 — {} lane change steering rate (peak raw {:.3}, smoothed {:.3} rad/s)",
                p.direction, p.peak_raw, p.peak_smoothed
            ),
            &["t (s)", "raw (rad/s)", "smoothed"],
            &rows,
        );
    }
    save_json("fig3_4_steering_profiles", r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_show_opposite_first_bumps() {
        let r = run(40);
        assert!(!r.left.series.is_empty());
        assert!(!r.right.series.is_empty());
        // First significant smoothed excursion: positive for left,
        // negative for right (the paper's Figure 3 sign convention).
        let first_sig = |p: &ManeuverProfile| {
            p.series
                .iter()
                .find(|(_, _, s)| s.abs() > 0.5 * p.peak_smoothed)
                .map(|(_, _, s)| *s)
                .expect("profile has a bump")
        };
        assert!(first_sig(&r.left) > 0.0);
        assert!(first_sig(&r.right) < 0.0);
        // Smoothing attenuates noise: smoothed peak below raw peak.
        assert!(r.left.peak_smoothed <= r.left.peak_raw);
    }
}

//! Shared scenario builders used by the experiments.

use gradest_baselines::ann::{AnnConfig, AnnGradientEstimator, TrainingSet};
use gradest_core::pipeline::{EstimatorConfig, GradientEstimate, GradientEstimator};
use gradest_geo::generate::red_road;
use gradest_geo::{RoadNetwork, Route};
use gradest_sensors::suite::{SensorConfig, SensorLog, SensorSuite};
use gradest_sim::driver::DriverProfile;
use gradest_sim::trip::{simulate_trip, Trajectory, TripConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fully simulated drive: ground truth, sensor log, and the route it
/// ran on.
#[derive(Debug, Clone)]
pub struct Drive {
    /// The route driven.
    pub route: Route,
    /// Ground-truth trajectory.
    pub traj: Trajectory,
    /// Recorded sensor streams.
    pub log: SensorLog,
}

impl Drive {
    /// Simulates a drive over `route` with the given lane-change rate and
    /// GPS outage windows, deterministic in `seed`.
    pub fn simulate(
        route: Route,
        seed: u64,
        lane_change_rate: f64,
        outages: Vec<(f64, f64)>,
    ) -> Drive {
        let trip_cfg = TripConfig {
            driver: DriverProfile {
                lane_change_rate_per_km: lane_change_rate,
                ..Default::default()
            },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &trip_cfg, seed);
        let sensor_cfg = SensorConfig { gps_outages: outages, ..Default::default() };
        let log = SensorSuite::new(sensor_cfg).run(&traj, seed.wrapping_mul(31).wrapping_add(7));
        Drive { route, traj, log }
    }

    /// Runs the proposed system (OPS) over this drive with a given
    /// configuration.
    pub fn ops_with(&self, config: EstimatorConfig) -> GradientEstimate {
        GradientEstimator::new(config).estimate(&self.log, Some(&self.route))
    }

    /// Runs OPS with the default configuration.
    pub fn ops(&self) -> GradientEstimate {
        self.ops_with(EstimatorConfig::default())
    }

    /// Ground-truth gradient lookup by trip time (for ANN training).
    pub fn truth_theta_at(&self, t: f64) -> f64 {
        let samples = self.traj.samples();
        let idx = samples
            .binary_search_by(|s| s.t.total_cmp(&t))
            .unwrap_or_else(|i| i.min(samples.len() - 1));
        samples[idx].theta
    }
}

/// The standard red-road drive (Figure 7(b) evaluation scenario).
pub fn red_road_drive(seed: u64) -> Drive {
    Drive::simulate(
        Route::new(vec![red_road()]).expect("red road is a valid route"),
        seed,
        0.224,
        Vec::new(),
    )
}

/// Trains the ANN baseline the way the paper does: 4 320 labelled samples
/// gathered on a survey drive over `route` (a *different* drive than the
/// evaluation one).
pub fn train_ann(route: &Route, seed: u64) -> AnnGradientEstimator {
    let survey = Drive::simulate(route.clone(), seed, 0.0, Vec::new());
    let set = TrainingSet::from_log(&survey.log, |t| survey.truth_theta_at(t), 4320);
    AnnGradientEstimator::train(&set, &AnnConfig::default())
}

/// Picks `n` source/destination routes across a network, each at least
/// `min_len_m` long, deterministic in `seed`.
pub fn network_routes(network: &RoadNetwork, n: usize, min_len_m: f64, seed: u64) -> Vec<Route> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut routes = Vec::new();
    let mut attempts = 0;
    while routes.len() < n && attempts < n * 50 {
        attempts += 1;
        let a = rng.gen_range(0..network.node_count());
        let b = rng.gen_range(0..network.node_count());
        if a == b {
            continue;
        }
        if let Some(route) = network.route_between(a, b, |r| r.length()) {
            if route.length() >= min_len_m {
                routes.push(route);
            }
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradest_geo::generate::city_network;

    #[test]
    fn red_road_drive_is_complete() {
        let d = red_road_drive(1);
        assert!((d.traj.distance_m() - 2160.0).abs() < 20.0);
        assert!(!d.log.imu.is_empty());
        let est = d.ops();
        assert!(!est.fused.is_empty());
    }

    #[test]
    fn truth_lookup_matches_samples() {
        let d = red_road_drive(2);
        let s = &d.traj.samples()[500];
        assert_eq!(d.truth_theta_at(s.t), s.theta);
    }

    #[test]
    fn network_routes_meet_length_floor() {
        let net = city_network(3);
        let routes = network_routes(&net, 5, 3000.0, 3);
        assert_eq!(routes.len(), 5);
        assert!(routes.iter().all(|r| r.length() >= 3000.0));
    }

    #[test]
    fn network_routes_deterministic() {
        let net = city_network(3);
        let a = network_routes(&net, 3, 2000.0, 9);
        let b = network_routes(&net, 3, 2000.0, 9);
        assert_eq!(
            a.iter().map(|r| r.length()).collect::<Vec<_>>(),
            b.iter().map(|r| r.length()).collect::<Vec<_>>()
        );
    }
}

//! Perf-regression gate: diffs a fresh benchmark run against the
//! committed baseline JSONs with a relative tolerance.
//!
//! The `bench-gate` binary re-runs the `pipeline_hotpath` and
//! `fleet_scaling` experiments, extracts a fixed set of
//! lower-is-better latency metrics from each result (top-level
//! medians plus the per-stage span means out of the embedded obs
//! [`RunReport`](gradest_obs::RunReport)), and compares them against
//! `BENCH_pipeline.json` / `BENCH_fleet.json` at the repository root.
//! A metric fails when it is more than `tolerance` slower than its
//! baseline (plus a small absolute slack that keeps microsecond-scale
//! spans from gating on scheduler jitter); being faster never fails. Missing metrics — a baseline
//! predating a schema change, or a metric that vanished from the
//! current run — also fail, with `--update` as the documented fix.
//!
//! Extraction works on the shim's [`Value`] tree rather than the
//! typed result structs, so an old baseline with extra or missing
//! fields still diffs cleanly metric by metric.

use serde_json::Value;

/// Default relative tolerance: a metric may be up to 20 % slower than
/// its committed baseline before the gate fails. Override per run with
/// `--tolerance` or the `BENCH_GATE_TOLERANCE` environment variable.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Absolute slack added on top of the relative tolerance: a metric
/// only fails when it is slower than
/// `baseline * (1 + tolerance) + slack`. Sub-millisecond spans (the
/// fusion stage sits around 50 µs) jitter by double-digit percentages
/// run to run, so a purely relative gate on them is noise; a quarter
/// millisecond of slack silences that while leaving the millisecond-
/// scale metrics gated by the relative term.
pub const DEFAULT_ABS_SLACK_NS: f64 = 250_000.0;

/// Where a metric's value lives inside an experiment's JSON document.
#[derive(Debug, Clone, Copy)]
pub enum MetricSource {
    /// A chain of object-member lookups from the document root.
    Path(&'static [&'static str]),
    /// `mean_ns` of the named span inside the document's `obs.spans`
    /// array (the per-stage timings the recorder captured).
    ObsSpanMean(&'static str),
}

/// One gated metric: a stable display name plus its JSON location.
/// All metrics are latencies in nanoseconds — lower is better.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Stable name shown in the delta table.
    pub name: &'static str,
    /// Where to read the value.
    pub source: MetricSource,
}

/// Gated metrics of the `pipeline_hotpath` experiment
/// (`BENCH_pipeline.json`): the warm-trip median plus the recorder's
/// per-stage span means.
pub const PIPELINE_METRICS: &[MetricSpec] = &[
    MetricSpec {
        name: "pipeline/warm_fast_trip",
        source: MetricSource::Path(&["optimized_warm_fast", "median_ns_per_op"]),
    },
    MetricSpec { name: "pipeline/span/trip", source: MetricSource::ObsSpanMean("trip") },
    MetricSpec { name: "pipeline/span/steering", source: MetricSource::ObsSpanMean("steering") },
    MetricSpec { name: "pipeline/span/detection", source: MetricSource::ObsSpanMean("detection") },
    MetricSpec { name: "pipeline/span/tracks", source: MetricSource::ObsSpanMean("tracks") },
    MetricSpec { name: "pipeline/span/fusion", source: MetricSource::ObsSpanMean("fusion") },
];

/// Gated metrics of the `fleet_scaling` experiment
/// (`BENCH_fleet.json`): the four benchmark medians plus the recorded
/// batch span mean.
pub const FLEET_METRICS: &[MetricSpec] = &[
    MetricSpec {
        name: "fleet/single_trip",
        source: MetricSource::Path(&["single_trip", "median_ns_per_op"]),
    },
    MetricSpec {
        name: "fleet/batch_1_worker",
        source: MetricSource::Path(&["batch_1_worker", "median_ns_per_op"]),
    },
    MetricSpec {
        name: "fleet/batch_n_workers",
        source: MetricSource::Path(&["batch_n_workers", "median_ns_per_op"]),
    },
    MetricSpec {
        name: "fleet/cloud_upload_contention",
        source: MetricSource::Path(&["cloud_upload_contention", "median_ns_per_op"]),
    },
    MetricSpec { name: "fleet/span/batch", source: MetricSource::ObsSpanMean("fleet-batch") },
];

/// Gated metrics of the `kernel_microbench` experiment
/// (`BENCH_kernels.json`): the isolated inner-loop medians. The scalar
/// EKF reference bench is reported but not gated — it exists as the
/// comparison point, not as a hot path.
pub const KERNEL_METRICS: &[MetricSpec] = &[
    MetricSpec {
        name: "kernels/ekf_lanes_x4_step",
        source: MetricSource::Path(&["ekf_lanes_x4", "median_ns_per_op"]),
    },
    MetricSpec {
        name: "kernels/lowess_uniform_window",
        source: MetricSource::Path(&["lowess_uniform_window", "median_ns_per_op"]),
    },
    MetricSpec {
        name: "kernels/steering_profile",
        source: MetricSource::Path(&["steering_profile", "median_ns_per_op"]),
    },
];

/// Gated metrics of the `geo_index` experiment (`BENCH_geo.json`):
/// index build and the three query-path medians. The oracle scan is
/// reported but not gated — it exists as the comparison point for the
/// speedup figure, not as a hot path.
pub const GEO_METRICS: &[MetricSpec] = &[
    MetricSpec {
        name: "geo/index_build",
        source: MetricSource::Path(&["index_build", "median_ns_per_op"]),
    },
    MetricSpec {
        name: "geo/nearest_query_hot",
        source: MetricSource::Path(&["nearest_query_hot", "median_ns_per_op"]),
    },
    MetricSpec {
        name: "geo/bbox_query",
        source: MetricSource::Path(&["bbox_query", "median_ns_per_op"]),
    },
    MetricSpec {
        name: "geo/network_match_trip",
        source: MetricSource::Path(&["network_match_trip", "median_ns_per_op"]),
    },
];

/// Gated metrics of the `service_soak` experiment
/// (`BENCH_service.json`): sustained ingestion cost per trip, the
/// client-observed frame latency percentiles, the warm tile-query
/// round trip, and the server-side `service-frame` span mean from the
/// embedded obs report, plus the floored drift-alert detection latency
/// (`alert_latency_gate_ns` — the raw latency clamped to a few
/// telemetry windows so window-boundary jitter can't flake the gate).
/// Throughput is gated as its inverse (`sustained_ns_per_trip`) so
/// "lower is better" holds for every row.
pub const SERVICE_METRICS: &[MetricSpec] = &[
    MetricSpec {
        name: "service/sustained_ns_per_trip",
        source: MetricSource::Path(&["sustained_ns_per_trip"]),
    },
    MetricSpec { name: "service/frame_p50", source: MetricSource::Path(&["frame_p50_ns"]) },
    MetricSpec { name: "service/frame_p99", source: MetricSource::Path(&["frame_p99_ns"]) },
    MetricSpec {
        name: "service/tile_query",
        source: MetricSource::Path(&["tile_query", "median_ns_per_op"]),
    },
    MetricSpec { name: "service/span/frame", source: MetricSource::ObsSpanMean("service-frame") },
    MetricSpec {
        name: "service/alert_latency",
        source: MetricSource::Path(&["alert_latency_gate_ns"]),
    },
];

/// Reads the metrics named by `specs` out of an experiment document.
/// A metric the document does not contain extracts as `None` (and
/// later fails the comparison) rather than aborting the whole gate.
pub fn extract(doc: &Value, specs: &[MetricSpec]) -> Vec<(&'static str, Option<f64>)> {
    specs
        .iter()
        .map(|spec| {
            let value = match spec.source {
                MetricSource::Path(path) => {
                    let mut v = doc;
                    for key in path {
                        v = &v[*key];
                    }
                    v.as_f64()
                }
                MetricSource::ObsSpanMean(span) => doc["obs"]["spans"]
                    .as_array()
                    .and_then(|spans| spans.iter().find(|s| s["name"] == span))
                    .and_then(|s| s["mean_ns"].as_f64()),
            };
            (spec.name, value)
        })
        .collect()
}

/// Outcome of one metric's baseline-vs-current comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or faster than baseline).
    Pass,
    /// Slower than `baseline * (1 + tolerance)`.
    Slower,
    /// Absent from the baseline or the current run.
    Missing,
}

impl Verdict {
    /// Short cell text for the delta table.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "ok",
            Verdict::Slower => "FAIL",
            Verdict::Missing => "MISSING",
        }
    }
}

/// One row of the delta table.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Metric name (from the [`MetricSpec`]).
    pub metric: &'static str,
    /// Baseline value in nanoseconds, when present.
    pub baseline_ns: Option<f64>,
    /// Current value in nanoseconds, when present.
    pub current_ns: Option<f64>,
    /// Relative change, `current / baseline - 1`, when both exist.
    pub delta: Option<f64>,
    /// Pass / fail / missing.
    pub verdict: Verdict,
}

/// Full gate outcome: every compared metric plus the tolerance used.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Relative tolerance the comparison ran with.
    pub tolerance: f64,
    /// One row per gated metric, in spec order.
    pub rows: Vec<GateRow>,
}

impl GateReport {
    /// Number of rows that are not [`Verdict::Pass`].
    pub fn failures(&self) -> usize {
        self.rows.iter().filter(|r| r.verdict != Verdict::Pass).count()
    }

    /// True when every metric passed.
    pub fn passed(&self) -> bool {
        self.failures() == 0
    }

    /// Renders the rows for [`crate::report::print_table`]:
    /// metric, baseline ms, current ms, Δ%, verdict.
    pub fn table_rows(&self) -> Vec<Vec<String>> {
        let ms = |v: Option<f64>| match v {
            Some(ns) => format!("{:.3}", ns / 1e6),
            None => "-".to_string(),
        };
        self.rows
            .iter()
            .map(|r| {
                vec![
                    r.metric.to_string(),
                    ms(r.baseline_ns),
                    ms(r.current_ns),
                    match r.delta {
                        Some(d) => format!("{:+.1}%", d * 100.0),
                        None => "-".to_string(),
                    },
                    r.verdict.label().to_string(),
                ]
            })
            .collect()
    }
}

/// Compares extracted current metrics against the baseline set.
///
/// Metrics are matched by name; order does not matter. A metric is
/// [`Verdict::Slower`] when
/// `current > baseline * (1 + tolerance) + abs_slack_ns` (baselines
/// clamped to ≥ 1 ns so a degenerate zero baseline cannot divide the
/// delta away), [`Verdict::Missing`] when either side lacks it, and
/// [`Verdict::Pass`] otherwise — improvements never fail.
pub fn compare(
    baseline: &[(&'static str, Option<f64>)],
    current: &[(&'static str, Option<f64>)],
    tolerance: f64,
    abs_slack_ns: f64,
) -> GateReport {
    let rows = current
        .iter()
        .map(|&(metric, current_ns)| {
            let baseline_ns =
                baseline.iter().find(|(name, _)| *name == metric).and_then(|(_, v)| *v);
            let (delta, verdict) = match (baseline_ns, current_ns) {
                (Some(b), Some(c)) => {
                    let delta = c / b.max(1.0) - 1.0;
                    let verdict = if c > b.max(1.0) * (1.0 + tolerance) + abs_slack_ns {
                        Verdict::Slower
                    } else {
                        Verdict::Pass
                    };
                    (Some(delta), verdict)
                }
                _ => (None, Verdict::Missing),
            };
            GateRow { metric, baseline_ns, current_ns, delta, verdict }
        })
        .collect();
    GateReport { tolerance, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(values: &[(&'static str, f64)]) -> Vec<(&'static str, Option<f64>)> {
        values.iter().map(|&(n, v)| (n, Some(v))).collect()
    }

    #[test]
    fn identical_run_passes() {
        let base = metrics(&[("a", 100.0), ("b", 2e6)]);
        let report = compare(&base, &base, DEFAULT_TOLERANCE, 0.0);
        assert!(report.passed());
        assert_eq!(report.failures(), 0);
    }

    #[test]
    fn within_tolerance_and_faster_pass() {
        let base = metrics(&[("a", 100.0), ("b", 100.0)]);
        let cur = metrics(&[("a", 119.0), ("b", 40.0)]);
        let report = compare(&base, &cur, 0.20, 0.0);
        assert!(report.passed(), "{:?}", report.rows);
    }

    #[test]
    fn injected_regression_fails() {
        let base = metrics(&[("a", 100.0), ("b", 100.0)]);
        let cur = metrics(&[("a", 100.0), ("b", 150.0)]);
        let report = compare(&base, &cur, 0.20, 0.0);
        assert!(!report.passed());
        assert_eq!(report.failures(), 1);
        let bad = &report.rows[1];
        assert_eq!(bad.verdict, Verdict::Slower);
        assert!((bad.delta.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absolute_slack_absorbs_micro_span_jitter() {
        // A 50 µs span jumping 40% stays inside the quarter-millisecond
        // slack; a 2 ms stage regressing 40% does not.
        let base = metrics(&[("micro", 50_000.0), ("macro", 2_000_000.0)]);
        let cur = metrics(&[("micro", 70_000.0), ("macro", 2_800_000.0)]);
        let report = compare(&base, &cur, 0.20, DEFAULT_ABS_SLACK_NS);
        assert_eq!(report.rows[0].verdict, Verdict::Pass);
        assert_eq!(report.rows[1].verdict, Verdict::Slower);
    }

    #[test]
    fn missing_metric_fails_on_either_side() {
        let base = metrics(&[("a", 100.0)]);
        let cur = metrics(&[("a", 100.0), ("new", 5.0)]);
        let report = compare(&base, &cur, 0.20, 0.0);
        assert_eq!(report.failures(), 1);
        assert_eq!(report.rows[1].verdict, Verdict::Missing);

        let gone: Vec<(&'static str, Option<f64>)> = vec![("a", None)];
        let report = compare(&base, &gone, 0.20, 0.0);
        assert_eq!(report.rows[0].verdict, Verdict::Missing);
    }

    #[test]
    fn extraction_reads_paths_and_obs_spans() {
        let doc: Value = serde_json::from_str(
            r#"{
                "optimized_warm_fast": {"median_ns_per_op": 123.0},
                "obs": {"spans": [
                    {"name": "trip", "mean_ns": 456},
                    {"name": "steering", "mean_ns": 7}
                ]}
            }"#,
        )
        .expect("test doc parses");
        let got = extract(&doc, PIPELINE_METRICS);
        let by_name = |n: &str| got.iter().find(|(m, _)| *m == n).and_then(|(_, v)| *v);
        assert_eq!(by_name("pipeline/warm_fast_trip"), Some(123.0));
        assert_eq!(by_name("pipeline/span/trip"), Some(456.0));
        assert_eq!(by_name("pipeline/span/steering"), Some(7.0));
        // Spans the doc lacks extract as None, not a panic.
        assert_eq!(by_name("pipeline/span/fusion"), None);
    }

    #[test]
    fn table_rows_render_every_metric() {
        let base = metrics(&[("a", 1e6)]);
        let cur = metrics(&[("a", 2e6)]);
        let report = compare(&base, &cur, 0.20, 0.0);
        let rows = report.table_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], "a");
        assert_eq!(rows[0][3], "+100.0%");
        assert_eq!(rows[0][4], "FAIL");
    }
}

//! Property-based tests for the fuel and emission models.

use gradest_emissions::velocity_opt::{optimize, VelocityOptConfig};
use gradest_emissions::{FuelModel, Species};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fuel_rate_is_monotone_in_gradient(
        v in 2.0..30.0f64,
        a in -1.0..1.0f64,
        th1 in -0.1..0.1f64,
        th2 in -0.1..0.1f64,
    ) {
        let m = FuelModel::default();
        let (lo, hi) = if th1 < th2 { (th1, th2) } else { (th2, th1) };
        prop_assert!(m.fuel_rate_gph(v, a, lo) <= m.fuel_rate_gph(v, a, hi) + 1e-12);
    }

    #[test]
    fn fuel_rate_never_below_idle_floor(
        v in 0.0..35.0f64,
        a in -3.0..3.0f64,
        th in -0.15..0.15f64,
    ) {
        let m = FuelModel::default();
        prop_assert!(m.fuel_rate_gph(v, a, th) >= m.idle_floor_gph);
    }

    #[test]
    fn emissions_scale_linearly(fuel in 0.0..100.0f64, k in 0.0..10.0f64) {
        for species in [Species::Co2, Species::Pm25] {
            let single = species.emission_g(fuel);
            let scaled = species.emission_g(fuel * k);
            prop_assert!((scaled - single * k).abs() < 1e-6);
            prop_assert!(single >= 0.0);
        }
    }

    #[test]
    fn trip_fuel_is_additive(
        n1 in 1usize..50,
        n2 in 1usize..50,
        v in 3.0..25.0f64,
        th in -0.08..0.08f64,
    ) {
        let m = FuelModel::default();
        let mk = |n: usize| -> Vec<(f64, f64, f64, f64)> {
            (0..n).map(|_| (1.0, v, 0.0, th)).collect()
        };
        let a = m.trip_fuel_gal(&mk(n1));
        let b = m.trip_fuel_gal(&mk(n2));
        let both = m.trip_fuel_gal(&mk(n1 + n2));
        prop_assert!((a + b - both).abs() < 1e-9);
    }

    #[test]
    fn optimizer_cost_never_exceeds_constant_speed_plan(
        amp in 0.0..0.05f64,
        wavelength in 200.0..800.0f64,
    ) {
        // The DP optimum must be at least as good (in fuel + time value)
        // as the best constant-speed plan on the same terrain.
        let model = FuelModel::default();
        let cfg = VelocityOptConfig { v_step: 1.0, ..Default::default() };
        let theta = move |s: f64| amp * (s / wavelength).sin();
        let length = 2000.0;
        let plan = optimize(&model, length, theta, &cfg).unwrap();
        let plan_cost = plan.fuel_gal + cfg.time_value_gal_per_hour * plan.time_s / 3600.0;
        // Constant-speed candidates on the DP's own grid.
        let mut best_const = f64::INFINITY;
        let mut v = cfg.v_min;
        while v <= cfg.v_max {
            let mut fuel = 0.0;
            let mut time = 0.0;
            let mut s = cfg.ds / 2.0;
            while s < (length / cfg.ds).floor() * cfg.ds {
                let dt = cfg.ds / v;
                fuel += model.fuel_rate_gph(v, 0.0, theta(s)) * dt / 3600.0;
                time += dt;
                s += cfg.ds;
            }
            best_const = best_const.min(fuel + cfg.time_value_gal_per_hour * time / 3600.0);
            v += cfg.v_step;
        }
        prop_assert!(
            plan_cost <= best_const + 1e-9,
            "DP cost {plan_cost} vs best constant {best_const}"
        );
    }

    #[test]
    fn fuel_per_km_times_speed_is_rate(
        v in 1.0..30.0f64,
        th in -0.1..0.1f64,
    ) {
        let m = FuelModel::default();
        let per_km = m.fuel_per_km(v, 0.0, th);
        let rate = m.fuel_rate_gph(v, 0.0, th);
        prop_assert!((per_km * v * 3.6 - rate).abs() < 1e-9);
    }
}

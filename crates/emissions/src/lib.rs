//! # gradest-emissions
//!
//! Fuel consumption and air-pollution emission modelling (paper Section
//! III-E and the Section IV-C application):
//!
//! * [`vsp`] — the Vehicle Specific Power fuel model, Eq (7), with the
//!   Table II parameters.
//! * [`factors`] — pollutant emission factors (CO₂ 8 908 g/gal, PM2.5
//!   0.084 g/gal) and the `m_emission = F·V_fuel` relation.
//! * [`traffic`] — synthetic Annual Average Daily Traffic volumes per road
//!   (the paper uses VDOT counts).
//! * [`map`] — road-level fuel and emission maps over a network
//!   (Figures 10(a) and 10(b)) and per-route fuel integration for
//!   eco-routing.
//!
//! # Example
//!
//! ```
//! use gradest_emissions::vsp::FuelModel;
//!
//! let model = FuelModel::default(); // Table II parameters
//! let flat = model.fuel_rate_gph(40.0 / 3.6, 0.0, 0.0);
//! let climb = model.fuel_rate_gph(40.0 / 3.6, 0.0, 3.0f64.to_radians());
//! assert!(climb > flat); // gradient costs fuel
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod factors;
pub mod map;
pub mod traffic;
pub mod trip_report;
pub mod velocity_opt;
pub mod vsp;

pub use factors::Species;
pub use map::{EmissionMap, FuelMap, RoadEmission, RoadFuel};
pub use traffic::TrafficModel;
pub use trip_report::{report as trip_report, TripReport, TripSample};
pub use velocity_opt::{optimize as optimize_velocity, VelocityOptConfig, VelocityProfile};
pub use vsp::FuelModel;

//! Gradient-aware velocity-profile optimization.
//!
//! The paper's introduction motivates gradient estimation with "vehicle
//! velocity optimization and driving route planning" (its Eq-3 source,
//! Ozatay et al., is a cloud-based DP velocity optimizer). This module
//! implements that application on top of the estimated gradient profile:
//! a dynamic program over discretized (position, speed) states minimizing
//! `fuel + λ·time` subject to speed limits and comfortable acceleration.

use crate::vsp::FuelModel;
use serde::{Deserialize, Serialize};

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VelocityOptConfig {
    /// Position step, metres.
    pub ds: f64,
    /// Speed grid floor, m/s.
    pub v_min: f64,
    /// Speed grid ceiling, m/s (also the hard speed limit).
    pub v_max: f64,
    /// Speed grid resolution, m/s.
    pub v_step: f64,
    /// Time value λ, gallons per hour of travel time — trades fuel
    /// against trip time (0 = hypermiling, large = rush).
    pub time_value_gal_per_hour: f64,
    /// Maximum acceleration magnitude between steps, m/s².
    pub max_accel: f64,
}

impl Default for VelocityOptConfig {
    fn default() -> Self {
        VelocityOptConfig {
            ds: 50.0,
            v_min: 5.0,
            v_max: 16.7, // 60 km/h
            v_step: 0.5,
            time_value_gal_per_hour: 0.5,
            max_accel: 1.2,
        }
    }
}

/// An optimized velocity profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VelocityProfile {
    /// Positions, metres (ends at the route length).
    pub s: Vec<f64>,
    /// Optimal speed entering each position, m/s.
    pub v: Vec<f64>,
    /// Total fuel, gallons.
    pub fuel_gal: f64,
    /// Total travel time, seconds.
    pub time_s: f64,
}

/// Errors from the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VelocityOptError {
    /// The configuration grid is degenerate.
    BadConfig(&'static str),
    /// The route is shorter than one position step.
    RouteTooShort,
}

impl std::fmt::Display for VelocityOptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VelocityOptError::BadConfig(msg) => write!(f, "bad optimizer config: {msg}"),
            VelocityOptError::RouteTooShort => write!(f, "route shorter than one step"),
        }
    }
}

impl std::error::Error for VelocityOptError {}

/// Optimizes the speed profile over a route of `length_m` with gradient
/// lookup `theta_at(s)`, minimizing `fuel + λ·time` by dynamic
/// programming (backward pass over position, states = speed grid).
///
/// # Errors
///
/// Returns [`VelocityOptError`] for degenerate configs or routes.
pub fn optimize(
    model: &FuelModel,
    length_m: f64,
    mut theta_at: impl FnMut(f64) -> f64,
    cfg: &VelocityOptConfig,
) -> Result<VelocityProfile, VelocityOptError> {
    let positive = |v: f64| !v.is_nan() && v > 0.0;
    if !positive(cfg.ds) || !positive(cfg.v_step) || !positive(cfg.max_accel) {
        return Err(VelocityOptError::BadConfig("steps must be positive"));
    }
    if cfg.v_max.is_nan() || cfg.v_max <= cfg.v_min || cfg.v_min <= 0.0 {
        return Err(VelocityOptError::BadConfig("need 0 < v_min < v_max"));
    }
    let n_pos = (length_m / cfg.ds).floor() as usize;
    if n_pos == 0 {
        return Err(VelocityOptError::RouteTooShort);
    }
    let n_v = ((cfg.v_max - cfg.v_min) / cfg.v_step).floor() as usize + 1;
    let speed = |j: usize| cfg.v_min + j as f64 * cfg.v_step;

    // cost[j] = minimal cost-to-go from position i with entry speed v_j.
    let mut cost = vec![0.0f64; n_v];
    let mut choice = vec![vec![0usize; n_v]; n_pos];
    for i in (0..n_pos).rev() {
        let s_mid = (i as f64 + 0.5) * cfg.ds;
        let theta = theta_at(s_mid);
        let mut next_cost = vec![f64::INFINITY; n_v];
        for j in 0..n_v {
            let v0 = speed(j);
            for (k, cost_k) in cost.iter().enumerate() {
                let v1 = speed(k);
                // Kinematic feasibility: a = (v1² − v0²)/(2·ds).
                let a = (v1 * v1 - v0 * v0) / (2.0 * cfg.ds);
                if a.abs() > cfg.max_accel {
                    continue;
                }
                let v_avg = 0.5 * (v0 + v1);
                let dt = cfg.ds / v_avg;
                let fuel = model.fuel_rate_gph(v_avg, a, theta) * dt / 3600.0;
                let time_cost = cfg.time_value_gal_per_hour * dt / 3600.0;
                let total = fuel + time_cost + cost_k;
                if total < next_cost[j] {
                    next_cost[j] = total;
                    choice[i][j] = k;
                }
            }
        }
        cost = next_cost;
    }

    // Best entry speed, then forward replay.
    let (mut j, _) =
        cost.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).expect("nonempty grid");
    if cost[j].is_infinite() {
        return Err(VelocityOptError::BadConfig("no feasible profile (accel too tight)"));
    }
    let mut s_out = Vec::with_capacity(n_pos + 1);
    let mut v_out = Vec::with_capacity(n_pos + 1);
    let mut fuel_total = 0.0;
    let mut time_total = 0.0;
    for (i, row) in choice.iter().enumerate() {
        let v0 = speed(j);
        s_out.push(i as f64 * cfg.ds);
        v_out.push(v0);
        let k = row[j];
        let v1 = speed(k);
        let a = (v1 * v1 - v0 * v0) / (2.0 * cfg.ds);
        let v_avg = 0.5 * (v0 + v1);
        let dt = cfg.ds / v_avg;
        let theta = theta_at((i as f64 + 0.5) * cfg.ds);
        fuel_total += model.fuel_rate_gph(v_avg, a, theta) * dt / 3600.0;
        time_total += dt;
        j = k;
    }
    s_out.push(n_pos as f64 * cfg.ds);
    v_out.push(speed(j));

    Ok(VelocityProfile { s: s_out, v: v_out, fuel_gal: fuel_total, time_s: time_total })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(_: f64) -> f64 {
        0.0
    }

    #[test]
    fn flat_road_settles_on_one_speed() {
        let model = FuelModel::default();
        let p = optimize(&model, 3000.0, flat, &VelocityOptConfig::default()).unwrap();
        assert_eq!(p.s.len(), p.v.len());
        // Interior speeds are constant on a featureless road.
        let mid = &p.v[10..p.v.len() - 10];
        let first = mid[0];
        assert!(mid.iter().all(|v| (v - first).abs() < 1e-9), "{mid:?}");
        assert!(p.fuel_gal > 0.0);
        assert!(p.time_s > 0.0);
    }

    #[test]
    fn higher_time_value_drives_faster() {
        let model = FuelModel::default();
        let slow_cfg = VelocityOptConfig { time_value_gal_per_hour: 0.1, ..Default::default() };
        let fast_cfg = VelocityOptConfig { time_value_gal_per_hour: 5.0, ..Default::default() };
        let slow = optimize(&model, 3000.0, flat, &slow_cfg).unwrap();
        let fast = optimize(&model, 3000.0, flat, &fast_cfg).unwrap();
        assert!(fast.time_s < slow.time_s);
        assert!(fast.fuel_gal > slow.fuel_gal);
    }

    #[test]
    fn downhill_speed_is_free() {
        // Under Eq (7) the gradient fuel term `B·m·v·sinθ` is proportional
        // to speed, so per-km climb fuel is speed-independent — the DP's
        // real lever is the idle floor on downhills: descending fuel is a
        // constant gal/h, so covering the descent faster is strictly
        // cheaper. 1 km flat, 1 km of −5°, 1 km flat, hypermiler driver.
        let theta = |s: f64| if (1000.0..2000.0).contains(&s) { -5.0f64.to_radians() } else { 0.0 };
        let model = FuelModel::default();
        let cfg = VelocityOptConfig { time_value_gal_per_hour: 0.02, ..Default::default() };
        let p = optimize(&model, 3000.0, theta, &cfg).unwrap();
        let avg = |lo: f64, hi: f64| {
            let vals: Vec<f64> =
                p.s.iter()
                    .zip(&p.v)
                    .filter(|(s, _)| **s >= lo && **s < hi)
                    .map(|(_, v)| *v)
                    .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let v_flat = avg(200.0, 900.0);
        let v_down = avg(1200.0, 1900.0);
        assert!(v_down > v_flat + 1.0, "downhill speed {v_down} should exceed flat speed {v_flat}");
    }

    #[test]
    fn gradient_aware_plan_beats_flat_plan_on_hills() {
        // Evaluate both plans under the TRUE hilly cost: the plan computed
        // with gradient knowledge must not burn more.
        let theta = |s: f64| 0.05 * (s / 300.0).sin();
        let model = FuelModel::default();
        let cfg = VelocityOptConfig::default();
        let aware = optimize(&model, 4000.0, theta, &cfg).unwrap();
        let blind = optimize(&model, 4000.0, flat, &cfg).unwrap();
        // Re-cost the blind plan on the true terrain.
        let mut blind_fuel = 0.0;
        for (i, w) in blind.v.windows(2).enumerate() {
            let v_avg = 0.5 * (w[0] + w[1]);
            let a = (w[1] * w[1] - w[0] * w[0]) / (2.0 * cfg.ds);
            let dt = cfg.ds / v_avg;
            blind_fuel +=
                model.fuel_rate_gph(v_avg, a, theta((i as f64 + 0.5) * cfg.ds)) * dt / 3600.0;
        }
        assert!(
            aware.fuel_gal <= blind_fuel + 1e-9,
            "aware {} vs blind {}",
            aware.fuel_gal,
            blind_fuel
        );
    }

    #[test]
    fn respects_speed_bounds_and_accel() {
        let model = FuelModel::default();
        let cfg = VelocityOptConfig::default();
        let p = optimize(&model, 2000.0, flat, &cfg).unwrap();
        for v in &p.v {
            assert!(*v >= cfg.v_min - 1e-9 && *v <= cfg.v_max + 1e-9);
        }
        for w in p.v.windows(2) {
            let a = (w[1] * w[1] - w[0] * w[0]) / (2.0 * cfg.ds);
            assert!(a.abs() <= cfg.max_accel + 1e-9);
        }
    }

    #[test]
    fn config_validation() {
        let model = FuelModel::default();
        let bad = VelocityOptConfig { v_min: 10.0, v_max: 5.0, ..Default::default() };
        assert!(matches!(
            optimize(&model, 1000.0, flat, &bad),
            Err(VelocityOptError::BadConfig(_))
        ));
        assert!(matches!(
            optimize(&model, 10.0, flat, &VelocityOptConfig::default()),
            Err(VelocityOptError::RouteTooShort)
        ));
    }
}

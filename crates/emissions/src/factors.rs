//! Pollutant emission factors (paper Section III-E).
//!
//! Vehicle emissions are proportional to fuel burned:
//! `m_emission = F · V_fuel`, with `F = 8 908 g/gal` for CO₂ and
//! `0.084 g/gal` for PM2.5.

use serde::{Deserialize, Serialize};

/// A pollutant species with a per-gallon emission factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Species {
    /// Carbon dioxide.
    Co2,
    /// Fine particulate matter (≤2.5 µm).
    Pm25,
}

impl Species {
    /// Emission factor `F` in grams per gallon of gasoline burned.
    pub fn grams_per_gallon(self) -> f64 {
        match self {
            Species::Co2 => 8908.0,
            Species::Pm25 => 0.084,
        }
    }

    /// Emission mass in grams from `fuel_gal` gallons burned.
    pub fn emission_g(self, fuel_gal: f64) -> f64 {
        self.grams_per_gallon() * fuel_gal
    }

    /// Emission mass in metric tons from `fuel_gal` gallons burned.
    pub fn emission_tons(self, fuel_gal: f64) -> f64 {
        self.emission_g(fuel_gal) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_factors() {
        assert_eq!(Species::Co2.grams_per_gallon(), 8908.0);
        assert_eq!(Species::Pm25.grams_per_gallon(), 0.084);
    }

    #[test]
    fn emission_scales_linearly() {
        assert_eq!(Species::Co2.emission_g(2.0), 17_816.0);
        assert!((Species::Co2.emission_tons(1.0) - 8.908e-3).abs() < 1e-12);
        assert!((Species::Pm25.emission_g(10.0) - 0.84).abs() < 1e-12);
    }

    #[test]
    fn zero_fuel_zero_emission() {
        assert_eq!(Species::Co2.emission_g(0.0), 0.0);
        assert_eq!(Species::Pm25.emission_tons(0.0), 0.0);
    }
}

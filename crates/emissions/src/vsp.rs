//! The Vehicle Specific Power fuel-consumption model (paper Eq 7,
//! Table II).
//!
//! ```text
//! Γ = (1/GGE)·(A·v³ + B·m·v·sinθ + C·m·v + m·a·v + D·m·a)   [gallon/hour]
//! ```
//!
//! with `v` in m/s, `a` in m/s², `θ` the road gradient, and `m` the gross
//! vehicle weight in megagrams (Table II lists `m = 1.479`).

use serde::{Deserialize, Serialize};

/// The Eq (7) fuel model with Table II coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuelModel {
    /// Gasoline gallon equivalent divisor (Table II: 0.0545).
    pub gge: f64,
    /// Aerodynamic coefficient `A` (Table II: 4.7887).
    pub a: f64,
    /// Gradient coefficient `B` (Table II: 21.2903).
    pub b: f64,
    /// Rolling coefficient `C` (Table II: 0.3925).
    pub c: f64,
    /// Acceleration coefficient `D` (Table II: 3.6000).
    pub d: f64,
    /// Gross vehicle weight in Mg (Table II: 1.479).
    pub mass_mg: f64,
    /// Idle floor, gallon/hour: the engine never burns less than this
    /// (Eq 7 goes negative on steep downhills, where a real engine cuts
    /// fuel to idle).
    pub idle_floor_gph: f64,
}

impl Default for FuelModel {
    fn default() -> Self {
        FuelModel {
            gge: 0.0545,
            a: 4.7887,
            b: 21.2903,
            c: 0.3925,
            d: 3.6000,
            mass_mg: 1.479,
            idle_floor_gph: 0.16,
        }
    }
}

impl FuelModel {
    /// Raw Eq (7) evaluation in gallon/hour (may be negative downhill).
    ///
    /// Unit reconciliation (documented in DESIGN.md): the bracket is
    /// engine power in kW with `m` in Mg — which requires Table II's `A`
    /// to carry its standard-VSP scale of 10⁻⁴ (the standard aerodynamic
    /// VSP coefficient is `0.000302·m ≈ 4.5e-4` for this vehicle, matching
    /// `A×10⁻⁴`). `GGE = 0.0545` is then gallons per kWh-equivalent
    /// (1/18.35 kWh per gallon at realistic engine efficiency), so
    /// `Γ = GGE · P_kW`.
    pub fn fuel_rate_raw_gph(&self, v_mps: f64, a_mps2: f64, theta_rad: f64) -> f64 {
        let v = v_mps;
        let m = self.mass_mg;
        let power_kw = self.a * 1e-4 * v.powi(3)
            + self.b * m * v * theta_rad.sin()
            + self.c * m * v
            + m * a_mps2 * v
            + self.d * m * a_mps2;
        self.gge * power_kw
    }

    /// Fuel rate in gallon/hour, floored at the idle rate.
    pub fn fuel_rate_gph(&self, v_mps: f64, a_mps2: f64, theta_rad: f64) -> f64 {
        self.fuel_rate_raw_gph(v_mps, a_mps2, theta_rad).max(self.idle_floor_gph)
    }

    /// Fuel per kilometre (gallon/km) at steady speed on a gradient.
    ///
    /// # Panics
    ///
    /// Panics if `v_mps <= 0`.
    pub fn fuel_per_km(&self, v_mps: f64, a_mps2: f64, theta_rad: f64) -> f64 {
        assert!(v_mps > 0.0, "speed must be positive");
        let v_kmh = v_mps * 3.6;
        self.fuel_rate_gph(v_mps, a_mps2, theta_rad) / v_kmh
    }

    /// Integrates fuel over a trip described by `(dt, v, a, θ)` samples,
    /// returning total gallons.
    pub fn trip_fuel_gal<'a>(
        &self,
        samples: impl IntoIterator<Item = &'a (f64, f64, f64, f64)>,
    ) -> f64 {
        samples.into_iter().map(|&(dt, v, a, th)| self.fuel_rate_gph(v, a, th) * dt / 3600.0).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FuelModel {
        FuelModel::default()
    }

    #[test]
    fn table_ii_parameters() {
        let m = model();
        assert_eq!(m.gge, 0.0545);
        assert_eq!(m.a, 4.7887);
        assert_eq!(m.b, 21.2903);
        assert_eq!(m.c, 0.3925);
        assert_eq!(m.d, 3.6000);
        assert_eq!(m.mass_mg, 1.479);
    }

    #[test]
    fn cruise_consumption_is_plausible() {
        // 40 km/h steady on flat ground: on the order of 0.5–1.5 gal/h
        // (a mid-size sedan at city speed burns roughly 1 gal/h).
        let g = model().fuel_rate_gph(40.0 / 3.6, 0.0, 0.0);
        assert!((0.2..2.0).contains(&g), "Γ = {g} gal/h");
    }

    #[test]
    fn gradient_increases_fuel_substantially() {
        // The paper's motivating studies: +40 % or more from 0° to 5°.
        let m = model();
        let v = 40.0 / 3.6;
        let flat = m.fuel_rate_gph(v, 0.0, 0.0);
        let hill = m.fuel_rate_gph(v, 0.0, 5.0f64.to_radians());
        assert!(hill / flat > 1.4, "ratio {}", hill / flat);
    }

    #[test]
    fn downhill_floors_at_idle() {
        let m = model();
        let v = 40.0 / 3.6;
        let raw = m.fuel_rate_raw_gph(v, 0.0, -5.0f64.to_radians());
        assert!(raw < m.idle_floor_gph);
        assert_eq!(m.fuel_rate_gph(v, 0.0, -5.0f64.to_radians()), m.idle_floor_gph);
    }

    #[test]
    fn acceleration_costs_fuel() {
        let m = model();
        let v = 15.0;
        assert!(m.fuel_rate_gph(v, 1.0, 0.0) > m.fuel_rate_gph(v, 0.0, 0.0));
    }

    #[test]
    fn fuel_per_km_consistency() {
        let m = model();
        let v = 50.0 / 3.6;
        let per_km = m.fuel_per_km(v, 0.0, 0.01);
        let per_h = m.fuel_rate_gph(v, 0.0, 0.01);
        assert!((per_km * 50.0 - per_h).abs() < 1e-12);
    }

    #[test]
    fn trip_fuel_integration() {
        let m = model();
        // One hour at constant state = rate · 1 h.
        let samples: Vec<(f64, f64, f64, f64)> =
            (0..3600).map(|_| (1.0, 12.0, 0.0, 0.02)).collect();
        let total = m.trip_fuel_gal(&samples);
        let rate = m.fuel_rate_gph(12.0, 0.0, 0.02);
        assert!((total - rate).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn fuel_per_km_rejects_zero_speed() {
        let _ = model().fuel_per_km(0.0, 0.0, 0.0);
    }
}

//! Synthetic traffic volumes (Annual Average Daily Traffic).
//!
//! The paper weights per-vehicle fuel burn by VDOT AADT counts to map
//! total emissions (Figure 10(b)). Without access to those counts we
//! synthesize per-road volumes from the road class with a heavy-tailed
//! deterministic jitter seeded by the road id — realistic spread,
//! perfectly reproducible.

use gradest_geo::{Road, RoadClass};
use serde::{Deserialize, Serialize};

/// Deterministic AADT model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// Global scale on all volumes (1.0 = defaults).
    pub scale: f64,
    /// Mixing seed: different seeds produce different per-road jitter.
    pub seed: u64,
}

impl Default for TrafficModel {
    fn default() -> Self {
        TrafficModel { scale: 1.0, seed: 0 }
    }
}

impl TrafficModel {
    /// Class-typical AADT (vehicles/day).
    pub fn class_aadt(class: RoadClass) -> f64 {
        match class {
            RoadClass::Highway => 28_000.0,
            RoadClass::Arterial => 12_000.0,
            RoadClass::Collector => 4_500.0,
            RoadClass::Local => 1_200.0,
        }
    }

    /// AADT for a specific road: class-typical volume × log-uniform jitter
    /// in [0.5, 2.0], deterministic in `(road id, seed)`.
    pub fn aadt(&self, road: &Road) -> f64 {
        let mut h = road.id() ^ self.seed.wrapping_mul(0x9E3779B97F4A7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51AFD7ED558CCD);
        h ^= h >> 33;
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let jitter = 2.0f64.powf(2.0 * u - 1.0); // log-uniform in [0.5, 2)
        Self::class_aadt(road.class()) * jitter * self.scale
    }

    /// Average hourly volume (vehicles/hour): AADT spread over the day
    /// with a standard 10 % peak-hour factor is beyond scope; we use the
    /// uniform AADT/24.
    pub fn hourly_volume(&self, road: &Road) -> f64 {
        self.aadt(road) / 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradest_geo::generate::city_network;

    #[test]
    fn class_ordering() {
        assert!(
            TrafficModel::class_aadt(RoadClass::Highway)
                > TrafficModel::class_aadt(RoadClass::Arterial)
        );
        assert!(
            TrafficModel::class_aadt(RoadClass::Arterial)
                > TrafficModel::class_aadt(RoadClass::Local)
        );
    }

    #[test]
    fn deterministic_and_bounded_jitter() {
        let net = city_network(1);
        let tm = TrafficModel::default();
        for e in net.edges() {
            let a = tm.aadt(&e.road);
            let b = tm.aadt(&e.road);
            assert_eq!(a, b);
            let base = TrafficModel::class_aadt(e.road.class());
            assert!(a >= base * 0.5 - 1e-9 && a <= base * 2.0 + 1e-9, "{a} vs base {base}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let net = city_network(1);
        let a = TrafficModel { scale: 1.0, seed: 1 };
        let b = TrafficModel { scale: 1.0, seed: 2 };
        let road = &net.edges()[0].road;
        assert_ne!(a.aadt(road), b.aadt(road));
    }

    #[test]
    fn scale_multiplies() {
        let net = city_network(1);
        let road = &net.edges()[0].road;
        let one = TrafficModel { scale: 1.0, seed: 0 };
        let two = TrafficModel { scale: 2.0, seed: 0 };
        assert!((two.aadt(road) - 2.0 * one.aadt(road)).abs() < 1e-9);
    }

    #[test]
    fn hourly_is_daily_over_24() {
        let net = city_network(1);
        let road = &net.edges()[0].road;
        let tm = TrafficModel::default();
        assert!((tm.hourly_volume(road) * 24.0 - tm.aadt(road)).abs() < 1e-9);
    }
}

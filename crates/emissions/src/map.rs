//! Road-level fuel and emission maps (Figures 10(a) and 10(b)) and
//! per-route fuel integration.

use crate::factors::Species;
use crate::traffic::TrafficModel;
use crate::vsp::FuelModel;
use gradest_geo::{Road, RoadNetwork, Route};
use serde::{Deserialize, Serialize};

/// Fuel statistics for one road.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadFuel {
    /// Road id.
    pub road_id: u64,
    /// Road length, metres.
    pub length_m: f64,
    /// Mean per-vehicle fuel rate along the road, gallon/hour
    /// (Figure 10(a)'s quantity).
    pub mean_fuel_gph: f64,
    /// Per-vehicle fuel to traverse the road, gallons.
    pub traverse_fuel_gal: f64,
}

/// Emission statistics for one road.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadEmission {
    /// Road id.
    pub road_id: u64,
    /// Hourly traffic volume used, vehicles/hour.
    pub hourly_volume: f64,
    /// Emission intensity, tons per km of road per hour
    /// (Figure 10(b)'s quantity).
    pub tons_per_km_per_hour: f64,
}

/// A per-road fuel map over a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuelMap {
    /// One entry per network edge, in edge order.
    pub roads: Vec<RoadFuel>,
}

impl FuelMap {
    /// Computes per-road fuel at a fixed cruise speed, sampling the
    /// gradient every 10 m through `gradient_at(road, s)` — pass the
    /// estimated profile (or ground truth, or `|_, _| 0.0` for the
    /// no-gradient ablation).
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps <= 0`.
    pub fn compute(
        network: &RoadNetwork,
        model: &FuelModel,
        speed_mps: f64,
        mut gradient_at: impl FnMut(&Road, f64) -> f64,
    ) -> FuelMap {
        assert!(speed_mps > 0.0, "speed must be positive");
        let roads = network
            .edges()
            .iter()
            .map(|e| {
                let road = &e.road;
                let mut s = 5.0;
                let mut total_rate = 0.0;
                let mut n = 0usize;
                while s < road.length() {
                    let theta = gradient_at(road, s);
                    total_rate += model.fuel_rate_gph(speed_mps, 0.0, theta);
                    n += 1;
                    s += 10.0;
                }
                let mean_rate = if n > 0 { total_rate / n as f64 } else { 0.0 };
                let hours = road.length() / speed_mps / 3600.0;
                RoadFuel {
                    road_id: road.id(),
                    length_m: road.length(),
                    mean_fuel_gph: mean_rate,
                    traverse_fuel_gal: mean_rate * hours,
                }
            })
            .collect();
        FuelMap { roads }
    }

    /// Total fuel to traverse every road once, gallons.
    pub fn total_traverse_fuel_gal(&self) -> f64 {
        self.roads.iter().map(|r| r.traverse_fuel_gal).sum()
    }

    /// Mean of the per-road fuel rates, gallon/hour.
    pub fn mean_rate_gph(&self) -> f64 {
        if self.roads.is_empty() {
            return 0.0;
        }
        self.roads.iter().map(|r| r.mean_fuel_gph).sum::<f64>() / self.roads.len() as f64
    }
}

/// A per-road emission map over a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmissionMap {
    /// Pollutant mapped.
    pub species: Species,
    /// One entry per network edge, in edge order.
    pub roads: Vec<RoadEmission>,
}

impl EmissionMap {
    /// Combines a fuel map with traffic volumes into emission intensity
    /// per road: `vehicles/hour × gallons/km × F` (Figure 10(b)).
    ///
    /// # Panics
    ///
    /// Panics if the fuel map's road count differs from the network's.
    pub fn compute(
        network: &RoadNetwork,
        fuel: &FuelMap,
        traffic: &TrafficModel,
        species: Species,
        speed_mps: f64,
    ) -> EmissionMap {
        assert_eq!(network.edge_count(), fuel.roads.len(), "fuel map does not match network");
        let v_kmh = speed_mps * 3.6;
        let roads = network
            .edges()
            .iter()
            .zip(&fuel.roads)
            .map(|(e, f)| {
                let volume = traffic.hourly_volume(&e.road);
                let gal_per_km = f.mean_fuel_gph / v_kmh;
                RoadEmission {
                    road_id: e.road.id(),
                    hourly_volume: volume,
                    tons_per_km_per_hour: species.emission_tons(volume * gal_per_km),
                }
            })
            .collect();
        EmissionMap { species, roads }
    }

    /// Network-total emission rate in tons/hour (intensity × length).
    pub fn total_tons_per_hour(&self, network: &RoadNetwork) -> f64 {
        self.roads
            .iter()
            .zip(network.edges())
            .map(|(r, e)| r.tons_per_km_per_hour * e.road.length() / 1000.0)
            .sum()
    }
}

/// Integrates per-vehicle fuel along a route at a steady cruise speed,
/// sampling the gradient lookup every 10 m. Used by eco-routing cost
/// functions.
///
/// # Panics
///
/// Panics if `speed_mps <= 0`.
pub fn route_fuel_gal(
    route: &Route,
    model: &FuelModel,
    speed_mps: f64,
    mut gradient_at: impl FnMut(f64) -> f64,
) -> f64 {
    assert!(speed_mps > 0.0, "speed must be positive");
    let mut s = 5.0;
    let mut total = 0.0;
    while s < route.length() {
        let theta = gradient_at(s);
        let rate = model.fuel_rate_gph(speed_mps, 0.0, theta);
        let hours = 10.0 / speed_mps / 3600.0;
        total += rate * hours;
        s += 10.0;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradest_geo::generate::{city_network, straight_road};

    const V40: f64 = 40.0 / 3.6;

    #[test]
    fn fuel_map_covers_all_edges() {
        let net = city_network(5);
        let model = FuelModel::default();
        let map = FuelMap::compute(&net, &model, V40, |r, s| r.gradient_at(s));
        assert_eq!(map.roads.len(), net.edge_count());
        assert!(map.roads.iter().all(|r| r.mean_fuel_gph > 0.0));
        assert!(map.total_traverse_fuel_gal() > 0.0);
    }

    #[test]
    fn gradient_aware_map_burns_more_than_flat() {
        // Hilly network with idle-floored downhills: ignoring gradient
        // underestimates total fuel (the paper's +33.4 % headline).
        let net = city_network(5);
        let model = FuelModel::default();
        let with = FuelMap::compute(&net, &model, V40, |r, s| r.gradient_at(s));
        let without = FuelMap::compute(&net, &model, V40, |_, _| 0.0);
        let ratio = with.total_traverse_fuel_gal() / without.total_traverse_fuel_gal();
        assert!(ratio > 1.1, "ratio {ratio}");
    }

    #[test]
    fn uphill_roads_rank_highest() {
        let net = city_network(5);
        let model = FuelModel::default();
        let map = FuelMap::compute(&net, &model, V40, |r, s| r.gradient_at(s));
        // The steepest-climb road should burn more than the flattest road.
        let mean_grad = |e: &gradest_geo::network::NetworkEdge| {
            let mut s = 5.0;
            let (mut acc, mut n) = (0.0, 0);
            while s < e.road.length() {
                acc += e.road.gradient_at(s);
                n += 1;
                s += 10.0;
            }
            acc / n as f64
        };
        let grads: Vec<f64> = net.edges().iter().map(mean_grad).collect();
        let steepest =
            grads.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let flattest = grads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert!(
            map.roads[steepest].mean_fuel_gph > map.roads[flattest].mean_fuel_gph,
            "steepest {} vs flattest {}",
            map.roads[steepest].mean_fuel_gph,
            map.roads[flattest].mean_fuel_gph
        );
    }

    #[test]
    fn emission_map_scales_with_traffic() {
        let net = city_network(5);
        let model = FuelModel::default();
        let fuel = FuelMap::compute(&net, &model, V40, |r, s| r.gradient_at(s));
        let base = TrafficModel::default();
        let double = TrafficModel { scale: 2.0, seed: 0 };
        let e1 = EmissionMap::compute(&net, &fuel, &base, Species::Co2, V40);
        let e2 = EmissionMap::compute(&net, &fuel, &double, Species::Co2, V40);
        let t1 = e1.total_tons_per_hour(&net);
        let t2 = e2.total_tons_per_hour(&net);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!(t1 > 0.0);
    }

    #[test]
    fn co2_dwarfs_pm25() {
        let net = city_network(5);
        let model = FuelModel::default();
        let fuel = FuelMap::compute(&net, &model, V40, |r, s| r.gradient_at(s));
        let tm = TrafficModel::default();
        let co2 = EmissionMap::compute(&net, &fuel, &tm, Species::Co2, V40);
        let pm = EmissionMap::compute(&net, &fuel, &tm, Species::Pm25, V40);
        let r = co2.total_tons_per_hour(&net) / pm.total_tons_per_hour(&net);
        assert!((r - 8908.0 / 0.084).abs() / r < 1e-9);
    }

    #[test]
    fn route_fuel_matches_closed_form_on_straight_road() {
        let road = straight_road(3600.0 * V40, 0.0); // exactly 1 h at 40 km/h
        let route = Route::new(vec![road]).unwrap();
        let model = FuelModel::default();
        let total = route_fuel_gal(&route, &model, V40, |_| 0.0);
        let rate = model.fuel_rate_gph(V40, 0.0, 0.0);
        assert!((total - rate).abs() / rate < 0.01, "{total} vs {rate}");
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let net = city_network(5);
        let _ = FuelMap::compute(&net, &FuelModel::default(), 0.0, |_, _| 0.0);
    }
}

//! Trip-level fuel and emission reporting.
//!
//! The map modules (Figure 10) work at a fixed cruise speed; real trips
//! accelerate, idle, climb and descend. This module integrates the full
//! Eq (7) over a recorded speed/gradient history and breaks the burn down
//! by driving regime — the report a fleet or eco-driving app would show
//! after each trip.

use crate::factors::Species;
use crate::vsp::FuelModel;
use serde::{Deserialize, Serialize};

/// One input sample of the trip history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TripSample {
    /// Interval covered by this sample, seconds.
    pub dt: f64,
    /// Speed, m/s.
    pub v: f64,
    /// Acceleration, m/s².
    pub a: f64,
    /// Road gradient θ, radians.
    pub theta: f64,
}

/// Fuel burned per driving regime, gallons.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RegimeBreakdown {
    /// Near-stationary (v < 1 m/s).
    pub idling: f64,
    /// Climbing (θ > +0.5°).
    pub climbing: f64,
    /// Descending (θ < −0.5°).
    pub descending: f64,
    /// Everything else (flat cruising / accelerating).
    pub flat: f64,
}

/// A completed trip report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TripReport {
    /// Total fuel, gallons.
    pub fuel_gal: f64,
    /// Fuel a flat-earth model would have estimated, gallons.
    pub fuel_flat_gal: f64,
    /// Distance, km.
    pub distance_km: f64,
    /// Duration, hours.
    pub duration_h: f64,
    /// Fuel economy, miles per gallon.
    pub mpg: f64,
    /// CO₂ emitted, kg.
    pub co2_kg: f64,
    /// PM2.5 emitted, grams.
    pub pm25_g: f64,
    /// Regime breakdown.
    pub regimes: RegimeBreakdown,
}

/// Threshold separating "flat" from climbing/descending, radians (0.5°).
const GRADE_EPS: f64 = 0.00873;

/// Builds a report from a trip history.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn report(model: &FuelModel, samples: &[TripSample]) -> TripReport {
    assert!(!samples.is_empty(), "trip report needs samples");
    let mut fuel = 0.0;
    let mut fuel_flat = 0.0;
    let mut dist = 0.0;
    let mut dur = 0.0;
    let mut regimes = RegimeBreakdown::default();
    for s in samples {
        let g = model.fuel_rate_gph(s.v, s.a, s.theta) * s.dt / 3600.0;
        fuel += g;
        fuel_flat += model.fuel_rate_gph(s.v, s.a, 0.0) * s.dt / 3600.0;
        dist += s.v * s.dt;
        dur += s.dt;
        if s.v < 1.0 {
            regimes.idling += g;
        } else if s.theta > GRADE_EPS {
            regimes.climbing += g;
        } else if s.theta < -GRADE_EPS {
            regimes.descending += g;
        } else {
            regimes.flat += g;
        }
    }
    let miles = dist / 1609.344;
    TripReport {
        fuel_gal: fuel,
        fuel_flat_gal: fuel_flat,
        distance_km: dist / 1000.0,
        duration_h: dur / 3600.0,
        mpg: if fuel > 1e-12 { miles / fuel } else { f64::INFINITY },
        co2_kg: Species::Co2.emission_g(fuel) / 1000.0,
        pm25_g: Species::Pm25.emission_g(fuel),
        regimes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cruise(v: f64, theta: f64, seconds: f64) -> Vec<TripSample> {
        (0..(seconds as usize)).map(|_| TripSample { dt: 1.0, v, a: 0.0, theta }).collect()
    }

    #[test]
    fn flat_cruise_report_is_consistent() {
        let model = FuelModel::default();
        let r = report(&model, &cruise(40.0 / 3.6, 0.0, 3600.0));
        assert!((r.distance_km - 40.0).abs() < 0.1);
        assert!((r.duration_h - 1.0).abs() < 1e-9);
        let rate = model.fuel_rate_gph(40.0 / 3.6, 0.0, 0.0);
        assert!((r.fuel_gal - rate).abs() < 1e-6);
        assert!((r.fuel_gal - r.fuel_flat_gal).abs() < 1e-12);
        // A city cruise lands in a plausible mpg band for this model.
        assert!((20.0..90.0).contains(&r.mpg), "mpg {}", r.mpg);
        // Everything booked under "flat".
        assert!(r.regimes.idling == 0.0 && r.regimes.climbing == 0.0);
        assert!((r.regimes.flat - r.fuel_gal).abs() < 1e-12);
    }

    #[test]
    fn hilly_trip_books_regimes_and_exceeds_flat_model() {
        let model = FuelModel::default();
        let mut samples = cruise(12.0, 3.0f64.to_radians(), 600.0);
        samples.extend(cruise(12.0, -3.0f64.to_radians(), 600.0));
        samples.extend(cruise(0.3, 0.0, 120.0)); // a red light
        let r = report(&model, &samples);
        assert!(r.regimes.climbing > r.regimes.descending);
        assert!(r.regimes.idling > 0.0);
        assert!(
            r.fuel_gal > r.fuel_flat_gal,
            "gradient-aware {} vs flat {}",
            r.fuel_gal,
            r.fuel_flat_gal
        );
        // Descending books the idle floor.
        let floor = model.idle_floor_gph * 600.0 / 3600.0;
        assert!((r.regimes.descending - floor).abs() < 1e-9);
    }

    #[test]
    fn emissions_are_proportional_to_fuel() {
        let model = FuelModel::default();
        let r = report(&model, &cruise(15.0, 0.01, 1800.0));
        assert!((r.co2_kg - r.fuel_gal * 8.908).abs() < 1e-9);
        assert!((r.pm25_g - r.fuel_gal * 0.084).abs() < 1e-9);
    }

    #[test]
    fn regime_fuel_sums_to_total() {
        let model = FuelModel::default();
        let mut samples = cruise(10.0, 0.02, 300.0);
        samples.extend(cruise(0.0, 0.0, 60.0));
        samples.extend(cruise(14.0, -0.03, 300.0));
        let r = report(&model, &samples);
        let sum = r.regimes.idling + r.regimes.climbing + r.regimes.descending + r.regimes.flat;
        assert!((sum - r.fuel_gal).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_trip_panics() {
        let _ = report(&FuelModel::default(), &[]);
    }
}

//! Roads: centerline geometry + altitude profile + lanes + class.
//!
//! A [`Road`] is the unit the estimation system ultimately annotates with a
//! gradient profile. Geometry lives in the local planar frame (metres);
//! altitude is carried per centerline vertex and interpolated by arc
//! length.

use crate::polyline::{Polyline, PolylineError};
use crate::terrain::Terrain;
use gradest_math::angle::deg_to_rad;
use gradest_math::interp::interp1;
use gradest_math::Vec2;
use serde::{Deserialize, Serialize};

/// Functional class of a road, used for speed limits and traffic volumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// Grade-separated high-speed road.
    Highway,
    /// Major through road.
    Arterial,
    /// Feeder road between arterials and locals.
    Collector,
    /// Neighbourhood street.
    Local,
}

impl RoadClass {
    /// Typical speed limit for the class, m/s.
    pub fn default_speed_limit(self) -> f64 {
        match self {
            RoadClass::Highway => 29.0,   // ~65 mph
            RoadClass::Arterial => 15.6,  // ~35 mph
            RoadClass::Collector => 11.2, // ~25 mph
            RoadClass::Local => 8.9,      // ~20 mph
        }
    }

    /// Typical lane count per direction for the class.
    pub fn default_lanes(self) -> u32 {
        match self {
            RoadClass::Highway => 2,
            RoadClass::Arterial => 2,
            RoadClass::Collector => 1,
            RoadClass::Local => 1,
        }
    }
}

/// A step in the lane-count profile: `lanes` from `start_s` (metres from
/// road start) until the next section.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneSection {
    /// Arc length where this section begins.
    pub start_s: f64,
    /// Lane count in the travel direction.
    pub lanes: u32,
}

/// Errors constructing a [`Road`].
#[derive(Debug, Clone, PartialEq)]
pub enum RoadError {
    /// The centerline polyline was invalid.
    Geometry(PolylineError),
    /// `altitudes.len()` does not match the number of centerline vertices.
    AltitudeLength {
        /// Number of vertices.
        points: usize,
        /// Number of altitude samples supplied.
        altitudes: usize,
    },
    /// Lane sections must be non-empty, sorted, start at 0, and have ≥1
    /// lane.
    InvalidLaneSections,
}

impl std::fmt::Display for RoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoadError::Geometry(e) => write!(f, "invalid centerline: {e}"),
            RoadError::AltitudeLength { points, altitudes } => {
                write!(f, "altitude profile length {altitudes} does not match {points} vertices")
            }
            RoadError::InvalidLaneSections => write!(f, "invalid lane sections"),
        }
    }
}

impl std::error::Error for RoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RoadError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PolylineError> for RoadError {
    fn from(e: PolylineError) -> Self {
        RoadError::Geometry(e)
    }
}

/// A road: planar centerline, per-vertex altitude, lane profile, and class.
///
/// Gradient convention: `gradient_at` returns the slope **angle** θ in
/// radians, `atan(dz/ds)` with `s` the horizontal arc length — positive
/// uphill in the travel direction, matching the paper's Section III-D
/// reference (`arcsin(Δz/d)` agrees to < 0.5 % below 6°).
///
/// # Example
///
/// ```
/// use gradest_geo::generate::straight_road;
/// let road = straight_road(1000.0, 3.0); // 1 km at +3°
/// assert!((road.gradient_at(500.0).to_degrees() - 3.0).abs() < 0.05);
/// assert!((road.altitude_at(1000.0) - road.altitude_at(0.0)
///     - 1000.0 * 3.0f64.to_radians().tan()).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    id: u64,
    name: String,
    line: Polyline,
    altitudes: Vec<f64>,
    lane_sections: Vec<LaneSection>,
    speed_limit_mps: f64,
    class: RoadClass,
}

impl Road {
    /// Creates a road from explicit geometry and altitude profile.
    ///
    /// # Errors
    ///
    /// Returns [`RoadError`] if the centerline is invalid, the altitude
    /// profile length mismatches, or lane sections are malformed.
    pub fn new(
        id: u64,
        name: impl Into<String>,
        centerline: Vec<Vec2>,
        altitudes: Vec<f64>,
        lane_sections: Vec<LaneSection>,
        speed_limit_mps: f64,
        class: RoadClass,
    ) -> Result<Self, RoadError> {
        let line = Polyline::new(centerline)?;
        if altitudes.len() != line.points().len() {
            return Err(RoadError::AltitudeLength {
                points: line.points().len(),
                altitudes: altitudes.len(),
            });
        }
        if lane_sections.is_empty()
            || lane_sections[0].start_s != 0.0
            || lane_sections.iter().any(|l| l.lanes == 0)
            || lane_sections.windows(2).any(|w| w[1].start_s <= w[0].start_s)
        {
            return Err(RoadError::InvalidLaneSections);
        }
        Ok(Road { id, name: name.into(), line, altitudes, lane_sections, speed_limit_mps, class })
    }

    /// Creates a road by draping a centerline over a terrain model,
    /// resampling at `ds` metres.
    ///
    /// # Errors
    ///
    /// Returns [`RoadError`] if the geometry is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `ds <= 0`.
    pub fn over_terrain(
        id: u64,
        name: impl Into<String>,
        centerline: &Polyline,
        terrain: &impl Terrain,
        ds: f64,
        lanes: u32,
        class: RoadClass,
    ) -> Result<Self, RoadError> {
        let pts = centerline.resample(ds);
        let alts = pts.iter().map(|&p| terrain.altitude(p)).collect();
        Road::new(
            id,
            name,
            pts,
            alts,
            vec![LaneSection { start_s: 0.0, lanes: lanes.max(1) }],
            class.default_speed_limit(),
            class,
        )
    }

    /// Stable identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Centerline polyline.
    pub fn centerline(&self) -> &Polyline {
        &self.line
    }

    /// Per-vertex altitude samples.
    pub fn altitudes(&self) -> &[f64] {
        &self.altitudes
    }

    /// Road functional class.
    pub fn class(&self) -> RoadClass {
        self.class
    }

    /// Speed limit in m/s.
    pub fn speed_limit(&self) -> f64 {
        self.speed_limit_mps
    }

    /// Total arc length in metres.
    pub fn length(&self) -> f64 {
        self.line.length()
    }

    /// Planar position at arc length `s`.
    pub fn point_at(&self, s: f64) -> Vec2 {
        self.line.point_at(s)
    }

    /// Heading at arc length `s` (radians CCW from East).
    pub fn heading_at(&self, s: f64) -> f64 {
        self.line.heading_at(s)
    }

    /// Heading change per metre at `s` (see
    /// [`Polyline::heading_rate_at`]).
    pub fn heading_rate_at(&self, s: f64, window: f64) -> f64 {
        self.line.heading_rate_at(s, window)
    }

    /// Altitude at arc length `s` (linear interpolation between vertices).
    pub fn altitude_at(&self, s: f64) -> f64 {
        interp1(self.line.cumulative_lengths(), &self.altitudes, s)
            .expect("profile validated at construction")
    }

    /// Road gradient angle θ (radians) at arc length `s`, positive uphill.
    ///
    /// Computed as `atan(Δz/Δs)` over a ±2 m window (clamped at the
    /// ends).
    pub fn gradient_at(&self, s: f64) -> f64 {
        let h = 2.0;
        let s0 = (s - h).max(0.0);
        let s1 = (s + h).min(self.length());
        if s1 - s0 < 1e-9 {
            return 0.0;
        }
        ((self.altitude_at(s1) - self.altitude_at(s0)) / (s1 - s0)).atan()
    }

    /// Lane count at arc length `s`.
    pub fn lanes_at(&self, s: f64) -> u32 {
        let mut lanes = self.lane_sections[0].lanes;
        for sec in &self.lane_sections {
            if sec.start_s <= s {
                lanes = sec.lanes;
            } else {
                break;
            }
        }
        lanes
    }

    /// The lane-count step profile.
    pub fn lane_sections(&self) -> &[LaneSection] {
        &self.lane_sections
    }

    /// Returns the same road traversed in the opposite direction: geometry
    /// and altitude reversed, lane sections mirrored.
    pub fn reversed(&self) -> Road {
        let len = self.length();
        let mut pts: Vec<Vec2> = self.line.points().to_vec();
        pts.reverse();
        let mut alts = self.altitudes.clone();
        alts.reverse();
        // Mirror the lane step function: each section [a, b) with `lanes`
        // becomes [len - b, len - a).
        let mut rev_sections = Vec::with_capacity(self.lane_sections.len());
        for (i, sec) in self.lane_sections.iter().enumerate().rev() {
            let end = self.lane_sections.get(i + 1).map_or(len, |next| next.start_s);
            rev_sections.push(LaneSection { start_s: (len - end).max(0.0), lanes: sec.lanes });
        }
        rev_sections[0].start_s = 0.0;
        Road::new(
            self.id,
            format!("{} (rev)", self.name),
            pts,
            alts,
            rev_sections,
            self.speed_limit_mps,
            self.class,
        )
        // lint:allow(transitive-panic) reversal preserves every Road::new invariant (point/altitude counts, section monotonicity), so this expect is unreachable; a Result return would force every route-stitching caller to handle an impossible error
        .expect("reversal of a valid road is valid")
    }
}

/// Specification of one road section for [`build_from_sections`]: a length,
/// a signed gradient, a lane count, and an optional constant curvature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectionSpec {
    /// Section length in metres.
    pub length_m: f64,
    /// Signed gradient in degrees (positive uphill).
    pub gradient_deg: f64,
    /// Lane count in the travel direction.
    pub lanes: u32,
    /// Constant curvature in 1/m (positive = bends left); 0 = straight.
    pub curvature: f64,
}

/// Builds a road from consecutive [`SectionSpec`]s, starting at `origin`
/// with initial `heading` (radians CCW from East). Vertices are placed
/// every `ds` metres; gradients transition linearly across one `ds` step.
///
/// # Errors
///
/// Returns [`RoadError`] if the resulting geometry is invalid (e.g. empty
/// sections).
///
/// # Panics
///
/// Panics if `ds <= 0`.
#[allow(clippy::too_many_arguments)]
pub fn build_from_sections(
    id: u64,
    name: impl Into<String>,
    origin: Vec2,
    heading: f64,
    sections: &[SectionSpec],
    ds: f64,
    base_altitude: f64,
    speed_limit_mps: f64,
    class: RoadClass,
) -> Result<Road, RoadError> {
    assert!(ds > 0.0, "vertex spacing must be positive");
    if sections.is_empty() {
        return Err(RoadError::Geometry(PolylineError::TooFewPoints));
    }
    let mut pts = vec![origin];
    let mut alts = vec![base_altitude];
    let mut lane_sections: Vec<LaneSection> = Vec::new();
    let mut pos = origin;
    let mut psi = heading;
    let mut z = base_altitude;
    let mut s_total = 0.0;
    for sec in sections {
        if lane_sections.last().map(|l| l.lanes) != Some(sec.lanes) {
            lane_sections.push(LaneSection { start_s: s_total, lanes: sec.lanes });
        }
        let slope = deg_to_rad(sec.gradient_deg).tan();
        let steps = (sec.length_m / ds).ceil().max(1.0) as usize;
        let step = sec.length_m / steps as f64;
        for _ in 0..steps {
            psi += sec.curvature * step;
            pos += Vec2::from_angle(psi) * step;
            z += slope * step;
            s_total += step;
            pts.push(pos);
            alts.push(z);
        }
    }
    if lane_sections.first().map(|l| l.start_s) != Some(0.0) {
        return Err(RoadError::InvalidLaneSections);
    }
    Road::new(id, name, pts, alts, lane_sections, speed_limit_mps, class)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_two_lane(length: f64) -> Road {
        build_from_sections(
            1,
            "test",
            Vec2::ZERO,
            0.0,
            &[SectionSpec { length_m: length, gradient_deg: 0.0, lanes: 2, curvature: 0.0 }],
            10.0,
            100.0,
            13.0,
            RoadClass::Collector,
        )
        .unwrap()
    }

    #[test]
    fn build_straight_flat() {
        let r = flat_two_lane(500.0);
        assert!((r.length() - 500.0).abs() < 1e-6);
        assert_eq!(r.lanes_at(250.0), 2);
        assert!((r.altitude_at(400.0) - 100.0).abs() < 1e-9);
        assert_eq!(r.gradient_at(250.0), 0.0);
        assert_eq!(r.heading_at(250.0), 0.0);
    }

    #[test]
    fn build_constant_gradient() {
        let spec = SectionSpec { length_m: 1000.0, gradient_deg: 4.0, lanes: 1, curvature: 0.0 };
        let r = build_from_sections(
            2,
            "hill",
            Vec2::ZERO,
            0.0,
            &[spec],
            5.0,
            0.0,
            13.0,
            RoadClass::Local,
        )
        .unwrap();
        let th = r.gradient_at(500.0);
        assert!((th.to_degrees() - 4.0).abs() < 0.05, "θ = {}°", th.to_degrees());
        // Altitude gain = length · tan(4°).
        let gain = r.altitude_at(r.length()) - r.altitude_at(0.0);
        assert!((gain - 1000.0 * deg_to_rad(4.0).tan()).abs() < 1e-6);
    }

    #[test]
    fn build_multi_section_lane_profile() {
        let secs = [
            SectionSpec { length_m: 300.0, gradient_deg: 2.0, lanes: 1, curvature: 0.0 },
            SectionSpec { length_m: 300.0, gradient_deg: -2.0, lanes: 2, curvature: 0.0 },
            SectionSpec { length_m: 300.0, gradient_deg: 1.0, lanes: 1, curvature: 0.0 },
        ];
        let r = build_from_sections(
            3,
            "multi",
            Vec2::ZERO,
            0.0,
            &secs,
            10.0,
            50.0,
            13.0,
            RoadClass::Arterial,
        )
        .unwrap();
        assert_eq!(r.lanes_at(150.0), 1);
        assert_eq!(r.lanes_at(450.0), 2);
        assert_eq!(r.lanes_at(750.0), 1);
        assert!(r.gradient_at(150.0) > 0.0);
        assert!(r.gradient_at(450.0) < 0.0);
        assert!(r.gradient_at(750.0) > 0.0);
        assert_eq!(r.lane_sections().len(), 3);
    }

    #[test]
    fn curved_section_changes_heading() {
        // Quarter circle of radius 100 m: length = π/2·100, curvature 0.01.
        let len = std::f64::consts::FRAC_PI_2 * 100.0;
        let spec = SectionSpec { length_m: len, gradient_deg: 0.0, lanes: 1, curvature: 0.01 };
        let r = build_from_sections(
            4,
            "curve",
            Vec2::ZERO,
            0.0,
            &[spec],
            2.0,
            0.0,
            13.0,
            RoadClass::Local,
        )
        .unwrap();
        let final_heading = r.heading_at(r.length() - 1.0);
        assert!(
            (final_heading - std::f64::consts::FRAC_PI_2).abs() < 0.05,
            "heading {final_heading}"
        );
        let rate = r.heading_rate_at(len / 2.0, 10.0);
        assert!((rate - 0.01).abs() < 1e-3, "rate {rate}");
    }

    #[test]
    fn reversed_road_mirrors_everything() {
        let secs = [
            SectionSpec { length_m: 400.0, gradient_deg: 3.0, lanes: 1, curvature: 0.0 },
            SectionSpec { length_m: 600.0, gradient_deg: -1.0, lanes: 2, curvature: 0.0 },
        ];
        let r = build_from_sections(
            5,
            "fwd",
            Vec2::ZERO,
            0.0,
            &secs,
            10.0,
            0.0,
            13.0,
            RoadClass::Local,
        )
        .unwrap();
        let rev = r.reversed();
        assert!((rev.length() - r.length()).abs() < 1e-9);
        // Gradient at s (reversed) = -gradient at L - s (forward).
        for s in [100.0, 500.0, 900.0] {
            let fwd = r.gradient_at(r.length() - s);
            let back = rev.gradient_at(s);
            assert!((fwd + back).abs() < 1e-3, "s={s}: {fwd} vs {back}");
        }
        // Lane counts mirror: forward [0,400)=1, [400,1000)=2.
        assert_eq!(rev.lanes_at(100.0), 2);
        assert_eq!(rev.lanes_at(800.0), 1);
        // Altitude endpoints swap.
        assert!((rev.altitude_at(0.0) - r.altitude_at(r.length())).abs() < 1e-9);
    }

    #[test]
    fn over_terrain_matches_terrain_altitude() {
        use crate::terrain::{PlaneTerrain, Terrain};
        let t = PlaneTerrain { base_altitude_m: 10.0, slope: Vec2::new(0.02, 0.0) };
        let line = Polyline::new(vec![Vec2::ZERO, Vec2::new(1000.0, 0.0)]).unwrap();
        let r = Road::over_terrain(6, "draped", &line, &t, 10.0, 1, RoadClass::Local).unwrap();
        for s in [0.0, 333.0, 777.0, 1000.0] {
            let expect = t.altitude(r.point_at(s));
            assert!((r.altitude_at(s) - expect).abs() < 1e-6, "s={s}");
        }
        // Gradient along +x is atan(0.02).
        assert!((r.gradient_at(500.0) - 0.02f64.atan()).abs() < 1e-6);
    }

    #[test]
    fn construction_validation() {
        // Altitude length mismatch.
        let e = Road::new(
            1,
            "bad",
            vec![Vec2::ZERO, Vec2::new(1.0, 0.0)],
            vec![0.0],
            vec![LaneSection { start_s: 0.0, lanes: 1 }],
            10.0,
            RoadClass::Local,
        )
        .unwrap_err();
        assert!(matches!(e, RoadError::AltitudeLength { .. }));
        // Lane sections must start at zero.
        let e = Road::new(
            1,
            "bad",
            vec![Vec2::ZERO, Vec2::new(1.0, 0.0)],
            vec![0.0, 0.0],
            vec![LaneSection { start_s: 5.0, lanes: 1 }],
            10.0,
            RoadClass::Local,
        )
        .unwrap_err();
        assert_eq!(e, RoadError::InvalidLaneSections);
        // Zero lanes rejected.
        let e = Road::new(
            1,
            "bad",
            vec![Vec2::ZERO, Vec2::new(1.0, 0.0)],
            vec![0.0, 0.0],
            vec![LaneSection { start_s: 0.0, lanes: 0 }],
            10.0,
            RoadClass::Local,
        )
        .unwrap_err();
        assert_eq!(e, RoadError::InvalidLaneSections);
    }

    #[test]
    fn class_defaults_are_ordered() {
        assert!(RoadClass::Highway.default_speed_limit() > RoadClass::Local.default_speed_limit());
        assert!(RoadClass::Highway.default_lanes() >= RoadClass::Local.default_lanes());
    }
}

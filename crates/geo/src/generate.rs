//! Procedural road presets and the synthetic city network.
//!
//! These stand in for the paper's Charlottesville test roads (see
//! DESIGN.md's substitution table):
//!
//! * [`red_road`] — the 2.16 km "red road" of Figure 7(b)/Table III, with
//!   seven alternating uphill/downhill sections and lane counts
//!   1, 1, 1, 1, 2, 2, 1.
//! * [`s_curve_road`] — an S-shaped road used to validate lane-change vs.
//!   S-curve discrimination (Figure 5).
//! * [`city_network`] — a ~165 km city road network over rolling-hills
//!   terrain (Figure 7(a) stand-in).
//! * [`country_network`] — a multi-city network scaled to a caller-chosen
//!   total length (10⁵–10⁶ centerline segments), for spatial-index and
//!   fleet network-matching workloads.

use crate::network::RoadNetwork;
use crate::polyline::Polyline;
use crate::road::{build_from_sections, Road, RoadClass, SectionSpec};
use crate::terrain::hilly_terrain;
use gradest_math::Vec2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A straight single-lane road of the given length and constant gradient.
///
/// # Panics
///
/// Panics if `length_m < 10`.
pub fn straight_road(length_m: f64, gradient_deg: f64) -> Road {
    assert!(length_m >= 10.0, "road too short");
    build_from_sections(
        100,
        "straight",
        Vec2::ZERO,
        0.0,
        &[SectionSpec { length_m, gradient_deg, lanes: 1, curvature: 0.0 }],
        5.0,
        100.0,
        RoadClass::Collector.default_speed_limit(),
        RoadClass::Collector,
    )
    .expect("valid straight road spec")
}

/// The section specification of the Table III red road.
///
/// Lengths sum to 2 160 m; gradient signs alternate `+ − + − + − +` and
/// lane counts are `1 1 1 1 2 2 1`, exactly as Table III reports. Gradient
/// magnitudes (unreported in the paper) are set in the 1.5°–3.5° range the
/// paper's motivating studies discuss.
pub fn red_road_sections() -> [SectionSpec; 7] {
    [
        SectionSpec { length_m: 320.0, gradient_deg: 2.8, lanes: 1, curvature: 0.0 },
        SectionSpec { length_m: 290.0, gradient_deg: -2.2, lanes: 1, curvature: 0.002 },
        SectionSpec { length_m: 340.0, gradient_deg: 3.4, lanes: 1, curvature: 0.0 },
        SectionSpec { length_m: 300.0, gradient_deg: -1.8, lanes: 1, curvature: -0.002 },
        SectionSpec { length_m: 330.0, gradient_deg: 2.4, lanes: 2, curvature: 0.0 },
        SectionSpec { length_m: 280.0, gradient_deg: -2.6, lanes: 2, curvature: 0.001 },
        SectionSpec { length_m: 300.0, gradient_deg: 1.9, lanes: 1, curvature: 0.0 },
    ]
}

/// The 2.16 km "red road" of Figure 7(b) / Table III.
pub fn red_road() -> Road {
    build_from_sections(
        1,
        "red-road",
        Vec2::ZERO,
        0.3, // arbitrary initial bearing
        &red_road_sections(),
        5.0,
        174.0, // Charlottesville-ish base altitude
        RoadClass::Arterial.default_speed_limit(),
        RoadClass::Arterial,
    )
    .expect("red road spec is valid")
}

/// An S-shaped road (left bend then right bend) with the given bend radius
/// and sweep angle, flat, flanked by straight approaches.
///
/// The lateral displacement across the S is much larger than a lane width,
/// which is exactly the property the paper's Figure 5 discrimination
/// exploits.
///
/// # Panics
///
/// Panics if `radius_m < 10` or `sweep_deg` not in `(0, 90]`.
pub fn s_curve_road(radius_m: f64, sweep_deg: f64) -> Road {
    assert!(radius_m >= 10.0, "S-curve radius too small");
    assert!(sweep_deg > 0.0 && sweep_deg <= 90.0, "sweep must be in (0, 90] degrees");
    let arc = radius_m * sweep_deg.to_radians();
    let k = 1.0 / radius_m;
    build_from_sections(
        2,
        "s-curve",
        Vec2::ZERO,
        0.0,
        &[
            SectionSpec { length_m: 150.0, gradient_deg: 0.0, lanes: 1, curvature: 0.0 },
            SectionSpec { length_m: arc, gradient_deg: 0.0, lanes: 1, curvature: k },
            SectionSpec { length_m: arc, gradient_deg: 0.0, lanes: 1, curvature: -k },
            SectionSpec { length_m: 150.0, gradient_deg: 0.0, lanes: 1, curvature: 0.0 },
        ],
        5.0,
        100.0,
        RoadClass::Collector.default_speed_limit(),
        RoadClass::Collector,
    )
    .expect("s-curve spec is valid")
}

/// A long straight two-lane road, for lane-change experiments.
pub fn two_lane_straight(length_m: f64) -> Road {
    build_from_sections(
        3,
        "two-lane",
        Vec2::ZERO,
        0.0,
        &[SectionSpec { length_m, gradient_deg: 0.0, lanes: 2, curvature: 0.0 }],
        10.0,
        100.0,
        RoadClass::Arterial.default_speed_limit(),
        RoadClass::Arterial,
    )
    .expect("two-lane spec is valid")
}

/// Generates a synthetic city road network: a jittered 9×10 grid of
/// intersections (~1 km spacing) over rolling-hills terrain, totalling
/// ≈165 km of road — the scale of the paper's Figure 7(a) evaluation
/// (164.8 km). Deterministic in `seed`.
///
/// Every third row/column is an arterial (2 lanes per direction, where the
/// lane-change experiments happen); remaining roads alternate collector
/// and local class.
pub fn city_network(seed: u64) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let terrain = hilly_terrain(seed);
    let rows = 9usize;
    let cols = 10usize;
    let spacing = 1000.0;

    let mut net = RoadNetwork::new();
    let mut node_ids = vec![vec![0usize; cols]; rows];
    for (r, row_ids) in node_ids.iter_mut().enumerate() {
        for (c, id) in row_ids.iter_mut().enumerate() {
            let jitter = Vec2::new(rng.gen_range(-80.0..80.0), rng.gen_range(-80.0..80.0));
            let p = Vec2::new(c as f64 * spacing, r as f64 * spacing) + jitter;
            *id = net.add_node(p);
        }
    }

    let mut edge_id = 1000u64;
    let mut add_road = |net: &mut RoadNetwork, a: usize, b: usize, class: RoadClass| {
        let pa = net.nodes()[a];
        let pb = net.nodes()[b];
        // Gentle bow: perpendicular sinusoidal offset vanishing at the
        // endpoints, so roads are curved but still meet the nodes exactly.
        let n = ((pb - pa).norm() / 50.0).ceil() as usize;
        let perp =
            (pb - pa).rotated(std::f64::consts::FRAC_PI_2).normalized().expect("distinct nodes");
        let amp: f64 = rng.gen_range(-60.0..60.0);
        let pts: Vec<Vec2> = (0..=n)
            .map(|i| {
                let t = i as f64 / n as f64;
                pa.lerp(pb, t) + perp * (amp * (std::f64::consts::PI * t).sin())
            })
            .collect();
        let line = Polyline::new(pts).expect("bowed centerline is valid");
        edge_id += 1;
        let road = Road::over_terrain(
            edge_id,
            format!("st-{edge_id}"),
            &line,
            &terrain,
            10.0,
            class.default_lanes(),
            class,
        )
        .expect("draped road is valid");
        net.add_edge(a, b, road).expect("endpoints coincide with nodes");
    };

    for r in 0..rows {
        for c in 0..cols {
            // Horizontal edge to the east neighbour.
            if c + 1 < cols {
                let class = if r % 3 == 0 {
                    RoadClass::Arterial
                } else if r % 2 == 0 {
                    RoadClass::Collector
                } else {
                    RoadClass::Local
                };
                add_road(&mut net, node_ids[r][c], node_ids[r][c + 1], class);
            }
            // Vertical edge to the north neighbour.
            if r + 1 < rows {
                let class = if c % 3 == 0 {
                    RoadClass::Arterial
                } else if c % 2 == 0 {
                    RoadClass::Collector
                } else {
                    RoadClass::Local
                };
                add_road(&mut net, node_ids[r][c], node_ids[r + 1][c], class);
            }
        }
    }
    net
}

/// Generates a deterministic multi-city road network totalling
/// approximately `target_km` of road (within ~±20 %).
///
/// Cities are jittered square grids of ~1 km blocks (the
/// [`city_network`] recipe) laid out on a super-grid and joined by
/// straight highways between facing border intersections, all draped
/// over one shared rolling-hills terrain so altitude is continuous at
/// city boundaries. Roads are draped every 10 m, so the network carries
/// ≈100 centerline segments per km: `target_km = 1000` yields a
/// ≥10⁵-segment index workload, `target_km = 10_000` a 10⁶-segment one.
/// Deterministic in `seed` (same seed, same network, byte for byte).
///
/// # Panics
///
/// Panics if `target_km < 20` or is not finite.
pub fn country_network(seed: u64, target_km: f64) -> RoadNetwork {
    assert!(target_km.is_finite() && target_km >= 20.0, "country needs at least 20 km");
    let mut rng = StdRng::seed_from_u64(seed);
    let terrain = hilly_terrain(seed);
    let spacing = 1000.0;

    // A k×k city grid has 2k(k−1) edges of ~1.02 km. Cap cities at
    // ~185 km so one city stays city_network-sized, then solve for k.
    let cities = (target_km / 185.0).ceil().max(1.0) as usize;
    let per_city_km = target_km / cities as f64;
    let k = ((1.0 + (1.0 + 2.0 * per_city_km / 1.02).sqrt()) / 2.0).round() as usize;
    let k = k.clamp(2, 12);
    let super_cols = (cities as f64).sqrt().ceil() as usize;
    let city_span = k as f64 * spacing;
    let gap = 4000.0;

    let mut net = RoadNetwork::new();
    let mut edge_id = 100_000u64;
    let mut add_road = |net: &mut RoadNetwork,
                        rng: &mut StdRng,
                        a: usize,
                        b: usize,
                        class: RoadClass| {
        let pa = net.nodes()[a];
        let pb = net.nodes()[b];
        let n = ((pb - pa).norm() / 50.0).ceil() as usize;
        let perp =
            (pb - pa).rotated(std::f64::consts::FRAC_PI_2).normalized().expect("distinct nodes");
        // Highways run straight; city streets bow like city_network's.
        let amp: f64 = if class == RoadClass::Highway { 0.0 } else { rng.gen_range(-60.0..60.0) };
        let pts: Vec<Vec2> = (0..=n)
            .map(|i| {
                let t = i as f64 / n as f64;
                pa.lerp(pb, t) + perp * (amp * (std::f64::consts::PI * t).sin())
            })
            .collect();
        let line = Polyline::new(pts).expect("centerline is valid");
        edge_id += 1;
        let road = Road::over_terrain(
            edge_id,
            format!("cn-{edge_id}"),
            &line,
            &terrain,
            10.0,
            class.default_lanes(),
            class,
        )
        .expect("draped road is valid");
        net.add_edge(a, b, road).expect("endpoints coincide with nodes");
    };

    // Per-city node grids, kept so highways can pick border nodes.
    let mut city_nodes: Vec<Vec<Vec<usize>>> = Vec::with_capacity(cities);
    for ci in 0..cities {
        let origin = Vec2::new(
            (ci % super_cols) as f64 * (city_span + gap),
            (ci / super_cols) as f64 * (city_span + gap),
        );
        let mut ids = vec![vec![0usize; k]; k];
        for (r, row_ids) in ids.iter_mut().enumerate() {
            for (c, id) in row_ids.iter_mut().enumerate() {
                let jitter = Vec2::new(rng.gen_range(-80.0..80.0), rng.gen_range(-80.0..80.0));
                let p = origin + Vec2::new(c as f64 * spacing, r as f64 * spacing) + jitter;
                *id = net.add_node(p);
            }
        }
        for r in 0..k {
            for c in 0..k {
                if c + 1 < k {
                    let class = if r % 3 == 0 {
                        RoadClass::Arterial
                    } else if r % 2 == 0 {
                        RoadClass::Collector
                    } else {
                        RoadClass::Local
                    };
                    add_road(&mut net, &mut rng, ids[r][c], ids[r][c + 1], class);
                }
                if r + 1 < k {
                    let class = if c % 3 == 0 {
                        RoadClass::Arterial
                    } else if c % 2 == 0 {
                        RoadClass::Collector
                    } else {
                        RoadClass::Local
                    };
                    add_road(&mut net, &mut rng, ids[r][c], ids[r + 1][c], class);
                }
            }
        }
        city_nodes.push(ids);
    }

    // Straight highways between facing border nodes of adjacent cities
    // (east and south neighbours on the super-grid keep it connected).
    let mid = k / 2;
    for ci in 0..cities {
        let col = ci % super_cols;
        let east = ci + 1;
        if col + 1 < super_cols && east < cities {
            let a = city_nodes[ci][mid][k - 1];
            let b = city_nodes[east][mid][0];
            add_road(&mut net, &mut rng, a, b, RoadClass::Highway);
        }
        let south = ci + super_cols;
        if south < cities {
            let a = city_nodes[ci][k - 1][mid];
            let b = city_nodes[south][0][mid];
            add_road(&mut net, &mut rng, a, b, RoadClass::Highway);
        }
        // Row-major layout can leave the last, partially-filled super
        // row disconnected from a short first row; tie row ends too.
        if col + 1 == super_cols && east < cities {
            let a = city_nodes[ci][k - 1][mid];
            let b = city_nodes[east][0][mid];
            add_road(&mut net, &mut rng, a, b, RoadClass::Highway);
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_road_matches_table_iii() {
        let road = red_road();
        let secs = red_road_sections();
        // Total length 2.16 km.
        let total: f64 = secs.iter().map(|s| s.length_m).sum();
        assert!((total - 2160.0).abs() < 1e-9);
        assert!((road.length() - 2160.0).abs() < 1.0);
        // Alternating gradient signs + − + − + − + at section midpoints.
        let mut s = 0.0;
        for (i, sec) in secs.iter().enumerate() {
            let mid = s + sec.length_m / 2.0;
            let th = road.gradient_at(mid);
            let expect_sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            assert!(th * expect_sign > 0.0, "section {i} gradient sign wrong: {th}");
            // Lane counts per Table III.
            let lanes_expect = [1, 1, 1, 1, 2, 2, 1][i];
            assert_eq!(road.lanes_at(mid), lanes_expect, "section {i} lanes");
            s += sec.length_m;
        }
    }

    #[test]
    fn red_road_gradient_magnitudes_match_spec() {
        let road = red_road();
        let secs = red_road_sections();
        let mut s = 0.0;
        for sec in &secs {
            let mid = s + sec.length_m / 2.0;
            assert!(
                (road.gradient_at(mid).to_degrees() - sec.gradient_deg).abs() < 0.1,
                "at {mid}"
            );
            s += sec.length_m;
        }
    }

    #[test]
    fn s_curve_geometry() {
        let road = s_curve_road(120.0, 45.0);
        // Heading returns to initial after the S.
        let h0 = road.heading_at(10.0);
        let h1 = road.heading_at(road.length() - 10.0);
        assert!((h0 - h1).abs() < 0.05, "{h0} vs {h1}");
        // Net lateral displacement much larger than a lane width.
        let start = road.point_at(0.0);
        let end = road.point_at(road.length());
        let lateral = (end - start).y.abs();
        assert!(lateral > 3.0 * 3.65, "lateral displacement {lateral}");
        // Curvature sign flips between the two arcs.
        let arc = 120.0 * 45.0f64.to_radians();
        let k1 = road.heading_rate_at(150.0 + arc / 2.0, 20.0);
        let k2 = road.heading_rate_at(150.0 + 1.5 * arc, 20.0);
        assert!(k1 > 0.0 && k2 < 0.0, "curvatures {k1} {k2}");
    }

    #[test]
    fn straight_road_flat_defaults() {
        let r = straight_road(500.0, 0.0);
        assert_eq!(r.gradient_at(250.0), 0.0);
        assert_eq!(r.lanes_at(250.0), 1);
    }

    #[test]
    fn city_network_scale_and_connectivity() {
        let net = city_network(42);
        assert_eq!(net.node_count(), 90);
        assert_eq!(net.edge_count(), 9 * 9 + 10 * 8);
        let km = net.total_length_km();
        assert!((150.0..185.0).contains(&km), "network is {km} km");
        assert!(net.is_connected());
    }

    #[test]
    fn city_network_is_deterministic() {
        let a = city_network(7);
        let b = city_network(7);
        assert_eq!(a.total_length_km(), b.total_length_km());
        let c = city_network(8);
        assert_ne!(a.total_length_km(), c.total_length_km());
    }

    #[test]
    fn city_network_gradients_are_plausible() {
        let net = city_network(42);
        let mut max_th: f64 = 0.0;
        for e in net.edges() {
            let mut s = 5.0;
            while s < e.road.length() {
                max_th = max_th.max(e.road.gradient_at(s).abs());
                s += 50.0;
            }
        }
        let deg = max_th.to_degrees();
        assert!(deg < 6.5, "max gradient {deg}°");
        assert!(deg > 1.0, "terrain should not be flat: {deg}°");
    }

    #[test]
    fn city_network_has_multi_lane_arterials() {
        let net = city_network(42);
        assert!(net
            .edges()
            .iter()
            .any(|e| e.road.class() == RoadClass::Arterial && e.road.lanes_at(100.0) >= 2));
    }

    #[test]
    fn country_network_hits_target_length() {
        for target in [60.0, 400.0] {
            let net = country_network(5, target);
            let km = net.total_length_km();
            assert!((km - target).abs() / target < 0.25, "target {target} km, got {km} km");
            assert!(net.is_connected(), "{target} km country must be connected");
        }
    }

    #[test]
    fn country_network_is_deterministic() {
        let a = country_network(11, 350.0);
        let b = country_network(11, 350.0);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.total_length_km(), b.total_length_km());
        // Byte-for-byte geometry, not just aggregate length.
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!(ea.road.centerline().points(), eb.road.centerline().points());
        }
        let c = country_network(12, 350.0);
        assert_ne!(a.total_length_km(), c.total_length_km());
    }

    #[test]
    fn country_network_has_highways_between_cities() {
        let net = country_network(3, 400.0);
        assert!(net.edges().iter().any(|e| e.road.class() == RoadClass::Highway));
    }

    #[test]
    fn city_network_routes_exist() {
        let net = city_network(42);
        let route =
            net.route_between(0, net.node_count() - 1, |r| r.length()).expect("grid is connected");
        // Corner to corner: at least the Manhattan distance.
        assert!(route.length() > 15_000.0);
    }
}

//! Procedural road presets and the synthetic city network.
//!
//! These stand in for the paper's Charlottesville test roads (see
//! DESIGN.md's substitution table):
//!
//! * [`red_road`] — the 2.16 km "red road" of Figure 7(b)/Table III, with
//!   seven alternating uphill/downhill sections and lane counts
//!   1, 1, 1, 1, 2, 2, 1.
//! * [`s_curve_road`] — an S-shaped road used to validate lane-change vs.
//!   S-curve discrimination (Figure 5).
//! * [`city_network`] — a ~165 km city road network over rolling-hills
//!   terrain (Figure 7(a) stand-in).

use crate::network::RoadNetwork;
use crate::polyline::Polyline;
use crate::road::{build_from_sections, Road, RoadClass, SectionSpec};
use crate::terrain::hilly_terrain;
use gradest_math::Vec2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A straight single-lane road of the given length and constant gradient.
///
/// # Panics
///
/// Panics if `length_m < 10`.
pub fn straight_road(length_m: f64, gradient_deg: f64) -> Road {
    assert!(length_m >= 10.0, "road too short");
    build_from_sections(
        100,
        "straight",
        Vec2::ZERO,
        0.0,
        &[SectionSpec { length_m, gradient_deg, lanes: 1, curvature: 0.0 }],
        5.0,
        100.0,
        RoadClass::Collector.default_speed_limit(),
        RoadClass::Collector,
    )
    .expect("valid straight road spec")
}

/// The section specification of the Table III red road.
///
/// Lengths sum to 2 160 m; gradient signs alternate `+ − + − + − +` and
/// lane counts are `1 1 1 1 2 2 1`, exactly as Table III reports. Gradient
/// magnitudes (unreported in the paper) are set in the 1.5°–3.5° range the
/// paper's motivating studies discuss.
pub fn red_road_sections() -> [SectionSpec; 7] {
    [
        SectionSpec { length_m: 320.0, gradient_deg: 2.8, lanes: 1, curvature: 0.0 },
        SectionSpec { length_m: 290.0, gradient_deg: -2.2, lanes: 1, curvature: 0.002 },
        SectionSpec { length_m: 340.0, gradient_deg: 3.4, lanes: 1, curvature: 0.0 },
        SectionSpec { length_m: 300.0, gradient_deg: -1.8, lanes: 1, curvature: -0.002 },
        SectionSpec { length_m: 330.0, gradient_deg: 2.4, lanes: 2, curvature: 0.0 },
        SectionSpec { length_m: 280.0, gradient_deg: -2.6, lanes: 2, curvature: 0.001 },
        SectionSpec { length_m: 300.0, gradient_deg: 1.9, lanes: 1, curvature: 0.0 },
    ]
}

/// The 2.16 km "red road" of Figure 7(b) / Table III.
pub fn red_road() -> Road {
    build_from_sections(
        1,
        "red-road",
        Vec2::ZERO,
        0.3, // arbitrary initial bearing
        &red_road_sections(),
        5.0,
        174.0, // Charlottesville-ish base altitude
        RoadClass::Arterial.default_speed_limit(),
        RoadClass::Arterial,
    )
    .expect("red road spec is valid")
}

/// An S-shaped road (left bend then right bend) with the given bend radius
/// and sweep angle, flat, flanked by straight approaches.
///
/// The lateral displacement across the S is much larger than a lane width,
/// which is exactly the property the paper's Figure 5 discrimination
/// exploits.
///
/// # Panics
///
/// Panics if `radius_m < 10` or `sweep_deg` not in `(0, 90]`.
pub fn s_curve_road(radius_m: f64, sweep_deg: f64) -> Road {
    assert!(radius_m >= 10.0, "S-curve radius too small");
    assert!(sweep_deg > 0.0 && sweep_deg <= 90.0, "sweep must be in (0, 90] degrees");
    let arc = radius_m * sweep_deg.to_radians();
    let k = 1.0 / radius_m;
    build_from_sections(
        2,
        "s-curve",
        Vec2::ZERO,
        0.0,
        &[
            SectionSpec { length_m: 150.0, gradient_deg: 0.0, lanes: 1, curvature: 0.0 },
            SectionSpec { length_m: arc, gradient_deg: 0.0, lanes: 1, curvature: k },
            SectionSpec { length_m: arc, gradient_deg: 0.0, lanes: 1, curvature: -k },
            SectionSpec { length_m: 150.0, gradient_deg: 0.0, lanes: 1, curvature: 0.0 },
        ],
        5.0,
        100.0,
        RoadClass::Collector.default_speed_limit(),
        RoadClass::Collector,
    )
    .expect("s-curve spec is valid")
}

/// A long straight two-lane road, for lane-change experiments.
pub fn two_lane_straight(length_m: f64) -> Road {
    build_from_sections(
        3,
        "two-lane",
        Vec2::ZERO,
        0.0,
        &[SectionSpec { length_m, gradient_deg: 0.0, lanes: 2, curvature: 0.0 }],
        10.0,
        100.0,
        RoadClass::Arterial.default_speed_limit(),
        RoadClass::Arterial,
    )
    .expect("two-lane spec is valid")
}

/// Generates a synthetic city road network: a jittered 9×10 grid of
/// intersections (~1 km spacing) over rolling-hills terrain, totalling
/// ≈165 km of road — the scale of the paper's Figure 7(a) evaluation
/// (164.8 km). Deterministic in `seed`.
///
/// Every third row/column is an arterial (2 lanes per direction, where the
/// lane-change experiments happen); remaining roads alternate collector
/// and local class.
pub fn city_network(seed: u64) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let terrain = hilly_terrain(seed);
    let rows = 9usize;
    let cols = 10usize;
    let spacing = 1000.0;

    let mut net = RoadNetwork::new();
    let mut node_ids = vec![vec![0usize; cols]; rows];
    for (r, row_ids) in node_ids.iter_mut().enumerate() {
        for (c, id) in row_ids.iter_mut().enumerate() {
            let jitter = Vec2::new(rng.gen_range(-80.0..80.0), rng.gen_range(-80.0..80.0));
            let p = Vec2::new(c as f64 * spacing, r as f64 * spacing) + jitter;
            *id = net.add_node(p);
        }
    }

    let mut edge_id = 1000u64;
    let mut add_road = |net: &mut RoadNetwork, a: usize, b: usize, class: RoadClass| {
        let pa = net.nodes()[a];
        let pb = net.nodes()[b];
        // Gentle bow: perpendicular sinusoidal offset vanishing at the
        // endpoints, so roads are curved but still meet the nodes exactly.
        let n = ((pb - pa).norm() / 50.0).ceil() as usize;
        let perp =
            (pb - pa).rotated(std::f64::consts::FRAC_PI_2).normalized().expect("distinct nodes");
        let amp: f64 = rng.gen_range(-60.0..60.0);
        let pts: Vec<Vec2> = (0..=n)
            .map(|i| {
                let t = i as f64 / n as f64;
                pa.lerp(pb, t) + perp * (amp * (std::f64::consts::PI * t).sin())
            })
            .collect();
        let line = Polyline::new(pts).expect("bowed centerline is valid");
        edge_id += 1;
        let road = Road::over_terrain(
            edge_id,
            format!("st-{edge_id}"),
            &line,
            &terrain,
            10.0,
            class.default_lanes(),
            class,
        )
        .expect("draped road is valid");
        net.add_edge(a, b, road).expect("endpoints coincide with nodes");
    };

    for r in 0..rows {
        for c in 0..cols {
            // Horizontal edge to the east neighbour.
            if c + 1 < cols {
                let class = if r % 3 == 0 {
                    RoadClass::Arterial
                } else if r % 2 == 0 {
                    RoadClass::Collector
                } else {
                    RoadClass::Local
                };
                add_road(&mut net, node_ids[r][c], node_ids[r][c + 1], class);
            }
            // Vertical edge to the north neighbour.
            if r + 1 < rows {
                let class = if c % 3 == 0 {
                    RoadClass::Arterial
                } else if c % 2 == 0 {
                    RoadClass::Collector
                } else {
                    RoadClass::Local
                };
                add_road(&mut net, node_ids[r][c], node_ids[r + 1][c], class);
            }
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_road_matches_table_iii() {
        let road = red_road();
        let secs = red_road_sections();
        // Total length 2.16 km.
        let total: f64 = secs.iter().map(|s| s.length_m).sum();
        assert!((total - 2160.0).abs() < 1e-9);
        assert!((road.length() - 2160.0).abs() < 1.0);
        // Alternating gradient signs + − + − + − + at section midpoints.
        let mut s = 0.0;
        for (i, sec) in secs.iter().enumerate() {
            let mid = s + sec.length_m / 2.0;
            let th = road.gradient_at(mid);
            let expect_sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            assert!(th * expect_sign > 0.0, "section {i} gradient sign wrong: {th}");
            // Lane counts per Table III.
            let lanes_expect = [1, 1, 1, 1, 2, 2, 1][i];
            assert_eq!(road.lanes_at(mid), lanes_expect, "section {i} lanes");
            s += sec.length_m;
        }
    }

    #[test]
    fn red_road_gradient_magnitudes_match_spec() {
        let road = red_road();
        let secs = red_road_sections();
        let mut s = 0.0;
        for sec in &secs {
            let mid = s + sec.length_m / 2.0;
            assert!(
                (road.gradient_at(mid).to_degrees() - sec.gradient_deg).abs() < 0.1,
                "at {mid}"
            );
            s += sec.length_m;
        }
    }

    #[test]
    fn s_curve_geometry() {
        let road = s_curve_road(120.0, 45.0);
        // Heading returns to initial after the S.
        let h0 = road.heading_at(10.0);
        let h1 = road.heading_at(road.length() - 10.0);
        assert!((h0 - h1).abs() < 0.05, "{h0} vs {h1}");
        // Net lateral displacement much larger than a lane width.
        let start = road.point_at(0.0);
        let end = road.point_at(road.length());
        let lateral = (end - start).y.abs();
        assert!(lateral > 3.0 * 3.65, "lateral displacement {lateral}");
        // Curvature sign flips between the two arcs.
        let arc = 120.0 * 45.0f64.to_radians();
        let k1 = road.heading_rate_at(150.0 + arc / 2.0, 20.0);
        let k2 = road.heading_rate_at(150.0 + 1.5 * arc, 20.0);
        assert!(k1 > 0.0 && k2 < 0.0, "curvatures {k1} {k2}");
    }

    #[test]
    fn straight_road_flat_defaults() {
        let r = straight_road(500.0, 0.0);
        assert_eq!(r.gradient_at(250.0), 0.0);
        assert_eq!(r.lanes_at(250.0), 1);
    }

    #[test]
    fn city_network_scale_and_connectivity() {
        let net = city_network(42);
        assert_eq!(net.node_count(), 90);
        assert_eq!(net.edge_count(), 9 * 9 + 10 * 8);
        let km = net.total_length_km();
        assert!((150.0..185.0).contains(&km), "network is {km} km");
        assert!(net.is_connected());
    }

    #[test]
    fn city_network_is_deterministic() {
        let a = city_network(7);
        let b = city_network(7);
        assert_eq!(a.total_length_km(), b.total_length_km());
        let c = city_network(8);
        assert_ne!(a.total_length_km(), c.total_length_km());
    }

    #[test]
    fn city_network_gradients_are_plausible() {
        let net = city_network(42);
        let mut max_th: f64 = 0.0;
        for e in net.edges() {
            let mut s = 5.0;
            while s < e.road.length() {
                max_th = max_th.max(e.road.gradient_at(s).abs());
                s += 50.0;
            }
        }
        let deg = max_th.to_degrees();
        assert!(deg < 6.5, "max gradient {deg}°");
        assert!(deg > 1.0, "terrain should not be flat: {deg}°");
    }

    #[test]
    fn city_network_has_multi_lane_arterials() {
        let net = city_network(42);
        assert!(net
            .edges()
            .iter()
            .any(|e| e.road.class() == RoadClass::Arterial && e.road.lanes_at(100.0) >= 2));
    }

    #[test]
    fn city_network_routes_exist() {
        let net = city_network(42);
        let route =
            net.route_between(0, net.node_count() - 1, |r| r.length()).expect("grid is connected");
        // Corner to corner: at least the Manhattan distance.
        assert!(route.length() > 15_000.0);
    }
}

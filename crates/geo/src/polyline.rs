//! Arc-length-parameterized planar polylines.
//!
//! Road centerlines are polylines in the local metric frame. All queries
//! are by arc length `s` (metres from the start), which is also how the
//! vehicle simulator tracks progress along a route.

use gradest_math::angle::wrap_pi;
use gradest_math::Vec2;
use serde::{Deserialize, Serialize};

/// A planar polyline with cached cumulative arc length.
///
/// # Example
///
/// ```
/// use gradest_geo::Polyline;
/// use gradest_math::Vec2;
///
/// let line = Polyline::new(vec![
///     Vec2::new(0.0, 0.0),
///     Vec2::new(100.0, 0.0),
///     Vec2::new(100.0, 50.0),
/// ]).unwrap();
/// assert_eq!(line.length(), 150.0);
/// let p = line.point_at(125.0);
/// assert!((p - Vec2::new(100.0, 25.0)).norm() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<Vec2>,
    /// Cumulative arc length at each vertex; `cum[0] == 0`.
    cum: Vec<f64>,
}

/// Error building a polyline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolylineError {
    /// Fewer than two vertices were supplied.
    TooFewPoints,
    /// Two consecutive vertices coincide (zero-length segment).
    DegenerateSegment {
        /// Index of the first vertex of the degenerate segment.
        index: usize,
    },
    /// A vertex had a non-finite coordinate.
    NonFinitePoint {
        /// Index of the offending vertex.
        index: usize,
    },
}

impl std::fmt::Display for PolylineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolylineError::TooFewPoints => write!(f, "polyline needs at least 2 points"),
            PolylineError::DegenerateSegment { index } => {
                write!(f, "zero-length segment at vertex {index}")
            }
            PolylineError::NonFinitePoint { index } => {
                write!(f, "non-finite coordinate at vertex {index}")
            }
        }
    }
}

impl std::error::Error for PolylineError {}

impl Polyline {
    /// Builds a polyline from vertices.
    ///
    /// # Errors
    ///
    /// Returns [`PolylineError`] for fewer than two points, coincident
    /// consecutive points, or non-finite coordinates.
    pub fn new(points: Vec<Vec2>) -> Result<Self, PolylineError> {
        if points.len() < 2 {
            return Err(PolylineError::TooFewPoints);
        }
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(PolylineError::NonFinitePoint { index: i });
            }
        }
        let mut cum = Vec::with_capacity(points.len());
        cum.push(0.0);
        for (i, w) in points.windows(2).enumerate() {
            let d = (w[1] - w[0]).norm();
            if d <= 1e-9 {
                return Err(PolylineError::DegenerateSegment { index: i });
            }
            cum.push(cum[i] + d);
        }
        Ok(Polyline { points, cum })
    }

    /// Total arc length in metres.
    #[inline]
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("polyline has >= 2 points")
    }

    /// The vertices.
    #[inline]
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    /// Cumulative arc length at each vertex.
    #[inline]
    pub fn cumulative_lengths(&self) -> &[f64] {
        &self.cum
    }

    /// Index of the segment containing arc length `s` (clamped).
    fn segment_index(&self, s: f64) -> usize {
        if s <= 0.0 {
            return 0;
        }
        if s >= self.length() {
            return self.points.len() - 2;
        }
        match self.cum.binary_search_by(|v| v.total_cmp(&s)) {
            Ok(i) => i.min(self.points.len() - 2),
            Err(i) => i - 1,
        }
    }

    /// Position at arc length `s` (clamped to `[0, length]`).
    pub fn point_at(&self, s: f64) -> Vec2 {
        let i = self.segment_index(s);
        let seg_len = self.cum[i + 1] - self.cum[i];
        let t = ((s - self.cum[i]) / seg_len).clamp(0.0, 1.0);
        self.points[i].lerp(self.points[i + 1], t)
    }

    /// Heading (radians CCW from +x/East) of the segment at arc length `s`.
    pub fn heading_at(&self, s: f64) -> f64 {
        let i = self.segment_index(s);
        (self.points[i + 1] - self.points[i]).angle()
    }

    /// Unit tangent at arc length `s`.
    pub fn tangent_at(&self, s: f64) -> Vec2 {
        let i = self.segment_index(s);
        (self.points[i + 1] - self.points[i])
            .normalized()
            .expect("segments validated nondegenerate")
    }

    /// Signed curvature (1/m) at arc length `s`, estimated from the heading
    /// change between adjacent segments. Positive = turning left.
    ///
    /// Dividing the heading change at a vertex by the mean of the two
    /// adjacent segment lengths gives a consistent discrete estimate; the
    /// value is attributed to the whole following segment.
    pub fn curvature_at(&self, s: f64) -> f64 {
        let i = self.segment_index(s);
        if self.points.len() < 3 {
            return 0.0;
        }
        // Use the vertex at the start of segment i when available,
        // otherwise the end vertex.
        let v = if i > 0 { i } else { 1 };
        let h_prev = (self.points[v] - self.points[v - 1]).angle();
        let h_next = (self.points[v + 1] - self.points[v]).angle();
        let dh = wrap_pi(h_next - h_prev);
        let ds = 0.5 * ((self.cum[v] - self.cum[v - 1]) + (self.cum[v + 1] - self.cum[v]));
        dh / ds
    }

    /// Heading change rate with respect to arc length around `s`, computed
    /// over a symmetric window of `window` metres. This is `dψ/ds`; the
    /// road-direction change rate experienced by a vehicle at speed `v` is
    /// `w_road = v · dψ/ds`.
    pub fn heading_rate_at(&self, s: f64, window: f64) -> f64 {
        let w = window.max(1e-3);
        let s0 = (s - 0.5 * w).max(0.0);
        let s1 = (s + 0.5 * w).min(self.length());
        if s1 - s0 < 1e-9 {
            return 0.0;
        }
        // Headings are piecewise constant per segment, so attribute each to
        // its segment midpoint; dividing by the midpoint separation avoids
        // quantization bias when `window` is comparable to segment length.
        let i0 = self.segment_index(s0);
        let i1 = self.segment_index(s1);
        if i0 == i1 {
            return self.curvature_at(s);
        }
        let m0 = 0.5 * (self.cum[i0] + self.cum[i0 + 1]);
        let m1 = 0.5 * (self.cum[i1] + self.cum[i1 + 1]);
        let h0 = (self.points[i0 + 1] - self.points[i0]).angle();
        let h1 = (self.points[i1 + 1] - self.points[i1]).angle();
        wrap_pi(h1 - h0) / (m1 - m0)
    }

    /// Resamples the polyline at uniform arc-length spacing `ds`,
    /// always including the final point.
    ///
    /// # Panics
    ///
    /// Panics if `ds <= 0`.
    pub fn resample(&self, ds: f64) -> Vec<Vec2> {
        assert!(ds > 0.0, "resample spacing must be positive");
        let n = (self.length() / ds).floor() as usize;
        let mut out: Vec<Vec2> = (0..=n).map(|i| self.point_at(i as f64 * ds)).collect();
        let last = self.point_at(self.length());
        if (out.last().copied().expect("nonempty") - last).norm() > 1e-9 {
            out.push(last);
        }
        out
    }

    /// Concatenates another polyline whose first point must coincide with
    /// this polyline's last point (within `tol` metres).
    ///
    /// # Errors
    ///
    /// Returns [`PolylineError::DegenerateSegment`] if the endpoints do not
    /// match within `tol`.
    pub fn concat(&self, other: &Polyline, tol: f64) -> Result<Polyline, PolylineError> {
        let gap = (*other.points.first().expect("nonempty")
            - *self.points.last().expect("nonempty"))
        .norm();
        if gap > tol {
            return Err(PolylineError::DegenerateSegment { index: self.points.len() - 1 });
        }
        let mut pts = self.points.clone();
        pts.extend_from_slice(&other.points[1..]);
        Polyline::new(pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn l_shape() -> Polyline {
        Polyline::new(vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0), Vec2::new(100.0, 100.0)])
            .unwrap()
    }

    #[test]
    fn length_and_points() {
        let p = l_shape();
        assert_eq!(p.length(), 200.0);
        assert_eq!(p.points().len(), 3);
        assert_eq!(p.cumulative_lengths(), &[0.0, 100.0, 200.0]);
    }

    #[test]
    fn point_at_interpolates_and_clamps() {
        let p = l_shape();
        assert_eq!(p.point_at(50.0), Vec2::new(50.0, 0.0));
        assert_eq!(p.point_at(150.0), Vec2::new(100.0, 50.0));
        assert_eq!(p.point_at(-10.0), Vec2::new(0.0, 0.0));
        assert_eq!(p.point_at(500.0), Vec2::new(100.0, 100.0));
        // Exactly at a vertex.
        assert_eq!(p.point_at(100.0), Vec2::new(100.0, 0.0));
    }

    #[test]
    fn heading_and_tangent() {
        let p = l_shape();
        assert!((p.heading_at(50.0)).abs() < 1e-12);
        assert!((p.heading_at(150.0) - FRAC_PI_2).abs() < 1e-12);
        assert!((p.tangent_at(50.0) - Vec2::new(1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn curvature_straight_is_zero() {
        let p =
            Polyline::new(vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0), Vec2::new(20.0, 0.0)])
                .unwrap();
        assert_eq!(p.curvature_at(5.0), 0.0);
        assert_eq!(p.curvature_at(15.0), 0.0);
    }

    #[test]
    fn curvature_of_discretized_circle() {
        // Radius-50 circle discretized at 1°: curvature ≈ 1/50.
        let r = 50.0;
        let pts: Vec<Vec2> = (0..=90)
            .map(|i| {
                let a = (i as f64).to_radians();
                Vec2::new(r * a.cos(), r * a.sin())
            })
            .collect();
        let p = Polyline::new(pts).unwrap();
        let k = p.curvature_at(p.length() / 2.0);
        assert!((k - 1.0 / r).abs() < 1e-3, "curvature {k}");
    }

    #[test]
    fn heading_rate_on_circle() {
        let r = 50.0;
        let pts: Vec<Vec2> = (0..=180)
            .map(|i| {
                let a = (i as f64 * 0.5).to_radians();
                Vec2::new(r * a.cos(), r * a.sin())
            })
            .collect();
        let p = Polyline::new(pts).unwrap();
        let rate = p.heading_rate_at(p.length() / 2.0, 5.0);
        assert!((rate - 1.0 / r).abs() < 1e-3, "rate {rate}");
    }

    #[test]
    fn resample_spacing_and_endpoint() {
        let p = l_shape();
        let pts = p.resample(30.0);
        // 0,30,...,180 plus final point.
        assert_eq!(pts.len(), 8);
        assert_eq!(*pts.last().unwrap(), Vec2::new(100.0, 100.0));
        // Resampling is by arc length: chords across the corner are
        // shorter than the 30 m arc spacing, never longer.
        for w in pts.windows(2).take(6) {
            let chord = (w[1] - w[0]).norm();
            assert!(chord <= 30.0 + 1e-9, "chord {chord}");
        }
        // Straight stretches give exact spacing.
        assert!(((pts[1] - pts[0]).norm() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn concat_matching_endpoints() {
        let a = Polyline::new(vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)]).unwrap();
        let b = Polyline::new(vec![Vec2::new(10.0, 0.0), Vec2::new(10.0, 10.0)]).unwrap();
        let c = a.concat(&b, 1e-6).unwrap();
        assert_eq!(c.length(), 20.0);
        assert_eq!(c.points().len(), 3);
    }

    #[test]
    fn concat_rejects_gap() {
        let a = Polyline::new(vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)]).unwrap();
        let b = Polyline::new(vec![Vec2::new(11.0, 0.0), Vec2::new(20.0, 0.0)]).unwrap();
        assert!(a.concat(&b, 1e-6).is_err());
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Polyline::new(vec![Vec2::new(0.0, 0.0)]).unwrap_err(),
            PolylineError::TooFewPoints
        );
        assert!(matches!(
            Polyline::new(vec![Vec2::new(0.0, 0.0), Vec2::new(0.0, 0.0)]).unwrap_err(),
            PolylineError::DegenerateSegment { index: 0 }
        ));
        assert!(matches!(
            Polyline::new(vec![Vec2::new(0.0, 0.0), Vec2::new(f64::NAN, 0.0)]).unwrap_err(),
            PolylineError::NonFinitePoint { index: 1 }
        ));
    }
}

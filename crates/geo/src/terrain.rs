//! Analytic terrain (elevation) models.
//!
//! Procedurally generated road networks are draped over a terrain model:
//! the altitude profile of every road is the terrain sampled along its
//! centerline. A sum-of-sinusoids terrain produces the rolling-hills
//! elevation structure of a Virginia piedmont city, with full analytic
//! control over gradient magnitudes.

use gradest_math::Vec2;
use serde::{Deserialize, Serialize};

/// An elevation field over the local planar frame.
pub trait Terrain {
    /// Altitude in metres at planar position `p`.
    fn altitude(&self, p: Vec2) -> f64;

    /// Altitude gradient vector `(∂z/∂x, ∂z/∂y)` at `p`, by default from
    /// central differences with a 0.5 m step.
    fn gradient(&self, p: Vec2) -> Vec2 {
        let h = 0.5;
        let dzdx = (self.altitude(p + Vec2::new(h, 0.0)) - self.altitude(p - Vec2::new(h, 0.0)))
            / (2.0 * h);
        let dzdy = (self.altitude(p + Vec2::new(0.0, h)) - self.altitude(p - Vec2::new(0.0, h)))
            / (2.0 * h);
        Vec2::new(dzdx, dzdy)
    }

    /// Road gradient angle (radians) experienced travelling through `p`
    /// along unit direction `dir`: `atan(∇z · dir)`.
    fn slope_along(&self, p: Vec2, dir: Vec2) -> f64 {
        self.gradient(p).dot(dir).atan()
    }
}

/// Perfectly flat terrain at a fixed altitude.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlatTerrain {
    /// Constant altitude in metres.
    pub altitude_m: f64,
}

impl Terrain for FlatTerrain {
    fn altitude(&self, _p: Vec2) -> f64 {
        self.altitude_m
    }

    fn gradient(&self, _p: Vec2) -> Vec2 {
        Vec2::ZERO
    }
}

/// A constant-slope plane: `z = z0 + g · p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaneTerrain {
    /// Altitude at the origin.
    pub base_altitude_m: f64,
    /// Constant gradient vector (rise per metre east, per metre north).
    pub slope: Vec2,
}

impl Terrain for PlaneTerrain {
    fn altitude(&self, p: Vec2) -> f64 {
        self.base_altitude_m + self.slope.dot(p)
    }

    fn gradient(&self, _p: Vec2) -> Vec2 {
        self.slope
    }
}

/// One sinusoidal component of a [`SineTerrain`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SineComponent {
    /// Peak amplitude in metres.
    pub amplitude_m: f64,
    /// Spatial wave vector in rad/m (direction = ridge normal).
    pub wave_vector: Vec2,
    /// Phase offset in radians.
    pub phase: f64,
}

/// Rolling-hills terrain as a sum of sinusoids:
/// `z(p) = z0 + Σ A_i · sin(k_i · p + φ_i)`.
///
/// Analytic gradients make ground truth exact, and amplitude/wavelength
/// pairs directly control the maximum road gradient
/// (`max slope = Σ A_i·|k_i|`).
///
/// # Example
///
/// ```
/// use gradest_geo::terrain::{hilly_terrain, Terrain};
/// use gradest_math::Vec2;
///
/// let t = hilly_terrain(7);
/// // Maximum slope anywhere is bounded by the component budget (< 10%).
/// let g = t.gradient(Vec2::new(123.0, -456.0));
/// assert!(g.norm() < 0.10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SineTerrain {
    /// Altitude offset in metres.
    pub base_altitude_m: f64,
    /// The sinusoidal components.
    pub components: Vec<SineComponent>,
}

impl SineTerrain {
    /// Upper bound on `|∇z|` anywhere: `Σ A_i · |k_i|`.
    pub fn max_slope(&self) -> f64 {
        self.components.iter().map(|c| c.amplitude_m.abs() * c.wave_vector.norm()).sum()
    }
}

impl Terrain for SineTerrain {
    fn altitude(&self, p: Vec2) -> f64 {
        self.base_altitude_m
            + self
                .components
                .iter()
                .map(|c| c.amplitude_m * (c.wave_vector.dot(p) + c.phase).sin())
                .sum::<f64>()
    }

    fn gradient(&self, p: Vec2) -> Vec2 {
        let mut g = Vec2::ZERO;
        for c in &self.components {
            let arg = c.wave_vector.dot(p) + c.phase;
            g += c.wave_vector * (c.amplitude_m * arg.cos());
        }
        g
    }
}

/// A Charlottesville-like rolling-hills terrain, deterministic in `seed`.
///
/// Components span wavelengths from ~600 m to ~3 km with amplitudes that
/// keep the total slope budget under ~9.5 % (≈ 5.4°), matching the road
/// gradients the paper's motivating studies discuss (0°–5°).
pub fn hilly_terrain(seed: u64) -> SineTerrain {
    // Small deterministic LCG so the terrain is reproducible without
    // dragging `rand` into this crate's public behaviour.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (u32::MAX as f64) // in [0, 1)
    };
    let wavelengths = [3000.0, 1700.0, 900.0, 600.0];
    // Per-component slope budget (dimensionless rise/run); sums to 0.095.
    let slope_budget = [0.040, 0.028, 0.017, 0.010];
    let components = wavelengths
        .iter()
        .zip(slope_budget)
        .map(|(&wl, budget)| {
            let k = 2.0 * std::f64::consts::PI / wl;
            let dir = 2.0 * std::f64::consts::PI * next();
            SineComponent {
                amplitude_m: budget / k,
                wave_vector: Vec2::from_angle(dir) * k,
                phase: 2.0 * std::f64::consts::PI * next(),
            }
        })
        .collect();
    SineTerrain { base_altitude_m: 180.0, components }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_terrain_everywhere_equal() {
        let t = FlatTerrain { altitude_m: 12.0 };
        assert_eq!(t.altitude(Vec2::new(100.0, -50.0)), 12.0);
        assert_eq!(t.gradient(Vec2::ZERO), Vec2::ZERO);
        assert_eq!(t.slope_along(Vec2::ZERO, Vec2::new(1.0, 0.0)), 0.0);
    }

    #[test]
    fn plane_terrain_gradient_and_slope() {
        let t = PlaneTerrain { base_altitude_m: 0.0, slope: Vec2::new(0.05, 0.0) };
        assert_eq!(t.altitude(Vec2::new(100.0, 0.0)), 5.0);
        // Slope along +x is atan(0.05).
        let th = t.slope_along(Vec2::ZERO, Vec2::new(1.0, 0.0));
        assert!((th - 0.05f64.atan()).abs() < 1e-12);
        // Slope along y (perpendicular) is zero.
        assert_eq!(t.slope_along(Vec2::ZERO, Vec2::new(0.0, 1.0)), 0.0);
        // Downhill direction is negative.
        assert!(t.slope_along(Vec2::ZERO, Vec2::new(-1.0, 0.0)) < 0.0);
    }

    #[test]
    fn sine_terrain_analytic_gradient_matches_numeric() {
        let t = hilly_terrain(42);
        for &(x, y) in &[(0.0, 0.0), (312.0, -881.0), (5000.0, 7000.0)] {
            let p = Vec2::new(x, y);
            let analytic = t.gradient(p);
            // Default-trait numeric gradient.
            let h = 0.5;
            let numeric = Vec2::new(
                (t.altitude(p + Vec2::new(h, 0.0)) - t.altitude(p - Vec2::new(h, 0.0))) / (2.0 * h),
                (t.altitude(p + Vec2::new(0.0, h)) - t.altitude(p - Vec2::new(0.0, h))) / (2.0 * h),
            );
            assert!((analytic - numeric).norm() < 1e-6, "at {p:?}");
        }
    }

    #[test]
    fn hilly_terrain_slope_budget() {
        let t = hilly_terrain(7);
        assert!((t.max_slope() - 0.095).abs() < 1e-9);
        // Sample a grid and confirm the bound holds empirically.
        for i in -10..10 {
            for j in -10..10 {
                let p = Vec2::new(i as f64 * 487.0, j as f64 * 533.0);
                assert!(t.gradient(p).norm() <= t.max_slope() + 1e-9);
            }
        }
    }

    #[test]
    fn hilly_terrain_deterministic_in_seed() {
        let a = hilly_terrain(3);
        let b = hilly_terrain(3);
        let c = hilly_terrain(4);
        let p = Vec2::new(100.0, 200.0);
        assert_eq!(a.altitude(p), b.altitude(p));
        assert_ne!(a.altitude(p), c.altitude(p));
    }

    #[test]
    fn hilly_terrain_varies_in_space() {
        let t = hilly_terrain(1);
        let z0 = t.altitude(Vec2::ZERO);
        let z1 = t.altitude(Vec2::new(1500.0, 0.0));
        assert!((z0 - z1).abs() > 0.1, "terrain should undulate: {z0} vs {z1}");
    }
}

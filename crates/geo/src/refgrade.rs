//! Reference road-gradient profiling (the paper's Section III-D).
//!
//! The paper obtains ground truth by driving a high-accuracy altimeter
//! (±0.01 m) over the road, dividing it into 1 m segments, and computing
//! each segment's gradient as `arcsin(Δz/d)`. [`reference_profile`]
//! implements that method verbatim over a [`Road`]'s altitude profile, and
//! [`GradientProfile`] is the resulting queryable profile used as ground
//! truth by every experiment.

use crate::road::Road;
use crate::LatLon;
use gradest_math::interp::interp1;
use serde::{Deserialize, Serialize};

/// A gradient profile: θ(s) sampled along arc length.
///
/// # Example
///
/// ```
/// use gradest_geo::refgrade::GradientProfile;
/// let p = GradientProfile::new(vec![0.0, 100.0], vec![0.02, 0.04])?;
/// assert!((p.theta_at(50.0) - 0.03).abs() < 1e-12);
/// # Ok::<(), gradest_geo::refgrade::ProfileError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientProfile {
    s: Vec<f64>,
    theta: Vec<f64>,
}

/// Error building a [`GradientProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// Input was empty or lengths mismatched.
    BadShape,
    /// Arc lengths must be strictly increasing and finite.
    NotIncreasing,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::BadShape => write!(f, "profile arrays empty or mismatched"),
            ProfileError::NotIncreasing => {
                write!(f, "profile arc lengths must be strictly increasing")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

impl GradientProfile {
    /// Builds a profile from parallel `(s, θ)` arrays.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] for empty/mismatched arrays or
    /// non-increasing arc lengths.
    pub fn new(s: Vec<f64>, theta: Vec<f64>) -> Result<Self, ProfileError> {
        if s.is_empty() || s.len() != theta.len() {
            return Err(ProfileError::BadShape);
        }
        if s.windows(2).any(|w| w[0].is_nan() || w[1].is_nan() || w[1] <= w[0])
            || s.iter().any(|v| !v.is_finite())
        {
            return Err(ProfileError::NotIncreasing);
        }
        Ok(GradientProfile { s, theta })
    }

    /// Sample positions (arc length, metres).
    pub fn arc_lengths(&self) -> &[f64] {
        &self.s
    }

    /// Gradient values θ (radians) at the sample positions.
    pub fn thetas(&self) -> &[f64] {
        &self.theta
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// Always false (construction rejects empty profiles).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Gradient at arc length `s` by linear interpolation (clamped).
    pub fn theta_at(&self, s: f64) -> f64 {
        interp1(&self.s, &self.theta, s).expect("validated at construction")
    }

    /// Evaluates the profile at the given positions.
    pub fn sample_at(&self, positions: &[f64]) -> Vec<f64> {
        positions.iter().map(|&p| self.theta_at(p)).collect()
    }

    /// Integrates the profile back to an altitude gain over `[0, s]`,
    /// trapezoidal in `sin θ` per metre — the inverse of the Section III-D
    /// construction, useful for round-trip validation.
    pub fn altitude_gain(&self, s: f64) -> f64 {
        let s = s.clamp(self.s[0], *self.s.last().expect("nonempty"));
        let mut gain = 0.0;
        for i in 1..self.s.len() {
            let s0 = self.s[i - 1];
            let s1 = self.s[i].min(s);
            if s1 <= s0 {
                break;
            }
            let th0 = self.theta[i - 1];
            let th1 = self.theta_at(s1);
            gain += 0.5 * (th0.sin() + th1.sin()) * (s1 - s0);
            if self.s[i] >= s {
                break;
            }
        }
        gain
    }
}

/// Computes a reference gradient profile from altitude samples along a
/// road, the paper's Section III-D method: divide into `segment_len`-metre
/// segments, gradient = `arcsin(Δz/d)` per segment.
///
/// `altitude_noise` simulates the altimeter's accuracy (the paper's device
/// is ±0.01 m); pass a closure returning per-sample noise (e.g. from a
/// seeded RNG), or `|_| 0.0` for exact truth.
///
/// The returned profile places each segment's gradient at the segment
/// midpoint.
///
/// # Panics
///
/// Panics if `segment_len <= 0` or the road is shorter than one segment.
pub fn reference_profile(
    road: &Road,
    segment_len: f64,
    mut altitude_noise: impl FnMut(usize) -> f64,
) -> GradientProfile {
    assert!(segment_len > 0.0, "segment length must be positive");
    let n = (road.length() / segment_len).floor() as usize;
    assert!(n >= 1, "road shorter than one segment");
    let mut s = Vec::with_capacity(n);
    let mut theta = Vec::with_capacity(n);
    let mut z_prev = road.altitude_at(0.0) + altitude_noise(0);
    for i in 0..n {
        let s1 = (i + 1) as f64 * segment_len;
        let z1 = road.altitude_at(s1) + altitude_noise(i + 1);
        let ratio = ((z1 - z_prev) / segment_len).clamp(-1.0, 1.0);
        theta.push(ratio.asin());
        s.push((i as f64 + 0.5) * segment_len);
        z_prev = z1;
    }
    GradientProfile::new(s, theta).expect("constructed increasing")
}

/// Summary statistics of a gradient profile — the "route difficulty"
/// numbers an eco-routing or fleet UI reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileStats {
    /// Maximum gradient, radians.
    pub max_theta: f64,
    /// Minimum (most negative) gradient, radians.
    pub min_theta: f64,
    /// Mean |gradient|, radians.
    pub mean_abs_theta: f64,
    /// Total climb (sum of positive altitude deltas), metres.
    pub total_climb_m: f64,
    /// Total descent (sum of negative altitude deltas, positive number),
    /// metres.
    pub total_descent_m: f64,
    /// Fraction of the profile steeper than 2° (either sign).
    pub steep_fraction: f64,
}

impl GradientProfile {
    /// Computes summary statistics over the profile.
    pub fn stats(&self) -> ProfileStats {
        let mut max_theta = f64::MIN;
        let mut min_theta = f64::MAX;
        let mut abs_sum = 0.0;
        let mut climb = 0.0;
        let mut descent = 0.0;
        let mut steep = 0usize;
        let steep_thresh = 2.0f64.to_radians();
        for i in 0..self.theta.len() {
            let th = self.theta[i];
            max_theta = max_theta.max(th);
            min_theta = min_theta.min(th);
            abs_sum += th.abs();
            if th.abs() > steep_thresh {
                steep += 1;
            }
            if i + 1 < self.s.len() {
                let ds = self.s[i + 1] - self.s[i];
                let dz = th.sin() * ds;
                if dz > 0.0 {
                    climb += dz;
                } else {
                    descent -= dz;
                }
            }
        }
        ProfileStats {
            max_theta,
            min_theta,
            mean_abs_theta: abs_sum / self.theta.len() as f64,
            total_climb_m: climb,
            total_descent_m: descent,
            steep_fraction: steep as f64 / self.theta.len() as f64,
        }
    }
}

/// The paper's road-segment direction formula (Section III-D): the angle of
/// the segment from start `S` to end `E` "relative to the earth East
/// direction", computed as `arctan((λ_E − λ_S)/(φ_E − φ_S))` over raw
/// latitude/longitude differences.
///
/// Note: the formula as printed measures the angle from **North** in
/// lat/lon space; it matches East-referenced bearings only up to the
/// longitude-compression factor `cos φ`. We implement it verbatim for
/// fidelity; for metrically correct bearings use
/// [`LatLon::bearing_from_east`].
pub fn paper_segment_direction(start: LatLon, end: LatLon) -> f64 {
    (end.lon_deg - start.lon_deg).atan2(end.lat_deg - start.lat_deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::{build_from_sections, RoadClass, SectionSpec};
    use gradest_math::Vec2;

    fn hill_road() -> Road {
        build_from_sections(
            1,
            "hill",
            Vec2::ZERO,
            0.0,
            &[
                SectionSpec { length_m: 500.0, gradient_deg: 3.0, lanes: 1, curvature: 0.0 },
                SectionSpec { length_m: 500.0, gradient_deg: -2.0, lanes: 1, curvature: 0.0 },
            ],
            5.0,
            100.0,
            13.0,
            RoadClass::Collector,
        )
        .unwrap()
    }

    #[test]
    fn profile_construction_and_query() {
        let p = GradientProfile::new(vec![0.0, 10.0, 20.0], vec![0.0, 0.1, 0.0]).unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.theta_at(5.0) - 0.05).abs() < 1e-12);
        assert_eq!(p.theta_at(-1.0), 0.0);
        assert_eq!(p.theta_at(100.0), 0.0);
        assert_eq!(p.sample_at(&[0.0, 10.0]), vec![0.0, 0.1]);
    }

    #[test]
    fn profile_validation() {
        assert_eq!(GradientProfile::new(vec![], vec![]).unwrap_err(), ProfileError::BadShape);
        assert_eq!(
            GradientProfile::new(vec![0.0], vec![0.0, 1.0]).unwrap_err(),
            ProfileError::BadShape
        );
        assert_eq!(
            GradientProfile::new(vec![0.0, 0.0], vec![0.0, 1.0]).unwrap_err(),
            ProfileError::NotIncreasing
        );
    }

    #[test]
    fn reference_profile_recovers_section_gradients() {
        let road = hill_road();
        let p = reference_profile(&road, 1.0, |_| 0.0);
        // Midpoint of the uphill section.
        let th_up = p.theta_at(250.0);
        assert!((th_up.to_degrees() - 3.0).abs() < 0.1, "{}", th_up.to_degrees());
        let th_down = p.theta_at(750.0);
        assert!((th_down.to_degrees() + 2.0).abs() < 0.1, "{}", th_down.to_degrees());
        // ~1000 one-metre segments.
        assert_eq!(p.len(), 1000);
    }

    #[test]
    fn reference_profile_with_altimeter_noise_stays_close() {
        let road = hill_road();
        // ±0.01 m deterministic pseudo-noise.
        let p = reference_profile(&road, 1.0, |i| if i % 2 == 0 { 0.01 } else { -0.01 });
        // Per-segment error bounded by asin(0.02/1) ≈ 1.15°; the mean over
        // the section is far smaller.
        let mid: Vec<f64> = (200..300).map(|i| p.theta_at(i as f64)).collect();
        let mean = mid.iter().sum::<f64>() / mid.len() as f64;
        assert!((mean.to_degrees() - 3.0).abs() < 0.2, "{}", mean.to_degrees());
    }

    #[test]
    fn altitude_gain_round_trip() {
        let road = hill_road();
        let p = reference_profile(&road, 1.0, |_| 0.0);
        let gain = p.altitude_gain(1000.0);
        let truth = road.altitude_at(1000.0) - road.altitude_at(0.0);
        assert!((gain - truth).abs() < 0.5, "gain {gain} vs {truth}");
    }

    #[test]
    fn stats_of_the_red_road() {
        use crate::generate::red_road;
        let road = red_road();
        let p = reference_profile(&road, 1.0, |_| 0.0);
        let st = p.stats();
        // Steepest section is +3.4°, most negative −2.6°.
        assert!((st.max_theta.to_degrees() - 3.4).abs() < 0.2, "{}", st.max_theta.to_degrees());
        assert!((st.min_theta.to_degrees() + 2.6).abs() < 0.2);
        // Climb = sum of uphill section gains.
        let expect_climb: f64 = [320.0 * 2.8f64, 340.0 * 3.4, 330.0 * 2.4, 300.0 * 1.9]
            .iter()
            .zip([320.0, 340.0, 330.0, 300.0])
            .map(|(lg, len): (&f64, f64)| (lg / len).to_radians().tan() * len)
            .sum();
        assert!(
            (st.total_climb_m - expect_climb).abs() < 2.0,
            "climb {} vs {}",
            st.total_climb_m,
            expect_climb
        );
        assert!(st.total_descent_m > 10.0);
        // Most of the road is steeper than 2°.
        assert!(st.steep_fraction > 0.5, "{}", st.steep_fraction);
        assert!(st.mean_abs_theta > 0.02);
    }

    #[test]
    fn stats_of_a_flat_profile() {
        let p = GradientProfile::new(vec![0.0, 100.0, 200.0], vec![0.0, 0.0, 0.0]).unwrap();
        let st = p.stats();
        assert_eq!(st.total_climb_m, 0.0);
        assert_eq!(st.total_descent_m, 0.0);
        assert_eq!(st.steep_fraction, 0.0);
        assert_eq!(st.mean_abs_theta, 0.0);
    }

    #[test]
    fn paper_direction_formula_cardinals() {
        let s = LatLon::new(38.0, -78.0);
        // Due north: Δλ = 0, Δφ > 0 → 0 by the paper's formula.
        assert_eq!(paper_segment_direction(s, LatLon::new(38.1, -78.0)), 0.0);
        // Due east: Δφ = 0, Δλ > 0 → π/2.
        let d = paper_segment_direction(s, LatLon::new(38.0, -77.9));
        assert!((d - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "segment length")]
    fn reference_profile_rejects_bad_segment() {
        let road = hill_road();
        let _ = reference_profile(&road, 0.0, |_| 0.0);
    }
}

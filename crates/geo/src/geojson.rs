//! GeoJSON export of networks, routes, and gradient maps.
//!
//! The paper's Figures 7, 9(a), and 10 are maps; this module serializes
//! the corresponding data as GeoJSON `FeatureCollection`s so any GIS tool
//! (QGIS, kepler.gl, geojson.io) can render them.

use crate::latlon::LocalFrame;
use crate::road::Road;
use crate::route::Route;
use crate::RoadNetwork;
use serde::Serialize;
use serde_json::{json, Value};

/// Properties attached to each exported road feature.
#[derive(Debug, Clone, Serialize)]
struct RoadProperties {
    id: u64,
    name: String,
    class: String,
    lanes: u32,
    length_m: f64,
    mean_gradient_deg: f64,
    /// Optional numeric overlay (fuel, emission, estimated gradient, …).
    #[serde(skip_serializing_if = "Option::is_none")]
    value: Option<f64>,
}

fn road_coordinates(road: &Road, frame: &LocalFrame) -> Vec<[f64; 2]> {
    road.centerline()
        .points()
        .iter()
        .map(|&p| {
            let ll = frame.to_latlon(p);
            [ll.lon_deg, ll.lat_deg] // GeoJSON is [lon, lat]
        })
        .collect()
}

fn mean_gradient_deg(road: &Road) -> f64 {
    let mut s = 5.0;
    let (mut acc, mut n) = (0.0, 0usize);
    while s < road.length() {
        acc += road.gradient_at(s);
        n += 1;
        s += 25.0;
    }
    if n == 0 {
        0.0
    } else {
        (acc / n as f64).to_degrees()
    }
}

fn road_feature(road: &Road, frame: &LocalFrame, value: Option<f64>) -> Value {
    json!({
        "type": "Feature",
        "geometry": {
            "type": "LineString",
            "coordinates": road_coordinates(road, frame),
        },
        "properties": RoadProperties {
            id: road.id(),
            name: road.name().to_string(),
            class: format!("{:?}", road.class()),
            lanes: road.lanes_at(road.length() / 2.0),
            length_m: road.length(),
            mean_gradient_deg: mean_gradient_deg(road),
            value,
        },
    })
}

/// Exports a network as a GeoJSON `FeatureCollection` of `LineString`s,
/// georeferenced through `frame`. `overlay` supplies an optional numeric
/// property per road (e.g. a fuel rate) keyed by edge index.
pub fn network_to_geojson(
    network: &RoadNetwork,
    frame: &LocalFrame,
    overlay: impl Fn(usize, &Road) -> Option<f64>,
) -> String {
    let features: Vec<Value> = network
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| road_feature(&e.road, frame, overlay(i, &e.road)))
        .collect();
    json!({
        "type": "FeatureCollection",
        "features": features,
    })
    .to_string()
}

/// Exports a route as a GeoJSON `FeatureCollection` (one feature per
/// constituent road, in travel order).
pub fn route_to_geojson(route: &Route, frame: &LocalFrame) -> String {
    let features: Vec<Value> = route.roads().iter().map(|r| road_feature(r, frame, None)).collect();
    json!({
        "type": "FeatureCollection",
        "features": features,
    })
    .to_string()
}

/// Exports a gradient profile along a route as a GeoJSON
/// `FeatureCollection` of `Point`s (one every `ds` metres), each carrying
/// a `theta_deg` property — the paper's Figure 9(a) colour-coded map as
/// data.
///
/// # Panics
///
/// Panics if `ds <= 0`.
pub fn gradient_points_geojson(
    route: &Route,
    frame: &LocalFrame,
    ds: f64,
    theta_at: impl Fn(f64) -> f64,
) -> String {
    assert!(ds > 0.0, "sample spacing must be positive");
    let mut features = Vec::new();
    let mut s = 0.0;
    while s <= route.length() {
        let ll = frame.to_latlon(route.point_at(s));
        features.push(json!({
            "type": "Feature",
            "geometry": { "type": "Point", "coordinates": [ll.lon_deg, ll.lat_deg] },
            "properties": { "s_m": s, "theta_deg": theta_at(s).to_degrees() },
        }));
        s += ds;
    }
    json!({
        "type": "FeatureCollection",
        "features": features,
    })
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{city_network, red_road};
    use crate::LatLon;

    fn frame() -> LocalFrame {
        LocalFrame::new(LatLon::new(38.0293, -78.4767))
    }

    #[test]
    fn network_export_is_valid_json_with_all_edges() {
        let net = city_network(2);
        let s = network_to_geojson(&net, &frame(), |_, _| None);
        let v: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v["type"], "FeatureCollection");
        assert_eq!(v["features"].as_array().unwrap().len(), net.edge_count());
        let f0 = &v["features"][0];
        assert_eq!(f0["geometry"]["type"], "LineString");
        assert!(f0["properties"]["length_m"].as_f64().unwrap() > 0.0);
        // No overlay requested → property absent.
        assert!(f0["properties"].get("value").is_none());
    }

    #[test]
    fn overlay_values_are_attached() {
        let net = city_network(2);
        let s = network_to_geojson(&net, &frame(), |i, _| Some(i as f64 * 1.5));
        let v: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v["features"][2]["properties"]["value"], 3.0);
    }

    #[test]
    fn coordinates_are_lon_lat_near_anchor() {
        let net = city_network(2);
        let s = network_to_geojson(&net, &frame(), |_, _| None);
        let v: Value = serde_json::from_str(&s).unwrap();
        let c = v["features"][0]["geometry"]["coordinates"][0].as_array().unwrap();
        let lon = c[0].as_f64().unwrap();
        let lat = c[1].as_f64().unwrap();
        assert!((lat - 38.03).abs() < 0.3, "lat {lat}");
        assert!((lon + 78.48).abs() < 0.3, "lon {lon}");
    }

    #[test]
    fn route_and_gradient_points_export() {
        let route = Route::new(vec![red_road()]).unwrap();
        let r = route_to_geojson(&route, &frame());
        let v: Value = serde_json::from_str(&r).unwrap();
        assert_eq!(v["features"].as_array().unwrap().len(), 1);

        let pts = gradient_points_geojson(&route, &frame(), 100.0, |s| route.gradient_at(s));
        let v: Value = serde_json::from_str(&pts).unwrap();
        let feats = v["features"].as_array().unwrap();
        assert_eq!(feats.len(), 22); // 2160 m / 100 m + endpoint
        let theta0 = feats[1]["properties"]["theta_deg"].as_f64().unwrap();
        assert!((theta0 - 2.8).abs() < 0.2, "θ {theta0}");
    }
}

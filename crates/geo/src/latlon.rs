//! WGS-84 positions, great-circle helpers, and a local planar projection.
//!
//! GPS reports latitude/longitude; the estimation pipeline works in a local
//! metric frame. [`LocalFrame`] provides the (sub-centimetre at city scale)
//! equirectangular round trip between the two.

use gradest_math::angle::{deg_to_rad, rad_to_deg, wrap_pi};
use gradest_math::Vec2;
use serde::{Deserialize, Serialize};

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 latitude/longitude pair in degrees.
///
/// # Example
///
/// ```
/// use gradest_geo::LatLon;
/// let charlottesville = LatLon::new(38.0293, -78.4767);
/// let richmond = LatLon::new(37.5407, -77.4360);
/// let d = charlottesville.haversine_distance(richmond);
/// assert!((d / 1000.0 - 105.0).abs() < 5.0); // ~105 km
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, positive north.
    pub lat_deg: f64,
    /// Longitude in degrees, positive east.
    pub lon_deg: f64,
}

impl LatLon {
    /// Creates a position from degrees.
    ///
    /// # Panics
    ///
    /// Panics if latitude is outside `[-90, 90]` or either coordinate is
    /// not finite.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        assert!(
            lat_deg.is_finite() && lon_deg.is_finite() && (-90.0..=90.0).contains(&lat_deg),
            "invalid latitude/longitude: ({lat_deg}, {lon_deg})"
        );
        LatLon { lat_deg, lon_deg }
    }

    /// Great-circle (haversine) distance to `other` in metres.
    pub fn haversine_distance(self, other: LatLon) -> f64 {
        let phi1 = deg_to_rad(self.lat_deg);
        let phi2 = deg_to_rad(other.lat_deg);
        let dphi = phi2 - phi1;
        let dlambda = deg_to_rad(other.lon_deg - self.lon_deg);
        let a =
            (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Initial great-circle bearing towards `other`, in radians measured
    /// counter-clockwise from East (the paper's road-direction convention:
    /// "the angle of road segment relative to the earth East direction").
    pub fn bearing_from_east(self, other: LatLon) -> f64 {
        let phi1 = deg_to_rad(self.lat_deg);
        let phi2 = deg_to_rad(other.lat_deg);
        let dlambda = deg_to_rad(other.lon_deg - self.lon_deg);
        // Standard compass bearing (clockwise from North):
        let y = dlambda.sin() * phi2.cos();
        let x = phi1.cos() * phi2.sin() - phi1.sin() * phi2.cos() * dlambda.cos();
        let from_north_cw = y.atan2(x);
        // Convert to CCW-from-East.
        wrap_pi(std::f64::consts::FRAC_PI_2 - from_north_cw)
    }
}

/// A local tangent-plane frame anchored at a reference position.
///
/// Positions are projected with the equirectangular approximation, accurate
/// to well under a metre across a city-sized (tens of km) extent — far
/// below GPS noise. `x` points East, `y` points North.
///
/// # Example
///
/// ```
/// use gradest_geo::latlon::{LatLon, LocalFrame};
/// let frame = LocalFrame::new(LatLon::new(38.03, -78.48));
/// let p = frame.to_local(LatLon::new(38.04, -78.48));
/// assert!(p.x.abs() < 1e-6);          // due north => no east displacement
/// assert!((p.y - 1111.9).abs() < 2.0); // ~1.112 km per 0.01° latitude
/// let back = frame.to_latlon(p);
/// assert!((back.lat_deg - 38.04).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalFrame {
    origin: LatLon,
    cos_lat: f64,
}

impl LocalFrame {
    /// Creates a frame anchored at `origin`.
    pub fn new(origin: LatLon) -> Self {
        LocalFrame { origin, cos_lat: deg_to_rad(origin.lat_deg).cos() }
    }

    /// The anchor position.
    pub fn origin(&self) -> LatLon {
        self.origin
    }

    /// Projects a position into local metres (x East, y North).
    pub fn to_local(&self, p: LatLon) -> Vec2 {
        let dlat = deg_to_rad(p.lat_deg - self.origin.lat_deg);
        let dlon = deg_to_rad(p.lon_deg - self.origin.lon_deg);
        Vec2::new(EARTH_RADIUS_M * dlon * self.cos_lat, EARTH_RADIUS_M * dlat)
    }

    /// Unprojects local metres back to latitude/longitude.
    pub fn to_latlon(&self, p: Vec2) -> LatLon {
        let dlat = p.y / EARTH_RADIUS_M;
        let dlon = p.x / (EARTH_RADIUS_M * self.cos_lat);
        LatLon::new(self.origin.lat_deg + rad_to_deg(dlat), self.origin.lon_deg + rad_to_deg(dlon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn haversine_zero_for_same_point() {
        let p = LatLon::new(38.0, -78.0);
        assert_eq!(p.haversine_distance(p), 0.0);
    }

    #[test]
    fn haversine_symmetry() {
        let a = LatLon::new(38.0, -78.0);
        let b = LatLon::new(38.1, -78.2);
        assert!((a.haversine_distance(b) - b.haversine_distance(a)).abs() < 1e-9);
    }

    #[test]
    fn haversine_one_degree_latitude() {
        let a = LatLon::new(0.0, 0.0);
        let b = LatLon::new(1.0, 0.0);
        let d = a.haversine_distance(b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = LatLon::new(38.0, -78.0);
        let north = LatLon::new(38.01, -78.0);
        let east = LatLon::new(38.0, -77.99);
        let south = LatLon::new(37.99, -78.0);
        // Great-circle initial bearings along a parallel deviate from pure
        // East by ~sinφ·cosφ·Δλ/2 (≈4e-5 rad here); tolerate 1e-4.
        assert!((o.bearing_from_east(north) - FRAC_PI_2).abs() < 1e-4);
        assert!(o.bearing_from_east(east).abs() < 1e-4);
        let sb = o.bearing_from_east(south);
        assert!((sb + FRAC_PI_2).abs() < 1e-4, "south bearing {sb}");
    }

    #[test]
    fn bearing_west_is_pi() {
        let o = LatLon::new(38.0, -78.0);
        let west = LatLon::new(38.0, -78.01);
        let b = o.bearing_from_east(west);
        assert!((b.abs() - PI).abs() < 1e-4, "west bearing {b}");
    }

    #[test]
    fn local_frame_round_trip() {
        let frame = LocalFrame::new(LatLon::new(38.0293, -78.4767));
        for (dx, dy) in [(0.0, 0.0), (1000.0, -2000.0), (-500.0, 750.0), (20_000.0, 15_000.0)] {
            let p = Vec2::new(dx, dy);
            let ll = frame.to_latlon(p);
            let back = frame.to_local(ll);
            assert!((back - p).norm() < 1e-6, "round trip failed for {p:?}");
        }
    }

    #[test]
    fn local_frame_distance_matches_haversine() {
        let frame = LocalFrame::new(LatLon::new(38.0293, -78.4767));
        let a = frame.to_latlon(Vec2::new(0.0, 0.0));
        let b = frame.to_latlon(Vec2::new(3000.0, 4000.0));
        let planar = 5000.0;
        let sphere = a.haversine_distance(b);
        // Equirectangular error at 5 km scale should be < 5 m.
        assert!((sphere - planar).abs() < 5.0, "sphere {sphere}");
    }

    #[test]
    #[should_panic(expected = "invalid latitude")]
    fn invalid_latitude_panics() {
        let _ = LatLon::new(120.0, 0.0);
    }
}

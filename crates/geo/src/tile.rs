//! Bbox tile support for the ingestion service: a fixed-width wire
//! encoding of query bounds and a deterministic edge-set assembly over
//! [`NetworkIndex::edges_in_bbox`].
//!
//! The R-tree's bbox iterator yields edge ids in *traversal* order —
//! fast, but dependent on tree packing. A served tile must be
//! byte-stable (the soak test byte-compares service tiles against a
//! direct in-process aggregation), so [`edges_in_tile_into`] collects,
//! sorts, and dedups the ids into ascending order before anything is
//! encoded.

use crate::index::{Aabb, NetworkIndex, QueryScratch};

/// Wire width of an encoded tile bounds: four little-endian `f64`s
/// (`min_x`, `min_y`, `max_x`, `max_y`).
pub const TILE_BOUNDS_BYTES: usize = 32;

/// Appends the 32-byte little-endian encoding of `bounds` to `out`.
pub fn encode_tile_bounds(bounds: &Aabb, out: &mut Vec<u8>) {
    out.extend_from_slice(&bounds.min_x.to_le_bytes());
    out.extend_from_slice(&bounds.min_y.to_le_bytes());
    out.extend_from_slice(&bounds.max_x.to_le_bytes());
    out.extend_from_slice(&bounds.max_y.to_le_bytes());
}

/// Decodes a [`TILE_BOUNDS_BYTES`]-byte payload back into an [`Aabb`].
///
/// Returns `None` unless the payload is exactly 32 bytes and describes
/// a well-formed box: all four coordinates finite and `min <= max` on
/// both axes (NaNs fail the comparison and are rejected with the rest).
pub fn decode_tile_bounds(payload: &[u8]) -> Option<Aabb> {
    let (xs, rest) = payload.split_first_chunk::<8>()?;
    let (ys, rest) = rest.split_first_chunk::<8>()?;
    let (xe, rest) = rest.split_first_chunk::<8>()?;
    let (ye, rest) = rest.split_first_chunk::<8>()?;
    if !rest.is_empty() {
        return None;
    }
    let bounds = Aabb {
        min_x: f64::from_le_bytes(*xs),
        min_y: f64::from_le_bytes(*ys),
        max_x: f64::from_le_bytes(*xe),
        max_y: f64::from_le_bytes(*ye),
    };
    let finite = bounds.min_x.is_finite()
        && bounds.min_y.is_finite()
        && bounds.max_x.is_finite()
        && bounds.max_y.is_finite();
    if finite && bounds.min_x <= bounds.max_x && bounds.min_y <= bounds.max_y {
        Some(bounds)
    } else {
        None
    }
}

/// Collects the edge ids intersecting `query` into `out` in ascending
/// id order (sorted + deduped), clearing any previous contents.
///
/// Reuses both the traversal `scratch` and `out`'s capacity, so a warm
/// call over a previously-seen tile size allocates nothing.
pub fn edges_in_tile_into(
    index: &NetworkIndex,
    query: Aabb,
    scratch: &mut QueryScratch,
    out: &mut Vec<u32>,
) {
    out.clear();
    for edge in index.edges_in_bbox(query, scratch) {
        out.push(edge);
    }
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::city_network;

    #[test]
    fn bounds_roundtrip_is_exact() {
        let b = Aabb { min_x: -1234.5, min_y: 0.125, max_x: 9.75e3, max_y: 0.1 + 0.2 };
        let mut wire = Vec::new();
        encode_tile_bounds(&b, &mut wire);
        assert_eq!(wire.len(), TILE_BOUNDS_BYTES);
        let back = decode_tile_bounds(&wire).unwrap();
        assert_eq!(back.min_x.to_bits(), b.min_x.to_bits());
        assert_eq!(back.min_y.to_bits(), b.min_y.to_bits());
        assert_eq!(back.max_x.to_bits(), b.max_x.to_bits());
        assert_eq!(back.max_y.to_bits(), b.max_y.to_bits());
    }

    #[test]
    fn decode_rejects_malformed_bounds() {
        let b = Aabb { min_x: 0.0, min_y: 0.0, max_x: 10.0, max_y: 10.0 };
        let mut wire = Vec::new();
        encode_tile_bounds(&b, &mut wire);
        // Wrong length.
        assert!(decode_tile_bounds(&wire[..31]).is_none());
        let mut long = wire.clone();
        long.push(0);
        assert!(decode_tile_bounds(&long).is_none());
        // Inverted box (min_x > max_x).
        let inv = Aabb { min_x: 11.0, ..b };
        let mut wire = Vec::new();
        encode_tile_bounds(&inv, &mut wire);
        assert!(decode_tile_bounds(&wire).is_none());
        // NaN and infinity coordinates.
        for bad in [f64::NAN, f64::INFINITY] {
            let mut wire = Vec::new();
            encode_tile_bounds(&Aabb { max_y: bad, ..b }, &mut wire);
            assert!(decode_tile_bounds(&wire).is_none());
        }
    }

    #[test]
    fn tile_edges_are_sorted_dedup_and_match_iterator_set() {
        let net = city_network(7);
        let index = NetworkIndex::build(&net);
        let full = index.bounds();
        let query = Aabb {
            min_x: full.min_x,
            min_y: full.min_y,
            max_x: 0.5 * (full.min_x + full.max_x),
            max_y: 0.5 * (full.min_y + full.max_y),
        };
        let mut scratch = QueryScratch::new();
        let mut tile = Vec::new();
        edges_in_tile_into(&index, query, &mut scratch, &mut tile);
        assert!(!tile.is_empty(), "quadrant query must hit edges");
        assert!(tile.windows(2).all(|w| w[0] < w[1]), "ids strictly ascending");
        let mut raw: Vec<u32> = index.edges_in_bbox(query, &mut scratch).collect();
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(tile, raw);
        // Warm reuse keeps prior capacity and produces the same tile.
        let first = tile.clone();
        edges_in_tile_into(&index, query, &mut scratch, &mut tile);
        assert_eq!(tile, first);
    }
}

//! Routes: drivable concatenations of roads.
//!
//! A [`Route`] maps trip arc length (metres from departure) onto road
//! geometry, altitude, gradient, and lane count — everything the vehicle
//! simulator and the ground-truth profiler need.

use crate::road::Road;
use gradest_math::Vec2;
use serde::{Deserialize, Serialize};

/// Error building a route.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// No roads were supplied.
    Empty,
    /// Consecutive roads do not share an endpoint (gap in metres).
    Discontinuity {
        /// Index of the first road of the mismatched pair.
        index: usize,
        /// Gap size in metres.
        gap_m: f64,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Empty => write!(f, "route needs at least one road"),
            RouteError::Discontinuity { index, gap_m } => {
                write!(f, "roads {index} and {} do not connect (gap {gap_m:.2} m)", index + 1)
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A connected sequence of roads, addressed by trip arc length.
///
/// # Example
///
/// ```
/// use gradest_geo::generate::red_road;
/// use gradest_geo::Route;
///
/// let route = Route::new(vec![red_road()])?;
/// assert!((route.length() - 2160.0).abs() < 1.0);
/// let (road_idx, s_on_road) = route.locate(1000.0);
/// assert_eq!(road_idx, 0);
/// assert!((s_on_road - 1000.0).abs() < 1e-9);
/// # Ok::<(), gradest_geo::route::RouteError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    roads: Vec<Road>,
    /// Trip arc length at the start of each road; one extra entry with the
    /// total length.
    offsets: Vec<f64>,
}

/// Maximum endpoint gap tolerated between consecutive roads, metres.
const CONNECT_TOL_M: f64 = 0.5;

impl Route {
    /// Builds a route from roads that connect end-to-start.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Empty`] for no roads and
    /// [`RouteError::Discontinuity`] when consecutive roads do not share an
    /// endpoint within 0.5 m.
    pub fn new(roads: Vec<Road>) -> Result<Self, RouteError> {
        if roads.is_empty() {
            return Err(RouteError::Empty);
        }
        for (i, pair) in roads.windows(2).enumerate() {
            let end = pair[0].point_at(pair[0].length());
            let start = pair[1].point_at(0.0);
            let gap = (end - start).norm();
            if gap > CONNECT_TOL_M {
                return Err(RouteError::Discontinuity { index: i, gap_m: gap });
            }
        }
        let mut offsets = Vec::with_capacity(roads.len() + 1);
        let mut acc = 0.0;
        for r in &roads {
            offsets.push(acc);
            acc += r.length();
        }
        offsets.push(acc);
        Ok(Route { roads, offsets })
    }

    /// The constituent roads, in travel order.
    pub fn roads(&self) -> &[Road] {
        &self.roads
    }

    /// Trip arc length at the start of each road, plus one trailing
    /// entry with the total length (`offsets().len() == roads().len() + 1`).
    ///
    /// Exposed so callers that already walk the road sequence (the
    /// exact-projection map matcher) can resolve road spans without a
    /// [`Route::locate`] binary search per query.
    pub fn offsets(&self) -> &[f64] {
        &self.offsets
    }

    /// Total trip length in metres.
    pub fn length(&self) -> f64 {
        // offsets always holds roads+1 entries; 0.0 for the impossible
        // empty case keeps this panic-free on the matcher hot path.
        self.offsets.last().copied().unwrap_or(0.0)
    }

    /// Maps trip arc length to `(road index, arc length on that road)`.
    /// Input is clamped to `[0, length]`.
    pub fn locate(&self, s: f64) -> (usize, f64) {
        let s = s.clamp(0.0, self.length());
        // offsets = [0, l0, l0+l1, ..., total]; find the road whose span
        // contains s.
        let idx = match self.offsets.binary_search_by(|v| v.total_cmp(&s)) {
            Ok(i) => i.min(self.roads.len() - 1),
            Err(i) => i - 1,
        };
        (idx, s - self.offsets[idx])
    }

    /// Planar position at trip arc length `s`.
    pub fn point_at(&self, s: f64) -> Vec2 {
        let (i, sr) = self.locate(s);
        self.roads[i].point_at(sr)
    }

    /// Heading at trip arc length `s` (radians CCW from East).
    pub fn heading_at(&self, s: f64) -> f64 {
        let (i, sr) = self.locate(s);
        self.roads[i].heading_at(sr)
    }

    /// Heading change per metre at `s`, over a `window`-metre baseline.
    pub fn heading_rate_at(&self, s: f64, window: f64) -> f64 {
        let (i, sr) = self.locate(s);
        self.roads[i].heading_rate_at(sr, window)
    }

    /// [`Route::heading_rate_at`] for a position already resolved to
    /// `(road index, arc length on that road)` — skips the offset
    /// binary search that `locate` would repeat. Out-of-range road
    /// indices yield 0 (straight).
    pub fn heading_rate_located(&self, road: usize, s_on_road: f64, window: f64) -> f64 {
        self.roads.get(road).map(|r| r.heading_rate_at(s_on_road, window)).unwrap_or(0.0)
    }

    /// Altitude at trip arc length `s`.
    pub fn altitude_at(&self, s: f64) -> f64 {
        let (i, sr) = self.locate(s);
        self.roads[i].altitude_at(sr)
    }

    /// Ground-truth road gradient angle θ (radians) at trip arc length `s`.
    pub fn gradient_at(&self, s: f64) -> f64 {
        let (i, sr) = self.locate(s);
        self.roads[i].gradient_at(sr)
    }

    /// Lane count at trip arc length `s`.
    pub fn lanes_at(&self, s: f64) -> u32 {
        let (i, sr) = self.locate(s);
        self.roads[i].lanes_at(sr)
    }

    /// Speed limit at trip arc length `s`, m/s.
    pub fn speed_limit_at(&self, s: f64) -> f64 {
        let (i, _) = self.locate(s);
        self.roads[i].speed_limit()
    }

    /// Samples the ground-truth gradient every `ds` metres, returning
    /// `(s, θ)` pairs (always including the final point).
    ///
    /// # Panics
    ///
    /// Panics if `ds <= 0`.
    pub fn gradient_samples(&self, ds: f64) -> Vec<(f64, f64)> {
        assert!(ds > 0.0, "sample spacing must be positive");
        let n = (self.length() / ds).floor() as usize;
        let mut out: Vec<(f64, f64)> =
            (0..=n).map(|i| (i as f64 * ds, self.gradient_at(i as f64 * ds))).collect();
        if out.last().map(|p| p.0) != Some(self.length()) {
            out.push((self.length(), self.gradient_at(self.length())));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::{build_from_sections, RoadClass, SectionSpec};
    use gradest_math::Vec2;

    fn seg(id: u64, origin: Vec2, heading: f64, grade: f64, lanes: u32) -> Road {
        build_from_sections(
            id,
            format!("r{id}"),
            origin,
            heading,
            &[SectionSpec { length_m: 500.0, gradient_deg: grade, lanes, curvature: 0.0 }],
            10.0,
            100.0,
            13.0,
            RoadClass::Collector,
        )
        .unwrap()
    }

    #[test]
    fn two_road_route() {
        let a = seg(1, Vec2::ZERO, 0.0, 2.0, 1);
        let end = a.point_at(a.length());
        let b = seg(2, end, 0.0, -3.0, 2);
        let route = Route::new(vec![a, b]).unwrap();
        assert!((route.length() - 1000.0).abs() < 1e-6);
        assert_eq!(route.locate(250.0).0, 0);
        assert_eq!(route.locate(750.0).0, 1);
        assert!(route.gradient_at(250.0) > 0.0);
        assert!(route.gradient_at(750.0) < 0.0);
        assert_eq!(route.lanes_at(250.0), 1);
        assert_eq!(route.lanes_at(750.0), 2);
    }

    #[test]
    fn locate_clamps_and_handles_boundaries() {
        let a = seg(1, Vec2::ZERO, 0.0, 0.0, 1);
        let route = Route::new(vec![a]).unwrap();
        assert_eq!(route.locate(-5.0), (0, 0.0));
        let (i, s) = route.locate(1e9);
        assert_eq!(i, 0);
        assert!((s - 500.0).abs() < 1e-6);
        // Exactly at the boundary of the only road.
        let (i, s) = route.locate(500.0);
        assert_eq!(i, 0);
        assert!((s - 500.0).abs() < 1e-6);
    }

    #[test]
    fn boundary_between_roads_belongs_to_second() {
        let a = seg(1, Vec2::ZERO, 0.0, 1.0, 1);
        let end = a.point_at(a.length());
        let b = seg(2, end, 0.0, -1.0, 1);
        let route = Route::new(vec![a, b]).unwrap();
        let (i, s) = route.locate(500.0);
        assert_eq!(i, 1);
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn discontinuous_roads_rejected() {
        let a = seg(1, Vec2::ZERO, 0.0, 0.0, 1);
        let b = seg(2, Vec2::new(10_000.0, 0.0), 0.0, 0.0, 1);
        let err = Route::new(vec![a, b]).unwrap_err();
        assert!(matches!(err, RouteError::Discontinuity { index: 0, .. }));
        assert!(Route::new(vec![]).is_err());
    }

    #[test]
    fn gradient_samples_cover_route() {
        let a = seg(1, Vec2::ZERO, 0.0, 2.0, 1);
        let route = Route::new(vec![a]).unwrap();
        let samples = route.gradient_samples(50.0);
        assert_eq!(samples.first().unwrap().0, 0.0);
        assert!((samples.last().unwrap().0 - 500.0).abs() < 1e-9);
        for (s, th) in &samples {
            assert!((th - route.gradient_at(*s)).abs() < 1e-12);
        }
    }

    #[test]
    fn altitude_is_continuous_across_roads() {
        let a = seg(1, Vec2::ZERO, 0.0, 2.0, 1);
        let end = a.point_at(a.length());
        let end_alt = a.altitude_at(a.length());
        // Build b starting from a's end altitude.
        let b = build_from_sections(
            2,
            "b",
            end,
            0.0,
            &[SectionSpec { length_m: 500.0, gradient_deg: -2.0, lanes: 1, curvature: 0.0 }],
            10.0,
            end_alt,
            13.0,
            RoadClass::Collector,
        )
        .unwrap();
        let route = Route::new(vec![a, b]).unwrap();
        let before = route.altitude_at(499.9);
        let after = route.altitude_at(500.1);
        assert!((before - after).abs() < 0.1);
    }
}

//! Road-network graphs with shortest-path routing.
//!
//! The large-scale experiments (Figures 9 and 10) run over a whole city's
//! road network; eco-routing (the paper's motivating application) needs
//! cost-parameterized shortest paths over the same graph.

use crate::road::Road;
use crate::route::{Route, RouteError};
use gradest_math::Vec2;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An edge of the network: a road connecting two node indices. The road's
/// geometry runs from node `a` to node `b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkEdge {
    /// Tail node index (road start).
    pub a: usize,
    /// Head node index (road end).
    pub b: usize,
    /// The road geometry and attributes.
    pub road: Road,
}

/// Errors mutating or querying a [`RoadNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// A node index was out of range.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
    },
    /// The road's endpoints do not coincide with the given nodes.
    EndpointMismatch {
        /// Distance between road start and node `a`, metres.
        gap_a: f64,
        /// Distance between road end and node `b`, metres.
        gap_b: f64,
    },
    /// A route assembly failed (should not happen for well-formed graphs).
    Route(RouteError),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::NodeOutOfRange { index } => write!(f, "node {index} out of range"),
            NetworkError::EndpointMismatch { gap_a, gap_b } => {
                write!(f, "road endpoints miss nodes by {gap_a:.2} m / {gap_b:.2} m")
            }
            NetworkError::Route(e) => write!(f, "route assembly failed: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<RouteError> for NetworkError {
    fn from(e: RouteError) -> Self {
        NetworkError::Route(e)
    }
}

/// Tolerance for matching road endpoints to node positions, metres.
const NODE_TOL_M: f64 = 1.0;

/// An undirected road network: roads are stored once and traversable in
/// both directions (a reversed [`Road`] is materialized when routing
/// backwards over an edge).
///
/// # Example
///
/// ```
/// use gradest_geo::generate::city_network;
///
/// let net = city_network(11);
/// assert!(net.total_length_km() > 100.0);
/// let route = net.route_between(0, net.node_count() - 1, |r| r.length()).unwrap();
/// assert!(route.length() > 0.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<Vec2>,
    edges: Vec<NetworkEdge>,
    /// adjacency[node] = (edge index, neighbour node)
    adjacency: Vec<Vec<(usize, usize)>>,
}

impl RoadNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        RoadNetwork::default()
    }

    /// Adds a node at planar position `p`, returning its index.
    pub fn add_node(&mut self, p: Vec2) -> usize {
        self.nodes.push(p);
        self.adjacency.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Adds a road as an undirected edge between nodes `a` and `b`.
    ///
    /// The road geometry must start at node `a` and end at node `b`
    /// (within 1 m).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NodeOutOfRange`] or
    /// [`NetworkError::EndpointMismatch`].
    pub fn add_edge(&mut self, a: usize, b: usize, road: Road) -> Result<usize, NetworkError> {
        for &n in &[a, b] {
            if n >= self.nodes.len() {
                return Err(NetworkError::NodeOutOfRange { index: n });
            }
        }
        let gap_a = (road.point_at(0.0) - self.nodes[a]).norm();
        let gap_b = (road.point_at(road.length()) - self.nodes[b]).norm();
        if gap_a > NODE_TOL_M || gap_b > NODE_TOL_M {
            return Err(NetworkError::EndpointMismatch { gap_a, gap_b });
        }
        let idx = self.edges.len();
        self.edges.push(NetworkEdge { a, b, road });
        self.adjacency[a].push((idx, b));
        self.adjacency[b].push((idx, a));
        Ok(idx)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (roads).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node positions.
    pub fn nodes(&self) -> &[Vec2] {
        &self.nodes
    }

    /// The edges.
    pub fn edges(&self) -> &[NetworkEdge] {
        &self.edges
    }

    /// Total road length in kilometres.
    pub fn total_length_km(&self) -> f64 {
        self.edges.iter().map(|e| e.road.length()).sum::<f64>() / 1000.0
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(_, next) in &self.adjacency[n] {
                if !seen[next] {
                    seen[next] = true;
                    count += 1;
                    stack.push(next);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Dijkstra shortest path from `from` to `to` under a per-road cost.
    ///
    /// Returns the sequence of `(edge index, forward?)` hops, or `None` if
    /// unreachable. Costs must be non-negative; the same cost applies in
    /// both travel directions. For direction-dependent costs (fuel on
    /// gradients!) use [`RoadNetwork::shortest_path_directed`].
    pub fn shortest_path(
        &self,
        from: usize,
        to: usize,
        cost: impl Fn(&Road) -> f64,
    ) -> Option<Vec<(usize, bool)>> {
        self.shortest_path_directed(from, to, |road, _forward| cost(road))
    }

    /// Dijkstra shortest path with a direction-aware cost: the closure
    /// receives the road and whether it would be traversed in its stored
    /// (forward) orientation. Essential for gradient-dependent costs,
    /// where climbing a road costs more than descending it.
    ///
    /// Returns the sequence of `(edge index, forward?)` hops, or `None`
    /// if unreachable. Costs must be non-negative.
    pub fn shortest_path_directed(
        &self,
        from: usize,
        to: usize,
        cost: impl Fn(&Road, bool) -> f64,
    ) -> Option<Vec<(usize, bool)>> {
        if from >= self.nodes.len() || to >= self.nodes.len() {
            return None;
        }
        #[derive(PartialEq)]
        struct Item {
            dist: f64,
            node: usize,
        }
        impl Eq for Item {}
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap over dist.
                other.dist.total_cmp(&self.dist)
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n]; // (edge, from node)
        let mut heap = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(Item { dist: 0.0, node: from });
        while let Some(Item { dist: d, node }) = heap.pop() {
            if node == to {
                break;
            }
            if d > dist[node] {
                continue;
            }
            for &(edge_idx, next) in &self.adjacency[node] {
                let forward = self.edges[edge_idx].a == node;
                let c = cost(&self.edges[edge_idx].road, forward);
                debug_assert!(c >= 0.0, "negative edge cost");
                let nd = d + c;
                if nd < dist[next] {
                    dist[next] = nd;
                    prev[next] = Some((edge_idx, node));
                    heap.push(Item { dist: nd, node: next });
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut hops = Vec::new();
        let mut cur = to;
        while cur != from {
            // A finite dist[to] implies a complete predecessor chain;
            // bail defensively rather than panic if that ever breaks.
            let (edge_idx, parent) = prev[cur]?;
            let forward = self.edges[edge_idx].a == parent;
            hops.push((edge_idx, forward));
            cur = parent;
        }
        hops.reverse();
        Some(hops)
    }

    /// Builds a drivable [`Route`] along the shortest path between two
    /// nodes, reversing road geometry for backward hops.
    ///
    /// Returns `None` when unreachable.
    pub fn route_between(
        &self,
        from: usize,
        to: usize,
        cost: impl Fn(&Road) -> f64,
    ) -> Option<Route> {
        self.route_between_directed(from, to, |road, _forward| cost(road))
    }

    /// Builds a drivable [`Route`] along the direction-aware shortest
    /// path (see [`RoadNetwork::shortest_path_directed`]).
    ///
    /// Returns `None` when unreachable.
    pub fn route_between_directed(
        &self,
        from: usize,
        to: usize,
        cost: impl Fn(&Road, bool) -> f64,
    ) -> Option<Route> {
        let hops = self.shortest_path_directed(from, to, cost)?;
        let roads: Vec<Road> = hops
            .iter()
            .map(|&(idx, forward)| {
                if forward {
                    self.edges[idx].road.clone()
                } else {
                    self.edges[idx].road.reversed()
                }
            })
            .collect();
        if roads.is_empty() {
            return None; // from == to: no drivable route
        }
        Some(Route::new(roads).expect("adjacent hops share nodes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::{build_from_sections, RoadClass, SectionSpec};

    fn straight(id: u64, from: Vec2, to: Vec2) -> Road {
        let d = (to - from).norm();
        let heading = (to - from).angle();
        build_from_sections(
            id,
            format!("e{id}"),
            from,
            heading,
            &[SectionSpec { length_m: d, gradient_deg: 0.0, lanes: 1, curvature: 0.0 }],
            d / 4.0,
            0.0,
            13.0,
            RoadClass::Local,
        )
        .unwrap()
    }

    /// Square graph:
    /// 3 -- 2
    /// |    |
    /// 0 -- 1    plus diagonal 0-2.
    fn square() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        let p = [
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(100.0, 100.0),
            Vec2::new(0.0, 100.0),
        ];
        for &pt in &p {
            net.add_node(pt);
        }
        net.add_edge(0, 1, straight(1, p[0], p[1])).unwrap();
        net.add_edge(1, 2, straight(2, p[1], p[2])).unwrap();
        net.add_edge(2, 3, straight(3, p[2], p[3])).unwrap();
        net.add_edge(3, 0, straight(4, p[3], p[0])).unwrap();
        net.add_edge(0, 2, straight(5, p[0], p[2])).unwrap();
        net
    }

    #[test]
    fn construction_and_counts() {
        let net = square();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.edge_count(), 5);
        assert!(net.is_connected());
        let expect_km = (400.0 + 2.0f64.sqrt() * 100.0) / 1000.0;
        assert!((net.total_length_km() - expect_km).abs() < 1e-6);
    }

    #[test]
    fn add_edge_validates() {
        let mut net = square();
        assert!(matches!(
            net.add_edge(0, 99, straight(9, Vec2::ZERO, Vec2::new(1.0, 0.0))),
            Err(NetworkError::NodeOutOfRange { index: 99 })
        ));
        // Road not touching the nodes.
        let far = straight(10, Vec2::new(500.0, 0.0), Vec2::new(600.0, 0.0));
        assert!(matches!(net.add_edge(0, 1, far), Err(NetworkError::EndpointMismatch { .. })));
    }

    #[test]
    fn shortest_path_prefers_diagonal() {
        let net = square();
        // 0 -> 2 by length: diagonal (141.4) beats 0-1-2 (200).
        let hops = net.shortest_path(0, 2, |r| r.length()).unwrap();
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0], (4, true));
    }

    #[test]
    fn shortest_path_respects_custom_cost() {
        let net = square();
        // Penalize the diagonal heavily.
        let hops = net.shortest_path(0, 2, |r| if r.id() == 5 { 1e9 } else { r.length() }).unwrap();
        assert_eq!(hops.len(), 2);
    }

    #[test]
    fn backward_hops_are_reversed() {
        let net = square();
        // 1 -> 0 traverses edge 0 backwards.
        let hops = net.shortest_path(1, 0, |r| r.length()).unwrap();
        assert_eq!(hops, vec![(0, false)]);
        let route = net.route_between(1, 0, |r| r.length()).unwrap();
        assert!((route.point_at(0.0) - Vec2::new(100.0, 0.0)).norm() < 1e-6);
        assert!((route.point_at(route.length()) - Vec2::ZERO).norm() < 1e-6);
    }

    #[test]
    fn route_between_concatenates() {
        let net = square();
        let route =
            net.route_between(3, 1, |r| if r.id() == 5 { 1e9 } else { r.length() }).unwrap();
        assert!((route.length() - 200.0).abs() < 1e-6);
    }

    #[test]
    fn unreachable_and_trivial_cases() {
        let mut net = square();
        let lonely = net.add_node(Vec2::new(9999.0, 9999.0));
        assert!(net.shortest_path(0, lonely, |r| r.length()).is_none());
        assert!(!net.is_connected());
        assert!(net.route_between(0, 0, |r| r.length()).is_none());
        assert!(net.shortest_path(0, 1234, |r| r.length()).is_none());
    }

    #[test]
    fn empty_network_is_connected() {
        assert!(RoadNetwork::new().is_connected());
    }

    #[test]
    fn directed_cost_sees_traversal_orientation() {
        let net = square();
        // Make edge 0 (between nodes 0 and 1) free only when traversed
        // backward (1 → 0): going 1 → 0 must take it, going 0 → 1 must
        // avoid it.
        let cost = |r: &Road, forward: bool| {
            if r.id() == 1 && !forward {
                0.0
            } else if r.id() == 1 {
                1e9
            } else {
                r.length()
            }
        };
        let back = net.shortest_path_directed(1, 0, cost).unwrap();
        assert_eq!(back, vec![(0, false)]);
        let fwd = net.shortest_path_directed(0, 1, cost).unwrap();
        assert!(fwd.iter().all(|&(e, _)| e != 0), "forward path avoids edge 0: {fwd:?}");
    }
}

//! Raster digital-elevation-model (DEM) terrain.
//!
//! Real deployments drape roads over published elevation rasters (USGS
//! 1/3-arc-second DEMs and the like). [`DemTerrain`] is that workflow's
//! terrain type: a regular grid of elevations with bilinear interpolation,
//! implementing the same [`Terrain`] trait as the
//! analytic models so the two are interchangeable everywhere.

use crate::terrain::Terrain;
use gradest_math::Vec2;
use serde::{Deserialize, Serialize};

/// A regular elevation grid with bilinear interpolation.
///
/// # Example
///
/// ```
/// use gradest_geo::dem::DemTerrain;
/// use gradest_geo::terrain::Terrain;
/// use gradest_math::Vec2;
///
/// // A 3×3 grid rising 1 m per cell eastward, 10 m cells.
/// let dem = DemTerrain::from_rows(
///     Vec2::new(0.0, 0.0),
///     10.0,
///     &[
///         &[0.0, 1.0, 2.0],
///         &[0.0, 1.0, 2.0],
///         &[0.0, 1.0, 2.0],
///     ],
/// ).unwrap();
/// assert!((dem.altitude(Vec2::new(5.0, 5.0)) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemTerrain {
    origin: Vec2,
    cell_m: f64,
    cols: usize,
    rows: usize,
    /// Row-major, row 0 = southernmost (lowest y).
    data: Vec<f64>,
}

/// Errors constructing a DEM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DemError {
    /// Grid must be at least 2×2.
    TooSmall,
    /// Rows must have equal, nonzero lengths.
    RaggedRows,
    /// Cell size must be positive; data must be finite.
    InvalidData,
}

impl std::fmt::Display for DemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DemError::TooSmall => write!(f, "DEM needs at least a 2x2 grid"),
            DemError::RaggedRows => write!(f, "DEM rows must have equal lengths"),
            DemError::InvalidData => write!(f, "DEM cell size or data invalid"),
        }
    }
}

impl std::error::Error for DemError {}

impl DemTerrain {
    /// Builds a DEM from elevation rows (south to north), anchored at
    /// `origin` with square cells of `cell_m` metres.
    ///
    /// # Errors
    ///
    /// Returns [`DemError`] for grids smaller than 2×2, ragged rows,
    /// non-positive cell size, or non-finite elevations.
    pub fn from_rows(origin: Vec2, cell_m: f64, rows: &[&[f64]]) -> Result<Self, DemError> {
        if rows.len() < 2 {
            return Err(DemError::TooSmall);
        }
        let cols = rows[0].len();
        if cols < 2 {
            return Err(DemError::TooSmall);
        }
        if rows.iter().any(|r| r.len() != cols) {
            return Err(DemError::RaggedRows);
        }
        if cell_m.is_nan() || cell_m <= 0.0 {
            return Err(DemError::InvalidData);
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            for &v in *r {
                if !v.is_finite() {
                    return Err(DemError::InvalidData);
                }
                data.push(v);
            }
        }
        Ok(DemTerrain { origin, cell_m, cols, rows: rows.len(), data })
    }

    /// Samples any [`Terrain`] onto a DEM grid — e.g. to test raster
    /// fidelity against an analytic model, or to "bake" procedural
    /// terrain into the raster workflow.
    ///
    /// # Panics
    ///
    /// Panics if `rows`/`cols` < 2 or `cell_m <= 0`.
    pub fn sample_from(
        terrain: &impl Terrain,
        origin: Vec2,
        cell_m: f64,
        rows: usize,
        cols: usize,
    ) -> DemTerrain {
        assert!(rows >= 2 && cols >= 2, "grid must be at least 2x2");
        assert!(cell_m > 0.0, "cell size must be positive");
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let p = origin + Vec2::new(c as f64 * cell_m, r as f64 * cell_m);
                data.push(terrain.altitude(p));
            }
        }
        DemTerrain { origin, cell_m, cols, rows, data }
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Cell size in metres.
    pub fn cell_size(&self) -> f64 {
        self.cell_m
    }

    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }
}

impl Terrain for DemTerrain {
    fn altitude(&self, p: Vec2) -> f64 {
        // Clamp to the grid interior (constant extrapolation at edges).
        let fx = ((p.x - self.origin.x) / self.cell_m).clamp(0.0, (self.cols - 1) as f64 - 1e-9);
        let fy = ((p.y - self.origin.y) / self.cell_m).clamp(0.0, (self.rows - 1) as f64 - 1e-9);
        let c0 = fx.floor() as usize;
        let r0 = fy.floor() as usize;
        let tx = fx - c0 as f64;
        let ty = fy - r0 as f64;
        let z00 = self.at(r0, c0);
        let z01 = self.at(r0, c0 + 1);
        let z10 = self.at(r0 + 1, c0);
        let z11 = self.at(r0 + 1, c0 + 1);
        let z0 = z00 * (1.0 - tx) + z01 * tx;
        let z1 = z10 * (1.0 - tx) + z11 * tx;
        z0 * (1.0 - ty) + z1 * ty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::{hilly_terrain, Terrain};

    #[test]
    fn bilinear_interpolation_exact_on_planes() {
        // z = 0.1·x + 0.2·y is reproduced exactly by bilinear interp.
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|r| (0..4).map(|c| 0.1 * (c as f64 * 10.0) + 0.2 * (r as f64 * 10.0)).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let dem = DemTerrain::from_rows(Vec2::ZERO, 10.0, &refs).unwrap();
        for &(x, y) in &[(5.0, 5.0), (12.3, 7.7), (29.0, 29.0), (0.0, 0.0)] {
            let expect = 0.1 * x + 0.2 * y;
            assert!((dem.altitude(Vec2::new(x, y)) - expect).abs() < 1e-9, "at ({x},{y})");
        }
    }

    #[test]
    fn edges_clamp_instead_of_panicking() {
        let dem = DemTerrain::from_rows(Vec2::ZERO, 10.0, &[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        // Far outside the grid: clamped to the nearest cell values.
        assert!((dem.altitude(Vec2::new(-100.0, -100.0)) - 1.0).abs() < 1e-9);
        let far = dem.altitude(Vec2::new(1e6, 1e6));
        assert!((far - 4.0).abs() < 1e-6);
    }

    #[test]
    fn sampled_dem_approximates_analytic_terrain() {
        let analytic = hilly_terrain(5);
        let dem = DemTerrain::sample_from(&analytic, Vec2::ZERO, 25.0, 80, 80);
        // Mid-grid agreement to well under a metre (terrain wavelengths
        // are ≥ 600 m, cells are 25 m).
        for &(x, y) in &[(500.0, 500.0), (1234.0, 777.0), (1500.0, 1500.0)] {
            let p = Vec2::new(x, y);
            let err = (dem.altitude(p) - analytic.altitude(p)).abs();
            assert!(err < 0.3, "DEM error {err} at ({x},{y})");
        }
        // Gradients agree too (the quantity the whole system cares about).
        let p = Vec2::new(900.0, 900.0);
        let g_err = (dem.gradient(p) - analytic.gradient(p)).norm();
        assert!(g_err < 0.01, "gradient error {g_err}");
    }

    #[test]
    fn roads_can_be_draped_over_a_dem() {
        use crate::road::{Road, RoadClass};
        use crate::Polyline;
        let analytic = hilly_terrain(6);
        let dem = DemTerrain::sample_from(&analytic, Vec2::ZERO, 20.0, 120, 120);
        let line = Polyline::new(vec![Vec2::new(100.0, 100.0), Vec2::new(2000.0, 1800.0)]).unwrap();
        let via_dem = Road::over_terrain(1, "dem", &line, &dem, 10.0, 1, RoadClass::Local).unwrap();
        let via_analytic =
            Road::over_terrain(2, "ana", &line, &analytic, 10.0, 1, RoadClass::Local).unwrap();
        for s in [200.0, 900.0, 1700.0] {
            let d = (via_dem.gradient_at(s) - via_analytic.gradient_at(s)).abs();
            assert!(d.to_degrees() < 0.25, "gradient diff {}°", d.to_degrees());
        }
    }

    #[test]
    fn construction_validation() {
        assert_eq!(
            DemTerrain::from_rows(Vec2::ZERO, 10.0, &[&[1.0, 2.0]]).unwrap_err(),
            DemError::TooSmall
        );
        assert_eq!(
            DemTerrain::from_rows(Vec2::ZERO, 10.0, &[&[1.0], &[2.0]]).unwrap_err(),
            DemError::TooSmall
        );
        assert_eq!(
            DemTerrain::from_rows(Vec2::ZERO, 10.0, &[&[1.0, 2.0], &[3.0]]).unwrap_err(),
            DemError::RaggedRows
        );
        assert_eq!(
            DemTerrain::from_rows(Vec2::ZERO, 0.0, &[&[1.0, 2.0], &[3.0, 4.0]]).unwrap_err(),
            DemError::InvalidData
        );
        assert_eq!(
            DemTerrain::from_rows(Vec2::ZERO, 10.0, &[&[1.0, f64::NAN], &[3.0, 4.0]]).unwrap_err(),
            DemError::InvalidData
        );
        let ok = DemTerrain::from_rows(Vec2::ZERO, 10.0, &[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(ok.dimensions(), (2, 2));
        assert_eq!(ok.cell_size(), 10.0);
    }
}

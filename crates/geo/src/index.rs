//! Packed static spatial index over road networks.
//!
//! The paper's city-scale evaluation (Figure 7a) covers 164.8 km; the
//! crowd-sourced workload the ROADMAP targets needs every fleet trip
//! map-matched against a country-scale network (10⁵–10⁶ polyline
//! segments) and gradient-map tiles served by bounding-box query. A
//! linear scan over the segment list is O(n) per fix; this module
//! provides the sublinear substrate:
//!
//! * [`PackedRtree`] — a build-once, flatbush-style packed R-tree:
//!   item AABBs are sorted by the Hilbert value of their centers,
//!   grouped into fixed-fanout nodes, and packed level-by-level into
//!   one flat `Vec`. No pointers, no per-query allocation — queries
//!   walk the tree through caller-owned [`QueryScratch`].
//! * [`SegmentIndex`] — the R-tree specialised to line segments with
//!   exact closed-form point-to-segment projection at the leaves.
//! * [`NetworkIndex`] — both trees over a [`RoadNetwork`]: one over
//!   whole-edge AABBs (bounding-box retrieval for tiles) and one over
//!   every centerline segment (nearest-edge / nearest-arc queries).
//!
//! Warm queries are allocation-free: the traversal stacks live in
//! [`QueryScratch`] and retain their capacity across calls, which the
//! `geo_index` experiment asserts with the counting allocator.

use crate::network::RoadNetwork;
use gradest_math::Vec2;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in the local planar frame (metres).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum x (west edge).
    pub min_x: f64,
    /// Minimum y (south edge).
    pub min_y: f64,
    /// Maximum x (east edge).
    pub max_x: f64,
    /// Maximum y (north edge).
    pub max_y: f64,
}

impl Aabb {
    /// An inverted box that unions to any other box.
    pub const EMPTY: Aabb = Aabb {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// The box spanning two corner points (in any order).
    pub fn of_corners(a: Vec2, b: Vec2) -> Aabb {
        Aabb { min_x: a.x.min(b.x), min_y: a.y.min(b.y), max_x: a.x.max(b.x), max_y: a.y.max(b.y) }
    }

    /// The smallest box containing both operands.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Whether the two boxes overlap (closed intervals).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min_x <= other.max_x
            && self.max_x >= other.min_x
            && self.min_y <= other.max_y
            && self.max_y >= other.min_y
    }

    /// Center point of the box.
    pub fn center(&self) -> Vec2 {
        Vec2::new(0.5 * (self.min_x + self.max_x), 0.5 * (self.min_y + self.max_y))
    }

    /// Squared distance from `p` to the nearest point of the box
    /// (0 when `p` is inside).
    pub fn dist_sq(&self, p: Vec2) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        dx * dx + dy * dy
    }
}

/// Tree fanout: children per internal node. 16 keeps the tree shallow
/// (10⁶ leaves → 5 levels) while the per-node child sweep still fits a
/// fixed-size candidate buffer on the nearest-query stack frame.
const NODE_SIZE: usize = 16;

/// Hilbert-curve order: centers are quantized to a 2¹⁶ × 2¹⁶ grid over
/// the data bounds before computing curve positions.
const HILBERT_ORDER: u32 = 16;

/// Hilbert curve position of quantized cell `(x, y)` on the
/// `2^HILBERT_ORDER` grid (the classic xy→d bit-interleave walk).
fn hilbert_d(mut x: u32, mut y: u32) -> u64 {
    let n: u32 = 1 << HILBERT_ORDER;
    let mut d: u64 = 0;
    let mut s = n >> 1;
    while s > 0 {
        let rx: u32 = u32::from(x & s > 0);
        let ry: u32 = u32::from(y & s > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s >>= 1;
    }
    d
}

/// Reusable traversal state for [`PackedRtree`] queries.
///
/// Holds the bounding-box stack and the nearest-query priority stack;
/// both retain capacity across queries, so a warm query allocates
/// nothing. One scratch per querying thread.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    /// (level, index-within-level) stack for bbox traversal.
    stack: Vec<(u32, u32)>,
    /// (min dist², level, index) stack for nearest traversal.
    near: Vec<(f64, u32, u32)>,
}

impl QueryScratch {
    /// Creates an empty scratch (stacks grow on first query).
    pub fn new() -> Self {
        QueryScratch::default()
    }
}

/// A packed, build-once static R-tree over item bounding boxes.
///
/// Built bottom-up from a Hilbert sort of the item AABB centers:
/// leaves land in curve order (spatially coherent), every
/// [`NODE_SIZE`] consecutive boxes get one parent, and all levels pack
/// into a single flat `Vec` (leaves first, root last). The tree is
/// immutable after [`PackedRtree::build`]; queries are read-only and
/// allocation-free through a caller [`QueryScratch`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedRtree {
    /// All node boxes: level 0 (leaves, Hilbert order) through the root.
    boxes: Vec<Aabb>,
    /// Leaf slot → original item id.
    ids: Vec<u32>,
    /// Offset of each level's first box inside `boxes`.
    level_offsets: Vec<usize>,
    /// Node count per level; `level_counts[0] == ids.len()`.
    level_counts: Vec<usize>,
    /// Bounds of the whole item set.
    bounds: Aabb,
}

impl PackedRtree {
    /// Builds the tree over `items` (item id = slice position).
    ///
    /// Bulk load: quantize each AABB center onto a 2¹⁶ grid spanning
    /// the data bounds, sort by Hilbert curve position (ties broken by
    /// id, so the build is deterministic), then pack parent levels.
    /// Building allocates; queries never do.
    pub fn build(items: &[Aabb]) -> PackedRtree {
        let n = items.len();
        if n == 0 {
            return PackedRtree {
                boxes: Vec::new(),
                ids: Vec::new(),
                level_offsets: Vec::new(),
                level_counts: Vec::new(),
                bounds: Aabb::EMPTY,
            };
        }
        let mut bounds = Aabb::EMPTY;
        for b in items {
            bounds = bounds.union(b);
        }
        let w = bounds.max_x - bounds.min_x;
        let h = bounds.max_y - bounds.min_y;
        let side = f64::from((1u32 << HILBERT_ORDER) - 1);
        // Degenerate spans (all centers on one line/point) quantize to
        // cell 0 on that axis; the sort then falls back to id order.
        let sx = if w > 0.0 { side / w } else { 0.0 };
        let sy = if h > 0.0 { side / h } else { 0.0 };
        let mut order: Vec<(u64, u32)> = items
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let c = b.center();
                let qx = ((c.x - bounds.min_x) * sx) as u32;
                let qy = ((c.y - bounds.min_y) * sy) as u32;
                (hilbert_d(qx, qy), i as u32)
            })
            .collect();
        order.sort_unstable();

        // Level sizes bottom-up until a single root.
        let mut level_counts = vec![n];
        while *level_counts.last().unwrap_or(&1) > 1 {
            let prev = *level_counts.last().unwrap_or(&1);
            level_counts.push(prev.div_ceil(NODE_SIZE));
        }
        let mut level_offsets = Vec::with_capacity(level_counts.len());
        let mut acc = 0usize;
        for &c in &level_counts {
            level_offsets.push(acc);
            acc += c;
        }
        let mut boxes = vec![Aabb::EMPTY; acc];
        let mut ids = Vec::with_capacity(n);
        for (slot, &(_, id)) in order.iter().enumerate() {
            let i = id as usize;
            boxes[slot] = items[i];
            ids.push(id);
        }
        // Pack parents: each groups NODE_SIZE children of the level below.
        for lvl in 1..level_counts.len() {
            let child_off = level_offsets[lvl - 1]; // lint:allow(hot-index) lvl >= 1 by the loop range
            let child_n = level_counts[lvl - 1]; // lint:allow(hot-index) lvl >= 1 by the loop range
            let off = level_offsets[lvl];
            for i in 0..level_counts[lvl] {
                let lo = i * NODE_SIZE;
                let hi = (lo + NODE_SIZE).min(child_n);
                let mut b = Aabb::EMPTY;
                for c in lo..hi {
                    // lint:allow(hot-index) c < child_n, and child_off + child_n <= boxes.len()
                    b = b.union(&boxes[child_off + c]);
                }
                boxes[off + i] = b; // lint:allow(hot-index) i < level_counts[lvl] inside this level's span
            }
        }
        PackedRtree { boxes, ids, level_offsets, level_counts, bounds }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Bounds of the indexed items ([`Aabb::EMPTY`] when empty).
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The box of node `idx` at `level` (0 = leaves).
    fn node(&self, level: usize, idx: usize) -> &Aabb {
        let off = self.level_offsets[level];
        // lint:allow(hot-index) idx < level_counts[level]; offsets partition `boxes` by level
        &self.boxes[off + idx]
    }

    /// Item ids whose boxes intersect `query`, as a lazy iterator
    /// driving a depth-first traversal through `scratch` (no
    /// allocation on a warm scratch). Order is traversal order, not
    /// sorted.
    pub fn query_bbox<'t, 's>(
        &'t self,
        query: Aabb,
        scratch: &'s mut QueryScratch,
    ) -> BboxIter<'t, 's> {
        scratch.stack.clear();
        if !self.is_empty() {
            let top = self.level_counts.len() - 1;
            scratch.stack.push((top as u32, 0));
        }
        BboxIter { tree: self, query, stack: &mut scratch.stack }
    }

    /// Nearest item to `p` by branch-and-bound: internal nodes are
    /// pruned on box distance, leaves are ranked by the caller's exact
    /// metric `leaf_dist_sq(id)` (squared distance). Returns the best
    /// `(id, dist_sq)`, or `None` when empty. Ties resolve to the
    /// first leaf reached, which the Hilbert packing makes
    /// deterministic for a given build.
    pub fn nearest_with<F>(
        &self,
        p: Vec2,
        scratch: &mut QueryScratch,
        mut leaf_dist_sq: F,
    ) -> Option<(u32, f64)>
    where
        F: FnMut(u32) -> f64,
    {
        if self.is_empty() {
            return None;
        }
        let stack = &mut scratch.near;
        stack.clear();
        let top = self.level_counts.len() - 1;
        stack.push((0.0, top as u32, 0));
        let mut best: Option<(u32, f64)> = None;
        let mut best_d = f64::INFINITY;
        while let Some((d, lvl, idx)) = stack.pop() {
            if d > best_d {
                continue;
            }
            let lvl = lvl as usize;
            let idx = idx as usize;
            if lvl == 0 {
                let id = self.ids[idx];
                let dl = leaf_dist_sq(id);
                if dl < best_d {
                    best_d = dl;
                    best = Some((id, dl));
                }
                continue;
            }
            let child_lvl = lvl - 1;
            let lo = idx * NODE_SIZE;
            let hi = (lo + NODE_SIZE).min(self.level_counts[child_lvl]);
            // Rank the children so the closest is popped first: a good
            // early best tightens the prune for every later pop.
            let mut cand: [(f64, u32); NODE_SIZE] = [(0.0, 0); NODE_SIZE];
            let mut m = 0usize;
            for c in lo..hi {
                let dc = self.node(child_lvl, c).dist_sq(p);
                if dc <= best_d {
                    cand[m] = (dc, c as u32);
                    m += 1;
                }
            }
            let live = &mut cand[..m];
            // Insertion sort ascending (≤ NODE_SIZE entries, no alloc).
            for i in 1..live.len() {
                let mut j = i;
                // lint:allow(hot-index) j > 0 on the left of && bounds j - 1
                while j > 0 && live[j - 1].0 > live[j].0 {
                    live.swap(j - 1, j);
                    j -= 1;
                }
            }
            // Push farthest first so the nearest child is on top.
            for k in (0..live.len()).rev() {
                let (dc, c) = live[k];
                stack.push((dc, child_lvl as u32, c));
            }
        }
        best
    }
}

/// Lazy bounding-box query over a [`PackedRtree`] (see
/// [`PackedRtree::query_bbox`]). Borrows the caller's scratch stack, so
/// iteration allocates nothing once the stack is warm.
#[derive(Debug)]
pub struct BboxIter<'t, 's> {
    tree: &'t PackedRtree,
    query: Aabb,
    stack: &'s mut Vec<(u32, u32)>,
}

impl Iterator for BboxIter<'_, '_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while let Some((lvl, idx)) = self.stack.pop() {
            let lvl = lvl as usize;
            let idx = idx as usize;
            if !self.tree.node(lvl, idx).intersects(&self.query) {
                continue;
            }
            if lvl == 0 {
                return Some(self.tree.ids[idx]);
            }
            let child_lvl = lvl - 1;
            let lo = idx * NODE_SIZE;
            let hi = (lo + NODE_SIZE).min(self.tree.level_counts[child_lvl]);
            for c in lo..hi {
                self.stack.push((child_lvl as u32, c as u32));
            }
        }
        None
    }
}

/// One indexable line segment: endpoints, owning edge, and the edge
/// arc length at the segment start.
///
/// Raw segments (rather than [`crate::Polyline`]s) are the build input
/// so callers — the oracle property tests in particular — can index
/// degenerate geometry (zero-length, collinear runs) that `Polyline`
/// construction rejects; a zero-length segment projects as a point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Vec2,
    /// End point.
    pub b: Vec2,
    /// Index of the owning network edge.
    pub edge: u32,
    /// Arc length along the owning edge at `a`, metres.
    pub s0: f64,
}

/// Result of a nearest query against a segment set: the winning
/// segment, its owning edge, and the exact projection of the query
/// point onto it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentHit {
    /// Index of the winning segment in build order.
    pub segment: usize,
    /// Owning network edge index.
    pub edge: usize,
    /// Arc length of the projection along the owning edge, metres.
    pub s: f64,
    /// The projected (snapped) point.
    pub point: Vec2,
    /// Distance from the query point to `point`, metres.
    pub dist_m: f64,
}

/// Exact closed-form projection of `p` onto segment `a→b`: returns the
/// clamped parameter `t ∈ [0, 1]` and the squared distance. Zero-length
/// segments project to `a` (`t = 0`).
#[inline]
pub fn project_point_segment(p: Vec2, a: Vec2, b: Vec2) -> (f64, f64) {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len2 = dx * dx + dy * dy;
    let t = if len2 > 0.0 {
        (((p.x - a.x) * dx + (p.y - a.y) * dy) / len2).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let cx = a.x + t * dx;
    let cy = a.y + t * dy;
    let ex = p.x - cx;
    let ey = p.y - cy;
    (t, ex * ex + ey * ey)
}

/// A packed R-tree over line segments with exact point-to-segment
/// projection at the leaves. Segment data is stored as structure-of-
/// arrays so the leaf distance sweep reads contiguous memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentIndex {
    tree: PackedRtree,
    ax: Vec<f64>,
    ay: Vec<f64>,
    bx: Vec<f64>,
    by: Vec<f64>,
    edge: Vec<u32>,
    s0: Vec<f64>,
}

impl SegmentIndex {
    /// Builds the index over `segments` (ids = slice positions).
    pub fn build(segments: &[Segment]) -> SegmentIndex {
        let mut boxes = Vec::with_capacity(segments.len());
        let mut ax = Vec::with_capacity(segments.len());
        let mut ay = Vec::with_capacity(segments.len());
        let mut bx = Vec::with_capacity(segments.len());
        let mut by = Vec::with_capacity(segments.len());
        let mut edge = Vec::with_capacity(segments.len());
        let mut s0 = Vec::with_capacity(segments.len());
        for s in segments {
            boxes.push(Aabb::of_corners(s.a, s.b));
            ax.push(s.a.x);
            ay.push(s.a.y);
            bx.push(s.b.x);
            by.push(s.b.y);
            edge.push(s.edge);
            s0.push(s.s0);
        }
        SegmentIndex { tree: PackedRtree::build(&boxes), ax, ay, bx, by, edge, s0 }
    }

    /// Number of indexed segments.
    pub fn len(&self) -> usize {
        self.edge.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.edge.is_empty()
    }

    /// Bounds of the indexed segments.
    pub fn bounds(&self) -> Aabb {
        self.tree.bounds()
    }

    /// Endpoints of segment `id` in build order.
    fn seg_points(&self, id: usize) -> (Vec2, Vec2) {
        (Vec2::new(self.ax[id], self.ay[id]), Vec2::new(self.bx[id], self.by[id]))
    }

    /// Exact nearest segment to `p` (branch-and-bound over the tree,
    /// closed-form projection at the leaves). Allocation-free on a
    /// warm scratch. Returns `None` when empty.
    pub fn nearest(&self, p: Vec2, scratch: &mut QueryScratch) -> Option<SegmentHit> {
        let (id, _) = self.tree.nearest_with(p, scratch, |id| {
            let i = id as usize;
            let (a, b) = self.seg_points(i);
            project_point_segment(p, a, b).1
        })?;
        Some(self.hit_for(p, id as usize))
    }

    /// The fully-resolved hit for the winning segment (projection is
    /// recomputed once — cheaper than carrying it through the search).
    fn hit_for(&self, p: Vec2, id: usize) -> SegmentHit {
        let (a, b) = self.seg_points(id);
        let (t, d2) = project_point_segment(p, a, b);
        let seg_len = (b - a).norm();
        SegmentHit {
            segment: id,
            edge: self.edge[id] as usize,
            s: self.s0[id] + t * seg_len,
            point: a.lerp(b, t),
            dist_m: d2.sqrt(),
        }
    }

    /// Segment ids whose AABBs intersect `query` (traversal order).
    pub fn query_bbox<'t, 's>(
        &'t self,
        query: Aabb,
        scratch: &'s mut QueryScratch,
    ) -> BboxIter<'t, 's> {
        self.tree.query_bbox(query, scratch)
    }
}

/// Flattens a network's edge centerlines into raw [`Segment`]s, in
/// edge order then vertex order — the build input for the segment
/// half of a [`NetworkIndex`] and for brute-force oracles.
pub fn network_segments(net: &RoadNetwork) -> Vec<Segment> {
    let mut out = Vec::new();
    for (ei, e) in net.edges().iter().enumerate() {
        let line = e.road.centerline();
        let pts = line.points();
        let cum = line.cumulative_lengths();
        for j in 0..pts.len().saturating_sub(1) {
            out.push(Segment {
                a: pts[j],
                b: pts[j + 1], // lint:allow(hot-index) j < pts.len() - 1 by the loop bound
                edge: ei as u32,
                s0: cum[j],
            });
        }
    }
    out
}

/// The spatial index of a whole [`RoadNetwork`]: a packed R-tree over
/// whole-edge AABBs (bounding-box retrieval) plus a [`SegmentIndex`]
/// over every centerline segment (exact nearest queries).
///
/// # Example
///
/// ```
/// use gradest_geo::generate::city_network;
/// use gradest_geo::index::{NetworkIndex, QueryScratch};
///
/// let net = city_network(7);
/// let index = NetworkIndex::build(&net);
/// let mut scratch = QueryScratch::new();
/// let p = net.nodes()[0];
/// let hit = index.nearest_s_on_network(p, &mut scratch).unwrap();
/// assert!(hit.dist_m < 1e-6);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkIndex {
    edge_tree: PackedRtree,
    segments: SegmentIndex,
}

impl NetworkIndex {
    /// Builds both trees from the network's edge centerlines.
    pub fn build(net: &RoadNetwork) -> NetworkIndex {
        let mut edge_boxes = Vec::with_capacity(net.edge_count());
        for e in net.edges() {
            let mut b = Aabb::EMPTY;
            for p in e.road.centerline().points() {
                b = b.union(&Aabb::of_corners(*p, *p));
            }
            edge_boxes.push(b);
        }
        NetworkIndex {
            edge_tree: PackedRtree::build(&edge_boxes),
            segments: SegmentIndex::build(&network_segments(net)),
        }
    }

    /// Number of indexed centerline segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of indexed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_tree.len()
    }

    /// Bounds of the whole network.
    pub fn bounds(&self) -> Aabb {
        self.edge_tree.bounds()
    }

    /// The segment-level index (for direct access / oracles).
    pub fn segments(&self) -> &SegmentIndex {
        &self.segments
    }

    /// Index of the network edge nearest to `p` (exact: ranked by
    /// point-to-segment projection distance), or `None` for an empty
    /// network.
    pub fn nearest_edge(&self, p: Vec2, scratch: &mut QueryScratch) -> Option<usize> {
        self.segments.nearest(p, scratch).map(|h| h.edge)
    }

    /// Exact nearest point on the network: the winning edge, the arc
    /// length of the projection along it, the snapped point, and the
    /// snap distance. Allocation-free on a warm scratch.
    pub fn nearest_s_on_network(&self, p: Vec2, scratch: &mut QueryScratch) -> Option<SegmentHit> {
        self.segments.nearest(p, scratch)
    }

    /// Edge indices whose AABBs intersect `query`, as a lazy iterator
    /// reusing caller scratch (traversal order; no allocation warm).
    pub fn edges_in_bbox<'t, 's>(
        &'t self,
        query: Aabb,
        scratch: &'s mut QueryScratch,
    ) -> BboxIter<'t, 's> {
        self.edge_tree.query_bbox(query, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::city_network;

    fn brute_nearest(segs: &[Segment], p: Vec2) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in segs.iter().enumerate() {
            let (_, d2) = project_point_segment(p, s.a, s.b);
            if best.map(|(_, bd)| d2 < bd).unwrap_or(true) {
                best = Some((i, d2));
            }
        }
        best
    }

    fn grid_segments(n: usize) -> Vec<Segment> {
        // n horizontal unit segments on staggered rows.
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 10.0;
                let y = (i / 10) as f64 * 7.0;
                Segment { a: Vec2::new(x, y), b: Vec2::new(x + 6.0, y), edge: i as u32, s0: 0.0 }
            })
            .collect()
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let idx = SegmentIndex::build(&[]);
        let mut scratch = QueryScratch::new();
        assert!(idx.nearest(Vec2::ZERO, &mut scratch).is_none());
        let q = Aabb::of_corners(Vec2::new(-1.0, -1.0), Vec2::new(1.0, 1.0));
        assert_eq!(idx.query_bbox(q, &mut scratch).count(), 0);
        assert!(idx.is_empty());
    }

    #[test]
    fn single_segment_projects_exactly() {
        let segs = [Segment { a: Vec2::ZERO, b: Vec2::new(10.0, 0.0), edge: 3, s0: 5.0 }];
        let idx = SegmentIndex::build(&segs);
        let mut scratch = QueryScratch::new();
        let hit = idx.nearest(Vec2::new(4.0, 2.0), &mut scratch).unwrap();
        assert_eq!(hit.edge, 3);
        assert!((hit.s - 9.0).abs() < 1e-12, "s = {}", hit.s);
        assert!((hit.dist_m - 2.0).abs() < 1e-12);
        assert!((hit.point - Vec2::new(4.0, 0.0)).norm() < 1e-12);
        // Beyond the end: clamps to b.
        let hit = idx.nearest(Vec2::new(14.0, 3.0), &mut scratch).unwrap();
        assert!((hit.s - 15.0).abs() < 1e-12);
        assert!((hit.dist_m - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_length_segment_projects_as_point() {
        let p = Vec2::new(2.0, 2.0);
        let segs = [Segment { a: p, b: p, edge: 0, s0: 1.0 }];
        let idx = SegmentIndex::build(&segs);
        let mut scratch = QueryScratch::new();
        let hit = idx.nearest(Vec2::new(5.0, 6.0), &mut scratch).unwrap();
        assert!((hit.dist_m - 5.0).abs() < 1e-12);
        assert_eq!(hit.s, 1.0);
        assert_eq!(hit.point, p);
    }

    #[test]
    fn nearest_matches_brute_force_on_grid() {
        let segs = grid_segments(250);
        let idx = SegmentIndex::build(&segs);
        let mut scratch = QueryScratch::new();
        for k in 0..200 {
            let p = Vec2::new((k * 7 % 113) as f64 - 10.0, (k * 13 % 97) as f64 - 5.0);
            let hit = idx.nearest(p, &mut scratch).unwrap();
            let (_, bd2) = brute_nearest(&segs, p).unwrap();
            assert!(
                (hit.dist_m - bd2.sqrt()).abs() < 1e-9,
                "query {p:?}: tree {} vs brute {}",
                hit.dist_m,
                bd2.sqrt()
            );
        }
    }

    #[test]
    fn bbox_query_matches_linear_filter() {
        let segs = grid_segments(250);
        let idx = SegmentIndex::build(&segs);
        let mut scratch = QueryScratch::new();
        let q = Aabb::of_corners(Vec2::new(5.0, 3.0), Vec2::new(55.0, 60.0));
        let mut got: Vec<u32> = idx.query_bbox(q, &mut scratch).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = segs
            .iter()
            .enumerate()
            .filter(|(_, s)| Aabb::of_corners(s.a, s.b).intersects(&q))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn network_index_snaps_onto_edges() {
        let net = city_network(42);
        let idx = NetworkIndex::build(&net);
        assert_eq!(idx.edge_count(), net.edge_count());
        assert!(idx.segment_count() > net.edge_count());
        let mut scratch = QueryScratch::new();
        // A point on an edge centerline snaps to that edge at ~0 dist.
        for (ei, e) in net.edges().iter().enumerate().step_by(17) {
            let mid = e.road.point_at(e.road.length() * 0.5);
            let hit = idx.nearest_s_on_network(mid, &mut scratch).unwrap();
            assert!(hit.dist_m < 1e-6, "edge {ei} snap dist {}", hit.dist_m);
            assert_eq!(hit.edge, ei);
            assert!((hit.s - e.road.length() * 0.5).abs() < 1.0);
        }
    }

    #[test]
    fn network_bbox_returns_local_edges() {
        let net = city_network(42);
        let idx = NetworkIndex::build(&net);
        let mut scratch = QueryScratch::new();
        let c = net.nodes()[0];
        let q = Aabb::of_corners(c - Vec2::new(600.0, 600.0), c + Vec2::new(600.0, 600.0));
        let hits: Vec<u32> = idx.edges_in_bbox(q, &mut scratch).collect();
        assert!(!hits.is_empty());
        // Every returned edge's box really intersects; every edge with an
        // endpoint inside is returned.
        for &h in &hits {
            let e = &net.edges()[h as usize];
            let mut b = Aabb::EMPTY;
            for p in e.road.centerline().points() {
                b = b.union(&Aabb::of_corners(*p, *p));
            }
            assert!(b.intersects(&q));
        }
        for (ei, e) in net.edges().iter().enumerate() {
            let start = e.road.point_at(0.0);
            let inside = start.x >= q.min_x
                && start.x <= q.max_x
                && start.y >= q.min_y
                && start.y <= q.max_y;
            if inside {
                assert!(hits.contains(&(ei as u32)), "edge {ei} missing from bbox result");
            }
        }
    }

    #[test]
    fn hilbert_is_locality_preservingish() {
        // Adjacent cells differ by a bounded curve step near the origin.
        assert_eq!(hilbert_d(0, 0), 0);
        let d1 = hilbert_d(1, 0);
        let d2 = hilbert_d(0, 1);
        assert_ne!(d1, d2);
        assert!(d1 < 4 && d2 < 4, "first quadrant cells come first: {d1} {d2}");
    }

    #[test]
    fn build_is_deterministic() {
        let segs = grid_segments(100);
        let a = SegmentIndex::build(&segs);
        let b = SegmentIndex::build(&segs);
        let mut sa = QueryScratch::new();
        let mut sb = QueryScratch::new();
        for k in 0..50 {
            let p = Vec2::new((k * 3) as f64, (k * 5 % 31) as f64);
            assert_eq!(a.nearest(p, &mut sa), b.nearest(p, &mut sb));
        }
    }
}

//! # gradest-geo
//!
//! Geographic and road-geometry substrate for the `gradest` workspace.
//!
//! The paper evaluates on real Charlottesville, VA roads: a 2.16 km
//! "red road" with seven alternating uphill/downhill sections (Table III)
//! and a 164.8 km city network (Figure 7). This crate provides everything
//! needed to stand in for those roads:
//!
//! * [`latlon`] — WGS-84 positions, haversine distances, bearings, and a
//!   local planar projection.
//! * [`polyline`] — arc-length-parameterized planar polylines with heading
//!   and curvature queries.
//! * [`terrain`] — analytic terrain (elevation) models used to drape
//!   procedurally generated roads.
//! * [`road`] — roads: centerline + altitude profile + lane counts + class.
//! * [`route`] — a drivable concatenation of roads with ground-truth
//!   gradient along trip arc length.
//! * [`network`] — a road-network graph with Dijkstra routing.
//! * [`index`] — packed static R-tree spatial index over network edges
//!   and centerline segments (nearest-edge / bbox queries, no per-query
//!   allocation).
//! * [`tile`] — bbox tile bounds wire codec + deterministic (sorted)
//!   edge-set assembly for the ingestion service.
//! * [`generate`] — procedural presets: the Table III red road, S-curve
//!   roads, and a Charlottesville-scale synthetic city network.
//! * [`refgrade`] — the paper's Section III-D reference gradient profiler
//!   (1 m segmentation of altimeter data).
//!
//! # Example
//!
//! ```
//! use gradest_geo::generate::red_road;
//!
//! let road = red_road();
//! assert!((road.length() - 2160.0).abs() < 1.0);
//! // Section 0-1 is uphill per Table III.
//! assert!(road.gradient_at(100.0) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dem;
pub mod generate;
pub mod geojson;
pub mod index;
pub mod latlon;
pub mod network;
pub mod polyline;
pub mod refgrade;
pub mod road;
pub mod route;
pub mod terrain;
pub mod tile;

pub use index::{Aabb, NetworkIndex, QueryScratch, SegmentHit, SegmentIndex};
pub use latlon::LatLon;
pub use network::RoadNetwork;
pub use polyline::Polyline;
pub use refgrade::GradientProfile;
pub use road::{Road, RoadClass};
pub use route::Route;

//! Property-based tests for geometry, roads, and profiles.

use gradest_geo::latlon::{LatLon, LocalFrame};
use gradest_geo::refgrade::{reference_profile, GradientProfile};
use gradest_geo::road::{build_from_sections, RoadClass, SectionSpec};
use gradest_geo::{Polyline, Route};
use gradest_math::Vec2;
use proptest::prelude::*;

fn section_strategy() -> impl Strategy<Value = SectionSpec> {
    (100.0..800.0f64, -5.0..5.0f64, 1u32..3, -0.002..0.002f64).prop_map(
        |(length_m, gradient_deg, lanes, curvature)| SectionSpec {
            length_m,
            gradient_deg,
            lanes,
            curvature,
        },
    )
}

fn road_from(secs: &[SectionSpec]) -> gradest_geo::Road {
    build_from_sections(1, "prop", Vec2::ZERO, 0.0, secs, 10.0, 100.0, 13.0, RoadClass::Collector)
        .expect("valid generated sections")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn local_frame_round_trip(
        lat in -60.0..60.0f64,
        lon in -179.0..179.0f64,
        x in -20_000.0..20_000.0f64,
        y in -20_000.0..20_000.0f64,
    ) {
        let frame = LocalFrame::new(LatLon::new(lat, lon));
        let p = Vec2::new(x, y);
        let back = frame.to_local(frame.to_latlon(p));
        prop_assert!((back - p).norm() < 1e-5);
    }

    #[test]
    fn haversine_triangle_inequality(
        a in (-60.0..60.0f64, -179.0..179.0f64),
        b in (-60.0..60.0f64, -179.0..179.0f64),
        c in (-60.0..60.0f64, -179.0..179.0f64),
    ) {
        let pa = LatLon::new(a.0, a.1);
        let pb = LatLon::new(b.0, b.1);
        let pc = LatLon::new(c.0, c.1);
        let ab = pa.haversine_distance(pb);
        let bc = pb.haversine_distance(pc);
        let ac = pa.haversine_distance(pc);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn polyline_point_at_is_on_path(pts_seed in 1u64..500, q in 0.0..1.0f64) {
        // Random walk polyline.
        let mut s = pts_seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / u32::MAX as f64) - 0.5
        };
        let mut p = Vec2::ZERO;
        let mut pts = vec![p];
        for _ in 0..10 {
            p += Vec2::new(20.0 + 50.0 * next().abs(), 60.0 * next());
            pts.push(p);
        }
        let line = Polyline::new(pts).unwrap();
        let probe = line.point_at(q * line.length());
        // The probed point is within the path's bounding box.
        let (lo_x, hi_x) = line.points().iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
            (lo.min(p.x), hi.max(p.x))
        });
        prop_assert!(probe.x >= lo_x - 1e-9 && probe.x <= hi_x + 1e-9);
        // And consecutive probes advance monotonically in arc length.
        let earlier = line.point_at(0.5 * q * line.length());
        prop_assert!((probe - earlier).norm() <= line.length() + 1e-9);
    }

    #[test]
    fn road_altitude_consistent_with_gradient(secs in prop::collection::vec(section_strategy(), 1..5)) {
        let road = road_from(&secs);
        // Integrating gradient_at over the road recovers the altitude gain.
        let mut gain = 0.0;
        let ds = 2.0;
        let mut s = ds / 2.0;
        while s < road.length() {
            gain += road.gradient_at(s).tan() * ds;
            s += ds;
        }
        let truth = road.altitude_at(road.length()) - road.altitude_at(0.0);
        prop_assert!((gain - truth).abs() < 0.02 * road.length().max(100.0) * 0.05 + 1.0,
            "gain {gain} vs truth {truth}");
    }

    #[test]
    fn reversed_road_round_trips(secs in prop::collection::vec(section_strategy(), 1..4)) {
        let road = road_from(&secs);
        let twice = road.reversed().reversed();
        prop_assert!((twice.length() - road.length()).abs() < 1e-9);
        for frac in [0.1, 0.5, 0.9] {
            let s = frac * road.length();
            prop_assert!((twice.altitude_at(s) - road.altitude_at(s)).abs() < 1e-9);
            prop_assert_eq!(twice.lanes_at(s), road.lanes_at(s));
        }
    }

    #[test]
    fn reference_profile_round_trips_altitude(secs in prop::collection::vec(section_strategy(), 1..4)) {
        let road = road_from(&secs);
        let profile = reference_profile(&road, 1.0, |_| 0.0);
        let gain = profile.altitude_gain(road.length());
        let truth = road.altitude_at(road.length()) - road.altitude_at(0.0);
        prop_assert!((gain - truth).abs() < 1.0, "gain {gain} vs {truth}");
    }

    #[test]
    fn route_locate_is_inverse_of_offsets(secs in prop::collection::vec(section_strategy(), 1..4), frac in 0.0..1.0f64) {
        let road = road_from(&secs);
        let route = Route::new(vec![road]).unwrap();
        let s = frac * route.length();
        let (idx, on_road) = route.locate(s);
        prop_assert_eq!(idx, 0);
        prop_assert!((on_road - s).abs() < 1e-9);
        // Point lookup agrees between route and road.
        let via_route = route.point_at(s);
        let via_road = route.roads()[0].point_at(on_road);
        prop_assert!((via_route - via_road).norm() < 1e-9);
    }

    #[test]
    fn gradient_profile_interpolation_is_bounded(
        thetas in prop::collection::vec(-0.1..0.1f64, 2..20),
        q in 0.0..1.0f64,
    ) {
        let s: Vec<f64> = (0..thetas.len()).map(|i| i as f64 * 10.0).collect();
        let len = *s.last().unwrap();
        let p = GradientProfile::new(s, thetas.clone()).unwrap();
        let v = p.theta_at(q * len);
        let lo = thetas.iter().cloned().fold(f64::MAX, f64::min);
        let hi = thetas.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}

//! Property-based tests pinning the packed R-tree against brute-force
//! oracles: nearest queries (`SegmentIndex::nearest`,
//! `NetworkIndex::nearest_edge`) and bbox queries (`edges_in_bbox`,
//! `SegmentIndex::query_bbox`) must agree with a linear scan on
//! randomized segment sets — including degenerate zero-length and
//! collinear segments the Hilbert sort and projection must not choke
//! on — and on generated road networks.

use gradest_geo::generate::{city_network, country_network};
use gradest_geo::index::{
    network_segments, project_point_segment, Aabb, NetworkIndex, QueryScratch, Segment,
    SegmentIndex,
};
use gradest_math::Vec2;
use proptest::prelude::*;

/// One raw segment: endpoints plus a shape selector that forces the
/// degenerate cases (0 = general, 1 = zero-length, 2 = collinear on
/// the x-axis).
fn segment_strategy() -> impl Strategy<Value = Segment> {
    (-500.0..500.0f64, -500.0..500.0f64, -500.0..500.0f64, -500.0..500.0f64, 0u8..3).prop_map(
        |(ax, ay, bx, by, kind)| {
            let (a, b) = match kind {
                1 => (Vec2::new(ax, ay), Vec2::new(ax, ay)),
                2 => (Vec2::new(ax, 0.0), Vec2::new(bx, 0.0)),
                _ => (Vec2::new(ax, ay), Vec2::new(bx, by)),
            };
            Segment { a, b, edge: 0, s0: 0.0 }
        },
    )
}

/// Brute-force nearest: exact projection against every segment.
fn oracle_nearest_d2(segments: &[Segment], p: Vec2) -> f64 {
    segments.iter().map(|s| project_point_segment(p, s.a, s.b).1).fold(f64::INFINITY, f64::min)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nearest_matches_brute_force_on_random_segments(
        segments in prop::collection::vec(segment_strategy(), 1..80),
        qx in -600.0..600.0f64,
        qy in -600.0..600.0f64,
    ) {
        let mut segments = segments;
        for (i, s) in segments.iter_mut().enumerate() {
            s.edge = i as u32;
        }
        let index = SegmentIndex::build(&segments);
        let mut scratch = QueryScratch::new();
        let p = Vec2::new(qx, qy);
        let hit = index.nearest(p, &mut scratch).expect("non-empty index");
        let oracle = oracle_nearest_d2(&segments, p).sqrt();
        // Ties may resolve to a different segment; the distance is unique.
        prop_assert!(
            (hit.dist_m - oracle).abs() < 1e-9,
            "index {} vs oracle {}", hit.dist_m, oracle
        );
        // The reported snap point really is on the reported segment at
        // the reported distance.
        let seg = &segments[hit.segment];
        let (t, d2) = project_point_segment(p, seg.a, seg.b);
        prop_assert!((d2.sqrt() - hit.dist_m).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn bbox_query_matches_linear_filter(
        segments in prop::collection::vec(segment_strategy(), 1..80),
        cx in -500.0..500.0f64,
        cy in -500.0..500.0f64,
        w in 1.0..400.0f64,
        h in 1.0..400.0f64,
    ) {
        let index = SegmentIndex::build(&segments);
        let mut scratch = QueryScratch::new();
        let query = Aabb::of_corners(
            Vec2::new(cx - w / 2.0, cy - h / 2.0),
            Vec2::new(cx + w / 2.0, cy + h / 2.0),
        );
        let mut got: Vec<u32> = index.query_bbox(query, &mut scratch).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = segments
            .iter()
            .enumerate()
            .filter(|(_, s)| Aabb::of_corners(s.a, s.b).intersects(&query))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn network_index_matches_brute_force(seed in 0u64..200, qi in 0usize..16) {
        let net = city_network(seed);
        let index = NetworkIndex::build(&net);
        let segments = network_segments(&net);
        let mut scratch = QueryScratch::new();
        // Probe a deterministic grid point derived from the case inputs.
        let b = index.bounds();
        let fx = (qi % 4) as f64 / 3.0;
        let fy = (qi / 4) as f64 / 3.0;
        let p = Vec2::new(
            b.min_x + fx * (b.max_x - b.min_x),
            b.min_y + fy * (b.max_y - b.min_y),
        );
        let hit = index.nearest_s_on_network(p, &mut scratch).expect("non-empty network");
        let oracle = oracle_nearest_d2(&segments, p).sqrt();
        prop_assert!((hit.dist_m - oracle).abs() < 1e-9);
        // nearest_edge agrees with the full hit.
        prop_assert_eq!(index.nearest_edge(p, &mut scratch), Some(hit.edge));
        // The winning edge's AABB turns up in a bbox query around the
        // snap point.
        let pad = hit.dist_m + 1.0;
        let query = Aabb::of_corners(
            Vec2::new(p.x - pad, p.y - pad),
            Vec2::new(p.x + pad, p.y + pad),
        );
        let edges: Vec<u32> = index.edges_in_bbox(query, &mut scratch).collect();
        prop_assert!(edges.contains(&(hit.edge as u32)));
    }

    #[test]
    fn country_network_is_deterministic_across_rebuilds(seed in 0u64..20) {
        let a = country_network(seed, 40.0);
        let b = country_network(seed, 40.0);
        prop_assert_eq!(a.nodes().len(), b.nodes().len());
        prop_assert_eq!(a.edges().len(), b.edges().len());
        let ia = NetworkIndex::build(&a);
        let ib = NetworkIndex::build(&b);
        prop_assert_eq!(ia.segment_count(), ib.segment_count());
        let ba = ia.bounds();
        let bb = ib.bounds();
        prop_assert!((ba.min_x - bb.min_x).abs() < 1e-12);
        prop_assert!((ba.max_y - bb.max_y).abs() < 1e-12);
    }
}

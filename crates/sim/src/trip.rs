//! The trip simulator: ground-truth vehicle trajectories over a route.
//!
//! [`simulate_trip`] integrates longitudinal dynamics, driver behaviour,
//! and lane-change maneuvers along a [`Route`] at a fixed rate, producing
//! the [`Trajectory`] that sensor models consume and against which
//! estimates are scored.

use crate::driver::{DriverProfile, LaneChangePlanner};
use crate::dynamics::{step, LongState, SpeedController};
use crate::maneuver::{LaneChangeDirection, LaneChangeManeuver};
use crate::traffic::{IdmFollower, IdmParams, LeadVehicle};
use crate::vehicle::VehicleParams;
use gradest_geo::Route;
use gradest_math::Vec2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One ground-truth sample of the vehicle state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruthSample {
    /// Time since trip start, seconds.
    pub t: f64,
    /// Arc position along the route centerline, metres.
    pub s: f64,
    /// Planar position (centerline point + lateral offset), metres.
    pub position: Vec2,
    /// Altitude, metres.
    pub altitude: f64,
    /// Ground-truth road gradient θ at `s`, radians.
    pub theta: f64,
    /// Vehicle speed along its own axis, m/s.
    pub speed_mps: f64,
    /// Longitudinal acceleration dv/dt, m/s².
    pub accel_mps2: f64,
    /// Velocity component along the road direction, m/s
    /// (`v·cos α`; equals `speed_mps` outside maneuvers).
    pub v_long_mps: f64,
    /// Vehicle heading, radians CCW from East.
    pub heading: f64,
    /// Vehicle yaw rate (`ŵ_vehicle = w_road + w_steer`), rad/s.
    pub yaw_rate: f64,
    /// Steering angle α relative to the road direction, radians.
    pub steering_angle: f64,
    /// Steering rate `w_steer = dα/dt`, rad/s.
    pub steering_rate: f64,
    /// Road-direction change rate `w_road` at the current speed, rad/s.
    pub w_road: f64,
    /// Lateral offset from the trip's starting lane center, metres
    /// (positive left).
    pub lateral_offset_m: f64,
    /// Current lane index (0 = rightmost).
    pub lane: u32,
    /// Lanes available at `s`.
    pub lanes_available: u32,
}

/// A labelled lane-change event (ground truth for detector evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneChangeEvent {
    /// Direction of the change.
    pub direction: LaneChangeDirection,
    /// Maneuver start time, seconds.
    pub start_t: f64,
    /// Maneuver end time, seconds.
    pub end_t: f64,
    /// Arc position at maneuver start, metres.
    pub start_s: f64,
}

/// Configuration of a simulated trip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TripConfig {
    /// Simulation step, seconds (default 0.02 = 50 Hz).
    pub dt: f64,
    /// Speed at trip start, m/s.
    pub initial_speed_mps: f64,
    /// Vehicle parameters.
    pub vehicle: VehicleParams,
    /// Driver habits.
    pub driver: DriverProfile,
    /// Speed controller gains.
    pub controller: SpeedController,
    /// Hard cap on simulated duration, seconds.
    pub max_duration_s: f64,
    /// Optional traffic: a lead vehicle the ego must follow (IDM).
    pub traffic: Option<TrafficConfig>,
}

/// Traffic configuration: one scripted lead vehicle plus the IDM
/// parameters the ego driver follows it with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// The lead vehicle's schedule.
    pub lead: LeadVehicle,
    /// IDM car-following parameters.
    pub idm: IdmParams,
    /// Ego vehicle length used for bumper-to-bumper gaps, metres.
    pub vehicle_length_m: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            lead: LeadVehicle::default(),
            idm: IdmParams::default(),
            vehicle_length_m: 4.5,
        }
    }
}

impl Default for TripConfig {
    fn default() -> Self {
        TripConfig {
            dt: 0.02,
            initial_speed_mps: 10.0,
            vehicle: VehicleParams::default(),
            driver: DriverProfile::default(),
            controller: SpeedController::default(),
            max_duration_s: 3600.0,
            traffic: None,
        }
    }
}

/// A completed trip: uniformly sampled truth plus labelled events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    dt: f64,
    samples: Vec<TruthSample>,
    events: Vec<LaneChangeEvent>,
}

impl Trajectory {
    /// Sampling interval, seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Sampling rate, Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        1.0 / self.dt
    }

    /// The ground-truth samples, uniformly spaced in time.
    pub fn samples(&self) -> &[TruthSample] {
        &self.samples
    }

    /// Labelled lane-change events.
    pub fn events(&self) -> &[LaneChangeEvent] {
        &self.events
    }

    /// Trip duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples.last().map(|s| s.t).unwrap_or(0.0)
    }

    /// Distance covered along the route, metres.
    pub fn distance_m(&self) -> f64 {
        self.samples.last().map(|s| s.s).unwrap_or(0.0)
    }
}

/// Simulates a trip along `route`, deterministic in `seed`.
///
/// The vehicle starts at the route origin in the rightmost lane at
/// `config.initial_speed_mps` and drives until the route ends (or
/// `max_duration_s` elapses).
///
/// # Panics
///
/// Panics if `config.dt <= 0`.
pub fn simulate_trip(route: &Route, config: &TripConfig, seed: u64) -> Trajectory {
    assert!(config.dt > 0.0, "dt must be positive");
    let dt = config.dt;
    let mut rng = StdRng::seed_from_u64(seed);
    let wander_phase = rng.gen_range(0.0..std::f64::consts::TAU);

    let mut long = LongState { speed_mps: config.initial_speed_mps.max(0.0), ..Default::default() };
    let mut force = 0.0;
    let mut s = 0.0;
    let mut t = 0.0;
    let mut alpha = 0.0; // steering angle relative to road
    let mut lateral = 0.0;
    let mut planner = LaneChangePlanner::new(config.driver);
    let mut active: Option<(LaneChangeManeuver, f64)> = None;

    let mut samples = Vec::new();
    let mut events = Vec::new();

    while s < route.length() && t <= config.max_duration_s {
        let theta = route.gradient_at(s);
        let lanes = route.lanes_at(s);
        planner.clamp_to(lanes);

        // Driver: speed target and throttle/brake. With traffic enabled,
        // the IDM car-following law caps the commanded force whenever the
        // lead vehicle constrains the ego.
        let target = config.driver.target_speed(route, s, t, wander_phase);
        force = config.controller.force(&config.vehicle, &long, target, theta, force, dt);
        if let Some(traffic) = &config.traffic {
            let lead_s = traffic.lead.position_at(t);
            let gap = lead_s - s - traffic.vehicle_length_m;
            let idm = IdmFollower::new(IdmParams { desired_speed: target, ..traffic.idm });
            let a_idm =
                idm.acceleration(long.speed_mps, gap, long.speed_mps - traffic.lead.speed_at(t));
            let f_idm = config
                .vehicle
                .required_force(a_idm, long.speed_mps, theta)
                .clamp(-config.vehicle.max_brake_force_n, config.vehicle.max_drive_force_n);
            force = force.min(f_idm);
        }
        long = step(&config.vehicle, &long, force, theta, dt);
        let v = long.speed_mps;

        // Steering: active maneuver or chance to start one.
        let w_steer = if let Some((m, t0)) = active {
            let rel = t - t0;
            if rel >= m.duration_s {
                // Maneuver complete: snap residual angle (integration
                // residue is < 1e-3 rad) and seal the event record.
                events.push(LaneChangeEvent {
                    direction: m.direction,
                    start_t: t0,
                    end_t: t0 + m.duration_s,
                    start_s: events_start_s(&samples, t0),
                });
                alpha = 0.0;
                active = None;
                0.0
            } else {
                m.steering_rate(rel)
            }
        } else {
            // Only start when the multi-lane stretch lasts long enough to
            // finish the maneuver.
            // Nominal maneuver length at the driver's mean lateral accel.
            let nominal_duration = (2.0 * std::f64::consts::PI * config.driver.lane_width_m
                / config.driver.lane_change_lat_accel_mean)
                .sqrt();
            let lookahead = v * nominal_duration;
            let room = route.lanes_at((s + lookahead).min(route.length())) >= 2;
            if room {
                if let Some(m) = planner.maybe_start(&mut rng, t, v * dt, lanes, v) {
                    active = Some((m, t));
                    m.steering_rate(0.0)
                } else {
                    0.0
                }
            } else {
                0.0
            }
        };
        alpha += w_steer * dt;

        // Kinematics: arc progress is the road-direction component.
        let v_long = v * alpha.cos();
        let kappa = route.heading_rate_at(s, 12.0);
        let w_road = kappa * v_long;
        s += v_long * dt;
        lateral += v * alpha.sin() * dt;
        t += dt;

        let s_clamped = s.min(route.length());
        let road_heading = route.heading_at(s_clamped);
        let tangent = Vec2::from_angle(road_heading);
        let left_normal = tangent.rotated(std::f64::consts::FRAC_PI_2);
        samples.push(TruthSample {
            t,
            s: s_clamped,
            position: route.point_at(s_clamped) + left_normal * lateral,
            altitude: route.altitude_at(s_clamped),
            theta: route.gradient_at(s_clamped),
            speed_mps: v,
            accel_mps2: long.accel_mps2,
            v_long_mps: v_long,
            heading: road_heading + alpha,
            yaw_rate: w_road + w_steer,
            steering_angle: alpha,
            steering_rate: w_steer,
            w_road,
            lateral_offset_m: lateral,
            lane: planner.lane(),
            lanes_available: lanes,
        });
    }

    // If a maneuver was still active at route end, record it truncated.
    if let Some((m, t0)) = active {
        events.push(LaneChangeEvent {
            direction: m.direction,
            start_t: t0,
            end_t: t,
            start_s: events_start_s(&samples, t0),
        });
    }

    Trajectory { dt, samples, events }
}

/// Arc position of the sample nearest to time `t0` (for event labelling).
fn events_start_s(samples: &[TruthSample], t0: f64) -> f64 {
    samples.iter().rev().find(|s| s.t <= t0).map(|s| s.s).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradest_geo::generate::{red_road, straight_road, two_lane_straight};

    fn no_lane_change_config() -> TripConfig {
        TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 0.0, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn trip_covers_route() {
        let route = Route::new(vec![straight_road(1000.0, 2.0)]).unwrap();
        let traj = simulate_trip(&route, &no_lane_change_config(), 1);
        assert!((traj.distance_m() - 1000.0).abs() < 5.0);
        assert!(traj.duration_s() > 1000.0 / 20.0); // can't be faster than 20 m/s here
        assert!(!traj.samples().is_empty());
    }

    #[test]
    fn trip_is_deterministic_in_seed() {
        let route = Route::new(vec![two_lane_straight(2000.0)]).unwrap();
        let cfg = TripConfig::default();
        let a = simulate_trip(&route, &cfg, 9);
        let b = simulate_trip(&route, &cfg, 9);
        assert_eq!(a.samples().len(), b.samples().len());
        assert_eq!(a.events().len(), b.events().len());
        assert_eq!(a.samples().last().unwrap().s, b.samples().last().unwrap().s);
    }

    #[test]
    fn speeds_and_samples_are_physical() {
        let route = Route::new(vec![red_road()]).unwrap();
        let traj = simulate_trip(&route, &TripConfig::default(), 3);
        for w in traj.samples().windows(2) {
            assert!(w[1].t > w[0].t);
            assert!(w[1].s >= w[0].s, "vehicle never reverses");
            assert!(w[1].speed_mps >= 0.0);
            assert!(w[1].speed_mps < 40.0, "urban speeds stay sane");
            assert!(w[1].accel_mps2.abs() < 8.0);
        }
    }

    #[test]
    fn acceleration_is_consistent_with_speed() {
        let route = Route::new(vec![straight_road(800.0, 0.0)]).unwrap();
        let traj = simulate_trip(&route, &no_lane_change_config(), 5);
        let dt = traj.dt();
        // a(t) ≈ (v(t+dt) − v(t))/dt within integration error.
        for w in traj.samples().windows(2).take(1000) {
            let numeric = (w[1].speed_mps - w[0].speed_mps) / dt;
            assert!(
                (numeric - w[1].accel_mps2).abs() < 0.3,
                "numeric {numeric} vs recorded {}",
                w[1].accel_mps2
            );
        }
    }

    #[test]
    fn lane_changes_happen_on_two_lane_roads() {
        let route = Route::new(vec![two_lane_straight(8000.0)]).unwrap();
        let cfg = TripConfig {
            driver: DriverProfile {
                lane_change_rate_per_km: 2.0, // force plenty of events
                ..Default::default()
            },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &cfg, 7);
        assert!(
            traj.events().len() >= 4,
            "expected several lane changes, got {}",
            traj.events().len()
        );
        // Events alternate L/R starting from the right lane.
        assert_eq!(traj.events()[0].direction, LaneChangeDirection::Left);
        assert_eq!(traj.events()[1].direction, LaneChangeDirection::Right);
    }

    #[test]
    fn no_lane_changes_on_single_lane_road() {
        let route = Route::new(vec![straight_road(5000.0, 1.0)]).unwrap();
        let cfg = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 10.0, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &cfg, 11);
        assert!(traj.events().is_empty());
        assert!(traj.samples().iter().all(|s| s.steering_rate == 0.0));
    }

    #[test]
    fn lateral_offset_moves_one_lane_width() {
        let route = Route::new(vec![two_lane_straight(6000.0)]).unwrap();
        let cfg = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 0.5, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &cfg, 13);
        assert!(!traj.events().is_empty());
        let ev = traj.events()[0];
        // Lateral offset just after the first (left) change ≈ +3.65 m.
        let after = traj
            .samples()
            .iter()
            .find(|s| s.t >= ev.end_t + 0.1)
            .expect("samples continue after event");
        assert!((after.lateral_offset_m - 3.65).abs() < 0.4, "offset {}", after.lateral_offset_m);
    }

    #[test]
    fn v_long_drops_during_maneuver() {
        let route = Route::new(vec![two_lane_straight(6000.0)]).unwrap();
        let cfg = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 0.5, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &cfg, 13);
        let ev = traj.events()[0];
        let mid_t = 0.5 * (ev.start_t + ev.end_t);
        let mid = traj
            .samples()
            .iter()
            .min_by(|a, b| (a.t - mid_t).abs().partial_cmp(&(b.t - mid_t).abs()).unwrap())
            .unwrap();
        assert!(mid.v_long_mps < mid.speed_mps, "v_long strictly smaller mid-maneuver");
        assert!(mid.steering_angle.abs() > 0.02);
    }

    #[test]
    fn theta_matches_route_truth() {
        let route = Route::new(vec![red_road()]).unwrap();
        let traj = simulate_trip(&route, &no_lane_change_config(), 17);
        for s in traj.samples().iter().step_by(500) {
            assert!((s.theta - route.gradient_at(s.s)).abs() < 1e-12);
        }
    }

    #[test]
    fn traffic_slows_the_trip_and_adds_accel_activity() {
        use crate::trip::TrafficConfig;
        let route = Route::new(vec![straight_road(3000.0, 1.0)]).unwrap();
        let free = simulate_trip(&route, &no_lane_change_config(), 23);
        let cfg = TripConfig { traffic: Some(TrafficConfig::default()), ..no_lane_change_config() };
        let jammed = simulate_trip(&route, &cfg, 23);
        assert!(
            jammed.duration_s() > 1.15 * free.duration_s(),
            "traffic should slow the trip: {} vs {}",
            jammed.duration_s(),
            free.duration_s()
        );
        // Stop-and-go produces materially more acceleration variance.
        let accel_var = |t: &Trajectory| {
            let a: Vec<f64> = t.samples().iter().map(|s| s.accel_mps2).collect();
            let m = a.iter().sum::<f64>() / a.len() as f64;
            a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
        };
        assert!(accel_var(&jammed) > 1.5 * accel_var(&free));
        // And the ego never hits the leader.
        let traffic = TrafficConfig::default();
        for smp in jammed.samples() {
            let gap = traffic.lead.position_at(smp.t) - smp.s - traffic.vehicle_length_m;
            assert!(gap > 0.0, "collision at t = {}", smp.t);
        }
    }

    #[test]
    fn yaw_rate_decomposition_holds() {
        let route = Route::new(vec![two_lane_straight(6000.0)]).unwrap();
        let cfg = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 0.5, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &cfg, 13);
        for s in traj.samples() {
            assert!((s.yaw_rate - (s.w_road + s.steering_rate)).abs() < 1e-12);
        }
    }
}

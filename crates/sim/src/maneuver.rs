//! Lane-change steering maneuvers.
//!
//! Section III-B of the paper characterizes a lane change as a pair of
//! opposite-sign "bumps" in the steering-rate profile: counter-clockwise
//! then clockwise for a left change (positive then negative in the phone
//! frame), the mirror image for a right change. A single full sine period
//! of steering rate reproduces exactly that shape and yields a closed-form
//! lateral displacement, which we pin to the paper's 3.65 m average lane
//! width.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Direction of a lane change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaneChangeDirection {
    /// Move one lane to the left (positive steering-rate bump first).
    Left,
    /// Move one lane to the right (negative steering-rate bump first).
    Right,
}

impl LaneChangeDirection {
    /// +1 for left, −1 for right.
    pub fn sign(self) -> f64 {
        match self {
            LaneChangeDirection::Left => 1.0,
            LaneChangeDirection::Right => -1.0,
        }
    }
}

/// A lane-change maneuver: steering rate `w(t) = ±A·sin(2π·t/D)` over
/// `t ∈ [0, D]`.
///
/// Integrating twice (steering angle, then lateral rate `v·sin α ≈ v·α`)
/// gives the small-angle lateral displacement `W ≈ v·A·D²/(2π)`, so the
/// amplitude for a target displacement is `A = 2π·W/(v·D²)`.
///
/// # Example
///
/// ```
/// use gradest_sim::maneuver::{LaneChangeDirection, LaneChangeManeuver};
/// let m = LaneChangeManeuver::for_displacement(
///     LaneChangeDirection::Left, 3.65, 13.0, 5.0);
/// // Positive bump in the first half, negative in the second.
/// assert!(m.steering_rate(1.25) > 0.0);
/// assert!(m.steering_rate(3.75) < 0.0);
/// assert_eq!(m.steering_rate(6.0), 0.0); // maneuver over
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneChangeManeuver {
    /// Which way the vehicle moves.
    pub direction: LaneChangeDirection,
    /// Total maneuver duration, seconds.
    pub duration_s: f64,
    /// Peak steering rate, rad/s (positive; sign comes from direction).
    pub amplitude_rad_per_s: f64,
}

impl LaneChangeManeuver {
    /// Builds a maneuver that displaces the vehicle laterally by
    /// `lateral_m` at speed `speed_mps` over `duration_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive.
    pub fn for_displacement(
        direction: LaneChangeDirection,
        lateral_m: f64,
        speed_mps: f64,
        duration_s: f64,
    ) -> Self {
        assert!(
            lateral_m > 0.0 && speed_mps > 0.0 && duration_s > 0.0,
            "maneuver parameters must be positive"
        );
        let amplitude = 2.0 * PI * lateral_m / (speed_mps * duration_s * duration_s);
        LaneChangeManeuver { direction, duration_s, amplitude_rad_per_s: amplitude }
    }

    /// Steering rate at `t` seconds into the maneuver (0 outside `[0, D]`).
    pub fn steering_rate(&self, t: f64) -> f64 {
        if !(0.0..=self.duration_s).contains(&t) {
            return 0.0;
        }
        self.direction.sign() * self.amplitude_rad_per_s * (2.0 * PI * t / self.duration_s).sin()
    }

    /// Accumulated steering angle at `t`:
    /// `α(t) = ±(A·D/2π)·(1 − cos(2π·t/D))`, clamped to the maneuver span.
    /// Returns exactly 0 at `t ≥ D` (the vehicle ends parallel to the
    /// road).
    pub fn steering_angle(&self, t: f64) -> f64 {
        if t <= 0.0 || t >= self.duration_s {
            return 0.0;
        }
        let scale = self.amplitude_rad_per_s * self.duration_s / (2.0 * PI);
        self.direction.sign() * scale * (1.0 - (2.0 * PI * t / self.duration_s).cos())
    }

    /// Peak steering angle reached mid-maneuver.
    pub fn peak_angle(&self) -> f64 {
        self.amplitude_rad_per_s * self.duration_s / PI
    }

    /// Small-angle prediction of the final lateral displacement at
    /// constant speed `v` (signed: positive = left).
    pub fn predicted_displacement(&self, v: f64) -> f64 {
        self.direction.sign() * v * self.amplitude_rad_per_s * self.duration_s * self.duration_s
            / (2.0 * PI)
    }

    /// Duration the |steering rate| stays at or above `fraction` of its
    /// peak, per bump — the paper's `T` feature (with `fraction = 0.7`).
    pub fn time_above(&self, fraction: f64) -> f64 {
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
        // |sin x| ≥ f on [asin f, π − asin f] within each half period.
        let half = self.duration_s / 2.0;
        (PI - 2.0 * fraction.asin()) / PI * half
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left(v: f64, d: f64) -> LaneChangeManeuver {
        LaneChangeManeuver::for_displacement(LaneChangeDirection::Left, 3.65, v, d)
    }

    #[test]
    fn bump_signs_match_paper_convention() {
        let m = left(13.0, 5.0);
        // Left: positive bump then negative bump.
        assert!(m.steering_rate(1.25) > 0.0);
        assert!(m.steering_rate(3.75) < 0.0);
        let r = LaneChangeManeuver::for_displacement(LaneChangeDirection::Right, 3.65, 13.0, 5.0);
        assert!(r.steering_rate(1.25) < 0.0);
        assert!(r.steering_rate(3.75) > 0.0);
    }

    #[test]
    fn steering_angle_returns_to_zero() {
        let m = left(13.0, 5.0);
        assert_eq!(m.steering_angle(0.0), 0.0);
        assert_eq!(m.steering_angle(5.0), 0.0);
        assert_eq!(m.steering_angle(7.0), 0.0);
        // Peak at mid-maneuver.
        let peak = m.steering_angle(2.5);
        assert!((peak - m.peak_angle()).abs() < 1e-12);
        assert!(peak > 0.0);
    }

    #[test]
    fn numeric_displacement_matches_target() {
        // Integrate dl = v·sin(α) dt and check we land ~3.65 m left.
        for &(v, d) in &[(4.17, 5.0), (8.33, 5.0), (13.0, 4.0), (18.0, 6.0)] {
            let m = left(v, d);
            let dt = 1e-3;
            let mut alpha = 0.0;
            let mut l = 0.0;
            let steps = (d / dt) as usize;
            for i in 0..steps {
                let t = i as f64 * dt;
                alpha += m.steering_rate(t) * dt;
                l += v * alpha.sin() * dt;
            }
            assert!((l - 3.65).abs() < 0.10, "v={v} d={d}: displacement {l}");
        }
    }

    #[test]
    fn amplitude_scales_inverse_with_speed() {
        let slow = left(4.17, 5.0); // 15 km/h
        let fast = left(18.06, 5.0); // 65 km/h
        assert!(slow.amplitude_rad_per_s > fast.amplitude_rad_per_s);
        // Paper's Table I magnitudes are ~0.1–0.2 rad/s at urban speeds.
        let urban = left(8.33, 5.0); // 30 km/h
        assert!(
            (0.05..0.4).contains(&urban.amplitude_rad_per_s),
            "A = {}",
            urban.amplitude_rad_per_s
        );
    }

    #[test]
    fn time_above_070_matches_analytics() {
        let m = left(13.0, 5.5);
        let t = m.time_above(0.7);
        // Closed form: (π − 2·asin 0.7)/π · D/2 ≈ 0.2532·D.
        assert!((t - 0.2532 * 5.5).abs() < 0.01, "T = {t}");
        // Numeric check: count samples above 0.7·A in the first bump.
        let dt = 1e-4;
        let mut count = 0usize;
        let mut n = 0usize;
        let steps = (m.duration_s / 2.0 / dt) as usize;
        for i in 0..steps {
            let w = m.steering_rate(i as f64 * dt);
            if w >= 0.7 * m.amplitude_rad_per_s {
                count += 1;
            }
            n += 1;
        }
        let numeric = count as f64 / n as f64 * m.duration_s / 2.0;
        assert!((numeric - t).abs() < 0.01, "numeric {numeric} vs {t}");
    }

    #[test]
    fn rate_zero_outside_span() {
        let m = left(13.0, 5.0);
        assert_eq!(m.steering_rate(-0.1), 0.0);
        assert_eq!(m.steering_rate(5.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_speed() {
        let _ = LaneChangeManeuver::for_displacement(LaneChangeDirection::Left, 3.65, 0.0, 5.0);
    }
}

//! Driver behaviour: target-speed selection and lane-change planning.
//!
//! The driver tracks the speed limit (with human wander), slows for
//! curves, and — on multi-lane stretches — initiates lane changes at the
//! paper's cited naturalistic rate of ~0.36 per mile (≈0.224 per km).

use crate::maneuver::{LaneChangeDirection, LaneChangeManeuver};
use gradest_geo::Route;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Static description of a driver's habits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriverProfile {
    /// Lane changes per kilometre on eligible (multi-lane) road.
    pub lane_change_rate_per_km: f64,
    /// Lane width the maneuver traverses, metres (paper: 3.65 m).
    pub lane_width_m: f64,
    /// Fraction of the speed limit the driver targets (e.g. 1.05 = +5 %).
    pub speed_compliance: f64,
    /// Amplitude of sinusoidal speed wander, m/s.
    pub wander_amp_mps: f64,
    /// Period of speed wander, seconds.
    pub wander_period_s: f64,
    /// Maximum comfortable lateral acceleration in curves, m/s².
    pub max_lateral_accel: f64,
    /// Mean peak lateral acceleration the driver accepts during a lane
    /// change, m/s². Fixing this (rather than the duration) matches human
    /// behaviour: the maneuver takes `D = √(2π·W/a_lat)` seconds
    /// regardless of speed, and the steering-rate amplitude is
    /// `a_lat/v` — which is why the paper's Table I minima come from the
    /// highest test speeds.
    pub lane_change_lat_accel_mean: f64,
    /// Std-dev of the peak lateral acceleration, m/s².
    pub lane_change_lat_accel_sd: f64,
}

impl Default for DriverProfile {
    fn default() -> Self {
        DriverProfile {
            lane_change_rate_per_km: 0.224, // 0.36 per mile
            lane_width_m: 3.65,
            speed_compliance: 1.0,
            wander_amp_mps: 1.2,
            wander_period_s: 45.0,
            max_lateral_accel: 2.0,
            lane_change_lat_accel_mean: 1.8,
            lane_change_lat_accel_sd: 0.25,
        }
    }
}

impl DriverProfile {
    /// Target speed at route position `s` and time `t`: speed limit ×
    /// compliance, capped by curve comfort, plus sinusoidal wander (phase
    /// from `wander_phase`), floored at 2 m/s.
    pub fn target_speed(&self, route: &Route, s: f64, t: f64, wander_phase: f64) -> f64 {
        let base = route.speed_limit_at(s) * self.speed_compliance;
        let kappa = route.heading_rate_at(s, 15.0).abs();
        let curve_cap =
            if kappa > 1e-6 { (self.max_lateral_accel / kappa).sqrt() } else { f64::INFINITY };
        let wander = self.wander_amp_mps
            * (2.0 * std::f64::consts::PI * t / self.wander_period_s + wander_phase).sin();
        (base.min(curve_cap) + wander).max(2.0)
    }

    /// Samples a lane-change duration: draws a peak lateral acceleration,
    /// converts via `D = √(2π·W/a_lat)`, and clamps to `[2.5, 7.0]` s.
    pub fn sample_duration(&self, rng: &mut StdRng) -> f64 {
        // Box–Muller from two uniforms; clamping keeps it humanly plausible.
        let u1: f64 = rng.gen_range(1e-9..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let a_lat =
            (self.lane_change_lat_accel_mean + z * self.lane_change_lat_accel_sd).clamp(1.0, 2.8);
        (2.0 * std::f64::consts::PI * self.lane_width_m / a_lat).sqrt().clamp(2.5, 7.0)
    }
}

/// Stochastic lane-change planner. Tracks the current lane (0 = rightmost)
/// and decides, per simulation step, whether to start a maneuver.
#[derive(Debug, Clone)]
pub struct LaneChangePlanner {
    profile: DriverProfile,
    lane: u32,
    /// Cool-down: no new maneuver within this many seconds of the last.
    cooldown_until_s: f64,
}

impl LaneChangePlanner {
    /// Creates a planner starting in the rightmost lane.
    pub fn new(profile: DriverProfile) -> Self {
        LaneChangePlanner { profile, lane: 0, cooldown_until_s: 0.0 }
    }

    /// Current lane index (0 = rightmost).
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Decides whether to begin a lane change during a step that advances
    /// `ds` metres at time `t` with `lanes` available and current speed
    /// `v`. On a hit, returns the maneuver and updates the target lane.
    pub fn maybe_start(
        &mut self,
        rng: &mut StdRng,
        t: f64,
        ds: f64,
        lanes: u32,
        v: f64,
    ) -> Option<LaneChangeManeuver> {
        if lanes < 2 || t < self.cooldown_until_s || v < 3.0 {
            return None;
        }
        // Clamp the lane index if the road narrowed under us.
        if self.lane >= lanes {
            self.lane = lanes - 1;
        }
        let p = self.profile.lane_change_rate_per_km * ds / 1000.0;
        if rng.gen_range(0.0..1.0) >= p {
            return None;
        }
        let direction = if self.lane == 0 {
            LaneChangeDirection::Left
        } else if self.lane == lanes - 1 {
            LaneChangeDirection::Right
        } else if rng.gen_range(0.0..1.0) < 0.5 {
            LaneChangeDirection::Left
        } else {
            LaneChangeDirection::Right
        };
        let duration = self.profile.sample_duration(rng);
        let m =
            LaneChangeManeuver::for_displacement(direction, self.profile.lane_width_m, v, duration);
        match direction {
            LaneChangeDirection::Left => self.lane += 1,
            LaneChangeDirection::Right => self.lane -= 1,
        }
        self.cooldown_until_s = t + duration + 4.0;
        Some(m)
    }

    /// Forces the lane index back into range after a road narrows
    /// (e.g. a two-lane section ends while in the left lane).
    pub fn clamp_to(&mut self, lanes: u32) {
        if self.lane >= lanes {
            self.lane = lanes.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradest_geo::generate::{red_road, s_curve_road};
    use rand::SeedableRng;

    #[test]
    fn target_speed_respects_limit_and_wander() {
        let route = Route::new(vec![red_road()]).unwrap();
        let p = DriverProfile::default();
        let limit = route.speed_limit_at(100.0);
        for t in [0.0, 10.0, 22.5, 40.0] {
            let v = p.target_speed(&route, 100.0, t, 0.0);
            assert!(v >= 2.0);
            assert!(v <= limit + p.wander_amp_mps + 1e-9);
        }
    }

    #[test]
    fn curves_cap_speed() {
        let route = Route::new(vec![s_curve_road(60.0, 45.0)]).unwrap();
        let p = DriverProfile { wander_amp_mps: 0.0, ..Default::default() };
        // Mid-curve position.
        let s_mid = 150.0 + 60.0 * 45.0f64.to_radians() / 2.0;
        let v_curve = p.target_speed(&route, s_mid, 0.0, 0.0);
        let v_straight = p.target_speed(&route, 10.0, 0.0, 0.0);
        assert!(v_curve < v_straight, "{v_curve} !< {v_straight}");
        // sqrt(a_lat/κ) = sqrt(2·60) ≈ 11.0
        assert!((v_curve - (2.0f64 * 60.0).sqrt()).abs() < 1.0, "{v_curve}");
    }

    #[test]
    fn planner_needs_multilane_and_speed() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut planner = LaneChangePlanner::new(DriverProfile {
            lane_change_rate_per_km: 1e9, // always trigger when eligible
            ..Default::default()
        });
        assert!(planner.maybe_start(&mut rng, 0.0, 1.0, 1, 15.0).is_none());
        assert!(planner.maybe_start(&mut rng, 0.0, 1.0, 2, 1.0).is_none());
        let m = planner.maybe_start(&mut rng, 0.0, 1.0, 2, 15.0);
        assert!(m.is_some());
        assert_eq!(m.unwrap().direction, LaneChangeDirection::Left);
        assert_eq!(planner.lane(), 1);
    }

    #[test]
    fn planner_alternates_directions_at_lane_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        let profile = DriverProfile { lane_change_rate_per_km: 1e9, ..Default::default() };
        let mut planner = LaneChangePlanner::new(profile);
        let m1 = planner.maybe_start(&mut rng, 0.0, 1.0, 2, 15.0).unwrap();
        assert_eq!(m1.direction, LaneChangeDirection::Left);
        // Cooldown blocks immediate re-trigger.
        assert!(planner.maybe_start(&mut rng, 1.0, 1.0, 2, 15.0).is_none());
        // After cooldown, from the left lane the only move is Right.
        let t2 = m1.duration_s + 10.0;
        let m2 = planner.maybe_start(&mut rng, t2, 1.0, 2, 15.0).unwrap();
        assert_eq!(m2.direction, LaneChangeDirection::Right);
        assert_eq!(planner.lane(), 0);
    }

    #[test]
    fn planner_rate_is_approximately_poisson() {
        let mut rng = StdRng::seed_from_u64(3);
        let profile = DriverProfile::default(); // 0.224 / km
        let mut planner = LaneChangePlanner::new(profile);
        let mut count = 0;
        let mut t = 0.0;
        let ds = 0.3; // metres per step
        let total_km = 400.0;
        let steps = (total_km * 1000.0 / ds) as usize;
        for _ in 0..steps {
            if let Some(m) = planner.maybe_start(&mut rng, t, ds, 2, 15.0) {
                count += 1;
                t += m.duration_s; // skip through the maneuver
            }
            t += ds / 15.0;
        }
        let rate = count as f64 / total_km;
        assert!((rate - 0.224).abs() < 0.05, "observed {rate} changes/km over {count} events");
    }

    #[test]
    fn duration_sampling_is_clamped() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = DriverProfile::default();
        for _ in 0..500 {
            let d = p.sample_duration(&mut rng);
            assert!((2.5..=7.0).contains(&d), "duration {d}");
        }
    }

    #[test]
    fn clamp_to_narrowed_road() {
        let mut planner = LaneChangePlanner::new(DriverProfile::default());
        planner.lane = 1;
        planner.clamp_to(1);
        assert_eq!(planner.lane(), 0);
    }
}

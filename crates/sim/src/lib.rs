//! # gradest-sim
//!
//! Longitudinal vehicle dynamics, a driver model, and a trip simulator.
//!
//! The paper's data comes from a Nissan Altima driven around
//! Charlottesville; this crate is the synthetic equivalent. It produces
//! ground-truth vehicle trajectories over [`gradest_geo`] routes:
//!
//! * [`vehicle`] — vehicle parameters and force model
//!   (`m·v̇ = F_drive − F_aero − F_roll − F_grade`, the force balance
//!   behind the paper's Eq 3).
//! * [`dynamics`] — longitudinal integrator and drive-force controller.
//! * [`maneuver`] — lane-change steering-rate profiles: a full sine period
//!   whose amplitude/duration reproduce the bump shapes of the paper's
//!   Figures 3–4 and a ~3.65 m lateral displacement.
//! * [`driver`] — target-speed selection (speed limits, curve slowdown,
//!   human speed wander) and stochastic lane-change planning (the paper
//!   cites ~0.36 lane changes per mile).
//! * [`trip`] — the simulator: integrates vehicle state along a route at a
//!   fixed rate and emits ground-truth samples plus labelled lane-change
//!   events.
//!
//! # Example
//!
//! ```
//! use gradest_geo::generate::red_road;
//! use gradest_geo::Route;
//! use gradest_sim::trip::{TripConfig, simulate_trip};
//!
//! let route = Route::new(vec![red_road()]).unwrap();
//! let traj = simulate_trip(&route, &TripConfig::default(), 42);
//! assert!(traj.duration_s() > 60.0); // 2.16 km takes a few minutes
//! assert!(traj.samples().iter().all(|s| s.speed_mps >= 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod dynamics;
pub mod maneuver;
pub mod powertrain;
pub mod traffic;
pub mod trip;
pub mod vehicle;

pub use maneuver::LaneChangeDirection;
pub use powertrain::Powertrain;
pub use traffic::{IdmFollower, IdmParams, LeadVehicle};
pub use trip::{simulate_trip, LaneChangeEvent, Trajectory, TripConfig, TruthSample};
pub use vehicle::VehicleParams;

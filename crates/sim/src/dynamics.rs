//! Longitudinal dynamics integration and drive-force control.

use crate::vehicle::VehicleParams;
use serde::{Deserialize, Serialize};

/// Longitudinal vehicle state: speed along the vehicle's axis.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LongState {
    /// Speed, m/s (never negative; the simulator does not reverse).
    pub speed_mps: f64,
    /// Acceleration applied over the last step, m/s².
    pub accel_mps2: f64,
    /// Tractive force applied over the last step, N.
    pub drive_force_n: f64,
}

/// A proportional speed controller with force and jerk limits — the
/// "driver's right foot". Produces the tractive force that tracks a target
/// speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedController {
    /// Proportional gain, N per (m/s) of speed error.
    pub gain_n_per_mps: f64,
    /// Maximum force slew rate, N/s (limits jerk).
    pub max_force_rate_n_per_s: f64,
}

impl Default for SpeedController {
    fn default() -> Self {
        SpeedController { gain_n_per_mps: 900.0, max_force_rate_n_per_s: 8000.0 }
    }
}

impl SpeedController {
    /// Computes the next tractive force for tracking `target_mps`, slewing
    /// from `prev_force_n` and clamping to the vehicle's force limits.
    pub fn force(
        &self,
        params: &VehicleParams,
        state: &LongState,
        target_mps: f64,
        theta: f64,
        prev_force_n: f64,
        dt: f64,
    ) -> f64 {
        // Feed-forward the force that holds the current speed on this
        // gradient, plus proportional correction.
        let hold = params.required_force(0.0, state.speed_mps, theta);
        let desired = hold + self.gain_n_per_mps * (target_mps - state.speed_mps);
        let clamped = desired.clamp(-params.max_brake_force_n, params.max_drive_force_n);
        let max_delta = self.max_force_rate_n_per_s * dt;
        prev_force_n + (clamped - prev_force_n).clamp(-max_delta, max_delta)
    }
}

/// Advances the longitudinal state one step of `dt` seconds under
/// tractive force `force_n` on gradient `theta`, using semi-implicit Euler.
/// Speed is floored at zero (no reversing).
pub fn step(
    params: &VehicleParams,
    state: &LongState,
    force_n: f64,
    theta: f64,
    dt: f64,
) -> LongState {
    let a = params.acceleration(force_n, state.speed_mps, theta);
    let mut v = state.speed_mps + a * dt;
    let a_applied = if v < 0.0 {
        // Stop exactly at zero within the step.
        let a_stop = -state.speed_mps / dt;
        v = 0.0;
        a_stop
    } else {
        a
    };
    LongState { speed_mps: v, accel_mps2: a_applied, drive_force_n: force_n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_constant_force_accelerates() {
        let p = VehicleParams::default();
        let mut st = LongState { speed_mps: 10.0, ..Default::default() };
        for _ in 0..100 {
            st = step(&p, &st, 2000.0, 0.0, 0.02);
        }
        assert!(st.speed_mps > 10.0);
        assert!(st.accel_mps2 > 0.0);
    }

    #[test]
    fn step_never_reverses() {
        let p = VehicleParams::default();
        let mut st = LongState { speed_mps: 1.0, ..Default::default() };
        for _ in 0..200 {
            st = step(&p, &st, -p.max_brake_force_n, 0.0, 0.02);
        }
        assert_eq!(st.speed_mps, 0.0);
    }

    #[test]
    fn controller_converges_to_target_on_flat() {
        let p = VehicleParams::default();
        let c = SpeedController::default();
        let mut st = LongState { speed_mps: 5.0, ..Default::default() };
        let mut f = 0.0;
        for _ in 0..(120.0f64 / 0.02) as usize {
            f = c.force(&p, &st, 20.0, 0.0, f, 0.02);
            st = step(&p, &st, f, 0.0, 0.02);
        }
        assert!((st.speed_mps - 20.0).abs() < 0.2, "v = {}", st.speed_mps);
    }

    #[test]
    fn controller_holds_speed_on_gradient() {
        let p = VehicleParams::default();
        let c = SpeedController::default();
        let theta = 0.06; // steep 3.4° climb
        let mut st = LongState { speed_mps: 15.0, ..Default::default() };
        let mut f = p.required_force(0.0, 15.0, theta);
        for _ in 0..(60.0f64 / 0.02) as usize {
            f = c.force(&p, &st, 15.0, theta, f, 0.02);
            st = step(&p, &st, f, theta, 0.02);
        }
        assert!((st.speed_mps - 15.0).abs() < 0.1, "v = {}", st.speed_mps);
        // Holding speed uphill needs sustained positive force.
        assert!(st.drive_force_n > p.grade_force(theta) * 0.9);
    }

    #[test]
    fn controller_respects_force_limits() {
        let p = VehicleParams::default();
        let c = SpeedController::default();
        let st = LongState { speed_mps: 0.0, ..Default::default() };
        // Huge target: force must saturate at max_drive_force after slewing.
        let mut f = 0.0;
        for _ in 0..100 {
            f = c.force(&p, &st, 100.0, 0.0, f, 0.02);
        }
        assert!(f <= p.max_drive_force_n + 1e-9);
        // Huge negative target: saturates at brake limit.
        let mut f = 0.0;
        let st = LongState { speed_mps: 30.0, ..Default::default() };
        for _ in 0..200 {
            f = c.force(&p, &st, 0.0, 0.0, f, 0.02);
        }
        assert!(f >= -p.max_brake_force_n - 1e-9);
    }

    #[test]
    fn controller_slews_force_gradually() {
        let p = VehicleParams::default();
        let c = SpeedController::default();
        let st = LongState { speed_mps: 10.0, ..Default::default() };
        let f1 = c.force(&p, &st, 30.0, 0.0, 0.0, 0.02);
        // One 20 ms step can move force by at most 160 N.
        assert!(f1.abs() <= c.max_force_rate_n_per_s * 0.02 + 1e-9);
    }
}

//! Powertrain: gears, engine speed, and torque.
//!
//! The paper's Eq (3) estimates gradient from **driving torque** `M`, and
//! its discussion of prior work turns on how hard real-time `M` is to
//! obtain: the active gear "is changed frequently in practice and
//! difficult to measure in real time", gearbox access "is only available
//! in premium cars". This module models that substrate: a 5-speed
//! automatic with a torque-converter-free shift schedule, engine speed
//! from gear kinematics, and the torque split `M = F·r` to
//! `engine torque = M / (gear·final·η)`.

use crate::vehicle::VehicleParams;
use serde::{Deserialize, Serialize};

/// A stepped-gear powertrain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Powertrain {
    /// Gear ratios, first to top (engine rev per wheel rev, before the
    /// final drive).
    pub gear_ratios: Vec<f64>,
    /// Final drive ratio.
    pub final_drive: f64,
    /// Driveline efficiency in `(0, 1]`.
    pub efficiency: f64,
    /// Upshift engine speed, rpm.
    pub upshift_rpm: f64,
    /// Downshift engine speed, rpm.
    pub downshift_rpm: f64,
    /// Idle engine speed, rpm.
    pub idle_rpm: f64,
}

impl Default for Powertrain {
    fn default() -> Self {
        // A mid-2000s 5-speed automatic sedan (the paper's Altima era).
        Powertrain {
            gear_ratios: vec![3.83, 2.36, 1.53, 1.02, 0.77],
            final_drive: 3.55,
            efficiency: 0.92,
            upshift_rpm: 2600.0,
            downshift_rpm: 1300.0,
            idle_rpm: 700.0,
        }
    }
}

impl Powertrain {
    /// Number of gears.
    pub fn gears(&self) -> usize {
        self.gear_ratios.len()
    }

    /// Engine speed (rpm) at vehicle speed `v` in `gear` (1-based),
    /// floored at idle.
    ///
    /// # Panics
    ///
    /// Panics if `gear` is 0 or beyond the gear count.
    pub fn engine_rpm(&self, params: &VehicleParams, v: f64, gear: usize) -> f64 {
        assert!(gear >= 1 && gear <= self.gears(), "gear {gear} out of range");
        let wheel_rps = v / (2.0 * std::f64::consts::PI * params.wheel_radius_m);
        let rpm = wheel_rps * 60.0 * self.gear_ratios[gear - 1] * self.final_drive;
        rpm.max(self.idle_rpm)
    }

    /// The gear an automatic transmission would hold at speed `v`,
    /// starting the search from `current` (1-based) and applying shift
    /// hysteresis.
    pub fn select_gear(&self, params: &VehicleParams, v: f64, current: usize) -> usize {
        let mut gear = current.clamp(1, self.gears());
        // Upshift while over-revving.
        while gear < self.gears() && self.engine_rpm(params, v, gear) > self.upshift_rpm {
            gear += 1;
        }
        // Downshift while lugging.
        while gear > 1 && self.engine_rpm(params, v, gear) < self.downshift_rpm {
            gear -= 1;
        }
        gear
    }

    /// Engine torque (N·m) delivering tractive force `force_n` at the
    /// wheels in `gear`: `τ_e = F·r / (i_g·i_f·η)` (η only assists under
    /// power; braking torque is returned as-is, negative).
    ///
    /// # Panics
    ///
    /// Panics if `gear` is out of range.
    pub fn engine_torque(&self, params: &VehicleParams, force_n: f64, gear: usize) -> f64 {
        assert!(gear >= 1 && gear <= self.gears(), "gear {gear} out of range");
        let overall = self.gear_ratios[gear - 1] * self.final_drive;
        let wheel_torque = force_n * params.wheel_radius_m;
        if force_n >= 0.0 {
            wheel_torque / (overall * self.efficiency)
        } else {
            wheel_torque / overall
        }
    }

    /// Inverse: driving torque at the wheels (`M` of Eq 3, N·m) from an
    /// engine torque reading in `gear` — what a CAN/OBD torque signal
    /// yields after the driveline.
    pub fn wheel_torque_from_engine(&self, engine_torque: f64, gear: usize) -> f64 {
        assert!(gear >= 1 && gear <= self.gears(), "gear {gear} out of range");
        let overall = self.gear_ratios[gear - 1] * self.final_drive;
        if engine_torque >= 0.0 {
            engine_torque * overall * self.efficiency
        } else {
            engine_torque * overall
        }
    }
}

/// Per-sample powertrain state derived from a completed trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowertrainSample {
    /// Time since trip start, seconds.
    pub t: f64,
    /// Active gear (1-based).
    pub gear: usize,
    /// Engine speed, rpm.
    pub engine_rpm: f64,
    /// Engine torque, N·m.
    pub engine_torque: f64,
    /// Driving torque at the wheels (`M` of the paper's Eq 3), N·m.
    pub wheel_torque: f64,
}

/// Annotates a trajectory with gear, engine speed, and torque — the
/// gearbox signals the paper says are "difficult to measure in real time"
/// and only available in premium cars. Ground truth for any torque-based
/// estimator.
pub fn annotate(
    traj: &crate::trip::Trajectory,
    params: &VehicleParams,
    pt: &Powertrain,
) -> Vec<PowertrainSample> {
    let mut gear = 1usize;
    traj.samples()
        .iter()
        .map(|s| {
            gear = pt.select_gear(params, s.speed_mps, gear);
            // Tractive force the dynamics actually applied: invert the
            // longitudinal force balance at the recorded state.
            let force = params.required_force(s.accel_mps2, s.speed_mps, s.theta);
            PowertrainSample {
                t: s.t,
                gear,
                engine_rpm: pt.engine_rpm(params, s.speed_mps, gear),
                engine_torque: pt.engine_torque(params, force, gear),
                wheel_torque: force * params.wheel_radius_m,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Powertrain, VehicleParams) {
        (Powertrain::default(), VehicleParams::default())
    }

    #[test]
    fn rpm_scales_with_speed_and_gear() {
        let (pt, vp) = setup();
        let low = pt.engine_rpm(&vp, 10.0, 1);
        let high_gear = pt.engine_rpm(&vp, 10.0, 5);
        assert!(low > high_gear, "1st gear revs higher than 5th");
        assert!(pt.engine_rpm(&vp, 20.0, 3) > pt.engine_rpm(&vp, 10.0, 3));
        // Parked: idle.
        assert_eq!(pt.engine_rpm(&vp, 0.0, 1), pt.idle_rpm);
    }

    #[test]
    fn rpm_magnitudes_are_automotive() {
        let (pt, vp) = setup();
        // 100 km/h in top gear: ~2000-3000 rpm for this class of car.
        let rpm = pt.engine_rpm(&vp, 27.8, 5);
        assert!((1500.0..3500.0).contains(&rpm), "rpm {rpm}");
    }

    #[test]
    fn automatic_upshifts_with_speed() {
        let (pt, vp) = setup();
        let mut gear = 1;
        let mut gears_seen = vec![1];
        for v in 1..=30 {
            let g = pt.select_gear(&vp, v as f64, gear);
            if g != gear {
                gears_seen.push(g);
            }
            gear = g;
        }
        // Monotone upshifts through (most of) the box.
        for w in gears_seen.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(*gears_seen.last().unwrap() >= 4, "top gear by 30 m/s");
    }

    #[test]
    fn automatic_downshifts_when_slowing() {
        let (pt, vp) = setup();
        let top = pt.select_gear(&vp, 28.0, 1);
        let slowed = pt.select_gear(&vp, 4.0, top);
        assert!(slowed < top);
    }

    #[test]
    fn hysteresis_prevents_shift_hunting() {
        let (pt, vp) = setup();
        // At a speed between the shift thresholds, the chosen gear
        // depends on the current gear (stable band).
        let mut hold_speeds = 0;
        for v in 5..25 {
            let v = v as f64;
            let from_low = pt.select_gear(&vp, v, 1);
            let from_high = pt.select_gear(&vp, v, 5);
            if from_low != from_high {
                hold_speeds += 1;
            }
        }
        assert!(hold_speeds > 3, "hysteresis band should exist");
    }

    #[test]
    fn torque_round_trips_through_the_driveline() {
        let (pt, vp) = setup();
        for &force in &[500.0, 1500.0, 3000.0] {
            for gear in 1..=pt.gears() {
                let te = pt.engine_torque(&vp, force, gear);
                let back = pt.wheel_torque_from_engine(te, gear);
                assert!(
                    (back - force * vp.wheel_radius_m).abs() < 1e-9,
                    "force {force} gear {gear}"
                );
            }
        }
    }

    #[test]
    fn engine_torque_magnitudes_are_plausible() {
        let (pt, vp) = setup();
        // Cruise at 15 m/s on flat ground: ~360 N tractive force.
        let f = vp.required_force(0.0, 15.0, 0.0);
        let gear = pt.select_gear(&vp, 15.0, 3);
        let te = pt.engine_torque(&vp, f, gear);
        assert!((10.0..120.0).contains(&te), "cruise engine torque {te} N·m");
    }

    #[test]
    fn braking_torque_is_negative() {
        let (pt, vp) = setup();
        assert!(pt.engine_torque(&vp, -2000.0, 3) < 0.0);
    }

    #[test]
    fn annotate_tracks_a_trip() {
        use crate::driver::DriverProfile;
        use crate::trip::{simulate_trip, TripConfig};
        use gradest_geo::generate::straight_road;
        use gradest_geo::Route;
        let route = Route::new(vec![straight_road(2000.0, 2.0)]).unwrap();
        let cfg = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 0.0, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &cfg, 5);
        let (pt, vp) = setup();
        let annotated = annotate(&traj, &vp, &pt);
        assert_eq!(annotated.len(), traj.samples().len());
        // Gears shift through the box and shift counts stay human.
        let max_gear = annotated.iter().map(|a| a.gear).max().unwrap();
        assert!(max_gear >= 3, "top gear reached {max_gear}");
        let shifts = annotated.windows(2).filter(|w| w[1].gear != w[0].gear).count();
        assert!(shifts < 40, "{shifts} shifts over one trip (hunting?)");
        // RPM stays in automotive bounds and torque round-trips.
        for a in annotated.iter().step_by(100) {
            assert!((600.0..5000.0).contains(&a.engine_rpm), "rpm {}", a.engine_rpm);
            let back = pt.wheel_torque_from_engine(a.engine_torque, a.gear);
            assert!((back - a.wheel_torque).abs() < 1e-9);
        }
        // The paper's Eq 3 recovers the gradient from the annotated M at
        // cruise points (the torque-based premium-car method).
        let mid = &annotated[annotated.len() / 2];
        let truth = traj.samples()[annotated.len() / 2];
        let est = vp
            .gradient_from_states(mid.wheel_torque, truth.speed_mps, truth.accel_mps2)
            .expect("in range");
        assert!((est - truth.theta).abs() < 3e-3, "Eq3 {est} vs {}", truth.theta);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_gear_panics() {
        let (pt, vp) = setup();
        let _ = pt.engine_rpm(&vp, 10.0, 0);
    }
}

//! Car-following traffic: the Intelligent Driver Model (IDM).
//!
//! Urban driving is rarely free-flow; a lead vehicle shapes the ego
//! vehicle's speed profile, producing the stop-and-go accelerations that
//! stress gradient estimation. [`IdmFollower`] computes the classic IDM
//! acceleration, and [`LeadVehicle`] scripts a lead car along the route.

use serde::{Deserialize, Serialize};

/// IDM parameters (Treiber's standard urban car values).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdmParams {
    /// Desired (free-flow) speed, m/s.
    pub desired_speed: f64,
    /// Minimum bumper-to-bumper gap, metres.
    pub min_gap: f64,
    /// Desired time headway, seconds.
    pub time_headway: f64,
    /// Maximum acceleration, m/s².
    pub max_accel: f64,
    /// Comfortable deceleration, m/s².
    pub comfortable_decel: f64,
    /// Acceleration exponent δ.
    pub delta: f64,
}

impl Default for IdmParams {
    fn default() -> Self {
        IdmParams {
            desired_speed: 13.9, // 50 km/h
            min_gap: 2.0,
            time_headway: 1.5,
            max_accel: 1.4,
            comfortable_decel: 2.0,
            delta: 4.0,
        }
    }
}

/// The IDM car-following law.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IdmFollower {
    /// Model parameters.
    pub params: IdmParams,
}

impl IdmFollower {
    /// Creates a follower with the given parameters.
    pub fn new(params: IdmParams) -> Self {
        IdmFollower { params }
    }

    /// IDM acceleration for ego speed `v`, gap `s` to the leader
    /// (bumper-to-bumper, metres), and speed difference
    /// `dv = v − v_lead` (positive when closing).
    ///
    /// With no leader, pass `s = f64::INFINITY` and `dv = 0`.
    pub fn acceleration(&self, v: f64, gap: f64, dv: f64) -> f64 {
        let p = &self.params;
        let free = 1.0 - (v / p.desired_speed).max(0.0).powf(p.delta);
        if !gap.is_finite() {
            return p.max_accel * free;
        }
        let gap = gap.max(0.01);
        let s_star = p.min_gap
            + (v * p.time_headway + v * dv / (2.0 * (p.max_accel * p.comfortable_decel).sqrt()))
                .max(0.0);
        p.max_accel * (free - (s_star / gap).powi(2))
    }
}

/// A scripted lead vehicle: position along the route over time, with a
/// periodic slow-down (e.g. bus stops / queue waves).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeadVehicle {
    /// Lead's initial arc position, metres ahead of the ego start.
    pub initial_s: f64,
    /// Cruise speed, m/s.
    pub cruise_speed: f64,
    /// Slow speed during a slow-down phase, m/s.
    pub slow_speed: f64,
    /// Period of the cruise/slow cycle, seconds.
    pub cycle_s: f64,
    /// Fraction of the cycle spent slow, in `[0, 1]`.
    pub slow_fraction: f64,
}

impl Default for LeadVehicle {
    fn default() -> Self {
        LeadVehicle {
            initial_s: 40.0,
            cruise_speed: 12.0,
            slow_speed: 3.0,
            cycle_s: 60.0,
            slow_fraction: 0.25,
        }
    }
}

impl LeadVehicle {
    /// Lead speed at time `t`.
    pub fn speed_at(&self, t: f64) -> f64 {
        let phase = (t / self.cycle_s).fract();
        if phase < self.slow_fraction {
            self.slow_speed
        } else {
            self.cruise_speed
        }
    }

    /// Lead arc position at time `t` (piecewise-constant speed
    /// integration).
    pub fn position_at(&self, t: f64) -> f64 {
        let full_cycles = (t / self.cycle_s).floor();
        let per_cycle = self.cycle_s
            * (self.slow_fraction * self.slow_speed
                + (1.0 - self.slow_fraction) * self.cruise_speed);
        let rem = t - full_cycles * self.cycle_s;
        let slow_span = self.slow_fraction * self.cycle_s;
        let rem_dist = if rem <= slow_span {
            rem * self.slow_speed
        } else {
            slow_span * self.slow_speed + (rem - slow_span) * self.cruise_speed
        };
        self.initial_s + full_cycles * per_cycle + rem_dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_flow_converges_to_desired_speed() {
        let idm = IdmFollower::default();
        let mut v: f64 = 5.0;
        for _ in 0..20_000 {
            v += idm.acceleration(v, f64::INFINITY, 0.0) * 0.02;
        }
        assert!((v - idm.params.desired_speed).abs() < 0.1, "v = {v}");
    }

    #[test]
    fn closing_on_a_slow_leader_brakes() {
        let idm = IdmFollower::default();
        // 14 m/s closing at +8 m/s with 20 m gap: hard braking.
        let a = idm.acceleration(14.0, 20.0, 8.0);
        assert!(a < -2.0, "a = {a}");
    }

    #[test]
    fn huge_gap_behaves_like_free_flow() {
        let idm = IdmFollower::default();
        let free = idm.acceleration(10.0, f64::INFINITY, 0.0);
        let far = idm.acceleration(10.0, 1e6, 0.0);
        assert!((free - far).abs() < 1e-3);
    }

    #[test]
    fn equilibrium_gap_is_headway_based() {
        // Following at equal speed: acceleration ≈ 0 at s ≈ s₀ + v·T
        // (with the free-road term's correction).
        let idm = IdmFollower::default();
        let v = 10.0;
        // Find the zero crossing by bisection.
        let (mut lo, mut hi) = (5.0, 200.0);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if idm.acceleration(v, mid, 0.0) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let eq_gap = 0.5 * (lo + hi);
        let naive = idm.params.min_gap + v * idm.params.time_headway;
        assert!(eq_gap > naive, "equilibrium gap {eq_gap} vs naive {naive}");
        assert!(eq_gap < 2.0 * naive);
    }

    #[test]
    fn follower_simulation_never_collides() {
        let idm = IdmFollower::default();
        let lead = LeadVehicle::default();
        let dt = 0.02;
        let mut s = 0.0;
        let mut v: f64 = 10.0;
        let mut min_gap = f64::INFINITY;
        let mut t = 0.0;
        for _ in 0..(600.0 / dt) as usize {
            let lead_s = lead.position_at(t);
            let lead_v = lead.speed_at(t);
            let gap = lead_s - s - 4.5; // vehicle length
            let a = idm.acceleration(v, gap, v - lead_v);
            v = (v + a * dt).max(0.0);
            s += v * dt;
            t += dt;
            min_gap = min_gap.min(gap);
        }
        assert!(min_gap > 0.3, "minimum gap {min_gap}");
    }

    #[test]
    fn lead_vehicle_position_is_continuous_and_monotone() {
        let lead = LeadVehicle::default();
        let mut prev = lead.position_at(0.0);
        let mut t = 0.05;
        while t < 300.0 {
            let cur = lead.position_at(t);
            assert!(cur >= prev, "position regressed at t={t}");
            assert!(cur - prev < 1.0, "jump at t={t}: {} -> {}", prev, cur);
            prev = cur;
            t += 0.05;
        }
    }

    #[test]
    fn lead_cycle_phases() {
        let lead = LeadVehicle::default();
        assert_eq!(lead.speed_at(1.0), lead.slow_speed);
        assert_eq!(lead.speed_at(30.0), lead.cruise_speed);
        assert_eq!(lead.speed_at(61.0), lead.slow_speed);
    }
}

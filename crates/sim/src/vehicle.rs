//! Vehicle parameters and the longitudinal force model.
//!
//! The paper's Eq (3) relates road gradient to driving torque, aerodynamic
//! drag, acceleration, and rolling resistance:
//!
//! ```text
//! θ = arcsin( M/(r·m·g) − ρ·A_f·C_d·v²/(2·m·g) − a/g ) − β
//! ```
//!
//! with `β = arcsin(μ/√(1+μ²))` the rolling-resistance angle. This module
//! implements the underlying force balance in both directions: forward
//! (forces → acceleration, used by the simulator) and inverse
//! (states → gradient, the paper's Eq 3, used by estimators and tests).

use gradest_math::GRAVITY;
use serde::{Deserialize, Serialize};

/// Physical parameters of the simulated vehicle.
///
/// Defaults approximate the paper's test vehicle (a mid-size sedan with
/// the 1 479 kg gross weight of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Gross mass in kg (`m`).
    pub mass_kg: f64,
    /// Frontal area in m² (`A_f`).
    pub frontal_area_m2: f64,
    /// Aerodynamic drag coefficient (`C_d`).
    pub drag_coefficient: f64,
    /// Rolling resistance coefficient (`μ`).
    pub rolling_resistance: f64,
    /// Driven-wheel radius in metres (`r`).
    pub wheel_radius_m: f64,
    /// Ambient air density in kg/m³ (`ρ`).
    pub air_density: f64,
    /// Maximum tractive force at the wheels, N.
    pub max_drive_force_n: f64,
    /// Maximum braking force, N (positive number).
    pub max_brake_force_n: f64,
}

impl Default for VehicleParams {
    fn default() -> Self {
        VehicleParams {
            mass_kg: 1479.0,
            frontal_area_m2: 2.3,
            drag_coefficient: 0.31,
            rolling_resistance: 0.012,
            wheel_radius_m: 0.31,
            air_density: 1.225,
            max_drive_force_n: 4500.0,
            max_brake_force_n: 9000.0,
        }
    }
}

impl VehicleParams {
    /// The rolling-resistance angle `β = arcsin(μ/√(1+μ²))` of Eq (3).
    pub fn beta(&self) -> f64 {
        let mu = self.rolling_resistance;
        (mu / (1.0 + mu * mu).sqrt()).asin()
    }

    /// Aerodynamic drag force at speed `v`, N (always ≥ 0 for forward
    /// motion): `½·ρ·A_f·C_d·v²`.
    pub fn aero_force(&self, v: f64) -> f64 {
        0.5 * self.air_density * self.frontal_area_m2 * self.drag_coefficient * v * v
    }

    /// Rolling resistance force on a gradient θ, N: `μ·m·g·cosθ`.
    pub fn rolling_force(&self, theta: f64) -> f64 {
        self.rolling_resistance * self.mass_kg * GRAVITY * theta.cos()
    }

    /// Gravitational resistance on a gradient θ, N: `m·g·sinθ`
    /// (negative on a downhill — it then pushes the vehicle forward).
    pub fn grade_force(&self, theta: f64) -> f64 {
        self.mass_kg * GRAVITY * theta.sin()
    }

    /// Forward model: longitudinal acceleration given tractive force
    /// `drive_force_n` (negative = braking), speed, and gradient.
    pub fn acceleration(&self, drive_force_n: f64, v: f64, theta: f64) -> f64 {
        (drive_force_n - self.aero_force(v) - self.rolling_force(theta) - self.grade_force(theta))
            / self.mass_kg
    }

    /// Tractive force needed to hold acceleration `a` at speed `v` on
    /// gradient θ (inverse of [`VehicleParams::acceleration`]).
    pub fn required_force(&self, a: f64, v: f64, theta: f64) -> f64 {
        self.mass_kg * a + self.aero_force(v) + self.rolling_force(theta) + self.grade_force(theta)
    }

    /// Driving torque at the wheels for a given tractive force, N·m
    /// (`M = F·r`).
    pub fn torque_from_force(&self, force_n: f64) -> f64 {
        force_n * self.wheel_radius_m
    }

    /// The paper's Eq (3): road gradient from driving torque `m_torque`,
    /// speed `v`, and measured acceleration `a`.
    ///
    /// Returns `None` when the arcsin argument leaves `[-1, 1]` (states
    /// inconsistent with any physical gradient).
    pub fn gradient_from_states(&self, m_torque: f64, v: f64, a: f64) -> Option<f64> {
        let mg = self.mass_kg * GRAVITY;
        let arg = m_torque / (self.wheel_radius_m * mg)
            - self.air_density * self.frontal_area_m2 * self.drag_coefficient * v * v / (2.0 * mg)
            - a / GRAVITY;
        if !(-1.0..=1.0).contains(&arg) {
            return None;
        }
        Some(arg.asin() - self.beta())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_is_small_and_positive() {
        let p = VehicleParams::default();
        let b = p.beta();
        assert!(b > 0.0 && b < 0.02, "β = {b}");
        // For small μ, β ≈ μ.
        assert!((b - p.rolling_resistance).abs() < 1e-4);
    }

    #[test]
    fn aero_force_is_quadratic() {
        let p = VehicleParams::default();
        assert_eq!(p.aero_force(0.0), 0.0);
        let f10 = p.aero_force(10.0);
        let f20 = p.aero_force(20.0);
        assert!((f20 / f10 - 4.0).abs() < 1e-12);
        // Sanity: ~44 N at 10 m/s for these parameters.
        assert!((f10 - 43.66).abs() < 0.5, "{f10}");
    }

    #[test]
    fn grade_force_signs() {
        let p = VehicleParams::default();
        assert!(p.grade_force(0.05) > 0.0);
        assert!(p.grade_force(-0.05) < 0.0);
        assert_eq!(p.grade_force(0.0), 0.0);
    }

    #[test]
    fn acceleration_and_required_force_are_inverse() {
        let p = VehicleParams::default();
        for &(v, theta, a) in &[(10.0, 0.02, 0.5), (25.0, -0.04, -1.0), (0.0, 0.0, 2.0)] {
            let f = p.required_force(a, v, theta);
            let back = p.acceleration(f, v, theta);
            assert!((back - a).abs() < 1e-12, "v={v} θ={theta}");
        }
    }

    #[test]
    fn coasting_downhill_accelerates() {
        let p = VehicleParams::default();
        // 5% downhill at modest speed, no drive force: net acceleration > 0.
        let a = p.acceleration(0.0, 5.0, -0.05);
        assert!(a > 0.0, "a = {a}");
        // Uphill coasting decelerates.
        assert!(p.acceleration(0.0, 5.0, 0.05) < 0.0);
    }

    #[test]
    fn eq3_recovers_gradient_from_consistent_states() {
        let p = VehicleParams::default();
        for &theta_true in &[-0.06, -0.02, 0.0, 0.03, 0.07] {
            let v = 15.0;
            let a = 0.3;
            let f = p.required_force(a, v, theta_true);
            let m = p.torque_from_force(f);
            let est = p.gradient_from_states(m, v, a).expect("in range");
            // Eq (3) approximates sinθ·cosβ + cosθ·sinβ ≈ sin(θ+β); for
            // small angles the recovery error is < 0.1°.
            assert!((est - theta_true).abs() < 2e-3, "θ={theta_true} est={est}");
        }
    }

    #[test]
    fn eq3_rejects_unphysical_states() {
        let p = VehicleParams::default();
        // Torque way beyond anything a gradient could absorb.
        assert!(p.gradient_from_states(1e9, 10.0, 0.0).is_none());
    }

    #[test]
    fn torque_is_force_times_radius() {
        let p = VehicleParams::default();
        assert!((p.torque_from_force(1000.0) - 310.0).abs() < 1e-9);
    }

    #[test]
    fn default_parameters_match_table_ii_mass() {
        assert_eq!(VehicleParams::default().mass_kg, 1479.0);
    }
}

//! Property-based tests for vehicle dynamics and maneuvers.

use gradest_sim::dynamics::{step, LongState, SpeedController};
use gradest_sim::maneuver::{LaneChangeDirection, LaneChangeManeuver};
use gradest_sim::vehicle::VehicleParams;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn acceleration_force_inverse(
        v in 0.0..40.0f64,
        theta in -0.15..0.15f64,
        a in -4.0..4.0f64,
    ) {
        let p = VehicleParams::default();
        let f = p.required_force(a, v, theta);
        prop_assert!((p.acceleration(f, v, theta) - a).abs() < 1e-10);
    }

    #[test]
    fn eq3_inverts_forward_model(
        v in 1.0..35.0f64,
        theta in -0.12..0.12f64,
        a in -2.0..2.0f64,
    ) {
        let p = VehicleParams::default();
        let f = p.required_force(a, v, theta);
        let m = p.torque_from_force(f);
        if let Some(est) = p.gradient_from_states(m, v, a) {
            // Eq 3 folds rolling resistance into the constant β; the
            // recovery error is bounded by the small-angle approximation.
            prop_assert!((est - theta).abs() < 5e-3, "θ {theta} est {est}");
        }
    }

    #[test]
    fn speed_never_negative_under_any_force(
        v0 in 0.0..30.0f64,
        force in -15_000.0..5_000.0f64,
        theta in -0.1..0.1f64,
    ) {
        let p = VehicleParams::default();
        let mut st = LongState { speed_mps: v0, ..Default::default() };
        for _ in 0..500 {
            st = step(&p, &st, force, theta, 0.02);
            prop_assert!(st.speed_mps >= 0.0);
            prop_assert!(st.speed_mps.is_finite());
        }
    }

    #[test]
    fn controller_converges_to_reachable_targets(
        v0 in 2.0..25.0f64,
        target in 5.0..25.0f64,
        theta in -0.05..0.05f64,
    ) {
        let p = VehicleParams::default();
        let c = SpeedController::default();
        let mut st = LongState { speed_mps: v0, ..Default::default() };
        let mut f = 0.0;
        for _ in 0..(180.0f64 / 0.02) as usize {
            f = c.force(&p, &st, target, theta, f, 0.02);
            st = step(&p, &st, f, theta, 0.02);
        }
        prop_assert!((st.speed_mps - target).abs() < 0.5,
            "v = {} target {target}", st.speed_mps);
    }

    #[test]
    fn maneuver_displacement_close_to_target(
        v in 4.0..20.0f64,
        d in 3.0..7.0f64,
        left in any::<bool>(),
    ) {
        let dir = if left { LaneChangeDirection::Left } else { LaneChangeDirection::Right };
        let m = LaneChangeManeuver::for_displacement(dir, 3.65, v, d);
        // Numeric integration of the lateral displacement.
        let dt = 1e-3;
        let mut alpha = 0.0;
        let mut lateral = 0.0;
        let steps = (d / dt) as usize;
        for i in 0..steps {
            alpha += m.steering_rate(i as f64 * dt) * dt;
            lateral += v * alpha.sin() * dt;
        }
        // Small-angle approximation error grows with α; stay within 8 %.
        prop_assert!((lateral.abs() - 3.65).abs() < 0.3, "lateral {lateral}");
        prop_assert_eq!(lateral > 0.0, left);
        // Steering angle returns to ~0 (vehicle parallel to road again).
        prop_assert!(alpha.abs() < 5e-3, "residual α {alpha}");
    }

    #[test]
    fn maneuver_predicted_displacement_matches_formula(
        v in 4.0..20.0f64,
        d in 3.0..7.0f64,
    ) {
        let m = LaneChangeManeuver::for_displacement(LaneChangeDirection::Left, 3.65, v, d);
        prop_assert!((m.predicted_displacement(v) - 3.65).abs() < 1e-9);
    }

    #[test]
    fn dwell_fraction_is_constant_for_sine(
        v in 4.0..20.0f64,
        d in 3.0..7.0f64,
        frac in 0.1..0.95f64,
    ) {
        let m = LaneChangeManeuver::for_displacement(LaneChangeDirection::Right, 3.65, v, d);
        let t = m.time_above(frac);
        // Closed form: (π − 2 asin f)/π · D/2, independent of v.
        let expect = (std::f64::consts::PI - 2.0 * frac.asin()) / std::f64::consts::PI * d / 2.0;
        prop_assert!((t - expect).abs() < 1e-9);
        prop_assert!(t > 0.0 && t < d / 2.0);
    }
}

//! Property-based tests for the numeric kernels.

use gradest_math::angle::{angle_diff, wrap_pi, wrap_two_pi};
use gradest_math::lowess::{detect_uniform_step, lowess, LowessConfig};
use gradest_math::signal::{cumsum_scaled, integrate_cumulative, moving_average};
use gradest_math::stats::{mean, percentile, EmpiricalCdf};
use gradest_math::{DMatrix, Mat2, Mat3, Vec2};
use proptest::prelude::*;
use std::f64::consts::PI;

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

fn small_f64() -> impl Strategy<Value = f64> {
    -100.0..100.0f64
}

proptest! {
    #[test]
    fn wrap_pi_is_in_range(a in -1e4..1e4f64) {
        let w = wrap_pi(a);
        prop_assert!(w > -PI - 1e-9 && w <= PI + 1e-9);
        // Wrapping preserves the angle modulo 2π.
        prop_assert!(((a - w) / (2.0 * PI)).rem_euclid(1.0) < 1e-6
            || ((a - w) / (2.0 * PI)).rem_euclid(1.0) > 1.0 - 1e-6);
    }

    #[test]
    fn wrap_two_pi_is_in_range(a in -1e4..1e4f64) {
        let w = wrap_two_pi(a);
        prop_assert!((0.0..2.0 * PI + 1e-9).contains(&w));
    }

    #[test]
    fn angle_diff_antisymmetric(a in -10.0..10.0f64, b in -10.0..10.0f64) {
        let d1 = angle_diff(a, b);
        let d2 = angle_diff(b, a);
        // d1 = -d2 modulo the π boundary case.
        prop_assert!((wrap_pi(d1 + d2)).abs() < 1e-9);
    }

    #[test]
    fn vec2_rotation_preserves_norm(x in small_f64(), y in small_f64(), ang in -10.0..10.0f64) {
        let v = Vec2::new(x, y);
        prop_assert!((v.rotated(ang).norm() - v.norm()).abs() < 1e-7);
    }

    #[test]
    fn mat2_inverse_round_trips(
        a in 0.5..5.0f64, b in -2.0..2.0f64, c in -2.0..2.0f64, d in 0.5..5.0f64
    ) {
        let m = Mat2::new(a, b, c, d);
        prop_assume!(m.det().abs() > 1e-6);
        let inv = m.inverse().unwrap();
        let id = m * inv;
        prop_assert!((id.m[0][0] - 1.0).abs() < 1e-8);
        prop_assert!((id.m[1][1] - 1.0).abs() < 1e-8);
        prop_assert!(id.m[0][1].abs() < 1e-8);
        prop_assert!(id.m[1][0].abs() < 1e-8);
    }

    #[test]
    fn mat3_inverse_round_trips(seed in 0u64..1000) {
        // Diagonally dominant matrices are always invertible.
        let mut vals = [[0.0; 3]; 3];
        let mut s = seed;
        for row in vals.iter_mut() {
            for v in row.iter_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *v = ((s >> 33) as f64 / u32::MAX as f64) - 0.5;
            }
        }
        for (i, row) in vals.iter_mut().enumerate() {
            row[i] += 3.0;
        }
        let m = Mat3::from_rows(vals[0], vals[1], vals[2]);
        let inv = m.inverse().unwrap();
        let id = m * inv;
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((id.m[i][j] - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn dmatrix_inverse_round_trips(n in 1usize..6, seed in 0u64..500) {
        let mut s = seed;
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                m[(i, j)] = ((s >> 33) as f64 / u32::MAX as f64) - 0.5;
            }
            m[(i, i)] += n as f64; // diagonal dominance => invertible
        }
        let inv = m.inverse().unwrap();
        let id = m.matmul(&inv).unwrap();
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((id[(i, j)] - expect).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn cholesky_reconstructs_spd(n in 1usize..6, seed in 0u64..500) {
        // Build SPD as B·Bᵀ + n·I.
        let mut s = seed;
        let mut b = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b[(i, j)] = ((s >> 33) as f64 / u32::MAX as f64) - 0.5;
            }
        }
        let mut spd = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            spd[(i, i)] += n as f64;
        }
        let l = spd.cholesky().unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((recon[(i, j)] - spd[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn lowess_output_within_data_envelope(
        ys in prop::collection::vec(finite_f64(), 3..60),
        frac in 0.1..1.0f64
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let out = lowess(&xs, &ys, LowessConfig::with_fraction(frac)).unwrap();
        let lo = ys.iter().cloned().fold(f64::MAX, f64::min);
        let hi = ys.iter().cloned().fold(f64::MIN, f64::max);
        let slack = 0.5 * (hi - lo).max(1e-9);
        // Local linear fits can overshoot slightly but never wildly.
        for v in out {
            prop_assert!(v >= lo - slack && v <= hi + slack, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn lowess_idempotent_on_linear(slope in -5.0..5.0f64, intercept in -10.0..10.0f64) {
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let out = lowess(&xs, &ys, LowessConfig::with_fraction(0.3)).unwrap();
        for (o, y) in out.iter().zip(&ys) {
            prop_assert!((o - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cdf_quantile_and_probability_are_inverse_like(
        samples in prop::collection::vec(finite_f64(), 1..100),
        p in 0.01..1.0f64
    ) {
        let cdf = EmpiricalCdf::new(&samples).unwrap();
        let q = cdf.value_at(p);
        // At least fraction p of samples are <= q.
        prop_assert!(cdf.probability_below(q) + 1e-12 >= p);
    }

    #[test]
    fn percentile_bounded_by_extremes(
        samples in prop::collection::vec(finite_f64(), 1..50),
        p in 0.0..100.0f64
    ) {
        let v = percentile(&samples, p).unwrap();
        let lo = samples.iter().cloned().fold(f64::MAX, f64::min);
        let hi = samples.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn mean_is_translation_equivariant(
        samples in prop::collection::vec(small_f64(), 1..50),
        shift in small_f64()
    ) {
        let m1 = mean(&samples).unwrap();
        let shifted: Vec<f64> = samples.iter().map(|s| s + shift).collect();
        let m2 = mean(&shifted).unwrap();
        prop_assert!((m2 - (m1 + shift)).abs() < 1e-9);
    }

    #[test]
    fn integration_is_linear(
        ys in prop::collection::vec(small_f64(), 2..50),
        scale in 0.1..10.0f64
    ) {
        let a = integrate_cumulative(&ys, 0.1, 0.0).unwrap();
        let scaled: Vec<f64> = ys.iter().map(|y| y * scale).collect();
        let b = integrate_cumulative(&scaled, 0.1, 0.0).unwrap();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((y - x * scale).abs() < 1e-7);
        }
    }

    #[test]
    fn cumsum_final_value_is_total(
        ys in prop::collection::vec(small_f64(), 1..50),
        dt in 0.01..1.0f64
    ) {
        let out = cumsum_scaled(&ys, dt, 0.0).unwrap();
        let total: f64 = ys.iter().sum::<f64>() * dt;
        prop_assert!((out.last().unwrap() - total).abs() < 1e-7);
    }

    #[test]
    fn moving_average_preserves_mean_of_constant(
        c in small_f64(),
        n in 1usize..50,
        half in 0usize..5
    ) {
        let ys = vec![c; n];
        let out = moving_average(&ys, half).unwrap();
        for v in out {
            prop_assert!((v - c).abs() < 1e-9);
        }
    }

    #[test]
    fn lowess_uniform_fast_path_matches_generic(
        ys in prop::collection::vec(-100.0..100.0f64, 8..200),
        x0 in 0i32..100,
        mantissa in 1i32..16,
        exponent in -7i32..1,
        frac in 0.05..1.0f64,
        iters in 0usize..3,
    ) {
        // Dyadic steps make the grid exactly uniform in f64, so the
        // detector must fire and the fast path must agree with the
        // generic reference within 1e-12.
        let dt = mantissa as f64 * 2f64.powi(exponent);
        let xs: Vec<f64> = (0..ys.len()).map(|i| x0 as f64 + i as f64 * dt).collect();
        prop_assert!(detect_uniform_step(&xs).is_some());
        let cfg = LowessConfig { fraction: frac, robust_iterations: iters, force_generic: false };
        let fast = lowess(&xs, &ys, cfg).unwrap();
        let generic = lowess(&xs, &ys, cfg.generic_only()).unwrap();
        for (f, g) in fast.iter().zip(&generic) {
            prop_assert!((f - g).abs() < 1e-12, "fast {f} vs generic {g}");
        }
    }

    #[test]
    fn lowess_jittered_grid_uses_generic_path(
        ys in prop::collection::vec(-10.0..10.0f64, 8..100),
        jitter_scale in 0.05..0.4f64,
        frac in 0.1..1.0f64,
    ) {
        // Jitter far above the uniformity tolerance: detection must
        // refuse, and the auto path must equal the forced-generic path
        // bit for bit (proving the fallback really runs the generic fit).
        let n = ys.len();
        let xs: Vec<f64> = (0..n)
            .map(|i| i as f64 * 0.02 + jitter_scale * 0.02 * ((i * 7919 % 17) as f64 / 17.0))
            .collect();
        prop_assert!(detect_uniform_step(&xs).is_none());
        let cfg = LowessConfig { fraction: frac, robust_iterations: 1, force_generic: false };
        let auto = lowess(&xs, &ys, cfg).unwrap();
        let generic = lowess(&xs, &ys, cfg.generic_only()).unwrap();
        prop_assert_eq!(auto, generic);
    }
}

//! Dynamically sized dense row-major matrices.
//!
//! Used by the ANN baseline (layer weights, batched forward/backward passes)
//! and by generic track-fusion math. Provides Gauss–Jordan inversion with
//! partial pivoting and Cholesky factorization for SPD matrices.

use crate::{MathError, MathResult};
use serde::{Deserialize, Serialize};
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use gradest_math::DMatrix;
/// let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let inv = a.inverse()?;
/// let id = a.matmul(&inv)?;
/// assert!((id[(0, 0)] - 1.0).abs() < 1e-12);
/// assert!(id[(0, 1)].abs() < 1e-12);
/// # Ok::<(), gradest_math::MathError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "DMatrix dimensions must be nonzero");
        DMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "from_rows needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        DMatrix { rows: rows.len(), cols, data }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> MathResult<Self> {
        if rows == 0 || cols == 0 || data.len() != rows * cols {
            return Err(MathError::DimensionMismatch { context: "from_vec buffer size" });
        }
        Ok(DMatrix { rows, cols, data })
    }

    /// Creates a column vector from a slice.
    pub fn column(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "column needs at least one value");
        DMatrix { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Creates a diagonal matrix from the given entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = DMatrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DMatrix {
        let mut out = DMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when inner dimensions differ.
    pub fn matmul(&self, other: &DMatrix) -> MathResult<DMatrix> {
        if self.cols != other.rows {
            return Err(MathError::DimensionMismatch { context: "matmul inner dimensions" });
        }
        let mut out = DMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Componentwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DMatrix {
        DMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Componentwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when shapes differ.
    pub fn hadamard(&self, other: &DMatrix) -> MathResult<DMatrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MathError::DimensionMismatch { context: "hadamard shapes" });
        }
        Ok(DMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect(),
        })
    }

    /// Scales every entry by `s`.
    pub fn scaled(&self, s: f64) -> DMatrix {
        self.map(|v| v * s)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Inverse by Gauss–Jordan elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] for non-square inputs and
    /// [`MathError::Singular`] when a pivot collapses below tolerance.
    pub fn inverse(&self) -> MathResult<DMatrix> {
        if self.rows != self.cols {
            return Err(MathError::DimensionMismatch { context: "inverse of non-square matrix" });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = DMatrix::identity(n);
        for col in 0..n {
            // Partial pivot: pick the largest |entry| at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[(col, col)].abs();
            for r in (col + 1)..n {
                let v = a[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(MathError::Singular { pivot: pivot_val });
            }
            if pivot_row != col {
                a.swap_rows(col, pivot_row);
                inv.swap_rows(col, pivot_row);
            }
            let p = a[(col, col)];
            for j in 0..n {
                a[(col, j)] /= p;
                inv[(col, j)] /= p;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a[(r, col)];
                if factor == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a[(r, j)] -= factor * a[(col, j)];
                    inv[(r, j)] -= factor * inv[(col, j)];
                }
            }
        }
        Ok(inv)
    }

    /// Cholesky factorization `A = L·Lᵀ` returning the lower-triangular `L`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] for non-square inputs and
    /// [`MathError::NotPositiveDefinite`] when a diagonal entry would be
    /// non-positive.
    pub fn cholesky(&self) -> MathResult<DMatrix> {
        if self.rows != self.cols {
            return Err(MathError::DimensionMismatch { context: "cholesky of non-square matrix" });
        }
        let n = self.rows;
        let mut l = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(MathError::NotPositiveDefinite { index: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `A x = b` for SPD `A` via Cholesky factorization.
    ///
    /// # Errors
    ///
    /// Propagates [`MathError::NotPositiveDefinite`] /
    /// [`MathError::DimensionMismatch`] from factorization or shape checks.
    pub fn solve_spd(&self, b: &[f64]) -> MathResult<Vec<f64>> {
        if b.len() != self.rows {
            return Err(MathError::DimensionMismatch { context: "solve_spd rhs length" });
        }
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[(i, k)] * y[k];
            }
            y[i] = sum / l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        Ok(x)
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        assert!(r1 < self.rows && r2 < self.rows, "row index out of bounds");
        if r1 == r2 {
            return;
        }
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for DMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "DMatrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "DMatrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &DMatrix {
    type Output = DMatrix;
    fn add(self, rhs: &DMatrix) -> DMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add shapes");
        DMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &DMatrix {
    type Output = DMatrix;
    fn sub(self, rhs: &DMatrix) -> DMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub shapes");
        DMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul<f64> for &DMatrix {
    type Output = DMatrix;
    fn mul(self, s: f64) -> DMatrix {
        self.scaled(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &DMatrix, b: &DMatrix, tol: f64) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn construction_and_indexing() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_size() {
        assert!(DMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert!(close(&c, &DMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]), 1e-12));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DMatrix::zeros(2, 3);
        let b = DMatrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(MathError::DimensionMismatch { .. })));
    }

    #[test]
    fn transpose_round_trip() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn inverse_round_trip() {
        let a = DMatrix::from_rows(&[&[4.0, 2.0, 0.6], &[4.2, -14.0, 1.8], &[0.8, -1.0, 10.0]]);
        let inv = a.inverse().unwrap();
        assert!(close(&a.matmul(&inv).unwrap(), &DMatrix::identity(3), 1e-10));
        assert!(close(&inv.matmul(&a).unwrap(), &DMatrix::identity(3), 1e-10));
    }

    #[test]
    fn inverse_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let inv = a.inverse().unwrap();
        assert!(close(&inv, &a, 1e-12));
    }

    #[test]
    fn inverse_singular_rejected() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.inverse(), Err(MathError::Singular { .. })));
    }

    #[test]
    fn cholesky_known_factor() {
        let a = DMatrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = a.cholesky().unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        assert!(close(&recon, &a, 1e-12));
        assert_eq!(l[(0, 1)], 0.0); // lower triangular
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(a.cholesky(), Err(MathError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn solve_spd_matches_direct() {
        let a = DMatrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x = a.solve_spd(&[8.0, 7.0]).unwrap();
        // Verify A x = b.
        let ax = a.matmul(&DMatrix::column(&x)).unwrap();
        assert!((ax[(0, 0)] - 8.0).abs() < 1e-12);
        assert!((ax[(1, 0)] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_and_map() {
        let a = DMatrix::from_rows(&[&[1.0, -2.0]]);
        let b = DMatrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, -8.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn diag_and_column() {
        let d = DMatrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        let c = DMatrix::column(&[1.0, 2.0, 3.0]);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 1);
    }

    #[test]
    fn add_sub_scale_norm() {
        let a = DMatrix::from_rows(&[&[3.0, 4.0]]);
        let b = &a + &a;
        assert_eq!(b.as_slice(), &[6.0, 8.0]);
        let z = &a - &a;
        assert_eq!(z.frobenius_norm(), 0.0);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!((&a * 2.0).as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = DMatrix::identity(2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }
}

//! Discrete signal utilities: finite differences, cumulative integration,
//! and moving averages.
//!
//! Used to derive acceleration from velocity streams, accumulate steering
//! angle from steering rate (Eq 1/2 of the paper), and pre-filter noisy
//! series.

use crate::{MathError, MathResult};

/// Central finite difference of `ys` sampled at uniform spacing `dt`.
///
/// Endpoints use one-sided differences, interior points
/// `(y[i+1] − y[i−1]) / (2·dt)`.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for inputs shorter than 2 samples and
/// [`MathError::InvalidArgument`] for non-positive `dt`.
pub fn differentiate(ys: &[f64], dt: f64) -> MathResult<Vec<f64>> {
    if ys.len() < 2 {
        return Err(MathError::EmptyInput { context: "differentiate needs >= 2 samples" });
    }
    if dt.is_nan() || dt <= 0.0 {
        return Err(MathError::InvalidArgument { context: "differentiate dt must be > 0" });
    }
    let n = ys.len();
    let mut out = Vec::with_capacity(n);
    out.push((ys[1] - ys[0]) / dt);
    for i in 1..n - 1 {
        out.push((ys[i + 1] - ys[i - 1]) / (2.0 * dt)); // lint:allow(hot-index) 1 <= i <= n - 2 from the loop range
    }
    out.push((ys[n - 1] - ys[n - 2]) / dt); // lint:allow(hot-index) n >= 2 checked at entry
    Ok(out)
}

/// Cumulative trapezoidal integral of `ys` at uniform spacing `dt`,
/// starting from `initial`.
///
/// Output has the same length as input; `out[0] == initial`.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for empty input and
/// [`MathError::InvalidArgument`] for non-positive `dt`.
pub fn integrate_cumulative(ys: &[f64], dt: f64, initial: f64) -> MathResult<Vec<f64>> {
    if ys.is_empty() {
        return Err(MathError::EmptyInput { context: "integrate input" });
    }
    if dt.is_nan() || dt <= 0.0 {
        return Err(MathError::InvalidArgument { context: "integrate dt must be > 0" });
    }
    let mut out = Vec::with_capacity(ys.len());
    let mut acc = initial;
    out.push(acc);
    for w in ys.windows(2) {
        acc += 0.5 * (w[0] + w[1]) * dt;
        out.push(acc);
    }
    Ok(out)
}

/// Left-Riemann cumulative sum `out[i] = initial + Σ_{j<i} ys[j]·dt` —
/// the discrete accumulation used by the paper's Eq (1)/(2)
/// (`α_i = Σ_{j=0..i} w_steer^j · Ω`).
///
/// # Errors
///
/// Same as [`integrate_cumulative`].
pub fn cumsum_scaled(ys: &[f64], dt: f64, initial: f64) -> MathResult<Vec<f64>> {
    if ys.is_empty() {
        return Err(MathError::EmptyInput { context: "cumsum input" });
    }
    if dt.is_nan() || dt <= 0.0 {
        return Err(MathError::InvalidArgument { context: "cumsum dt must be > 0" });
    }
    let mut out = Vec::with_capacity(ys.len());
    let mut acc = initial;
    for &y in ys {
        acc += y * dt;
        out.push(acc);
    }
    Ok(out)
}

/// Centered moving average with window `2·half + 1`, truncated at the
/// boundaries.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for empty input.
pub fn moving_average(ys: &[f64], half: usize) -> MathResult<Vec<f64>> {
    if ys.is_empty() {
        return Err(MathError::EmptyInput { context: "moving_average input" });
    }
    let n = ys.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sum: f64 = ys[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f64);
    }
    Ok(out)
}

/// First-order low-pass (exponential moving average) with smoothing factor
/// `alpha` in `(0, 1]`: `out[i] = alpha·ys[i] + (1−alpha)·out[i−1]`.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for empty input and
/// [`MathError::InvalidArgument`] for `alpha` outside `(0, 1]`.
pub fn low_pass(ys: &[f64], alpha: f64) -> MathResult<Vec<f64>> {
    if ys.is_empty() {
        return Err(MathError::EmptyInput { context: "low_pass input" });
    }
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(MathError::InvalidArgument { context: "low_pass alpha not in (0, 1]" });
    }
    let mut out = Vec::with_capacity(ys.len());
    let mut state = ys[0];
    for &y in ys {
        state = alpha * y + (1.0 - alpha) * state;
        out.push(state);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differentiate_linear_is_constant() {
        let ys: Vec<f64> = (0..10).map(|i| 3.0 * i as f64).collect();
        let d = differentiate(&ys, 1.0).unwrap();
        for v in d {
            assert!((v - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn differentiate_quadratic_center() {
        // y = t², dy/dt = 2t; central differences are exact for quadratics.
        let dt = 0.1;
        let ys: Vec<f64> = (0..50).map(|i| (i as f64 * dt).powi(2)).collect();
        let d = differentiate(&ys, dt).unwrap();
        for (i, di) in d.iter().enumerate().take(49).skip(1) {
            let t = i as f64 * dt;
            assert!((di - 2.0 * t).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn integrate_then_differentiate_round_trip() {
        let dt = 0.05;
        let ys: Vec<f64> = (0..200).map(|i| (i as f64 * dt).sin()).collect();
        let integral = integrate_cumulative(&ys, dt, 0.0).unwrap();
        let back = differentiate(&integral, dt).unwrap();
        for i in 1..199 {
            assert!((back[i] - ys[i]).abs() < 2e-3, "i={i}");
        }
    }

    #[test]
    fn integrate_constant() {
        let ys = vec![2.0; 11];
        let out = integrate_cumulative(&ys, 0.5, 1.0).unwrap();
        assert_eq!(out[0], 1.0);
        assert!((out[10] - (1.0 + 2.0 * 5.0)).abs() < 1e-12);
    }

    #[test]
    fn cumsum_matches_hand_computation() {
        let out = cumsum_scaled(&[1.0, 2.0, 3.0], 0.5, 0.0).unwrap();
        assert_eq!(out, vec![0.5, 1.5, 3.0]);
        let out2 = cumsum_scaled(&[1.0], 2.0, 10.0).unwrap();
        assert_eq!(out2, vec![12.0]);
    }

    #[test]
    fn moving_average_flattens_noise() {
        let ys: Vec<f64> = (0..100).map(|i| 1.0 + if i % 2 == 0 { 0.5 } else { -0.5 }).collect();
        let out = moving_average(&ys, 2).unwrap();
        for (i, v) in out.iter().enumerate().take(95).skip(5) {
            assert!((v - 1.0).abs() < 0.11, "i={i} v={v}");
        }
    }

    #[test]
    fn moving_average_boundary_truncation() {
        let out = moving_average(&[1.0, 2.0, 3.0], 1).unwrap();
        assert!((out[0] - 1.5).abs() < 1e-12);
        assert!((out[1] - 2.0).abs() < 1e-12);
        assert!((out[2] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn low_pass_converges_to_constant() {
        let ys = vec![5.0; 100];
        let out = low_pass(&ys, 0.2).unwrap();
        assert!((out[99] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn low_pass_alpha_one_is_identity() {
        let ys = vec![1.0, -2.0, 3.5];
        assert_eq!(low_pass(&ys, 1.0).unwrap(), ys);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(differentiate(&[1.0], 1.0).is_err());
        assert!(differentiate(&[1.0, 2.0], 0.0).is_err());
        assert!(integrate_cumulative(&[], 1.0, 0.0).is_err());
        assert!(integrate_cumulative(&[1.0], -1.0, 0.0).is_err());
        assert!(cumsum_scaled(&[], 1.0, 0.0).is_err());
        assert!(moving_average(&[], 1).is_err());
        assert!(low_pass(&[], 0.5).is_err());
        assert!(low_pass(&[1.0], 0.0).is_err());
        assert!(low_pass(&[1.0], 1.5).is_err());
    }
}

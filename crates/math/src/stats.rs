//! Summary statistics, error metrics, and empirical distributions.
//!
//! The paper's evaluation reports Mean Relative Error (MRE), absolute
//! estimation errors, and CDF curves (Figures 8(b), 9(b)); this module
//! provides those plus the usual supporting statistics.

use crate::{MathError, MathResult};
use serde::{Deserialize, Serialize};

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for empty input.
pub fn mean(xs: &[f64]) -> MathResult<f64> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput { context: "mean" });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (n−1 denominator).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for inputs with fewer than 2 samples.
pub fn variance(xs: &[f64]) -> MathResult<f64> {
    if xs.len() < 2 {
        return Err(MathError::EmptyInput { context: "variance needs >= 2 samples" });
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// Same as [`variance`].
pub fn std_dev(xs: &[f64]) -> MathResult<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Median (average of the two central order statistics for even length).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for empty input.
pub fn median(xs: &[f64]) -> MathResult<f64> {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for empty input and
/// [`MathError::InvalidArgument`] for `p` outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> MathResult<f64> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput { context: "percentile" });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(MathError::InvalidArgument { context: "percentile p outside [0, 100]" });
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let t = rank - lo as f64;
        Ok(sorted[lo] * (1.0 - t) + sorted[hi] * t)
    }
}

/// Mean absolute error between estimates and ground truth.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] when lengths differ and
/// [`MathError::EmptyInput`] for empty input.
pub fn mae(estimates: &[f64], truth: &[f64]) -> MathResult<f64> {
    check_pair(estimates, truth)?;
    mean(&estimates.iter().zip(truth).map(|(e, t)| (e - t).abs()).collect::<Vec<_>>())
}

/// Root-mean-square error between estimates and ground truth.
///
/// # Errors
///
/// Same as [`mae`].
pub fn rmse(estimates: &[f64], truth: &[f64]) -> MathResult<f64> {
    check_pair(estimates, truth)?;
    let ms = estimates.iter().zip(truth).map(|(e, t)| (e - t) * (e - t)).sum::<f64>()
        / estimates.len() as f64;
    Ok(ms.sqrt())
}

/// Mean Relative Error, the paper's headline accuracy metric:
/// `mean(|est − truth|) / mean(|truth|)`.
///
/// This normalized form (rather than a per-sample ratio) is standard for
/// gradient profiles, where individual ground-truth samples cross zero and
/// a per-sample ratio would blow up.
///
/// # Errors
///
/// Same as [`mae`], plus [`MathError::InvalidArgument`] if the truth signal
/// is identically zero.
pub fn mre(estimates: &[f64], truth: &[f64]) -> MathResult<f64> {
    check_pair(estimates, truth)?;
    let denom = mean(&truth.iter().map(|t| t.abs()).collect::<Vec<_>>())?;
    if denom <= f64::EPSILON {
        return Err(MathError::InvalidArgument { context: "MRE of identically-zero truth" });
    }
    Ok(mae(estimates, truth)? / denom)
}

fn check_pair(a: &[f64], b: &[f64]) -> MathResult<()> {
    if a.len() != b.len() {
        return Err(MathError::DimensionMismatch { context: "metric input lengths" });
    }
    if a.is_empty() {
        return Err(MathError::EmptyInput { context: "metric input" });
    }
    Ok(())
}

/// An empirical cumulative distribution function over a sample.
///
/// Mirrors the CDF curves in Figures 8(b) and 9(b): build one from a set of
/// absolute estimation errors, then query `value_at(0.5)` for the median
/// error the paper reads off the `y = 0.5` line.
///
/// # Example
///
/// ```
/// use gradest_math::stats::EmpiricalCdf;
/// let cdf = EmpiricalCdf::new(&[0.1, 0.2, 0.3, 0.4])?;
/// assert!((cdf.value_at(0.5) - 0.2).abs() < 1e-12);
/// assert!((cdf.probability_below(0.35) - 0.75).abs() < 1e-12);
/// # Ok::<(), gradest_math::MathError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from samples.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::EmptyInput`] for empty input and
    /// [`MathError::InvalidArgument`] when any sample is not finite.
    pub fn new(samples: &[f64]) -> MathResult<Self> {
        if samples.is_empty() {
            return Err(MathError::EmptyInput { context: "CDF samples" });
        }
        if samples.iter().any(|s| !s.is_finite()) {
            return Err(MathError::InvalidArgument { context: "non-finite CDF sample" });
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ok(EmpiricalCdf { sorted })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of samples `<= x` (the CDF evaluated at `x`).
    pub fn probability_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Quantile: smallest sample value with CDF ≥ `p`, `p` clamped to
    /// `[0, 1]`. `value_at(0.5)` is the median error used in the paper's
    /// Figure 8(b)/9(b) reading.
    pub fn value_at(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return self.sorted[0];
        }
        let rank = (p * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Evaluates the CDF on a uniform grid of `n` points across the sample
    /// range, returning `(x, F(x))` pairs — exactly the series plotted in
    /// the paper's CDF figures.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        let n = n.max(2);
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        let span = (hi - lo).max(f64::EPSILON);
        (0..n)
            .map(|i| {
                let x = lo + span * i as f64 / (n - 1) as f64;
                (x, self.probability_below(x))
            })
            .collect()
    }

    /// Underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] when `hi <= lo` or
    /// `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> MathResult<Self> {
        if hi.is_nan() || lo.is_nan() || hi <= lo || bins == 0 {
            return Err(MathError::InvalidArgument { context: "histogram range/bins" });
        }
        Ok(Histogram { lo, hi, counts: vec![0; bins], below: 0, above: 0 })
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of samples below / above the range.
    pub fn outliers(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Total number of samples seen (including outliers).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.below + self.above
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        let v = variance(&xs).unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - v.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(median(&[]).is_err());
        assert!(mae(&[], &[]).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 0.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 10.0);
        assert_eq!(percentile(&xs, 25.0).unwrap(), 2.5);
        assert!(percentile(&xs, -1.0).is_err());
        assert!(percentile(&xs, 101.0).is_err());
    }

    #[test]
    fn error_metrics_known_values() {
        let est = [1.0, 2.0, 3.0];
        let truth = [1.0, 1.0, 1.0];
        assert_eq!(mae(&est, &truth).unwrap(), 1.0);
        assert!((rmse(&est, &truth).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mre(&est, &truth).unwrap(), 1.0);
    }

    #[test]
    fn mre_handles_signed_truth() {
        // Truth crosses zero: per-sample relative error would explode, the
        // normalized MRE does not.
        let truth = [-1.0, 0.0, 1.0];
        let est = [-0.9, 0.1, 1.1];
        let e = mre(&est, &truth).unwrap();
        assert!((e - 0.15).abs() < 1e-12);
    }

    #[test]
    fn mre_zero_truth_rejected() {
        assert!(mre(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn metrics_length_mismatch() {
        assert!(mae(&[1.0], &[1.0, 2.0]).is_err());
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn cdf_probability_and_quantiles() {
        let cdf = EmpiricalCdf::new(&[3.0, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.probability_below(0.5), 0.0);
        assert_eq!(cdf.probability_below(2.0), 0.5);
        assert_eq!(cdf.probability_below(10.0), 1.0);
        assert_eq!(cdf.value_at(0.0), 1.0);
        assert_eq!(cdf.value_at(0.5), 2.0);
        assert_eq!(cdf.value_at(1.0), 4.0);
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let cdf = EmpiricalCdf::new(&[0.4, 0.1, 0.9, 0.2, 0.6]).unwrap();
        let curve = cdf.curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing");
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_rejects_bad_samples() {
        assert!(EmpiricalCdf::new(&[]).is_err());
        assert!(EmpiricalCdf::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.extend([0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 100.0]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.total(), 7);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_config() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }
}

//! LOWESS — locally weighted scatterplot smoothing (local regression).
//!
//! Section III-B of the paper smooths the measured steering-rate profile
//! with "the local regression method \[Loader 2006\]" before extracting lane
//! change bumps. This module implements the classic Cleveland LOWESS
//! estimator: for every abscissa, fit a weighted degree-1 polynomial over
//! the nearest-neighbour window using tricube weights, with optional
//! robustifying iterations that downweight outliers via bisquare weights.

use crate::{MathError, MathResult};

/// Configuration for [`lowess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowessConfig {
    /// Fraction of the data used in each local window, in `(0, 1]`.
    /// Larger values smooth more.
    pub fraction: f64,
    /// Number of robustifying iterations (0 = plain LOWESS).
    pub robust_iterations: usize,
    /// Disable the uniform-grid fast path even when the abscissae form a
    /// uniform grid (see [`detect_uniform_step`]). The generic and fast
    /// paths agree within ~1e-12; forcing the generic path gives the
    /// reference answer bit-for-bit.
    pub force_generic: bool,
}

impl Default for LowessConfig {
    fn default() -> Self {
        // fraction 0.1 keeps lane-change bumps (~seconds wide at 50 Hz)
        // intact while killing sample-level sensor noise.
        LowessConfig { fraction: 0.1, robust_iterations: 0, force_generic: false }
    }
}

impl LowessConfig {
    /// Creates a config with the given window fraction and no robustness
    /// iterations.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn with_fraction(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "LOWESS fraction must be in (0, 1], got {fraction}"
        );
        LowessConfig { fraction, robust_iterations: 0, force_generic: false }
    }

    /// Sets the number of robustifying iterations.
    pub fn robust(mut self, iterations: usize) -> Self {
        self.robust_iterations = iterations;
        self
    }

    /// Forces the generic per-point path (disables the uniform-grid fast
    /// path).
    pub fn generic_only(mut self) -> Self {
        self.force_generic = true;
        self
    }
}

/// Detects a uniform abscissa grid, returning the common step.
///
/// The tolerance admits timestamps accumulated by repeated `t += dt`
/// (whose per-step rounding drift is a few ulps) while rejecting
/// genuinely jittered grids. Requires at least two samples and a
/// positive mean step.
pub fn detect_uniform_step(xs: &[f64]) -> Option<f64> {
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let step = (xs[n - 1] - xs[0]) / (n - 1) as f64; // lint:allow(hot-index) n >= 2 checked above
    if !step.is_finite() || step <= 0.0 {
        return None;
    }
    // Relative term covers accumulation drift in the step itself;
    // the absolute term covers per-element rounding at large |x|.
    // lint:allow(hot-index) n >= 2 checked above
    let tol = 1e-9 * step + 8.0 * f64::EPSILON * xs[0].abs().max(xs[n - 1].abs());
    for w in xs.windows(2) {
        if ((w[1] - w[0]) - step).abs() > tol {
            return None;
        }
    }
    Some(step)
}

/// Smooths `ys` sampled at strictly increasing `xs` with LOWESS.
///
/// Returns the smoothed value at every input abscissa.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for empty input,
/// [`MathError::DimensionMismatch`] when lengths differ, and
/// [`MathError::InvalidArgument`] when `xs` is not strictly increasing or
/// `fraction` is out of `(0, 1]`.
///
/// # Example
///
/// ```
/// use gradest_math::lowess::{lowess, LowessConfig};
///
/// // Noisy ramp: LOWESS recovers the trend.
/// let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x + if (*x as usize) % 2 == 0 { 0.5 } else { -0.5 }).collect();
/// let smooth = lowess(&xs, &ys, LowessConfig::with_fraction(0.2))?;
/// // Interior points are close to the noise-free ramp.
/// assert!((smooth[50] - 50.0).abs() < 0.2);
/// # Ok::<(), gradest_math::MathError>(())
/// ```
pub fn lowess(xs: &[f64], ys: &[f64], config: LowessConfig) -> MathResult<Vec<f64>> {
    let mut fitted = Vec::new();
    lowess_into(xs, ys, config, &mut LowessScratch::new(), &mut fitted)?;
    Ok(fitted)
}

/// Reusable working buffers for [`lowess_into`].
///
/// A 50 Hz steering profile is smoothed once per trip, but a fleet
/// engine smooths thousands of trips; reusing the scratch removes every
/// intermediate allocation from that loop. The buffers grow to the
/// largest series seen and stay allocated.
#[derive(Debug, Clone, Default)]
pub struct LowessScratch {
    robust_weights: Vec<f64>,
    abs_res: Vec<f64>,
    sorted: Vec<f64>,
    /// Uniform-grid fast path: tricube weight per absolute offset
    /// `0..=h` (shared by every interior window).
    tri: Vec<f64>,
    /// Interior-fit coefficients for window variant A (offsets
    /// `-h..=h-1` for even windows, `-h..=h` for odd).
    coeff_a: Vec<f64>,
    /// Variant B (offsets `-h+1..=h`) — the window an even-width slide
    /// selects when its final tie comparison resolves the other way.
    coeff_b: Vec<f64>,
}

impl LowessScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        LowessScratch::default()
    }
}

/// [`lowess`] with caller-owned buffers: writes the smoothed series
/// into `fitted` (cleared and resized) and keeps every intermediate in
/// `scratch`, so repeated calls allocate nothing once the buffers have
/// grown to the series length.
///
/// # Errors
///
/// Same as [`lowess`].
pub fn lowess_into(
    xs: &[f64],
    ys: &[f64],
    config: LowessConfig,
    scratch: &mut LowessScratch,
    fitted: &mut Vec<f64>,
) -> MathResult<()> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput { context: "lowess input" });
    }
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch { context: "lowess xs/ys lengths" });
    }
    if !(config.fraction > 0.0 && config.fraction <= 1.0) {
        return Err(MathError::InvalidArgument { context: "lowess fraction not in (0, 1]" });
    }
    for w in xs.windows(2) {
        if w[0].is_nan() || w[1].is_nan() || w[1] <= w[0] {
            return Err(MathError::InvalidArgument {
                context: "lowess abscissae must be strictly increasing",
            });
        }
    }
    let n = xs.len();
    fitted.clear();
    if n == 1 {
        fitted.push(ys[0]);
        return Ok(());
    }
    let window = ((config.fraction * n as f64).ceil() as usize).clamp(2, n);

    scratch.robust_weights.clear();
    scratch.robust_weights.resize(n, 1.0);
    fitted.resize(n, 0.0);

    // Uniform-grid fast path: interior windows all share one tricube
    // weight vector, precomputed once. Edge points (and every point on
    // non-uniform grids) keep the generic per-point fit.
    let uniform = if config.force_generic { None } else { detect_uniform_step(xs) };
    let fast_h = match uniform {
        Some(step) if n > window => {
            let h = window / 2;
            precompute_uniform_tables(step, window, h, scratch);
            Some(h)
        }
        _ => None,
    };

    for iteration in 0..=config.robust_iterations {
        if let Some(h) = fast_h {
            fit_pass_uniform(
                xs,
                ys,
                &scratch.robust_weights,
                window,
                h,
                &scratch.tri,
                &scratch.coeff_a,
                &scratch.coeff_b,
                iteration == 0,
                fitted,
            );
        } else {
            for (i, f) in fitted.iter_mut().enumerate() {
                *f = fit_local(xs, ys, &scratch.robust_weights, i, window);
            }
        }
        if iteration == config.robust_iterations {
            break;
        }
        // Bisquare robustness weights from the residuals. The scale is the
        // median absolute residual floored by a fraction of the mean: with a
        // mostly-perfect fit the median collapses to ~0 and an unfloored
        // scale would zero out every point near an outlier, preventing the
        // iteration from ever recovering.
        scratch.abs_res.clear();
        scratch.abs_res.extend(ys.iter().zip(fitted.iter()).map(|(y, f)| (y - f).abs()));
        scratch.sorted.clear();
        scratch.sorted.extend_from_slice(&scratch.abs_res);
        scratch.sorted.sort_by(f64::total_cmp);
        // For even n the true median is the mean of the two central
        // residuals; `sorted[n / 2]` alone would take the upper one and
        // bias the bisquare scale.
        let median = if n.is_multiple_of(2) {
            // lint:allow(hot-index) n even and nonzero here, so n / 2 - 1 >= 0 and n / 2 < n
            0.5 * (scratch.sorted[n / 2 - 1] + scratch.sorted[n / 2])
        } else {
            scratch.sorted[n / 2] // lint:allow(hot-index) n / 2 < n for n > 0
        };
        let mean = scratch.abs_res.iter().sum::<f64>() / n as f64;
        let scale = median.max(0.25 * mean);
        if scale <= f64::EPSILON {
            break; // perfect fit; further iterations change nothing
        }
        for (w, r) in scratch.robust_weights.iter_mut().zip(&scratch.abs_res) {
            let u = r / (6.0 * scale);
            *w = if u >= 1.0 { 0.0 } else { (1.0 - u * u).powi(2) };
        }
    }
    Ok(())
}

/// Weighted degree-1 local fit evaluated at `xs[i]`, using the `window`
/// nearest neighbours (by abscissa distance) and tricube × robustness
/// weights.
fn fit_local(xs: &[f64], ys: &[f64], robust: &[f64], i: usize, window: usize) -> f64 {
    let n = xs.len();
    let x0 = xs[i];

    // Nearest-neighbour window [lo, hi) of size `window` around i.
    let mut lo = i.saturating_sub(window - 1);
    let mut hi = (lo + window).min(n);
    lo = hi.saturating_sub(window);
    // Slide the window towards the side with closer points.
    while hi < n && (xs[hi] - x0) < (x0 - xs[lo]) {
        lo += 1;
        hi += 1;
    }

    // lint:allow(hot-index) hi > lo >= 0: the window holds at least one point
    let max_dist = (x0 - xs[lo]).abs().max((xs[hi - 1] - x0).abs()).max(f64::EPSILON);

    // Weighted least squares for y = a + b (x - x0); fitted value is `a`.
    let (mut sw, mut swx, mut swy, mut swxx, mut swxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for k in lo..hi {
        let d = ((xs[k] - x0) / max_dist).abs();
        let tricube = if d >= 1.0 { 0.0 } else { (1.0 - d * d * d).powi(3) };
        let w = tricube * robust[k];
        if w == 0.0 {
            continue;
        }
        let dx = xs[k] - x0;
        sw += w;
        swx += w * dx;
        swy += w * ys[k];
        swxx += w * dx * dx;
        swxy += w * dx * ys[k];
    }
    if sw == 0.0 {
        return ys[i]; // all weights vanished; fall back to the raw sample
    }
    let denom = sw * swxx - swx * swx;
    if denom.abs() < 1e-12 * sw.max(1.0) {
        // Degenerate (e.g. window of two identical abscissae): weighted mean.
        swy / sw
    } else {
        (swxx * swy - swx * swxy) / denom
    }
}

/// Fills the shared tricube table and per-variant interior-fit
/// coefficients for a uniform grid with the given `step` and half-width
/// `h = window / 2`.
///
/// On a uniform grid every interior fit uses the same offsets, so the
/// weighted-least-squares solution `a = (swxx·swy − swx·swxy)/denom`
/// collapses to a fixed coefficient vector over the window's `ys`:
/// `a = Σ_j (swxx − swx·dx_j)·w_j/denom · y_j`. Even windows are
/// asymmetric by one sample; the slide's tie comparison picks between
/// the two variants per point, so both coefficient vectors are built.
fn precompute_uniform_tables(step: f64, window: usize, h: usize, scratch: &mut LowessScratch) {
    // Interior `max_dist` is the far edge at offset ±h.
    let max_dist = (h as f64 * step).max(f64::EPSILON);
    scratch.tri.clear();
    scratch.tri.extend((0..=h).map(|j| {
        let d = ((j as f64 * step) / max_dist).abs();
        if d >= 1.0 {
            0.0
        } else {
            (1.0 - d * d * d).powi(3)
        }
    }));
    let even = window.is_multiple_of(2);
    let start_a = -(h as isize);
    build_interior_coeffs(step, window, &scratch.tri, start_a, &mut scratch.coeff_a);
    if even {
        build_interior_coeffs(step, window, &scratch.tri, start_a + 1, &mut scratch.coeff_b);
    } else {
        scratch.coeff_b.clear();
    }
}

/// Builds the interior-fit coefficient vector for the window covering
/// offsets `start_off..start_off + window`.
fn build_interior_coeffs(
    step: f64,
    window: usize,
    tri: &[f64],
    start_off: isize,
    out: &mut Vec<f64>,
) {
    let (mut sw, mut swx, mut swxx) = (0.0, 0.0, 0.0);
    for j in 0..window {
        let off = start_off + j as isize;
        let w = tri[off.unsigned_abs()];
        if w == 0.0 {
            continue;
        }
        let dx = off as f64 * step;
        sw += w;
        swx += w * dx;
        swxx += w * dx * dx;
    }
    out.clear();
    let denom = sw * swxx - swx * swx;
    if denom.abs() < 1e-12 * sw.max(1.0) {
        // Degenerate: the fit is a weighted mean (matches `fit_local`).
        out.extend((0..window).map(|j| tri[(start_off + j as isize).unsigned_abs()] / sw));
    } else {
        out.extend((0..window).map(|j| {
            let off = start_off + j as isize;
            let w = tri[off.unsigned_abs()];
            (swxx - swx * off as f64 * step) * w / denom
        }));
    }
}

/// One LOWESS fitting pass over a uniform grid.
///
/// Edge points (the first and last `h`) run the generic [`fit_local`]
/// unchanged. Interior points share the precomputed tables: with unit
/// robustness weights (`first_pass`) each fit is a single dot product;
/// during robust iterations the tricube lookups replace the per-pair
/// distance/`powi` evaluation but the five-sum accumulation is kept.
#[allow(clippy::too_many_arguments)]
fn fit_pass_uniform(
    xs: &[f64],
    ys: &[f64],
    robust: &[f64],
    window: usize,
    h: usize,
    tri: &[f64],
    coeff_a: &[f64],
    coeff_b: &[f64],
    first_pass: bool,
    fitted: &mut [f64],
) {
    let n = xs.len();
    let even = window.is_multiple_of(2);
    for (i, f) in fitted.iter_mut().enumerate().take(h) {
        *f = fit_local(xs, ys, robust, i, window);
    }
    for (i, f) in fitted.iter_mut().enumerate().take(n).skip(n - h) {
        *f = fit_local(xs, ys, robust, i, window);
    }
    if first_pass {
        fit_interior_first_pass(xs, ys, window, h, even, coeff_a, coeff_b, fitted);
        return;
    }
    for i in h..(n - h) {
        let x0 = xs[i];
        // Replicate the generic nearest-neighbour slide. For odd windows
        // the symmetric window always wins by a full step; for even
        // windows the slide ends on an exact-tie comparison that rounding
        // drift decides, so evaluate the same comparison on the same
        // values.
        // lint:allow(hot-index) i ranges over h..n - h, so i - h >= 0 and i + h < n
        let lo = if even && (xs[i + h] - x0) < (x0 - xs[i - h]) { i - h + 1 } else { i - h };
        {
            let (mut sw, mut swx, mut swy, mut swxx, mut swxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for k in lo..lo + window {
                let w = tri[k.abs_diff(i)] * robust[k];
                if w == 0.0 {
                    continue;
                }
                let dx = xs[k] - x0;
                sw += w;
                swx += w * dx;
                swy += w * ys[k];
                swxx += w * dx * dx;
                swxy += w * dx * ys[k];
            }
            fitted[i] = if sw == 0.0 {
                ys[i]
            } else {
                let denom = sw * swxx - swx * swx;
                if denom.abs() < 1e-12 * sw.max(1.0) {
                    swy / sw
                } else {
                    (swxx * swy - swx * swxy) / denom
                }
            };
        }
    }
}

/// Interior fits of the unit-robustness pass. Each output is a fixed
/// dot product, and consecutive outputs slide the same coefficient
/// vector one sample along `ys`, so the blocked loop computes four
/// outputs per traversal of `coeff`: every loaded `ys` band serves four
/// accumulators instead of one, and the fused form vectorizes across
/// the outputs. The per-output accumulation order differs from
/// [`dot_window`] (sequential over the window instead of four-way
/// chunks), which stays inside the fast path's ~1e-12 agreement
/// contract with the generic reference.
#[allow(clippy::too_many_arguments)]
fn fit_interior_first_pass(
    xs: &[f64],
    ys: &[f64],
    window: usize,
    h: usize,
    even: bool,
    coeff_a: &[f64],
    coeff_b: &[f64],
    fitted: &mut [f64],
) {
    let n = xs.len();
    // The generic nearest-neighbour slide (see `fit_pass_uniform`): odd
    // windows always take the symmetric variant; even windows end on an
    // exact-tie comparison that rounding drift decides.
    // lint:allow(hot-index) callers keep i in h..n - h, so i - h >= 0 and i + h < n
    let slide_b = |i: usize| even && (xs[i + h] - xs[i]) < (xs[i] - xs[i - h]);
    let fit_one = |i: usize, fitted: &mut [f64]| {
        let (lo, coeff) = if slide_b(i) { (i - h + 1, coeff_b) } else { (i - h, coeff_a) };
        fitted[i] = dot_window(coeff, &ys[lo..lo + window]); // lint:allow(hot-index) lo + window <= i + h + 1 <= n
    };
    let mut i = h;
    while i + 3 < n - h {
        let b0 = slide_b(i);
        if slide_b(i + 1) != b0 || slide_b(i + 2) != b0 || slide_b(i + 3) != b0 {
            // Mixed tie outcomes (at most a handful of points per grid):
            // take the one-output path until the block realigns.
            fit_one(i, fitted);
            i += 1;
            continue;
        }
        let lo = if b0 { i - h + 1 } else { i - h };
        let coeff = if b0 { coeff_b } else { coeff_a };
        let hi = lo + window + 3;
        if hi > n {
            // Unreachable given i + 3 < n - h; keeps the kernel
            // panic-free if the slide bounds ever change.
            fit_one(i, fitted);
            i += 1;
            continue;
        }
        let win = &ys[lo..hi];
        let i4 = i + 4;
        let out = &mut fitted[i..i4];
        let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f64, 0.0, 0.0, 0.0);
        for (c, y) in coeff.iter().zip(win.windows(4)) {
            acc0 += c * y[0];
            acc1 += c * y[1];
            acc2 += c * y[2];
            acc3 += c * y[3];
        }
        out[0] = acc0;
        out[1] = acc1;
        out[2] = acc2;
        out[3] = acc3;
        i = i4;
    }
    while i < n - h {
        fit_one(i, fitted);
        i += 1;
    }
}

/// Dot product with four independent accumulators (the fast path's
/// permission to reassociate: agreement is promised to ~1e-12, not
/// bit-exactness, and the unrolled form vectorizes).
#[inline]
fn dot_window(coeff: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(coeff.len(), ys.len());
    let mut acc = [0.0f64; 4];
    let mut cc = coeff.chunks_exact(4);
    let mut yc = ys.chunks_exact(4);
    for (c, y) in (&mut cc).zip(&mut yc) {
        acc[0] += c[0] * y[0];
        acc[1] += c[1] * y[1];
        acc[2] += c[2] * y[2];
        acc[3] += c[3] * y[3];
    }
    let mut rest = 0.0;
    for (c, y) in cc.remainder().iter().zip(yc.remainder()) {
        rest += c * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + rest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x - 3.0).collect();
        (xs, ys)
    }

    #[test]
    fn linear_data_is_reproduced_exactly() {
        let (xs, ys) = ramp(50);
        let out = lowess(&xs, &ys, LowessConfig::with_fraction(0.3)).unwrap();
        for (o, y) in out.iter().zip(&ys) {
            assert!((o - y).abs() < 1e-9, "{o} vs {y}");
        }
    }

    #[test]
    fn constant_data_is_reproduced() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys = vec![4.2; 20];
        let out = lowess(&xs, &ys, LowessConfig::default()).unwrap();
        for o in out {
            assert!((o - 4.2).abs() < 1e-9);
        }
    }

    #[test]
    fn alternating_noise_is_removed() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x + if (*x as usize).is_multiple_of(2) { 1.0 } else { -1.0 })
            .collect();
        let out = lowess(&xs, &ys, LowessConfig::with_fraction(0.1)).unwrap();
        // Interior points: noise mostly gone.
        for i in 20..180 {
            assert!((out[i] - xs[i]).abs() < 0.3, "i={i} out={}", out[i]);
        }
    }

    #[test]
    fn robust_iterations_suppress_outlier() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.clone();
        ys[30] = 500.0; // gross outlier
        let plain = lowess(&xs, &ys, LowessConfig::with_fraction(0.3)).unwrap();
        let robust = lowess(&xs, &ys, LowessConfig::with_fraction(0.3).robust(3)).unwrap();
        let plain_err = (plain[29] - 29.0).abs();
        let robust_err = (robust[29] - 29.0).abs();
        assert!(robust_err < plain_err, "robust {robust_err} should beat plain {plain_err}");
        assert!(robust_err < 1.0);
    }

    #[test]
    fn preserves_sine_shape() {
        // A lane-change-like bump must survive smoothing.
        let n = 500;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.02).collect(); // 10 s at 50 Hz
        let bump = |t: f64| {
            if (2.0..6.0).contains(&t) {
                0.12 * (std::f64::consts::PI * (t - 2.0) / 2.0).sin()
            } else {
                0.0
            }
        };
        let ys: Vec<f64> = xs.iter().map(|&t| bump(t)).collect();
        let out = lowess(&xs, &ys, LowessConfig::with_fraction(0.05)).unwrap();
        // Peak magnitude preserved within 10%.
        let peak = out.iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - 0.12).abs() < 0.012, "peak {peak}");
    }

    #[test]
    fn single_and_two_points() {
        assert_eq!(lowess(&[1.0], &[2.0], LowessConfig::default()).unwrap(), vec![2.0]);
        let out = lowess(&[0.0, 1.0], &[0.0, 2.0], LowessConfig::with_fraction(1.0)).unwrap();
        for (o, y) in out.iter().zip(&[0.0, 2.0]) {
            assert!((o - y).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(lowess(&[], &[], LowessConfig::default()).is_err());
        assert!(lowess(&[0.0, 1.0], &[0.0], LowessConfig::default()).is_err());
        assert!(lowess(&[1.0, 0.0], &[0.0, 1.0], LowessConfig::default()).is_err());
        let bad = LowessConfig { fraction: 0.0, ..Default::default() };
        assert!(lowess(&[0.0, 1.0], &[0.0, 1.0], bad).is_err());
    }

    /// Pseudo-random but deterministic sample values (no RNG dependency).
    fn wavy(n: usize, dt: f64) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| 3.0 + i as f64 * dt).collect();
        let ys: Vec<f64> =
            (0..n).map(|i| (i as f64 * 0.7).sin() * 2.0 + (i as f64 * 2.3).cos()).collect();
        (xs, ys)
    }

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn fast_path_matches_generic_on_uniform_grid() {
        // Odd and even windows, with and without robustness iterations.
        for &(n, frac, iters) in
            &[(300usize, 0.11, 0usize), (300, 0.12, 0), (257, 0.2, 2), (300, 0.0667, 3)]
        {
            let (xs, ys) = wavy(n, 0.0625);
            let cfg =
                LowessConfig { fraction: frac, robust_iterations: iters, force_generic: false };
            let fast = lowess(&xs, &ys, cfg).unwrap();
            let generic = lowess(&xs, &ys, cfg.generic_only()).unwrap();
            let diff = max_abs_diff(&fast, &generic);
            assert!(diff < 1e-12, "n={n} frac={frac} iters={iters}: diff {diff}");
        }
    }

    #[test]
    fn blocked_first_pass_matches_generic_on_accumulated_grid() {
        // Accumulated `t += dt` timestamps (how real sensor logs are
        // built) let the even-window tie comparison flip between
        // variants mid-grid, exercising the blocked kernel's mixed-tie
        // one-output fallback as well as its aligned four-output path.
        let mut t = 0.0f64;
        let xs: Vec<f64> = (0..4000)
            .map(|_| {
                let v = t;
                t += 0.02;
                v
            })
            .collect();
        let ys: Vec<f64> =
            (0..4000).map(|i| (i as f64 * 0.37).sin() + 0.5 * (i as f64 * 1.7).cos()).collect();
        // Odd and even windows.
        for frac in [0.01125, 0.0125] {
            let cfg = LowessConfig { fraction: frac, robust_iterations: 0, force_generic: false };
            let fast = lowess(&xs, &ys, cfg).unwrap();
            let generic = lowess(&xs, &ys, cfg.generic_only()).unwrap();
            let diff = max_abs_diff(&fast, &generic);
            assert!(diff < 1e-12, "frac={frac}: diff {diff}");
        }
    }

    #[test]
    fn accumulated_timestamps_detected_as_uniform() {
        // The simulator builds timestamps by repeated `t += dt`; the
        // accumulated rounding drift must stay inside the detector's
        // tolerance so real sensor logs take the fast path.
        let mut t = 0.0f64;
        let xs: Vec<f64> = (0..10_000)
            .map(|_| {
                let v = t;
                t += 0.02;
                v
            })
            .collect();
        let step = detect_uniform_step(&xs).expect("accumulated grid is uniform");
        assert!((step - 0.02).abs() < 1e-9);
    }

    #[test]
    fn jittered_grid_falls_back_to_generic() {
        let n = 200;
        let xs: Vec<f64> =
            (0..n).map(|i| i as f64 * 0.02 + 0.004 * ((i * 7919 % 13) as f64 / 13.0)).collect();
        assert!(detect_uniform_step(&xs).is_none());
        let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let cfg = LowessConfig::with_fraction(0.15);
        // Fast path not taken: the two configurations are bit-identical.
        let auto = lowess(&xs, &ys, cfg).unwrap();
        let generic = lowess(&xs, &ys, cfg.generic_only()).unwrap();
        assert_eq!(auto, generic);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn with_fraction_panics_on_invalid() {
        let _ = LowessConfig::with_fraction(1.5);
    }
}

//! LOWESS — locally weighted scatterplot smoothing (local regression).
//!
//! Section III-B of the paper smooths the measured steering-rate profile
//! with "the local regression method \[Loader 2006\]" before extracting lane
//! change bumps. This module implements the classic Cleveland LOWESS
//! estimator: for every abscissa, fit a weighted degree-1 polynomial over
//! the nearest-neighbour window using tricube weights, with optional
//! robustifying iterations that downweight outliers via bisquare weights.

use crate::{MathError, MathResult};

/// Configuration for [`lowess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowessConfig {
    /// Fraction of the data used in each local window, in `(0, 1]`.
    /// Larger values smooth more.
    pub fraction: f64,
    /// Number of robustifying iterations (0 = plain LOWESS).
    pub robust_iterations: usize,
}

impl Default for LowessConfig {
    fn default() -> Self {
        // fraction 0.1 keeps lane-change bumps (~seconds wide at 50 Hz)
        // intact while killing sample-level sensor noise.
        LowessConfig { fraction: 0.1, robust_iterations: 0 }
    }
}

impl LowessConfig {
    /// Creates a config with the given window fraction and no robustness
    /// iterations.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn with_fraction(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "LOWESS fraction must be in (0, 1], got {fraction}"
        );
        LowessConfig { fraction, robust_iterations: 0 }
    }

    /// Sets the number of robustifying iterations.
    pub fn robust(mut self, iterations: usize) -> Self {
        self.robust_iterations = iterations;
        self
    }
}

/// Smooths `ys` sampled at strictly increasing `xs` with LOWESS.
///
/// Returns the smoothed value at every input abscissa.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for empty input,
/// [`MathError::DimensionMismatch`] when lengths differ, and
/// [`MathError::InvalidArgument`] when `xs` is not strictly increasing or
/// `fraction` is out of `(0, 1]`.
///
/// # Example
///
/// ```
/// use gradest_math::lowess::{lowess, LowessConfig};
///
/// // Noisy ramp: LOWESS recovers the trend.
/// let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x + if (*x as usize) % 2 == 0 { 0.5 } else { -0.5 }).collect();
/// let smooth = lowess(&xs, &ys, LowessConfig::with_fraction(0.2))?;
/// // Interior points are close to the noise-free ramp.
/// assert!((smooth[50] - 50.0).abs() < 0.2);
/// # Ok::<(), gradest_math::MathError>(())
/// ```
pub fn lowess(xs: &[f64], ys: &[f64], config: LowessConfig) -> MathResult<Vec<f64>> {
    let mut fitted = Vec::new();
    lowess_into(xs, ys, config, &mut LowessScratch::new(), &mut fitted)?;
    Ok(fitted)
}

/// Reusable working buffers for [`lowess_into`].
///
/// A 50 Hz steering profile is smoothed once per trip, but a fleet
/// engine smooths thousands of trips; reusing the scratch removes every
/// intermediate allocation from that loop. The buffers grow to the
/// largest series seen and stay allocated.
#[derive(Debug, Clone, Default)]
pub struct LowessScratch {
    robust_weights: Vec<f64>,
    abs_res: Vec<f64>,
    sorted: Vec<f64>,
}

impl LowessScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        LowessScratch::default()
    }
}

/// [`lowess`] with caller-owned buffers: writes the smoothed series
/// into `fitted` (cleared and resized) and keeps every intermediate in
/// `scratch`, so repeated calls allocate nothing once the buffers have
/// grown to the series length.
///
/// # Errors
///
/// Same as [`lowess`].
pub fn lowess_into(
    xs: &[f64],
    ys: &[f64],
    config: LowessConfig,
    scratch: &mut LowessScratch,
    fitted: &mut Vec<f64>,
) -> MathResult<()> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput { context: "lowess input" });
    }
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch { context: "lowess xs/ys lengths" });
    }
    if !(config.fraction > 0.0 && config.fraction <= 1.0) {
        return Err(MathError::InvalidArgument { context: "lowess fraction not in (0, 1]" });
    }
    for w in xs.windows(2) {
        if w[0].is_nan() || w[1].is_nan() || w[1] <= w[0] {
            return Err(MathError::InvalidArgument {
                context: "lowess abscissae must be strictly increasing",
            });
        }
    }
    let n = xs.len();
    fitted.clear();
    if n == 1 {
        fitted.push(ys[0]);
        return Ok(());
    }
    let window = ((config.fraction * n as f64).ceil() as usize).clamp(2, n);

    scratch.robust_weights.clear();
    scratch.robust_weights.resize(n, 1.0);
    fitted.resize(n, 0.0);

    for iteration in 0..=config.robust_iterations {
        for (i, f) in fitted.iter_mut().enumerate() {
            *f = fit_local(xs, ys, &scratch.robust_weights, i, window);
        }
        if iteration == config.robust_iterations {
            break;
        }
        // Bisquare robustness weights from the residuals. The scale is the
        // median absolute residual floored by a fraction of the mean: with a
        // mostly-perfect fit the median collapses to ~0 and an unfloored
        // scale would zero out every point near an outlier, preventing the
        // iteration from ever recovering.
        scratch.abs_res.clear();
        scratch.abs_res.extend(ys.iter().zip(fitted.iter()).map(|(y, f)| (y - f).abs()));
        scratch.sorted.clear();
        scratch.sorted.extend_from_slice(&scratch.abs_res);
        scratch.sorted.sort_by(|a, b| a.partial_cmp(b).expect("residuals finite"));
        let median = scratch.sorted[n / 2];
        let mean = scratch.abs_res.iter().sum::<f64>() / n as f64;
        let scale = median.max(0.25 * mean);
        if scale <= f64::EPSILON {
            break; // perfect fit; further iterations change nothing
        }
        for (w, r) in scratch.robust_weights.iter_mut().zip(&scratch.abs_res) {
            let u = r / (6.0 * scale);
            *w = if u >= 1.0 { 0.0 } else { (1.0 - u * u).powi(2) };
        }
    }
    Ok(())
}

/// Weighted degree-1 local fit evaluated at `xs[i]`, using the `window`
/// nearest neighbours (by abscissa distance) and tricube × robustness
/// weights.
fn fit_local(xs: &[f64], ys: &[f64], robust: &[f64], i: usize, window: usize) -> f64 {
    let n = xs.len();
    let x0 = xs[i];

    // Nearest-neighbour window [lo, hi) of size `window` around i.
    let mut lo = i.saturating_sub(window - 1);
    let mut hi = (lo + window).min(n);
    lo = hi.saturating_sub(window);
    // Slide the window towards the side with closer points.
    while hi < n && (xs[hi] - x0) < (x0 - xs[lo]) {
        lo += 1;
        hi += 1;
    }

    let max_dist = (x0 - xs[lo]).abs().max((xs[hi - 1] - x0).abs()).max(f64::EPSILON);

    // Weighted least squares for y = a + b (x - x0); fitted value is `a`.
    let (mut sw, mut swx, mut swy, mut swxx, mut swxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for k in lo..hi {
        let d = ((xs[k] - x0) / max_dist).abs();
        let tricube = if d >= 1.0 { 0.0 } else { (1.0 - d * d * d).powi(3) };
        let w = tricube * robust[k];
        if w == 0.0 {
            continue;
        }
        let dx = xs[k] - x0;
        sw += w;
        swx += w * dx;
        swy += w * ys[k];
        swxx += w * dx * dx;
        swxy += w * dx * ys[k];
    }
    if sw == 0.0 {
        return ys[i]; // all weights vanished; fall back to the raw sample
    }
    let denom = sw * swxx - swx * swx;
    if denom.abs() < 1e-12 * sw.max(1.0) {
        // Degenerate (e.g. window of two identical abscissae): weighted mean.
        swy / sw
    } else {
        (swxx * swy - swx * swxy) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x - 3.0).collect();
        (xs, ys)
    }

    #[test]
    fn linear_data_is_reproduced_exactly() {
        let (xs, ys) = ramp(50);
        let out = lowess(&xs, &ys, LowessConfig::with_fraction(0.3)).unwrap();
        for (o, y) in out.iter().zip(&ys) {
            assert!((o - y).abs() < 1e-9, "{o} vs {y}");
        }
    }

    #[test]
    fn constant_data_is_reproduced() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys = vec![4.2; 20];
        let out = lowess(&xs, &ys, LowessConfig::default()).unwrap();
        for o in out {
            assert!((o - 4.2).abs() < 1e-9);
        }
    }

    #[test]
    fn alternating_noise_is_removed() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x + if (*x as usize).is_multiple_of(2) { 1.0 } else { -1.0 })
            .collect();
        let out = lowess(&xs, &ys, LowessConfig::with_fraction(0.1)).unwrap();
        // Interior points: noise mostly gone.
        for i in 20..180 {
            assert!((out[i] - xs[i]).abs() < 0.3, "i={i} out={}", out[i]);
        }
    }

    #[test]
    fn robust_iterations_suppress_outlier() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.clone();
        ys[30] = 500.0; // gross outlier
        let plain = lowess(&xs, &ys, LowessConfig::with_fraction(0.3)).unwrap();
        let robust = lowess(&xs, &ys, LowessConfig::with_fraction(0.3).robust(3)).unwrap();
        let plain_err = (plain[29] - 29.0).abs();
        let robust_err = (robust[29] - 29.0).abs();
        assert!(robust_err < plain_err, "robust {robust_err} should beat plain {plain_err}");
        assert!(robust_err < 1.0);
    }

    #[test]
    fn preserves_sine_shape() {
        // A lane-change-like bump must survive smoothing.
        let n = 500;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.02).collect(); // 10 s at 50 Hz
        let bump = |t: f64| {
            if (2.0..6.0).contains(&t) {
                0.12 * (std::f64::consts::PI * (t - 2.0) / 2.0).sin()
            } else {
                0.0
            }
        };
        let ys: Vec<f64> = xs.iter().map(|&t| bump(t)).collect();
        let out = lowess(&xs, &ys, LowessConfig::with_fraction(0.05)).unwrap();
        // Peak magnitude preserved within 10%.
        let peak = out.iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - 0.12).abs() < 0.012, "peak {peak}");
    }

    #[test]
    fn single_and_two_points() {
        assert_eq!(lowess(&[1.0], &[2.0], LowessConfig::default()).unwrap(), vec![2.0]);
        let out = lowess(&[0.0, 1.0], &[0.0, 2.0], LowessConfig::with_fraction(1.0)).unwrap();
        for (o, y) in out.iter().zip(&[0.0, 2.0]) {
            assert!((o - y).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(lowess(&[], &[], LowessConfig::default()).is_err());
        assert!(lowess(&[0.0, 1.0], &[0.0], LowessConfig::default()).is_err());
        assert!(lowess(&[1.0, 0.0], &[0.0, 1.0], LowessConfig::default()).is_err());
        let bad = LowessConfig { fraction: 0.0, robust_iterations: 0 };
        assert!(lowess(&[0.0, 1.0], &[0.0, 1.0], bad).is_err());
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn with_fraction_panics_on_invalid() {
        let _ = LowessConfig::with_fraction(1.5);
    }
}

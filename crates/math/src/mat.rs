//! Fixed-size 2×2 and 3×3 matrices over `f64`.
//!
//! [`Mat2`] carries the paper's EKF covariance (state `[v, θ]`, Eq 5);
//! [`Mat3`] carries the altitude-EKF baseline covariance (state
//! `[v, z, θ]`). Both are value types with closed-form inverses.

use crate::vec::{Vec2, Vec3};
use crate::{MathError, MathResult};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Pivot tolerance below which a matrix is reported singular.
const SINGULAR_TOL: f64 = 1e-14;

/// A 2×2 matrix in row-major order.
///
/// # Example
///
/// ```
/// use gradest_math::mat::Mat2;
/// let m = Mat2::new(1.0, 2.0, 3.0, 4.0);
/// assert_eq!(m.det(), -2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat2 {
    /// Row-major entries `[[m00, m01], [m10, m11]]`.
    pub m: [[f64; 2]; 2],
}

impl Mat2 {
    /// The zero matrix.
    pub const ZERO: Mat2 = Mat2 { m: [[0.0; 2]; 2] };

    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn new(m00: f64, m01: f64, m10: f64, m11: f64) -> Self {
        Mat2 { m: [[m00, m01], [m10, m11]] }
    }

    /// The identity matrix.
    #[inline]
    pub const fn identity() -> Self {
        Mat2::new(1.0, 0.0, 0.0, 1.0)
    }

    /// A diagonal matrix with entries `d0`, `d1`.
    #[inline]
    pub const fn diag(d0: f64, d1: f64) -> Self {
        Mat2::new(d0, 0.0, 0.0, d1)
    }

    /// Counter-clockwise rotation matrix by `angle` radians.
    #[inline]
    pub fn rotation(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat2::new(c, -s, s, c)
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f64 {
        self.m[0][0] * self.m[1][1] - self.m[0][1] * self.m[1][0]
    }

    /// Trace (sum of diagonal entries).
    #[inline]
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1]
    }

    /// Transpose.
    #[inline]
    pub fn transpose(&self) -> Mat2 {
        Mat2::new(self.m[0][0], self.m[1][0], self.m[0][1], self.m[1][1])
    }

    /// Closed-form inverse.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Singular`] when `|det|` is below tolerance.
    pub fn inverse(&self) -> MathResult<Mat2> {
        let d = self.det();
        if d.abs() < SINGULAR_TOL {
            return Err(MathError::Singular { pivot: d });
        }
        Ok(Mat2::new(self.m[1][1] / d, -self.m[0][1] / d, -self.m[1][0] / d, self.m[0][0] / d))
    }

    /// Symmetrizes in place: `P ← (P + Pᵀ)/2`. Used to keep EKF covariances
    /// numerically symmetric.
    #[inline]
    pub fn symmetrize(&mut self) {
        let off = 0.5 * (self.m[0][1] + self.m[1][0]);
        self.m[0][1] = off;
        self.m[1][0] = off;
    }

    /// True if every entry is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.m.iter().flatten().all(|v| v.is_finite())
    }

    /// True if the matrix is symmetric within `tol`.
    #[inline]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        (self.m[0][1] - self.m[1][0]).abs() <= tol
    }

    /// True if symmetric (within `tol`) and positive semi-definite, checked
    /// via leading principal minors.
    pub fn is_positive_semidefinite(&self, tol: f64) -> bool {
        self.is_symmetric(tol) && self.m[0][0] >= -tol && self.det() >= -tol
    }
}

impl Default for Mat2 {
    fn default() -> Self {
        Mat2::identity()
    }
}

impl Add for Mat2 {
    type Output = Mat2;
    fn add(self, r: Mat2) -> Mat2 {
        Mat2::new(
            self.m[0][0] + r.m[0][0],
            self.m[0][1] + r.m[0][1],
            self.m[1][0] + r.m[1][0],
            self.m[1][1] + r.m[1][1],
        )
    }
}

impl AddAssign for Mat2 {
    fn add_assign(&mut self, r: Mat2) {
        *self = *self + r;
    }
}

impl Sub for Mat2 {
    type Output = Mat2;
    fn sub(self, r: Mat2) -> Mat2 {
        Mat2::new(
            self.m[0][0] - r.m[0][0],
            self.m[0][1] - r.m[0][1],
            self.m[1][0] - r.m[1][0],
            self.m[1][1] - r.m[1][1],
        )
    }
}

impl SubAssign for Mat2 {
    fn sub_assign(&mut self, r: Mat2) {
        *self = *self - r;
    }
}

impl Neg for Mat2 {
    type Output = Mat2;
    fn neg(self) -> Mat2 {
        self * -1.0
    }
}

impl Mul<f64> for Mat2 {
    type Output = Mat2;
    fn mul(self, s: f64) -> Mat2 {
        Mat2::new(self.m[0][0] * s, self.m[0][1] * s, self.m[1][0] * s, self.m[1][1] * s)
    }
}

impl Mul<Mat2> for f64 {
    type Output = Mat2;
    fn mul(self, m: Mat2) -> Mat2 {
        m * self
    }
}

impl Mul for Mat2 {
    type Output = Mat2;
    fn mul(self, r: Mat2) -> Mat2 {
        let a = &self.m;
        let b = &r.m;
        Mat2::new(
            a[0][0] * b[0][0] + a[0][1] * b[1][0],
            a[0][0] * b[0][1] + a[0][1] * b[1][1],
            a[1][0] * b[0][0] + a[1][1] * b[1][0],
            a[1][0] * b[0][1] + a[1][1] * b[1][1],
        )
    }
}

impl Mul<Vec2> for Mat2 {
    type Output = Vec2;
    fn mul(self, v: Vec2) -> Vec2 {
        Vec2::new(self.m[0][0] * v.x + self.m[0][1] * v.y, self.m[1][0] * v.x + self.m[1][1] * v.y)
    }
}

/// A 3×3 matrix in row-major order.
///
/// # Example
///
/// ```
/// use gradest_math::mat::Mat3;
/// let m = Mat3::diag(2.0, 4.0, 8.0);
/// let inv = m.inverse().expect("diagonal, invertible");
/// assert!((inv.m[2][2] - 0.125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major entries.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };

    /// Creates a matrix from row-major rows.
    #[inline]
    pub const fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Self {
        Mat3 { m: [r0, r1, r2] }
    }

    /// The identity matrix.
    #[inline]
    pub const fn identity() -> Self {
        Mat3::from_rows([1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0])
    }

    /// A diagonal matrix.
    #[inline]
    pub const fn diag(d0: f64, d1: f64, d2: f64) -> Self {
        Mat3::from_rows([d0, 0.0, 0.0], [0.0, d1, 0.0], [0.0, 0.0, d2])
    }

    /// Determinant via cofactor expansion.
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Trace (sum of diagonal entries).
    #[inline]
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3::from_rows(
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        )
    }

    /// Closed-form inverse via the adjugate.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Singular`] when `|det|` is below tolerance.
    pub fn inverse(&self) -> MathResult<Mat3> {
        let d = self.det();
        if d.abs() < SINGULAR_TOL {
            return Err(MathError::Singular { pivot: d });
        }
        let m = &self.m;
        let c = |i0: usize, i1: usize, j0: usize, j1: usize| {
            m[i0][j0] * m[i1][j1] - m[i0][j1] * m[i1][j0]
        };
        // Adjugate (transpose of cofactor matrix) divided by determinant.
        Ok(Mat3::from_rows(
            [c(1, 2, 1, 2) / d, -c(0, 2, 1, 2) / d, c(0, 1, 1, 2) / d],
            [-c(1, 2, 0, 2) / d, c(0, 2, 0, 2) / d, -c(0, 1, 0, 2) / d],
            [c(1, 2, 0, 1) / d, -c(0, 2, 0, 1) / d, c(0, 1, 0, 1) / d],
        ))
    }

    /// Symmetrizes in place: `P ← (P + Pᵀ)/2`.
    pub fn symmetrize(&mut self) {
        for i in 0..3 {
            for j in (i + 1)..3 {
                let avg = 0.5 * (self.m[i][j] + self.m[j][i]);
                self.m[i][j] = avg;
                self.m[j][i] = avg;
            }
        }
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.m.iter().flatten().all(|v| v.is_finite())
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::identity()
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, r: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[i][j] + r.m[i][j];
            }
        }
        out
    }
}

impl AddAssign for Mat3 {
    fn add_assign(&mut self, r: Mat3) {
        *self = *self + r;
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, r: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[i][j] - r.m[i][j];
            }
        }
        out
    }
}

impl SubAssign for Mat3 {
    fn sub_assign(&mut self, r: Mat3) {
        *self = *self - r;
    }
}

impl Neg for Mat3 {
    type Output = Mat3;
    fn neg(self) -> Mat3 {
        self * -1.0
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        let mut out = self;
        for row in &mut out.m {
            for v in row {
                *v *= s;
            }
        }
        out
    }
}

impl Mul<Mat3> for f64 {
    type Output = Mat3;
    fn mul(self, m: Mat3) -> Mat3 {
        m * self
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, r: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for (k, rk) in r.m.iter().enumerate() {
                    acc += self.m[i][k] * rk[j];
                }
                out.m[i][j] = acc;
            }
        }
        out
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn mat2_close(a: Mat2, b: Mat2, tol: f64) -> bool {
        (0..2).all(|i| (0..2).all(|j| (a.m[i][j] - b.m[i][j]).abs() <= tol))
    }

    fn mat3_close(a: Mat3, b: Mat3, tol: f64) -> bool {
        (0..3).all(|i| (0..3).all(|j| (a.m[i][j] - b.m[i][j]).abs() <= tol))
    }

    #[test]
    fn mat2_identity_is_multiplicative_neutral() {
        let a = Mat2::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a * Mat2::identity(), a);
        assert_eq!(Mat2::identity() * a, a);
    }

    #[test]
    fn mat2_inverse_round_trip() {
        let a = Mat2::new(4.0, 7.0, 2.0, 6.0);
        let inv = a.inverse().unwrap();
        assert!(mat2_close(a * inv, Mat2::identity(), EPS));
        assert!(mat2_close(inv * a, Mat2::identity(), EPS));
    }

    #[test]
    fn mat2_singular_rejected() {
        let a = Mat2::new(1.0, 2.0, 2.0, 4.0);
        assert!(matches!(a.inverse(), Err(MathError::Singular { .. })));
    }

    #[test]
    fn mat2_rotation_composes() {
        let r1 = Mat2::rotation(0.3);
        let r2 = Mat2::rotation(0.5);
        assert!(mat2_close(r1 * r2, Mat2::rotation(0.8), EPS));
        // Rotation inverse is its transpose.
        assert!(mat2_close(r1.inverse().unwrap(), r1.transpose(), EPS));
    }

    #[test]
    fn mat2_vector_product() {
        let r = Mat2::rotation(std::f64::consts::FRAC_PI_2);
        let v = r * Vec2::new(1.0, 0.0);
        assert!((v.x).abs() < EPS && (v.y - 1.0).abs() < EPS);
    }

    #[test]
    fn mat2_symmetrize_and_psd() {
        let mut p = Mat2::new(2.0, 0.5 + 1e-9, 0.5, 1.0);
        p.symmetrize();
        assert!(p.is_symmetric(0.0));
        assert!(p.is_positive_semidefinite(1e-12));
        let not_psd = Mat2::new(1.0, 2.0, 2.0, 1.0); // det = -3
        assert!(!not_psd.is_positive_semidefinite(1e-12));
    }

    #[test]
    fn mat2_trace_det_add_sub() {
        let a = Mat2::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.trace(), 5.0);
        assert_eq!((a + a).m[1][0], 6.0);
        assert_eq!((a - a), Mat2::ZERO);
        assert_eq!((-a).m[0][0], -1.0);
    }

    #[test]
    fn mat3_identity_and_diag() {
        let d = Mat3::diag(1.0, 2.0, 3.0);
        assert_eq!(d.det(), 6.0);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d * Mat3::identity(), d);
    }

    #[test]
    fn mat3_inverse_round_trip() {
        let a = Mat3::from_rows([2.0, 1.0, 1.0], [1.0, 3.0, 2.0], [1.0, 0.0, 0.0]);
        let inv = a.inverse().unwrap();
        assert!(mat3_close(a * inv, Mat3::identity(), 1e-10));
        assert!(mat3_close(inv * a, Mat3::identity(), 1e-10));
    }

    #[test]
    fn mat3_singular_rejected() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 1.0]);
        assert!(matches!(a.inverse(), Err(MathError::Singular { .. })));
    }

    #[test]
    fn mat3_transpose_involution() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mat3_symmetrize() {
        let mut a = Mat3::from_rows([1.0, 2.0, 3.0], [0.0, 1.0, 5.0], [1.0, 1.0, 1.0]);
        a.symmetrize();
        assert_eq!(a.m[0][1], a.m[1][0]);
        assert_eq!(a.m[0][2], a.m[2][0]);
        assert_eq!(a.m[1][2], a.m[2][1]);
    }

    #[test]
    fn mat3_vector_product() {
        let a = Mat3::diag(2.0, 3.0, 4.0);
        let v = a * Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(v, Vec3::new(2.0, 3.0, 4.0));
    }

    #[test]
    fn finiteness() {
        assert!(Mat2::identity().is_finite());
        assert!(Mat3::identity().is_finite());
        let mut bad = Mat2::identity();
        bad.m[0][1] = f64::NAN;
        assert!(!bad.is_finite());
    }
}

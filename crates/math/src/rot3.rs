//! 3D rotations for phone-mount modelling.
//!
//! The paper's Section III-A assumes the phone is perfectly aligned with
//! the vehicle; the cited compensation method \[14\] handles arbitrary
//! mounts. [`Rot3`] represents the mount rotation (vehicle frame ↔ phone
//! frame) and backs the `gradest-sensors` calibration module.

use crate::mat::Mat3;
use crate::vec::Vec3;
use serde::{Deserialize, Serialize};

/// A proper rotation in 3D, stored as an orthonormal matrix
/// (vehicle-from-phone convention when used as a mount).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rot3 {
    m: Mat3,
}

impl Default for Rot3 {
    fn default() -> Self {
        Rot3::IDENTITY
    }
}

impl Rot3 {
    /// The identity rotation.
    pub const IDENTITY: Rot3 =
        Rot3 { m: Mat3 { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] } };

    /// Rotation about the x-axis by `angle` radians (right-handed).
    pub fn about_x(angle: f64) -> Rot3 {
        let (s, c) = angle.sin_cos();
        Rot3 { m: Mat3::from_rows([1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]) }
    }

    /// Rotation about the y-axis by `angle` radians.
    pub fn about_y(angle: f64) -> Rot3 {
        let (s, c) = angle.sin_cos();
        Rot3 { m: Mat3::from_rows([c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]) }
    }

    /// Rotation about the z-axis by `angle` radians.
    pub fn about_z(angle: f64) -> Rot3 {
        let (s, c) = angle.sin_cos();
        Rot3 { m: Mat3::from_rows([c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]) }
    }

    /// Intrinsic z-y′-x″ (yaw → pitch → roll) Euler composition, the
    /// usual phone-mount parameterization.
    pub fn from_euler(yaw: f64, pitch: f64, roll: f64) -> Rot3 {
        Rot3::about_z(yaw) * Rot3::about_y(pitch) * Rot3::about_x(roll)
    }

    /// Builds a rotation from an orthonormal matrix.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the matrix is not orthonormal within 1e-6.
    pub fn from_matrix(m: Mat3) -> Rot3 {
        debug_assert!(
            {
                let should_be_identity = m * m.transpose();
                let mut max_err = 0.0f64;
                for i in 0..3 {
                    for j in 0..3 {
                        let expect = if i == j { 1.0 } else { 0.0 };
                        max_err = max_err.max((should_be_identity.m[i][j] - expect).abs());
                    }
                }
                max_err < 1e-6 && m.det() > 0.0
            },
            "matrix is not a proper rotation"
        );
        Rot3 { m }
    }

    /// Builds the rotation whose columns are the given orthonormal basis
    /// vectors (maps `e_x → x_axis`, etc.).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the basis is not orthonormal.
    pub fn from_basis(x_axis: Vec3, y_axis: Vec3, z_axis: Vec3) -> Rot3 {
        Rot3::from_matrix(Mat3::from_rows(
            [x_axis.x, y_axis.x, z_axis.x],
            [x_axis.y, y_axis.y, z_axis.y],
            [x_axis.z, y_axis.z, z_axis.z],
        ))
    }

    /// Rotates a vector.
    pub fn rotate(&self, v: Vec3) -> Vec3 {
        self.m * v
    }

    /// The inverse rotation (transpose).
    pub fn inverse(&self) -> Rot3 {
        Rot3 { m: self.m.transpose() }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> Mat3 {
        self.m
    }

    /// Rotation angle (radians) of the axis-angle form — a metric for how
    /// far two frames are apart: `angle(R_a⁻¹·R_b)` is the misalignment
    /// between them.
    pub fn angle(&self) -> f64 {
        ((self.m.trace() - 1.0) / 2.0).clamp(-1.0, 1.0).acos()
    }
}

impl std::ops::Mul for Rot3 {
    type Output = Rot3;
    fn mul(self, rhs: Rot3) -> Rot3 {
        Rot3 { m: self.m * rhs.m }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    const EPS: f64 = 1e-12;

    fn close(a: Vec3, b: Vec3) -> bool {
        (a - b).norm() < 1e-9
    }

    #[test]
    fn axis_rotations_move_basis_vectors() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert!(close(Rot3::about_z(FRAC_PI_2).rotate(x), y));
        assert!(close(Rot3::about_x(FRAC_PI_2).rotate(y), z));
        assert!(close(Rot3::about_y(FRAC_PI_2).rotate(z), x));
    }

    #[test]
    fn inverse_undoes_rotation() {
        let r = Rot3::from_euler(0.7, -0.3, 0.2);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(close(r.inverse().rotate(r.rotate(v)), v));
    }

    #[test]
    fn composition_associates_with_application() {
        let a = Rot3::from_euler(0.3, 0.1, -0.2);
        let b = Rot3::from_euler(-0.5, 0.4, 0.6);
        let v = Vec3::new(-1.0, 0.5, 2.0);
        assert!(close((a * b).rotate(v), a.rotate(b.rotate(v))));
    }

    #[test]
    fn rotation_preserves_norm_and_angles() {
        let r = Rot3::from_euler(1.1, 0.6, -0.9);
        let v = Vec3::new(3.0, -4.0, 12.0);
        assert!((r.rotate(v).norm() - 13.0).abs() < EPS);
        let w = Vec3::new(1.0, 1.0, 0.0);
        assert!((r.rotate(v).dot(r.rotate(w)) - v.dot(w)).abs() < 1e-9);
    }

    #[test]
    fn angle_of_known_rotations() {
        assert!(Rot3::IDENTITY.angle() < EPS);
        assert!((Rot3::about_z(0.5).angle() - 0.5).abs() < 1e-12);
        assert!((Rot3::about_x(-0.5).angle() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_basis_round_trips() {
        let r = Rot3::from_euler(0.4, -0.2, 0.1);
        let x = r.rotate(Vec3::new(1.0, 0.0, 0.0));
        let y = r.rotate(Vec3::new(0.0, 1.0, 0.0));
        let z = r.rotate(Vec3::new(0.0, 0.0, 1.0));
        let rebuilt = Rot3::from_basis(x, y, z);
        assert!((rebuilt.matrix().m[0][0] - r.matrix().m[0][0]).abs() < 1e-12);
        let v = Vec3::new(0.3, -0.7, 0.9);
        assert!(close(rebuilt.rotate(v), r.rotate(v)));
    }

    #[test]
    fn euler_identity() {
        let r = Rot3::from_euler(0.0, 0.0, 0.0);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(close(r.rotate(v), v));
    }
}

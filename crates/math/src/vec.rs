//! Fixed-size 2- and 3-vectors over `f64`.
//!
//! These are plain value types used for EKF states, planar positions, and
//! body-frame sensor axes. All operations are `#[inline]`-friendly and
//! allocation-free.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 2-vector over `f64`.
///
/// # Example
///
/// ```
/// use gradest_math::vec::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// First component.
    pub x: f64,
    /// Second component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Dot product with another vector.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// 2D cross product magnitude (`x1*y2 - y1*x2`).
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Returns the unit vector in the same direction, or `None` for the zero
    /// vector.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n > 0.0 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Rotates the vector counter-clockwise by `angle` radians.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Angle of the vector measured counter-clockwise from the +x axis.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Unit vector at `angle` radians counter-clockwise from the +x axis.
    #[inline]
    pub fn from_angle(angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c, s)
    }

    /// Componentwise linear interpolation: `self` at `t = 0`, `other` at
    /// `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Index<usize> for Vec2 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            _ => panic!("Vec2 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec2 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            _ => panic!("Vec2 index out of range: {i}"),
        }
    }
}

impl From<[f64; 2]> for Vec2 {
    #[inline]
    fn from(a: [f64; 2]) -> Self {
        Vec2::new(a[0], a[1])
    }
}

impl From<Vec2> for [f64; 2] {
    #[inline]
    fn from(v: Vec2) -> Self {
        [v.x, v.y]
    }
}

/// A 3-vector over `f64`, used for body-frame sensor axes
/// (`X_B`, `Y_B`, `Z_B` in the paper's Figure 2).
///
/// # Example
///
/// ```
/// use gradest_math::vec::Vec3;
/// let gravity = Vec3::new(0.0, 0.0, -9.81);
/// assert!((gravity.norm() - 9.81).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// First component.
    pub x: f64,
    /// Second component.
    pub y: f64,
    /// Third component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product with another vector.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product with another vector.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns the unit vector in the same direction, or `None` for the zero
    /// vector.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 0.0 {
            Some(self / n)
        } else {
            None
        }
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -4.0);
        assert_eq!(a + b, Vec2::new(4.0, -2.0));
        assert_eq!(a - b, Vec2::new(-2.0, 6.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn vec2_dot_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn vec2_rotation_preserves_norm() {
        let v = Vec2::new(3.0, 4.0);
        let r = v.rotated(1.234);
        assert!((r.norm() - 5.0).abs() < EPS);
    }

    #[test]
    fn vec2_rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0);
        let r = v.rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x).abs() < EPS);
        assert!((r.y - 1.0).abs() < EPS);
    }

    #[test]
    fn vec2_angle_round_trip() {
        for &a in &[-3.0, -1.5, 0.0, 0.7, 2.9] {
            let v = Vec2::from_angle(a);
            assert!((v.angle() - a).abs() < EPS);
            assert!((v.norm() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn vec2_normalized_zero_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let n = Vec2::new(0.0, -2.0).normalized().unwrap();
        assert!((n.y + 1.0).abs() < EPS);
    }

    #[test]
    fn vec2_lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn vec2_indexing() {
        let mut v = Vec2::new(5.0, 6.0);
        assert_eq!(v[0], 5.0);
        assert_eq!(v[1], 6.0);
        v[1] = 9.0;
        assert_eq!(v.y, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vec2_index_out_of_range_panics() {
        let v = Vec2::ZERO;
        let _ = v[2];
    }

    #[test]
    fn vec3_cross_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = x.cross(y);
        assert_eq!(z, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), Vec3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn vec3_arithmetic_and_norm() {
        let a = Vec3::new(1.0, 2.0, 2.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a + a, a * 2.0);
        assert_eq!(a - a, Vec3::ZERO);
        assert_eq!((a / 2.0) * 2.0, a);
    }

    #[test]
    fn vec3_normalized() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(0.0, 3.0, 4.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn array_conversions() {
        let v2: Vec2 = [1.0, 2.0].into();
        let a2: [f64; 2] = v2.into();
        assert_eq!(a2, [1.0, 2.0]);
        let v3: Vec3 = [1.0, 2.0, 3.0].into();
        let a3: [f64; 3] = v3.into();
        assert_eq!(a3, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn finiteness_checks() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}

//! Angle arithmetic helpers.
//!
//! Headings, steering angles, and road directions constantly wrap around
//! ±π; these helpers centralize the wrapping rules so every crate agrees.

use std::f64::consts::PI;

/// Wraps an angle to the half-open interval `(-π, π]`.
///
/// # Example
///
/// ```
/// use gradest_math::angle::wrap_pi;
/// use std::f64::consts::PI;
/// assert!((wrap_pi(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((wrap_pi(-3.0 * PI / 2.0) - PI / 2.0).abs() < 1e-12);
/// ```
#[inline]
pub fn wrap_pi(angle: f64) -> f64 {
    let mut a = angle % (2.0 * PI);
    if a <= -PI {
        a += 2.0 * PI;
    } else if a > PI {
        a -= 2.0 * PI;
    }
    a
}

/// Wraps an angle to `[0, 2π)`.
#[inline]
pub fn wrap_two_pi(angle: f64) -> f64 {
    let mut a = angle % (2.0 * PI);
    if a < 0.0 {
        a += 2.0 * PI;
    }
    a
}

/// Signed smallest difference `a - b`, wrapped to `(-π, π]`.
///
/// This is the correct way to subtract two headings: the result is the
/// rotation that takes `b` to `a`.
#[inline]
pub fn angle_diff(a: f64, b: f64) -> f64 {
    wrap_pi(a - b)
}

/// Unwraps a sequence of wrapped angles into a continuous signal
/// (inverse of repeatedly applying [`wrap_pi`]).
///
/// Consecutive jumps larger than π are interpreted as wrap-arounds.
/// Returns an empty vector for empty input.
pub fn unwrap_angles(angles: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(angles.len());
    let mut offset = 0.0;
    for (i, &a) in angles.iter().enumerate() {
        if i > 0 {
            let prev_raw = angles[i - 1];
            let d = a - prev_raw;
            if d > PI {
                offset -= 2.0 * PI;
            } else if d < -PI {
                offset += 2.0 * PI;
            }
        }
        out.push(a + offset);
    }
    out
}

/// Converts degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Converts radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn wrap_pi_basics() {
        assert!((wrap_pi(0.0)).abs() < EPS);
        assert!((wrap_pi(PI) - PI).abs() < EPS);
        assert!((wrap_pi(-PI) - PI).abs() < EPS); // -π maps to π in (-π, π]
        assert!((wrap_pi(2.0 * PI)).abs() < EPS);
        assert!((wrap_pi(5.0 * PI / 2.0) - PI / 2.0).abs() < EPS);
        assert!((wrap_pi(-5.0 * PI / 2.0) + PI / 2.0).abs() < EPS);
    }

    #[test]
    fn wrap_pi_stays_in_range() {
        for i in -100..=100 {
            let a = wrap_pi(i as f64 * 0.37);
            assert!(a > -PI - EPS && a <= PI + EPS, "{a} out of range");
        }
    }

    #[test]
    fn wrap_two_pi_basics() {
        assert!((wrap_two_pi(-0.1) - (2.0 * PI - 0.1)).abs() < EPS);
        assert!((wrap_two_pi(2.0 * PI)).abs() < EPS);
        for i in -100..=100 {
            let a = wrap_two_pi(i as f64 * 0.53);
            assert!((0.0..2.0 * PI + EPS).contains(&a));
        }
    }

    #[test]
    fn angle_diff_crossing_wrap() {
        // 10° heading minus 350° heading should be +20°, not -340°.
        let a = deg_to_rad(10.0);
        let b = deg_to_rad(350.0);
        assert!((angle_diff(a, b) - deg_to_rad(20.0)).abs() < EPS);
        assert!((angle_diff(b, a) + deg_to_rad(20.0)).abs() < EPS);
    }

    #[test]
    fn unwrap_reconstructs_continuous_ramp() {
        // A continuously increasing heading, observed wrapped.
        let truth: Vec<f64> = (0..200).map(|i| i as f64 * 0.1).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&a| wrap_pi(a)).collect();
        let unwrapped = unwrap_angles(&wrapped);
        for (t, u) in truth.iter().zip(&unwrapped) {
            // Unwrapped signal may differ by a constant multiple of 2π
            // from the original; here it starts at the same point so it
            // matches exactly.
            assert!((t - u).abs() < 1e-9, "{t} vs {u}");
        }
    }

    #[test]
    fn unwrap_handles_decreasing_ramp() {
        let truth: Vec<f64> = (0..200).map(|i| -(i as f64) * 0.1).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&a| wrap_pi(a)).collect();
        let unwrapped = unwrap_angles(&wrapped);
        for (t, u) in truth.iter().zip(&unwrapped) {
            assert!((t - u).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_empty_and_single() {
        assert!(unwrap_angles(&[]).is_empty());
        assert_eq!(unwrap_angles(&[1.25]), vec![1.25]);
    }

    #[test]
    fn deg_rad_round_trip() {
        for d in [-720.0, -90.0, 0.0, 45.0, 360.5] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-9);
        }
    }
}

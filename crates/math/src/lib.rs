//! # gradest-math
//!
//! Small, dependency-light numerical foundation for the `gradest` workspace:
//!
//! * [`vec`](mod@vec) — fixed-size 2- and 3-vectors over `f64`.
//! * [`mat`] — fixed-size 2×2 and 3×3 matrices (the EKF state is 2–3D).
//! * [`dmatrix`] — dynamically sized dense row-major matrices with
//!   Gauss–Jordan inversion and Cholesky factorization (used by the ANN
//!   baseline and track fusion).
//! * [`lowess`] — local regression smoothing (the paper's Section III-B
//!   steering-rate smoother, citing Loader's *Local Regression and
//!   Likelihood*).
//! * [`stats`] — summary statistics, error metrics (MRE/MAE/RMSE), empirical
//!   CDFs, and histograms used throughout the evaluation harness.
//! * [`interp`] — linear interpolation and time-series resampling.
//! * [`angle`] — angle wrapping/unwrap helpers for heading arithmetic.
//! * [`signal`] — finite differences, cumulative integration, moving
//!   averages.
//!
//! The workspace deliberately hand-rolls this instead of depending on
//! `nalgebra`: every consumer needs at most 3×3 fixed algebra or small dense
//! matrices, and keeping the kernel ~1 kLoC makes the offline build trivial
//! to audit.
//!
//! # Example
//!
//! ```
//! use gradest_math::mat::Mat2;
//! use gradest_math::vec::Vec2;
//!
//! let a = Mat2::new(2.0, 1.0, 1.0, 3.0);
//! let x = Vec2::new(1.0, -1.0);
//! let b = a * x;
//! let solved = a.inverse().expect("well conditioned") * b;
//! assert!((solved - x).norm() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angle;
pub mod dmatrix;
pub mod interp;
pub mod lowess;
pub mod mat;
pub mod rot3;
pub mod signal;
pub mod stats;
pub mod vec;

pub use dmatrix::DMatrix;
pub use mat::{Mat2, Mat3};
pub use rot3::Rot3;
pub use vec::{Vec2, Vec3};

/// Standard gravity in m/s², shared by dynamics, sensors, and estimators.
pub const GRAVITY: f64 = 9.80665;

/// Convenient result alias for fallible numeric routines.
pub type MathResult<T> = Result<T, MathError>;

/// Errors produced by numeric kernels in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// A matrix inversion or factorization met a (near-)singular matrix.
    Singular {
        /// Pivot magnitude that failed the tolerance check.
        pivot: f64,
    },
    /// Cholesky factorization met a non-positive-definite matrix.
    NotPositiveDefinite {
        /// Index of the failing diagonal entry.
        index: usize,
    },
    /// Dimensions of operands do not agree.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
    },
    /// The input slice was empty where at least one element is required.
    EmptyInput {
        /// Which routine rejected the input.
        context: &'static str,
    },
    /// An input value was outside the routine's domain (NaN, negative, ...).
    InvalidArgument {
        /// Human-readable description of the violation.
        context: &'static str,
    },
}

impl std::fmt::Display for MathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathError::Singular { pivot } => {
                write!(f, "matrix is singular or near-singular (pivot {pivot:e})")
            }
            MathError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite (diagonal index {index})")
            }
            MathError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            MathError::EmptyInput { context } => write!(f, "empty input: {context}"),
            MathError::InvalidArgument { context } => write!(f, "invalid argument: {context}"),
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errs = [
            MathError::Singular { pivot: 1e-30 },
            MathError::NotPositiveDefinite { index: 2 },
            MathError::DimensionMismatch { context: "a*b" },
            MathError::EmptyInput { context: "mean" },
            MathError::InvalidArgument { context: "negative variance" },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn gravity_is_standard() {
        assert!((GRAVITY - 9.80665).abs() < 1e-12);
    }
}

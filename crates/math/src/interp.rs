//! Linear interpolation and time-series resampling.
//!
//! Sensor streams arrive at different rates (IMU 50 Hz, GPS 1 Hz, CAN
//! 10 Hz); the estimation pipeline resamples them onto a common clock with
//! these routines.

use crate::{MathError, MathResult};

/// Scalar linear interpolation: `a` at `t = 0`, `b` at `t = 1`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Interpolates `ys` sampled at strictly increasing `xs` at query point `x`.
///
/// Values outside the domain are clamped to the boundary samples
/// (constant extrapolation), which is the conservative choice for sensor
/// streams.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for empty inputs,
/// [`MathError::DimensionMismatch`] when `xs` and `ys` lengths differ, and
/// [`MathError::InvalidArgument`] when `xs` is not strictly increasing or
/// `x` is NaN.
pub fn interp1(xs: &[f64], ys: &[f64], x: f64) -> MathResult<f64> {
    validate_series(xs, ys)?;
    if x.is_nan() {
        return Err(MathError::InvalidArgument { context: "query point is NaN" });
    }
    if x <= xs[0] {
        return Ok(ys[0]);
    }
    // lint:allow(hot-index) validate_series rejects empty xs
    if x >= xs[xs.len() - 1] {
        return Ok(ys[ys.len() - 1]); // lint:allow(hot-index) ys.len() == xs.len() >= 1 after validation
    }
    // Binary search for the bracketing interval.
    let idx = match xs.binary_search_by(|v| v.total_cmp(&x)) {
        Ok(i) => return Ok(ys[i]),
        Err(i) => i,
    };
    // lint:allow(hot-index) xs[0] < x < xs[last], so the insertion point satisfies 1 <= idx <= len - 1
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let t = (x - x0) / (x1 - x0);
    Ok(lerp(ys[idx - 1], ys[idx], t)) // lint:allow(hot-index) same idx bounds as x0/x1 above
}

/// Interpolates a series at many query points at once.
///
/// # Errors
///
/// Same as [`interp1`].
pub fn interp_many(xs: &[f64], ys: &[f64], queries: &[f64]) -> MathResult<Vec<f64>> {
    queries.iter().map(|&q| interp1(xs, ys, q)).collect()
}

/// Resamples `(xs, ys)` onto a uniform grid of `n` points spanning
/// `[xs.first(), xs.last()]`.
///
/// # Errors
///
/// Same as [`interp1`], plus [`MathError::InvalidArgument`] when `n < 2`.
pub fn resample_uniform(xs: &[f64], ys: &[f64], n: usize) -> MathResult<(Vec<f64>, Vec<f64>)> {
    validate_series(xs, ys)?;
    if n < 2 {
        return Err(MathError::InvalidArgument { context: "resample needs n >= 2" });
    }
    let x0 = xs[0];
    let x1 = xs[xs.len() - 1]; // lint:allow(hot-index) validate_series rejects empty xs
    let step = (x1 - x0) / (n - 1) as f64;
    let grid: Vec<f64> = (0..n).map(|i| x0 + step * i as f64).collect();
    let vals = interp_many(xs, ys, &grid)?;
    Ok((grid, vals))
}

/// A validated interpolation table: checks the series once at
/// construction, then answers queries with just a binary search.
///
/// [`interp1`] re-validates the whole series on every call — an O(n)
/// scan that dominates when the same series is queried thousands of
/// times (speed lookups at the IMU rate, per-metre road profiles). Use
/// this type for repeated queries; semantics are identical.
///
/// # Example
///
/// ```
/// use gradest_math::interp::Interpolant;
///
/// let f = Interpolant::new(vec![0.0, 1.0, 3.0], vec![0.0, 10.0, 30.0])?;
/// assert_eq!(f.at(2.0), 20.0);
/// assert_eq!(f.at(-1.0), 0.0); // clamped
/// # Ok::<(), gradest_math::MathError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Interpolant {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Interpolant {
    /// Builds a table over `ys` sampled at strictly increasing `xs`.
    ///
    /// # Errors
    ///
    /// Same validation as [`interp1`]: non-empty, equal lengths,
    /// strictly increasing finite abscissae.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> MathResult<Self> {
        validate_series(&xs, &ys)?;
        Ok(Interpolant { xs, ys })
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Always false (construction rejects empty series).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The domain covered by the knots.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], self.xs[self.xs.len() - 1]) // lint:allow(hot-index) construction rejects empty series
    }

    /// Interpolates at `x`, clamping outside the domain. NaN queries
    /// return the first sample (callers needing strictness should use
    /// [`interp1`]).
    pub fn at(&self, x: f64) -> f64 {
        let xs = &self.xs;
        let ys = &self.ys;
        if x.is_nan() || x <= xs[0] {
            return ys[0];
        }
        // lint:allow(hot-index) construction rejects empty series
        if x >= xs[xs.len() - 1] {
            return ys[ys.len() - 1]; // lint:allow(hot-index) ys.len() == xs.len() >= 1 by construction
        }
        let idx = xs.partition_point(|&v| v < x);
        if xs[idx] == x {
            return ys[idx];
        }
        // lint:allow(hot-index) xs[0] < x < xs[last], so 1 <= idx <= len - 1
        let (x0, x1) = (xs[idx - 1], xs[idx]);
        let t = (x - x0) / (x1 - x0);
        lerp(ys[idx - 1], ys[idx], t) // lint:allow(hot-index) same idx bounds as x0/x1 above
    }
}

fn validate_series(xs: &[f64], ys: &[f64]) -> MathResult<()> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput { context: "interpolation abscissae" });
    }
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch { context: "interp xs/ys lengths" });
    }
    for w in xs.windows(2) {
        if w[0].is_nan() || w[1].is_nan() || w[1] <= w[0] {
            return Err(MathError::InvalidArgument {
                context: "abscissae must be strictly increasing and finite",
            });
        }
    }
    if xs.iter().any(|v| !v.is_finite()) {
        return Err(MathError::InvalidArgument { context: "non-finite abscissa" });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }

    #[test]
    fn interp1_midpoints_and_knots() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [0.0, 10.0, 30.0];
        assert_eq!(interp1(&xs, &ys, 0.5).unwrap(), 5.0);
        assert_eq!(interp1(&xs, &ys, 1.0).unwrap(), 10.0);
        assert_eq!(interp1(&xs, &ys, 2.0).unwrap(), 20.0);
    }

    #[test]
    fn interp1_clamps_out_of_range() {
        let xs = [0.0, 1.0];
        let ys = [5.0, 7.0];
        assert_eq!(interp1(&xs, &ys, -1.0).unwrap(), 5.0);
        assert_eq!(interp1(&xs, &ys, 2.0).unwrap(), 7.0);
    }

    #[test]
    fn interp1_single_point() {
        assert_eq!(interp1(&[1.0], &[9.0], 0.0).unwrap(), 9.0);
        assert_eq!(interp1(&[1.0], &[9.0], 5.0).unwrap(), 9.0);
    }

    #[test]
    fn interp1_rejects_bad_input() {
        assert!(interp1(&[], &[], 0.0).is_err());
        assert!(interp1(&[0.0, 1.0], &[0.0], 0.5).is_err());
        assert!(interp1(&[0.0, 0.0], &[1.0, 2.0], 0.0).is_err());
        assert!(interp1(&[1.0, 0.0], &[1.0, 2.0], 0.5).is_err());
        assert!(interp1(&[0.0, 1.0], &[1.0, 2.0], f64::NAN).is_err());
    }

    #[test]
    fn resample_uniform_linear_function_is_exact() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let (grid, vals) = resample_uniform(&xs, &ys, 25).unwrap();
        assert_eq!(grid.len(), 25);
        for (x, y) in grid.iter().zip(&vals) {
            assert!((y - (3.0 * x + 1.0)).abs() < 1e-12);
        }
        assert_eq!(grid[0], 0.0);
        assert_eq!(grid[24], 9.0);
    }

    #[test]
    fn resample_uniform_needs_two_points() {
        assert!(resample_uniform(&[0.0, 1.0], &[0.0, 1.0], 1).is_err());
    }

    #[test]
    fn interp_many_matches_pointwise() {
        let xs = [0.0, 2.0];
        let ys = [0.0, 4.0];
        let out = interp_many(&xs, &ys, &[0.5, 1.0, 1.5]).unwrap();
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }
}

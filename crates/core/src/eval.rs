//! Evaluation helpers: scoring tracks against ground-truth profiles.
//!
//! The paper reports per-measurement **absolute estimation error**
//! (estimate − ground truth at the same position) and the **Mean Relative
//! Error** over a road; these helpers compute both for any track.

use crate::track::GradientTrack;
use gradest_geo::GradientProfile;

/// Absolute errors `|θ̂(s) − θ(s)|` (radians) at every track sample,
/// skipping the first `skip_m` metres (filter burn-in).
pub fn absolute_errors(track: &GradientTrack, truth: &GradientProfile, skip_m: f64) -> Vec<f64> {
    track
        .s
        .iter()
        .zip(&track.theta)
        .filter(|(s, _)| **s >= skip_m)
        .map(|(s, th)| (th - truth.theta_at(*s)).abs())
        .collect()
}

/// Mean Relative Error of a track against truth:
/// `mean(|θ̂ − θ|)/mean(|θ|)` over samples past `skip_m`.
///
/// Returns `None` when the overlap is empty or the truth is identically
/// zero over it.
pub fn track_mre(track: &GradientTrack, truth: &GradientProfile, skip_m: f64) -> Option<f64> {
    let pairs: Vec<(f64, f64)> = track
        .s
        .iter()
        .zip(&track.theta)
        .filter(|(s, _)| **s >= skip_m)
        .map(|(s, th)| (*th, truth.theta_at(*s)))
        .collect();
    if pairs.is_empty() {
        return None;
    }
    let denom = pairs.iter().map(|(_, t)| t.abs()).sum::<f64>() / pairs.len() as f64;
    if denom <= f64::EPSILON {
        return None;
    }
    let mae = pairs.iter().map(|(e, t)| (e - t).abs()).sum::<f64>() / pairs.len() as f64;
    Some(mae / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GradientProfile {
        GradientProfile::new(vec![0.0, 500.0, 1000.0], vec![0.05, 0.05, 0.05]).unwrap()
    }

    fn track_with_error(err: f64) -> GradientTrack {
        let mut t = GradientTrack::new("t");
        for i in 0..100 {
            t.push(i as f64 * 10.0, 0.05 + err, 1e-4);
        }
        t
    }

    #[test]
    fn perfect_track_has_zero_error() {
        let t = track_with_error(0.0);
        let errs = absolute_errors(&t, &truth(), 0.0);
        assert!(errs.iter().all(|e| *e < 1e-12));
        assert_eq!(track_mre(&t, &truth(), 0.0), Some(0.0));
    }

    #[test]
    fn constant_offset_gives_expected_mre() {
        let t = track_with_error(0.005);
        let mre = track_mre(&t, &truth(), 0.0).unwrap();
        assert!((mre - 0.1).abs() < 1e-9, "MRE {mre}");
    }

    #[test]
    fn skip_meters_excludes_burn_in() {
        let mut t = GradientTrack::new("t");
        t.push(10.0, 1.0, 1e-4); // wild burn-in sample
        t.push(200.0, 0.05, 1e-4);
        let errs = absolute_errors(&t, &truth(), 100.0);
        assert_eq!(errs.len(), 1);
        assert!(errs[0] < 1e-12);
    }

    #[test]
    fn empty_overlap_returns_none() {
        let mut t = GradientTrack::new("t");
        t.push(10.0, 0.05, 1e-4);
        assert!(track_mre(&t, &truth(), 1e6).is_none());
    }

    #[test]
    fn zero_truth_returns_none() {
        let flat = GradientProfile::new(vec![0.0, 100.0], vec![0.0, 0.0]).unwrap();
        let t = track_with_error(0.0);
        assert!(track_mre(&t, &flat, 0.0).is_none());
    }
}

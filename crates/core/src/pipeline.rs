//! The end-to-end gradient estimation pipeline (paper Figure 1).
//!
//! [`GradientEstimator::estimate`] consumes one trip's [`SensorLog`] and
//! produces per-source [`GradientTrack`]s plus their Eq-6 fusion:
//!
//! 1. steering profile from the coordinate alignment system (+ LOWESS);
//! 2. lane-change detection (Algorithm 1) and Eq-2 velocity correction;
//! 3. one EKF per velocity source (GPS, speedometer, CAN, accelerometer),
//!    predicting with the measured longitudinal acceleration at IMU rate
//!    and updating with that source's velocity measurements;
//! 4. track fusion by convex combination.

use crate::diagnostics::{FilterHealth, InnovationMonitor, MonitorConfig};
use crate::ekf::{EkfConfig, GradientEkf};
use crate::ekf_lanes::{EkfLanes, MAX_LANES};
use crate::fusion::fuse_tracks_into;
use crate::lane_change::{Bump, LaneChangeConfig, LaneChangeDetection, LaneChangeDetector};
use crate::smoother::{rts_smooth_into, rts_smooth_lanes_into, RtsStep};
use crate::steering::{smooth_profile_into, SmoothedProfile};
use crate::track::GradientTrack;
use gradest_geo::Route;
use gradest_math::lowess::LowessScratch;
use gradest_math::{Mat2, Vec2};
use gradest_obs::{
    Counter, Histogram, NoopRecorder, Recorder, Span, SpanTimer, TraceEvent, TraceHealth,
    TraceSource,
};
use gradest_sensors::alignment::{steering_rate_profile_into, MapMatcher, WRoadScratch};
use gradest_sensors::columnar::ImuColumns;
use gradest_sensors::suite::SensorLog;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A velocity source feeding one EKF track (Section III-C3: "vehicle
/// velocity can be obtained through different ways such as GPS data,
/// speedometer and accelerometer", plus CAN-bus over Bluetooth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VelocitySource {
    /// GPS Doppler speed (1 Hz, outage-prone).
    Gps,
    /// Speedometer app (10 Hz, slight scale bias).
    Speedometer,
    /// CAN-bus wheel speed (20 Hz, quantized).
    CanBus,
    /// Velocity integrated from the accelerometer, drift-corrected toward
    /// GPS with a slow complementary filter.
    Accelerometer,
}

impl VelocitySource {
    /// All four sources, in the paper's order.
    pub const ALL: [VelocitySource; 4] = [
        VelocitySource::Gps,
        VelocitySource::Speedometer,
        VelocitySource::CanBus,
        VelocitySource::Accelerometer,
    ];

    /// Human-readable label used on tracks.
    pub fn label(self) -> &'static str {
        match self {
            VelocitySource::Gps => "gps",
            VelocitySource::Speedometer => "speedometer",
            VelocitySource::CanBus => "can-bus",
            VelocitySource::Accelerometer => "accelerometer",
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// EKF model and tuning.
    pub ekf: EkfConfig,
    /// Lane-change detector thresholds.
    pub lane_change: LaneChangeConfig,
    /// Which velocity sources to run (one EKF track each).
    pub sources: Vec<VelocitySource>,
    /// Arc spacing of the fused output grid, metres.
    pub track_ds: f64,
    /// Measurement variance for GPS speed, (m/s)².
    pub r_gps: f64,
    /// Measurement variance for the speedometer, (m/s)².
    pub r_speedometer: f64,
    /// Measurement variance for CAN wheel speed, (m/s)².
    pub r_can: f64,
    /// Measurement variance for accelerometer-integrated velocity,
    /// (m/s)².
    pub r_accelerometer: f64,
    /// Complementary-filter time constant pulling the integrated
    /// accelerometer velocity toward GPS, seconds.
    pub accel_blend_tau_s: f64,
    /// Disable the Eq-2 lane-change velocity correction (ablation).
    pub disable_lane_correction: bool,
    /// Apply a backward RTS smoothing pass over each track (batch-mode
    /// accuracy; the paper's filter is forward-only — disable for strict
    /// paper fidelity or causal comparisons).
    pub rts_smoothing: bool,
    /// Run the per-source EKF tracks on scoped threads. Only consulted
    /// by the scalar fallback path (see
    /// [`Self::force_scalar_tracks`]): the default fused SoA sweep
    /// advances every lane in one pass and has nothing to fan out. On
    /// the fallback, tracks are independent filters over shared
    /// read-only inputs collected in source order, so the output is
    /// bit-identical to the serial path; ignored when the host reports
    /// a single available core, where the spawns are pure overhead.
    pub parallel_tracks: bool,
    /// Run the per-source scalar [`GradientEkf`] tracks one source at a
    /// time instead of the fused four-lane SoA sweep
    /// ([`crate::ekf_lanes`]). The fused sweep is bit-identical lane
    /// for lane, so this switch exists for A/B validation; configs
    /// with more sources than lanes fall back to it automatically.
    pub force_scalar_tracks: bool,
    /// Disable the uniform-grid LOWESS fast path in steering smoothing
    /// (see [`gradest_math::lowess::LowessConfig::force_generic`]): the
    /// generic path is the bit-exact reference, the fast path agrees
    /// within ~1e-12 and is several times faster on uniform IMU grids.
    pub force_generic_lowess: bool,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            ekf: EkfConfig::default(),
            lane_change: LaneChangeConfig::default(),
            sources: VelocitySource::ALL.to_vec(),
            track_ds: 5.0,
            r_gps: 0.15,
            r_speedometer: 0.04,
            r_can: 0.01,
            r_accelerometer: 1.5,
            accel_blend_tau_s: 3.0,
            disable_lane_correction: false,
            rts_smoothing: true,
            parallel_tracks: true,
            force_scalar_tracks: false,
            force_generic_lowess: false,
        }
    }
}

/// Wall-clock nanoseconds per pipeline stage of the most recent
/// [`GradientEstimator::estimate_into`] call (stored in the scratch).
///
/// The type itself lives in `gradest-obs` (re-exported here for
/// compatibility): it is the same stage split the observability span
/// taxonomy aggregates, and the bench reports embed it as JSON.
pub use gradest_obs::StageNanos;

/// Per-source working set for one EKF track: measurement staging, filter
/// history, the track under construction, and the RTS output buffer.
#[derive(Debug, Clone, Default)]
pub struct TrackScratch {
    measurements: Vec<(f64, f64)>,
    history: Vec<RtsStep>,
    smoothed: Vec<(Vec2, Mat2)>,
    track: GradientTrack,
    // Lazily built on the first *recorded* trip and then reset-and-
    // reused (reset keeps the window's capacity), so the warm recorded
    // path monitors filter consistency without allocating. Never
    // touched by un-recorded runs.
    monitor: Option<InnovationMonitor>,
}

/// Modules the warm [`GradientEstimator::estimate_into`] call graph
/// traverses — the set whose `_into` functions the hot-path benchmark
/// measures at zero allocations.
///
/// `gradest-lint` enforces its no-alloc `_into` rule over exactly this
/// set (its `WARM_ALLOC_GATED_MODULES` is the source of truth); the
/// `pipeline_hotpath` experiment asserts the two lists agree, so a
/// module added to the warm path without lint coverage (or vice versa)
/// fails the smoke gate instead of silently escaping the discipline.
pub const WARM_PATH_MODULES: &[&str] = &[
    "core::pipeline",
    "core::ekf",
    "core::ekf_lanes",
    "core::fusion",
    "core::lane_change",
    "core::steering",
    "core::smoother",
    "core::track",
    "geo::index",
    "math::lowess",
    "math::interp",
    "math::signal",
    "obs::metrics",
    "obs::recorder",
    "obs::timeseries",
    "obs::trace",
    "sensors::alignment",
    "sensors::columnar",
    "serve::protocol",
];

/// Reusable working memory for [`GradientEstimator::estimate_into`].
///
/// Every intermediate of the per-trip pipeline lives here: columnar IMU
/// views, the steering/LOWESS buffers, lane-change staging, per-source
/// track scratch, and the fusion staging. The first trip grows the
/// buffers; every subsequent trip of similar size runs without touching
/// the allocator (the `pipeline_hotpath` experiment asserts exactly
/// zero warm-path allocations).
#[derive(Debug, Clone, Default)]
pub struct EstimatorScratch {
    imu_cols: ImuColumns,
    wroad: WRoadScratch,
    w_raw: Vec<f64>,
    lowess: LowessScratch,
    profile: SmoothedProfile,
    bumps: Vec<Bump>,
    detections: Vec<LaneChangeDetection>,
    alpha: Vec<f64>,
    speed_t: Vec<f64>,
    speed_v: Vec<f64>,
    matched_s: Vec<f64>,
    tracks: Vec<TrackScratch>,
    distances: Vec<f64>,
    stages: StageNanos,
}

impl EstimatorScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        EstimatorScratch::default()
    }

    /// Per-stage wall-clock timings of the most recent estimate run
    /// through this scratch.
    pub fn stages(&self) -> StageNanos {
        self.stages
    }
}

/// Output of one trip's estimation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GradientEstimate {
    /// Per-source tracks, aligned on the fused grid.
    pub tracks: Vec<GradientTrack>,
    /// The Eq-6 fusion of all tracks.
    pub fused: GradientTrack,
    /// Detected lane changes.
    pub detections: Vec<LaneChangeDetection>,
    /// Estimated distance travelled, metres (median across sources).
    pub distance_m: f64,
}

/// The end-to-end estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientEstimator {
    config: EstimatorConfig,
}

impl GradientEstimator {
    /// Creates an estimator.
    pub fn new(config: EstimatorConfig) -> Self {
        GradientEstimator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Runs the full pipeline over one trip.
    ///
    /// `map` is the known road geometry used to derive `w_road` for the
    /// steering profile; pass `None` on unmapped roads (lane-change
    /// detection then relies entirely on the Eq-1 displacement test).
    ///
    /// Allocating convenience over [`Self::estimate_with`] — it builds a
    /// fresh [`EstimatorScratch`] per call. Batch callers should hold one
    /// scratch per worker instead.
    ///
    /// # Panics
    ///
    /// Panics if the log carries fewer than two IMU samples.
    pub fn estimate(&self, log: &SensorLog, map: Option<&Route>) -> GradientEstimate {
        let mut scratch = EstimatorScratch::new();
        self.estimate_with(log, map, &mut scratch)
    }

    /// [`Self::estimate`] with caller-owned working memory: all pipeline
    /// intermediates live in `scratch`, so repeated calls on a warm
    /// scratch allocate only for the returned estimate.
    ///
    /// # Panics
    ///
    /// Panics if the log carries fewer than two IMU samples.
    pub fn estimate_with(
        &self,
        log: &SensorLog,
        map: Option<&Route>,
        scratch: &mut EstimatorScratch,
    ) -> GradientEstimate {
        let mut out = GradientEstimate::default();
        self.estimate_into(log, map, scratch, &mut out);
        out
    }

    /// [`Self::estimate_with`] reporting to an observability
    /// [`Recorder`]: stage and per-track spans, EKF innovation and
    /// fusion-weight statistics, lane-change decision counters.
    ///
    /// # Panics
    ///
    /// Panics if the log carries fewer than two IMU samples.
    pub fn estimate_with_recorded<R: Recorder>(
        &self,
        log: &SensorLog,
        map: Option<&Route>,
        scratch: &mut EstimatorScratch,
        rec: &R,
    ) -> GradientEstimate {
        let mut out = GradientEstimate::default();
        self.estimate_into_recorded(log, map, scratch, &mut out, rec);
        out
    }

    /// The fully in-place pipeline: reads `log`, stages everything in
    /// `scratch`, overwrites `out`. With both warm (from a previous trip
    /// of similar size) the entire call runs without heap allocation —
    /// the property the `pipeline_hotpath` experiment gates on.
    ///
    /// Instantiates [`Self::estimate_into_recorded`] with the
    /// [`NoopRecorder`], whose monomorphized instrumentation compiles
    /// to nothing — same machine code as the pre-observability
    /// pipeline, bit-identical output.
    ///
    /// # Panics
    ///
    /// Panics if the log carries fewer than two IMU samples.
    pub fn estimate_into(
        &self,
        log: &SensorLog,
        map: Option<&Route>,
        scratch: &mut EstimatorScratch,
        out: &mut GradientEstimate,
    ) {
        self.estimate_into_recorded(log, map, scratch, out, &NoopRecorder);
    }

    /// [`Self::estimate_into`] reporting to an observability
    /// [`Recorder`]. All instrumentation-only work (extra clock reads,
    /// derived statistics) sits behind `rec.enabled()`, and the
    /// recording sinks themselves are allocation-free, so the warm-path
    /// zero-allocation invariant holds for the no-op recorder *and* for
    /// `gradest_obs::RunRecorder` — `pipeline_hotpath_smoke` gates both.
    ///
    /// # Panics
    ///
    /// Panics if the log carries fewer than two IMU samples.
    pub fn estimate_into_recorded<R: Recorder>(
        &self,
        log: &SensorLog,
        map: Option<&Route>,
        scratch: &mut EstimatorScratch,
        out: &mut GradientEstimate,
        rec: &R,
    ) {
        assert!(log.imu.len() >= 2, "need at least two IMU samples");
        if rec.enabled() {
            rec.event(TraceEvent::TripStart);
            record_gps_gaps(rec, log);
        }
        let cfg = &self.config;
        let dt = log.imu_dt();
        // Split the scratch into disjoint borrows so stage outputs can be
        // read while later stages fill their own buffers.
        let EstimatorScratch {
            imu_cols,
            wroad,
            w_raw,
            lowess,
            profile,
            bumps,
            detections,
            alpha,
            speed_t,
            speed_v,
            matched_s,
            tracks: track_scratch,
            distances,
            stages,
        } = scratch;
        let t0 = Instant::now();

        // 1. Steering profile, columnar: transpose the IMU once, then
        //    every pass reads contiguous slices.
        imu_cols.fill_from(&log.imu);
        steering_rate_profile_into(&imu_cols.t, &imu_cols.gyro_z, &log.gps, map, wroad, w_raw);
        smooth_profile_into(
            &imu_cols.t,
            w_raw,
            cfg.lane_change.smoothing_window_s,
            cfg.force_generic_lowess,
            lowess,
            profile,
        );
        let t1 = Instant::now();

        // 2. Lane-change detection; Eq 1 uses the speedometer (fallback:
        //    GPS, then a constant urban speed).
        fill_speed_series(log, speed_t, speed_v);
        let v_lookup = SpeedLookup::new(speed_t, speed_v);
        let detector = LaneChangeDetector::new(cfg.lane_change);
        let lc_stats =
            detector.detect_into_recorded(profile, &|t| v_lookup.at(t), bumps, detections, rec);
        if rec.enabled() {
            rec.incr(Counter::LaneChangesDetected, lc_stats.detected);
            rec.incr(Counter::LaneChangesRejected, lc_stats.scurve_rejected);
            for det in detections.iter() {
                rec.observe(Histogram::LaneChangeDisplacement, det.displacement_m.abs());
            }
        }
        // Steering angle α(t) within detection windows (zero elsewhere),
        // for the Eq-2 correction of arbitrary-time measurements.
        steering_angle_series_into(profile, detections, alpha);
        let t2 = Instant::now();

        // 3. One EKF per source. The tracks are independent filters over
        //    shared read-only inputs writing disjoint scratch slots, so
        //    they fan out onto scoped threads when configured; slot order
        //    is source order, keeping the result bit-identical to the
        //    serial path.
        let n_src = cfg.sources.len();
        if track_scratch.len() < n_src {
            track_scratch.resize_with(n_src, TrackScratch::default);
        }
        // Map-match the GPS fixes once for the whole trip: `match_s` is a
        // function of the fix positions and the matcher's own sequential
        // state only, so every source track would recompute the identical
        // arc sequence (~40 route probes per fix each). Invalid fixes hold
        // a NaN placeholder to keep indices aligned; they are skipped
        // before use, exactly as the per-source matchers skipped them.
        matched_s.clear();
        if let Some(route) = map {
            matched_s.reserve(log.gps.len());
            let mut matcher = MapMatcher::new(route);
            for fix in &log.gps {
                matched_s.push(if fix.valid { matcher.match_s(fix.position) } else { f64::NAN });
            }
        }
        let matched_s: &[f64] = matched_s;
        // The fused SoA sweep ([`crate::ekf_lanes`]) advances every source
        // in one pass over the columnar IMU — one transcendental set per
        // sample instead of one per sample per source. Per lane it runs
        // the exact scalar operation sequence, so the estimate is
        // bit-identical to the per-source path below, which remains as an
        // A/B switch and as the fallback for configs with more sources
        // than lanes.
        if !cfg.force_scalar_tracks && (1..=MAX_LANES).contains(&n_src) {
            self.run_ekf_lanes_into(
                log,
                imu_cols,
                profile,
                alpha,
                dt,
                matched_s,
                &mut track_scratch[..n_src],
                rec,
            );
        } else {
            let run_source = |source: VelocitySource, ts: &mut TrackScratch| {
                let r = match source {
                    VelocitySource::Gps => cfg.r_gps,
                    VelocitySource::Speedometer => cfg.r_speedometer,
                    VelocitySource::CanBus => cfg.r_can,
                    VelocitySource::Accelerometer => cfg.r_accelerometer,
                };
                let timer = SpanTimer::start(rec);
                self.measurement_series_into(log, source, &mut ts.measurements);
                self.run_ekf_track_into(log, r, source, profile, alpha, dt, matched_s, ts, rec);
                timer.finish(rec, track_span(source));
            };
            // `available_parallelism` is only consulted when the parallel
            // path is plausible at all — it can allocate on some
            // platforms, and the serial warm path must stay
            // allocation-free.
            let parallel = cfg.parallel_tracks
                && n_src > 1
                && std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) > 1;
            if parallel {
                std::thread::scope(|scope| {
                    for (ts, &source) in track_scratch[..n_src].iter_mut().zip(&cfg.sources) {
                        let run = &run_source;
                        scope.spawn(move || run(source, ts));
                    }
                });
            } else {
                for (ts, &source) in track_scratch[..n_src].iter_mut().zip(&cfg.sources) {
                    run_source(source, ts);
                }
            }
        }
        let t3 = Instant::now();

        // 4. Fuse on a common grid.
        distances.clear();
        distances.extend(track_scratch[..n_src].iter().filter_map(|ts| ts.track.s.last().copied()));
        // Insertion sort: at most one distance per source, and
        // `slice::sort_by` allocates its merge buffer.
        for i in 1..distances.len() {
            let mut j = i;
            // lint:allow(hot-index) j > 0 on the left of && bounds j - 1
            while j > 0 && distances[j - 1] > distances[j] {
                distances.swap(j - 1, j);
                j -= 1;
            }
        }
        let length = distances.first().copied().unwrap_or(0.0);
        let n_aligned = track_scratch[..n_src].iter().filter(|ts| !ts.track.is_empty()).count();
        out.tracks.resize_with(n_aligned, GradientTrack::default);
        let mut slot = 0usize;
        for ts in track_scratch[..n_src].iter() {
            if ts.track.is_empty() {
                continue;
            }
            ts.track.resample_into(length, cfg.track_ds, &mut out.tracks[slot]);
            slot += 1;
        }
        if fuse_tracks_into(&out.tracks, &mut out.fused).is_err() {
            out.fused.label.clear();
            out.fused.label.push_str("fused");
            out.fused.s.clear();
            out.fused.theta.clear();
            out.fused.variance.clear();
        }
        out.detections.clear();
        out.detections.extend_from_slice(detections);
        // lint:allow(hot-index) len / 2 < len on the nonempty branch
        out.distance_m = if distances.is_empty() { 0.0 } else { distances[distances.len() / 2] };
        let t4 = Instant::now();
        *stages = StageNanos {
            steering: (t1 - t0).as_nanos() as u64,
            detection: (t2 - t1).as_nanos() as u64,
            tracks: (t3 - t2).as_nanos() as u64,
            fusion: (t4 - t3).as_nanos() as u64,
        };
        if rec.enabled() {
            // Stage spans reuse the timestamps taken for `stages` — the
            // enabled path adds no clock reads here.
            rec.record_span(Span::Steering, stages.steering);
            rec.record_span(Span::Detection, stages.detection);
            rec.record_span(Span::Tracks, stages.tracks);
            rec.record_span(Span::Fusion, stages.fusion);
            rec.record_span(Span::Trip, stages.total());
            rec.incr(Counter::TripsProcessed, 1);
            record_fusion_weights(rec, &out.tracks, &out.fused);
            rec.event(TraceEvent::TripEnd { detections: out.detections.len() as u32 });
        }
    }

    /// Builds the `(t, v)` measurement series for one source into a
    /// caller-owned buffer (overwritten).
    fn measurement_series_into(
        &self,
        log: &SensorLog,
        source: VelocitySource,
        out: &mut Vec<(f64, f64)>,
    ) {
        out.clear();
        match source {
            VelocitySource::Gps => {
                out.extend(log.gps.iter().filter(|g| g.valid).map(|g| (g.t, g.speed_mps)));
            }
            VelocitySource::Speedometer => {
                out.extend(log.speedometer.iter().map(|s| (s.t, s.speed_mps)));
            }
            VelocitySource::CanBus => out.extend(log.can.iter().map(|s| (s.t, s.speed_mps))),
            VelocitySource::Accelerometer => self.integrate_accel_velocity_into(log, out),
        }
    }

    /// Velocity from the accelerometer: raw integration of the
    /// longitudinal specific force, drift-corrected toward the latest GPS
    /// speed with time constant `accel_blend_tau_s`. Emitted at 10 Hz into
    /// a caller-owned buffer (already cleared by the caller).
    fn integrate_accel_velocity_into(&self, log: &SensorLog, out: &mut Vec<(f64, f64)>) {
        let tau = self.config.accel_blend_tau_s.max(1.0);
        let mut gps_iter = log.gps.iter().filter(|g| g.valid).peekable();
        let mut latest_gps: Option<f64> = None;
        let mut v = log.gps.iter().find(|g| g.valid).map(|g| g.speed_mps).unwrap_or(10.0);
        let mut last_t = log.imu.first().map(|s| s.t).unwrap_or(0.0);
        let mut next_emit = last_t;
        for imu in &log.imu {
            let dt = (imu.t - last_t).max(0.0);
            last_t = imu.t;
            while let Some(g) = gps_iter.peek() {
                if g.t <= imu.t {
                    latest_gps = Some(g.speed_mps);
                    gps_iter.next();
                } else {
                    break;
                }
            }
            // Integrate the specific force (contains the g·sinθ leak —
            // that is exactly why this is the worst source) and bleed
            // toward GPS.
            v += imu.accel_long * dt;
            if let Some(g) = latest_gps {
                v += (g - v) * (dt / tau);
            }
            v = v.max(0.0);
            if imu.t >= next_emit {
                out.push((imu.t, v));
                next_emit += 0.1;
            }
        }
    }

    /// Runs one EKF over the trip for one measurement stream, producing an
    /// arc-indexed track in `ts.track` (reading `ts.measurements`, staging
    /// the filter history in `ts.history`/`ts.smoothed`).
    ///
    /// Arc positioning integrates the EKF velocity (odometry) and, when
    /// map-matched GPS arc positions are available (`matched_s`, one entry
    /// per GPS fix, NaN on invalid fixes, empty without a map), anchors the
    /// odometer to them — the phone records a position with every
    /// estimate, so pure dead-reckoning drift (≈1 % of distance from the
    /// speedometer's scale error) would be an artificial handicap.
    #[allow(clippy::too_many_arguments)]
    fn run_ekf_track_into<R: Recorder>(
        &self,
        log: &SensorLog,
        r: f64,
        source: VelocitySource,
        profile: &SmoothedProfile,
        alpha: &[f64],
        dt: f64,
        matched_s: &[f64],
        ts: &mut TrackScratch,
        rec: &R,
    ) {
        let TrackScratch { measurements, history, smoothed, track, monitor } = ts;
        let measurements: &[(f64, f64)] = measurements;
        let v0 = measurements.first().map(|m| m.1).unwrap_or(10.0);
        let mut ekf = GradientEkf::new(self.config.ekf, v0);
        let mut updates = 0u64;
        // NIS consistency monitoring only runs when a recorder listens;
        // the monitor is built once (first recorded trip) and reset
        // thereafter, so warm recorded trips stay allocation-free.
        let mut mon = if rec.enabled() {
            let mon =
                monitor.get_or_insert_with(|| InnovationMonitor::new(MonitorConfig::default()));
            mon.reset();
            Some(mon)
        } else {
            None
        };
        track.label.clear();
        track.label.push_str(source.label());
        track.s.clear();
        track.theta.clear();
        track.variance.clear();
        history.clear();
        let mut s = 0.0;
        let mut m_idx = 0usize;
        let mut gps_idx = 0usize;
        // Measurement times are non-decreasing, so the α lookup advances a
        // cursor instead of re-running `partition_point` per measurement;
        // the cursor lands on the same index the binary search would.
        let mut a_idx = 0usize;
        for imu in &log.imu {
            let f = ekf.predict_returning_jacobian(imu.accel_long, dt);
            let x_pred = gradest_math::Vec2::new(ekf.velocity(), ekf.theta());
            let p_pred = ekf.covariance();
            while m_idx < measurements.len() && measurements[m_idx].0 <= imu.t {
                let (mt, mv) = measurements[m_idx];
                // Eq 2: longitudinal velocity during detected lane changes.
                let corrected = if self.config.disable_lane_correction {
                    mv
                } else {
                    // α is exactly 0.0 outside detection windows, and
                    // `mv * cos(0) == mv` bit-for-bit — skip the cosine.
                    let a = alpha_at_cursor(profile, alpha, mt, &mut a_idx);
                    if a == 0.0 {
                        mv
                    } else {
                        mv * a.cos()
                    }
                };
                if rec.enabled() {
                    // Innovation as the update will see it: measurement
                    // minus the predicted velocity state.
                    let innovation = corrected - ekf.velocity();
                    rec.observe(Histogram::EkfInnovation, innovation);
                    if let Some(mon) = mon.as_deref_mut() {
                        let before = mon.health();
                        mon.record(innovation, ekf.innovation_variance(r));
                        let after = mon.health();
                        if after != before {
                            record_health_transition(rec, source, before, after);
                        }
                    }
                }
                ekf.update(corrected, r);
                updates += 1;
                m_idx += 1;
            }
            s += ekf.velocity() * dt;
            // Anchor the odometer to the pre-matched GPS arc positions.
            while gps_idx < log.gps.len() && log.gps[gps_idx].t <= imu.t {
                let valid = log.gps[gps_idx].valid;
                let fix_idx = gps_idx;
                gps_idx += 1;
                if !valid {
                    continue;
                }
                if let Some(&s_gps) = matched_s.get(fix_idx) {
                    s += 0.35 * (s_gps - s);
                }
            }
            // Track arc positions must not regress.
            if let Some(&last) = track.s.last() {
                s = s.max(last);
            }
            track.push(s, ekf.theta(), ekf.theta_variance().max(1e-12));
            if self.config.rts_smoothing {
                history.push(RtsStep {
                    x_pred,
                    p_pred,
                    x_filt: gradest_math::Vec2::new(ekf.velocity(), ekf.theta()),
                    p_filt: ekf.covariance(),
                    f,
                });
            }
        }
        if self.config.rts_smoothing {
            rts_smooth_into(history, smoothed);
            for (i, (x, p)) in smoothed.iter().enumerate() {
                track.theta[i] = x.y;
                track.variance[i] = p.m[1][1].max(1e-12);
            }
        }
        if rec.enabled() {
            rec.incr(Counter::EkfPredicts, log.imu.len() as u64);
            rec.incr(update_counter(source), updates);
            if let Some(mon) = mon {
                if updates > 0 {
                    rec.observe(Histogram::EkfMeanNis, mon.mean_nis());
                }
                let verdict = mon.health();
                rec.incr(track_health_counter(verdict), 1);
                if verdict == FilterHealth::Diverged {
                    rec.event(TraceEvent::TrackDiverged { source: trace_source(source) });
                }
            }
        }
    }

    /// Fused SoA track stage: runs up to [`MAX_LANES`] source tracks
    /// through one [`EkfLanes`] filter in a single pass over the columnar
    /// IMU, then smooths all lanes with one interleaved backward RTS
    /// recursion. Per lane this executes [`Self::run_ekf_track_into`]'s
    /// exact operation sequence (same predict/update arithmetic, same
    /// cursor advances, same anchor order), so each lane's track is
    /// bit-identical to the scalar path — asserted by
    /// `fused_lanes_bit_identical_to_scalar_tracks`.
    ///
    /// The shared sweep halves the dominating per-sample cost: the
    /// `sin`/`cos` pair and the GPS cursor advance are computed once per
    /// sample instead of once per sample per source, and the covariance
    /// propagation vectorizes across lanes (SSE2 under the `simd`
    /// feature, unrolled scalar otherwise).
    ///
    /// Per-source spans (`track:gps`, …) cover only the staging work here
    /// (measurement series + buffer resets); the shared sweep and RTS
    /// pass are attributed to the `tracks` stage span. DESIGN.md §11
    /// records this semantics change.
    #[allow(clippy::too_many_arguments)]
    fn run_ekf_lanes_into<R: Recorder>(
        &self,
        log: &SensorLog,
        imu_cols: &ImuColumns,
        profile: &SmoothedProfile,
        alpha: &[f64],
        dt: f64,
        matched_s: &[f64],
        lanes: &mut [TrackScratch],
        rec: &R,
    ) {
        let cfg = &self.config;
        let n_src = lanes.len();
        debug_assert!((1..=MAX_LANES).contains(&n_src));
        let n_imu = imu_cols.len();
        // Per-lane staging: measurement series, buffer resets, monitor
        // reset, and the R / initial-velocity capture the sweep reads.
        let mut srcs = [VelocitySource::Gps; MAX_LANES];
        let mut rs = [1.0f64; MAX_LANES];
        let mut v0 = [10.0f64; MAX_LANES];
        for (l, (ts, &source)) in lanes.iter_mut().zip(&cfg.sources).enumerate() {
            let timer = SpanTimer::start(rec);
            self.measurement_series_into(log, source, &mut ts.measurements);
            srcs[l] = source;
            rs[l] = match source {
                VelocitySource::Gps => cfg.r_gps,
                VelocitySource::Speedometer => cfg.r_speedometer,
                VelocitySource::CanBus => cfg.r_can,
                VelocitySource::Accelerometer => cfg.r_accelerometer,
            };
            v0[l] = ts.measurements.first().map(|m| m.1).unwrap_or(10.0);
            if rec.enabled() {
                let mon = ts
                    .monitor
                    .get_or_insert_with(|| InnovationMonitor::new(MonitorConfig::default()));
                mon.reset();
            }
            ts.track.label.clear();
            ts.track.label.push_str(source.label());
            ts.track.s.clear();
            ts.track.theta.clear();
            ts.track.variance.clear();
            ts.history.clear();
            timer.finish(rec, track_span(source));
        }
        let mut ekf = EkfLanes::new(cfg.ekf, v0);
        let rts = cfg.rts_smoothing;
        let mut s_arc = [0.0f64; MAX_LANES];
        let mut m_idx = [0usize; MAX_LANES];
        // Measurement times are non-decreasing, so the α lookup advances
        // a per-lane cursor exactly as the scalar path does.
        let mut a_idx = [0usize; MAX_LANES];
        let mut updates = [0u64; MAX_LANES];
        let mut gps_idx = 0usize;
        for i in 0..n_imu {
            let ti = imu_cols.t[i];
            // One shared predict advances every lane (inactive lanes ride
            // along; their state is never read).
            ekf.predict(imu_cols.accel_long[i], dt);
            // GPS fixes crossing this sample anchor every lane, so the
            // cursor advances once and the lanes replay the range.
            let gps_lo = gps_idx;
            while gps_idx < log.gps.len() && log.gps[gps_idx].t <= ti {
                gps_idx += 1;
            }
            for (l, ts) in lanes.iter_mut().enumerate() {
                let x_pred = ekf.state(l);
                let p_pred = ekf.covariance(l);
                let f = ekf.jacobian(l);
                let measurements: &[(f64, f64)] = &ts.measurements;
                let mut mi = m_idx[l];
                let mut ai = a_idx[l];
                while mi < measurements.len() && measurements[mi].0 <= ti {
                    let (mt, mv) = measurements[mi];
                    // Eq 2: longitudinal velocity during lane changes;
                    // α is exactly 0.0 outside detection windows, and
                    // `mv * cos(0) == mv` bit-for-bit — skip the cosine.
                    let corrected = if cfg.disable_lane_correction {
                        mv
                    } else {
                        let a = alpha_at_cursor(profile, alpha, mt, &mut ai);
                        if a == 0.0 {
                            mv
                        } else {
                            mv * a.cos()
                        }
                    };
                    if rec.enabled() {
                        let innovation = corrected - ekf.velocity(l);
                        rec.observe(Histogram::EkfInnovation, innovation);
                        if let Some(mon) = ts.monitor.as_mut() {
                            let before = mon.health();
                            mon.record(innovation, ekf.innovation_variance(l, rs[l]));
                            let after = mon.health();
                            if after != before {
                                record_health_transition(rec, srcs[l], before, after);
                            }
                        }
                    }
                    ekf.update(l, corrected, rs[l]);
                    updates[l] += 1;
                    mi += 1;
                }
                m_idx[l] = mi;
                a_idx[l] = ai;
                let mut s = s_arc[l] + ekf.velocity(l) * dt;
                for fix_idx in gps_lo..gps_idx {
                    if !log.gps[fix_idx].valid {
                        continue;
                    }
                    if let Some(&s_gps) = matched_s.get(fix_idx) {
                        s += 0.35 * (s_gps - s);
                    }
                }
                // Track arc positions must not regress.
                if let Some(&last) = ts.track.s.last() {
                    s = s.max(last);
                }
                s_arc[l] = s;
                ts.track.push(s, ekf.theta(l), ekf.theta_variance(l).max(1e-12));
                if rts {
                    ts.history.push(RtsStep {
                        x_pred,
                        p_pred,
                        x_filt: gradest_math::Vec2::new(ekf.velocity(l), ekf.theta(l)),
                        p_filt: ekf.covariance(l),
                        f,
                    });
                }
            }
        }
        if rts {
            // Full lane complement: one interleaved backward pass;
            // otherwise fall back to sequential per-lane passes.
            if let [a, b, c, d] = lanes {
                rts_smooth_lanes_into(
                    [&a.history, &b.history, &c.history, &d.history],
                    [&mut a.smoothed, &mut b.smoothed, &mut c.smoothed, &mut d.smoothed],
                );
            } else {
                for ts in lanes.iter_mut() {
                    rts_smooth_into(&ts.history, &mut ts.smoothed);
                }
            }
            for ts in lanes.iter_mut() {
                for (i, (x, p)) in ts.smoothed.iter().enumerate() {
                    ts.track.theta[i] = x.y;
                    ts.track.variance[i] = p.m[1][1].max(1e-12);
                }
            }
        }
        if rec.enabled() {
            for (l, ts) in lanes.iter().enumerate() {
                rec.incr(Counter::EkfPredicts, n_imu as u64);
                rec.incr(update_counter(srcs[l]), updates[l]);
                if let Some(mon) = ts.monitor.as_ref() {
                    if updates[l] > 0 {
                        rec.observe(Histogram::EkfMeanNis, mon.mean_nis());
                    }
                    let verdict = mon.health();
                    rec.incr(track_health_counter(verdict), 1);
                    if verdict == FilterHealth::Diverged {
                        rec.event(TraceEvent::TrackDiverged { source: trace_source(srcs[l]) });
                    }
                }
            }
        }
    }
}

/// The per-track span of a velocity source.
fn track_span(source: VelocitySource) -> Span {
    match source {
        VelocitySource::Gps => Span::TrackGps,
        VelocitySource::Speedometer => Span::TrackSpeedometer,
        VelocitySource::CanBus => Span::TrackCanBus,
        VelocitySource::Accelerometer => Span::TrackAccelerometer,
    }
}

/// The EKF-update counter of a velocity source.
fn update_counter(source: VelocitySource) -> Counter {
    match source {
        VelocitySource::Gps => Counter::EkfUpdatesGps,
        VelocitySource::Speedometer => Counter::EkfUpdatesSpeedometer,
        VelocitySource::CanBus => Counter::EkfUpdatesCanBus,
        VelocitySource::Accelerometer => Counter::EkfUpdatesAccelerometer,
    }
}

/// The trace-event identity of a velocity source.
fn trace_source(source: VelocitySource) -> TraceSource {
    match source {
        VelocitySource::Gps => TraceSource::Gps,
        VelocitySource::Speedometer => TraceSource::Speedometer,
        VelocitySource::CanBus => TraceSource::CanBus,
        VelocitySource::Accelerometer => TraceSource::Accelerometer,
    }
}

/// The trace-event spelling of a filter-health verdict.
fn trace_health(health: FilterHealth) -> TraceHealth {
    match health {
        FilterHealth::Healthy => TraceHealth::Healthy,
        FilterHealth::Inconsistent => TraceHealth::Inconsistent,
        FilterHealth::Diverged => TraceHealth::Diverged,
    }
}

/// The end-of-track verdict counter of a filter-health state.
fn track_health_counter(health: FilterHealth) -> Counter {
    match health {
        FilterHealth::Healthy => Counter::TracksHealthy,
        FilterHealth::Inconsistent => Counter::TracksDegraded,
        FilterHealth::Diverged => Counter::TracksDiverged,
    }
}

/// Counts an in-flight health transition and emits the typed event.
/// Recovery is a transition *to* Healthy; anything else degrades.
fn record_health_transition<R: Recorder>(
    rec: &R,
    source: VelocitySource,
    from: FilterHealth,
    to: FilterHealth,
) {
    let counter = if to == FilterHealth::Healthy {
        Counter::EkfHealthRecovered
    } else {
        Counter::EkfHealthDegraded
    };
    rec.incr(counter, 1);
    rec.event(TraceEvent::EkfHealth {
        source: trace_source(source),
        from: trace_health(from),
        to: trace_health(to),
    });
}

/// A GPS outage long enough to matter: the nominal fix cadence is 1 Hz,
/// so anything past a couple of missed fixes is a real dropout rather
/// than jitter.
const GPS_GAP_THRESHOLD_S: f64 = 2.5;

/// Scans the valid GPS fixes for dropouts longer than
/// [`GPS_GAP_THRESHOLD_S`], counting each and emitting a typed event.
fn record_gps_gaps<R: Recorder>(rec: &R, log: &SensorLog) {
    let mut prev_t: Option<f64> = None;
    for fix in log.gps.iter().filter(|g| g.valid) {
        if let Some(prev) = prev_t {
            let gap = fix.t - prev;
            if gap > GPS_GAP_THRESHOLD_S {
                rec.incr(Counter::GpsGaps, 1);
                rec.observe(Histogram::GpsGapSeconds, gap);
                rec.event(TraceEvent::GpsGap { t_start_s: prev, duration_s: gap });
            }
        }
        prev_t = Some(fix.t);
    }
}

/// The fusion-weight histogram of a source track, by label.
fn fusion_weight_hist(label: &str) -> Option<Histogram> {
    match label {
        "gps" => Some(Histogram::FusionWeightGps),
        "speedometer" => Some(Histogram::FusionWeightSpeedometer),
        "can-bus" => Some(Histogram::FusionWeightCanBus),
        "accelerometer" => Some(Histogram::FusionWeightAccelerometer),
        _ => None,
    }
}

/// Observes each source track's mean Eq-6 fusion weight: at grid point
/// `i` the convex-combination weight of track `k` is
/// `(1/P_k[i]) / Σ_j (1/P_j[i])`, and the fused variance is the
/// reciprocal of that sum, so the weight equals
/// `fused.variance[i] / track.variance[i]`.
fn record_fusion_weights<R: Recorder>(rec: &R, tracks: &[GradientTrack], fused: &GradientTrack) {
    // Snapshot slots follow `TraceSource::ALL` order; absent sources
    // stay at 0.0 so the event shape is fixed.
    let mut weights = [0.0f64; 4];
    let mut any = false;
    for track in tracks {
        let Some(hist) = fusion_weight_hist(&track.label) else {
            continue;
        };
        let mut sum = 0.0;
        let mut n = 0u64;
        for (tv, fv) in track.variance.iter().zip(&fused.variance) {
            if *tv > 0.0 {
                sum += fv / tv;
                n += 1;
            }
        }
        if n > 0 {
            let mean = sum / n as f64;
            rec.observe(hist, mean);
            let slot = match hist {
                Histogram::FusionWeightGps => 0usize,
                Histogram::FusionWeightSpeedometer => 1,
                Histogram::FusionWeightCanBus => 2,
                _ => 3,
            };
            if let Some(w) = weights.get_mut(slot) {
                *w = mean;
            }
            any = true;
        }
    }
    if any {
        rec.event(TraceEvent::FusionWeights { weights });
    }
}

/// Stages the best available speed stream into `(ts, vs)` columns:
/// speedometer when present, else valid GPS fixes.
fn fill_speed_series(log: &SensorLog, ts: &mut Vec<f64>, vs: &mut Vec<f64>) {
    ts.clear();
    vs.clear();
    if !log.speedometer.is_empty() {
        for s in &log.speedometer {
            ts.push(s.t);
            vs.push(s.speed_mps);
        }
    } else {
        for g in log.gps.iter().filter(|g| g.valid) {
            ts.push(g.t);
            vs.push(g.speed_mps);
        }
    }
}

/// A `v(t)` lookup borrowing staged speed columns: the same clamped
/// linear interpolation as [`gradest_math::interp::Interpolant::at`]
/// (validated per query degradation: fewer than two knots, or a
/// non-increasing/non-finite series, falls back to a constant urban
/// 10 m/s — the behaviour the boxed-`Interpolant` lookup it replaces had
/// at construction time), with no owned buffers so the per-trip hot path
/// allocates nothing.
struct SpeedLookup<'a> {
    ts: &'a [f64],
    vs: &'a [f64],
    valid: bool,
}

impl<'a> SpeedLookup<'a> {
    fn new(ts: &'a [f64], vs: &'a [f64]) -> Self {
        // Mirror `Interpolant::new` validation once at construction.
        let valid = ts.len() >= 2
            && ts.windows(2).all(|w| !w[0].is_nan() && !w[1].is_nan() && w[1] > w[0])
            && ts.iter().all(|v| v.is_finite());
        SpeedLookup { ts, vs, valid }
    }

    fn at(&self, x: f64) -> f64 {
        if !self.valid {
            return 10.0;
        }
        let (ts, vs) = (self.ts, self.vs);
        if x.is_nan() || x <= ts[0] {
            return vs[0];
        }
        // lint:allow(hot-index) self.valid guarantees nonempty series
        if x >= ts[ts.len() - 1] {
            return vs[vs.len() - 1]; // lint:allow(hot-index) vs.len() == ts.len() >= 1 when valid
        }
        let idx = ts.partition_point(|&v| v < x);
        if ts[idx] == x {
            return vs[idx];
        }
        // lint:allow(hot-index) ts[0] < x < ts[last] here, so 1 <= idx <= len - 1
        let (x0, x1) = (ts[idx - 1], ts[idx]);
        let u = (x - x0) / (x1 - x0);
        vs[idx - 1] + (vs[idx] - vs[idx - 1]) * u // lint:allow(hot-index) same idx bounds as x0/x1 above
    }
}

/// Steering angle α(t) aligned with the profile: accumulated `w·Ω` inside
/// each detection window, zero elsewhere (the Eq-2 integrand). Overwrites
/// the caller-owned `alpha` buffer.
fn steering_angle_series_into(
    profile: &SmoothedProfile,
    detections: &[LaneChangeDetection],
    alpha: &mut Vec<f64>,
) {
    alpha.clear();
    alpha.resize(profile.len(), 0.0);
    if profile.len() < 2 {
        return;
    }
    let dt = profile.dt();
    for det in detections {
        let mut acc = 0.0;
        for (a, (&t, &w)) in alpha.iter_mut().zip(profile.t.iter().zip(&profile.w)) {
            if t < det.t_start || t > det.t_end {
                continue;
            }
            acc += w * dt;
            *a = acc;
        }
    }
}

/// Nearest-sample α lookup at measurement time `t` — the binary-search
/// reference that [`alpha_at_cursor`] is pinned against in tests.
#[cfg(test)]
fn alpha_at(profile: &SmoothedProfile, alpha: &[f64], t: f64) -> f64 {
    if profile.is_empty() {
        return 0.0;
    }
    let idx = profile.t.partition_point(|&pt| pt < t);
    let idx = idx.min(alpha.len() - 1);
    alpha[idx]
}

/// [`alpha_at`] for non-decreasing query times: `cursor` carries the scan
/// position across calls and lands on the exact index the binary search
/// would return (the first profile time ≥ `t`).
fn alpha_at_cursor(profile: &SmoothedProfile, alpha: &[f64], t: f64, cursor: &mut usize) -> f64 {
    if profile.is_empty() {
        return 0.0;
    }
    // lint:allow(hot-index) deref, not arithmetic; bounded by the && left operand
    while *cursor < profile.t.len() && profile.t[*cursor] < t {
        *cursor += 1;
    }
    alpha[(*cursor).min(alpha.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradest_geo::generate::{red_road, straight_road, two_lane_straight};
    use gradest_geo::Route;
    use gradest_sensors::suite::{SensorConfig, SensorSuite};
    use gradest_sim::driver::DriverProfile;
    use gradest_sim::trip::{simulate_trip, TripConfig};

    fn run(route: &Route, trip_seed: u64, sensor_seed: u64, lc_rate: f64) -> GradientEstimate {
        let cfg = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: lc_rate, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(route, &cfg, trip_seed);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, sensor_seed);
        GradientEstimator::new(EstimatorConfig::default()).estimate(&log, Some(route))
    }

    #[test]
    fn parallel_tracks_bit_identical_to_serial() {
        let route = Route::new(vec![straight_road(800.0, 2.0)]).unwrap();
        let traj = simulate_trip(&route, &TripConfig::default(), 5);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 5);
        let serial = GradientEstimator::new(EstimatorConfig {
            parallel_tracks: false,
            ..Default::default()
        })
        .estimate(&log, Some(&route));
        let parallel =
            GradientEstimator::new(EstimatorConfig::default()).estimate(&log, Some(&route));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fused_lanes_bit_identical_to_scalar_tracks() {
        // The fused SoA sweep must reproduce the per-source scalar path
        // bit for bit: with a map and lane changes, without a map, and
        // with a subset of sources (partial lane occupancy).
        let scalar_cfg = EstimatorConfig {
            force_scalar_tracks: true,
            parallel_tracks: false,
            ..Default::default()
        };
        let route = Route::new(vec![red_road()]).unwrap();
        let trip = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 0.5, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &trip, 23);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 23);
        let fused = GradientEstimator::new(EstimatorConfig::default()).estimate(&log, Some(&route));
        let scalar = GradientEstimator::new(scalar_cfg.clone()).estimate(&log, Some(&route));
        assert_eq!(fused, scalar);

        let fused_no_map = GradientEstimator::new(EstimatorConfig::default()).estimate(&log, None);
        let scalar_no_map = GradientEstimator::new(scalar_cfg.clone()).estimate(&log, None);
        assert_eq!(fused_no_map, scalar_no_map);

        let sources = vec![VelocitySource::CanBus, VelocitySource::Accelerometer];
        let fused_sub = GradientEstimator::new(EstimatorConfig {
            sources: sources.clone(),
            ..Default::default()
        })
        .estimate(&log, Some(&route));
        let scalar_sub = GradientEstimator::new(EstimatorConfig { sources, ..scalar_cfg })
            .estimate(&log, Some(&route));
        assert_eq!(fused_sub, scalar_sub);
    }

    #[test]
    fn fused_lanes_record_the_same_counters_as_scalar_tracks() {
        let route = Route::new(vec![straight_road(800.0, 2.0)]).unwrap();
        let traj = simulate_trip(&route, &TripConfig::default(), 5);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 5);
        let reports = [false, true].map(|force_scalar| {
            let estimator = GradientEstimator::new(EstimatorConfig {
                force_scalar_tracks: force_scalar,
                parallel_tracks: false,
                ..Default::default()
            });
            let rec = gradest_obs::RunRecorder::new();
            let mut scratch = EstimatorScratch::new();
            estimator.estimate_with_recorded(&log, Some(&route), &mut scratch, &rec);
            rec.report()
        });
        let [fused, scalar] = reports;
        for counter in [
            "ekf-predicts",
            "ekf-updates-gps",
            "ekf-updates-speedometer",
            "ekf-updates-can-bus",
            "ekf-updates-accelerometer",
            "tracks-healthy",
            "tracks-degraded",
            "tracks-diverged",
        ] {
            assert_eq!(fused.counter(counter), scalar.counter(counter), "counter {counter}");
        }
    }

    #[test]
    fn warm_scratch_matches_cold_estimate() {
        let route = Route::new(vec![straight_road(800.0, 2.0)]).unwrap();
        let traj = simulate_trip(&route, &TripConfig::default(), 11);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 11);
        let estimator = GradientEstimator::new(EstimatorConfig::default());
        let cold = estimator.estimate(&log, Some(&route));
        let mut scratch = EstimatorScratch::new();
        let first = estimator.estimate_with(&log, Some(&route), &mut scratch);
        let warm = estimator.estimate_with(&log, Some(&route), &mut scratch);
        assert_eq!(cold, first);
        assert_eq!(cold, warm);
        assert!(scratch.stages().total() > 0);
    }

    #[test]
    fn recorded_estimate_is_bit_identical_and_counts() {
        let route = Route::new(vec![straight_road(800.0, 2.0)]).unwrap();
        let traj = simulate_trip(&route, &TripConfig::default(), 5);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 5);
        let estimator = GradientEstimator::new(EstimatorConfig::default());
        let plain = estimator.estimate(&log, Some(&route));
        let rec = gradest_obs::RunRecorder::new();
        let mut scratch = EstimatorScratch::new();
        let recorded = estimator.estimate_with_recorded(&log, Some(&route), &mut scratch, &rec);
        assert_eq!(plain, recorded, "recording must not perturb the estimate");
        let report = rec.report();
        assert_eq!(report.counter("trips-processed"), Some(1));
        assert_eq!(report.counter("ekf-predicts"), Some(4 * log.imu.len() as u64));
        for span in ["trip", "steering", "detection", "tracks", "fusion", "track:gps"] {
            assert!(report.span(span).is_some(), "span {span} missing");
        }
        // Eq-6 weights are a convex combination: the per-source mean
        // weights sum to 1 across the four tracks.
        let weight_sum: f64 = [
            "fusion-weight:gps",
            "fusion-weight:speedometer",
            "fusion-weight:can-bus",
            "fusion-weight:accelerometer",
        ]
        .iter()
        .map(|h| report.histogram(h).expect("weight recorded").mean)
        .sum();
        assert!((weight_sum - 1.0).abs() < 1e-9, "weights sum to {weight_sum}");
        // EKF innovations were observed for every applied update.
        let innovations = report.histogram("ekf-innovation").expect("innovations");
        let updates: u64 = [
            "ekf-updates:gps",
            "ekf-updates:speedometer",
            "ekf-updates:can-bus",
            "ekf-updates:accelerometer",
        ]
        .iter()
        .filter_map(|c| report.counter(c))
        .sum();
        assert!(updates > 0);
        assert_eq!(innovations.count, updates);
    }

    #[test]
    fn alpha_cursor_matches_binary_search() {
        let profile = SmoothedProfile { t: vec![0.0, 0.5, 1.0, 1.5, 2.0], w: vec![0.0; 5] };
        let alpha = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let mut cursor = 0usize;
        // Non-decreasing queries: before, between, exactly on, repeated,
        // and past the last knot.
        for &t in &[-1.0, 0.2, 0.5, 0.5, 0.75, 1.5, 1.9, 2.0, 7.0] {
            let reference = alpha_at(&profile, &alpha, t);
            let scanned = alpha_at_cursor(&profile, &alpha, t, &mut cursor);
            assert_eq!(reference, scanned, "t={t}");
        }
        let empty = SmoothedProfile::default();
        let mut c = 0usize;
        assert_eq!(alpha_at(&empty, &[], 1.0), 0.0);
        assert_eq!(alpha_at_cursor(&empty, &[], 1.0, &mut c), 0.0);
    }

    #[test]
    fn fast_lowess_tracks_generic_reference() {
        let route = Route::new(vec![straight_road(1200.0, 2.0)]).unwrap();
        let traj = simulate_trip(&route, &TripConfig::default(), 12);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 12);
        let fast = GradientEstimator::new(EstimatorConfig::default()).estimate(&log, Some(&route));
        let generic = GradientEstimator::new(EstimatorConfig {
            force_generic_lowess: true,
            ..Default::default()
        })
        .estimate(&log, Some(&route));
        assert_eq!(fast.fused.len(), generic.fused.len());
        for (a, b) in fast.fused.theta.iter().zip(&generic.fused.theta) {
            assert!((a - b).abs() < 1e-12, "fast {a} vs generic {b}");
        }
    }

    #[test]
    fn constant_gradient_recovered() {
        let route = Route::new(vec![straight_road(2000.0, 3.0)]).unwrap();
        let est = run(&route, 1, 1, 0.0);
        assert_eq!(est.tracks.len(), 4);
        // Fused estimate over the second half of the road ≈ 3°.
        let late: Vec<f64> = est
            .fused
            .s
            .iter()
            .zip(&est.fused.theta)
            .filter(|(s, _)| **s > 1000.0)
            .map(|(_, th)| th.to_degrees())
            .collect();
        assert!(!late.is_empty());
        let mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!((mean - 3.0).abs() < 0.5, "fused mean {mean}°");
    }

    #[test]
    fn distance_estimate_close_to_route_length() {
        let route = Route::new(vec![straight_road(1500.0, 1.0)]).unwrap();
        let est = run(&route, 2, 2, 0.0);
        assert!((est.distance_m - 1500.0).abs() < 60.0, "distance {}", est.distance_m);
    }

    #[test]
    fn tracks_are_aligned_for_fusion() {
        let route = Route::new(vec![straight_road(800.0, 2.0)]).unwrap();
        let est = run(&route, 3, 3, 0.0);
        for t in &est.tracks {
            assert_eq!(t.s.len(), est.fused.s.len());
        }
        // Fused variance never exceeds the best individual track.
        for i in 0..est.fused.len() {
            let best = est.tracks.iter().map(|t| t.variance[i]).fold(f64::MAX, f64::min);
            assert!(est.fused.variance[i] <= best + 1e-15);
        }
    }

    #[test]
    fn lane_changes_detected_on_multilane_road() {
        let route = Route::new(vec![two_lane_straight(6000.0)]).unwrap();
        let cfg = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 1.0, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &cfg, 5);
        assert!(!traj.events().is_empty(), "simulation produced no maneuvers");
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 5);
        let est = GradientEstimator::new(EstimatorConfig::default()).estimate(&log, Some(&route));
        assert!(
            !est.detections.is_empty(),
            "expected detections for {} events",
            traj.events().len()
        );
        // Directions match ground truth for matched events.
        for det in &est.detections {
            let matched = traj
                .events()
                .iter()
                .find(|e| det.t_start < e.end_t + 1.0 && det.t_end > e.start_t - 1.0);
            if let Some(e) = matched {
                assert_eq!(det.direction, e.direction, "direction mismatch at {}", det.t_start);
            }
        }
    }

    #[test]
    fn red_road_fused_beats_worst_track() {
        let route = Route::new(vec![red_road()]).unwrap();
        let est = run(&route, 7, 7, 0.224);
        let truth_err = |t: &GradientTrack| {
            let errs: Vec<f64> =
                t.s.iter()
                    .zip(&t.theta)
                    .filter(|(s, _)| **s > 100.0)
                    .map(|(s, th)| (th - route.gradient_at(*s)).abs())
                    .collect();
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let fused_err = truth_err(&est.fused);
        let worst = est.tracks.iter().map(truth_err).fold(0.0f64, f64::max);
        assert!(fused_err < worst, "fused {fused_err} vs worst {worst}");
        // And it is decent in absolute terms (< 0.8° mean on a road whose
        // sections average ±2.4°).
        assert!(fused_err.to_degrees() < 0.8, "fused err {}°", fused_err.to_degrees());
    }

    #[test]
    fn subset_of_sources_supported() {
        let route = Route::new(vec![straight_road(600.0, 2.0)]).unwrap();
        let cfg_trip = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 0.0, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &cfg_trip, 8);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 8);
        let cfg = EstimatorConfig { sources: vec![VelocitySource::CanBus], ..Default::default() };
        let est = GradientEstimator::new(cfg).estimate(&log, Some(&route));
        assert_eq!(est.tracks.len(), 1);
        assert_eq!(est.tracks[0].label, "can-bus");
        assert!(!est.fused.is_empty());
    }

    #[test]
    fn works_without_map() {
        let route = Route::new(vec![straight_road(800.0, -2.0)]).unwrap();
        let cfg_trip = TripConfig {
            driver: DriverProfile { lane_change_rate_per_km: 0.0, ..Default::default() },
            ..Default::default()
        };
        let traj = simulate_trip(&route, &cfg_trip, 9);
        let log = SensorSuite::new(SensorConfig::default()).run(&traj, 9);
        let est = GradientEstimator::new(EstimatorConfig::default()).estimate(&log, None);
        let late: Vec<f64> = est
            .fused
            .s
            .iter()
            .zip(&est.fused.theta)
            .filter(|(s, _)| **s > 400.0)
            .map(|(_, th)| th.to_degrees())
            .collect();
        let mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!((mean + 2.0).abs() < 0.5, "fused mean {mean}°");
    }
}
